//! # bartercast
//!
//! A from-scratch Rust reproduction of **BarterCast** (Meulpolder,
//! Pouwelse, Epema, Sips — IPDPS 2009): a fully distributed,
//! maxflow-based reputation mechanism that prevents *lazy freeriding*
//! in BitTorrent-like P2P networks.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`graph`] — contribution graphs and maxflow algorithms (including
//!   the deployed depth-2-bounded variant).
//! * [`core`] — private/shared transfer histories, the BarterCast
//!   message protocol, the arctan reputation metric, and the
//!   rank/ban BitTorrent policies.
//! * [`gossip`] — the epidemic peer sampling service.
//! * [`trace`] — community trace model plus a synthetic
//!   `filelist.org`-style generator.
//! * [`bt`] — a piece-level BitTorrent protocol simulator.
//! * [`sim`] — the trace-driven simulation engine with adversary
//!   models, reproducing the paper's Figures 1–3.
//! * [`deploy`] — the Tribler-like deployment community model for
//!   Figure 4.
//! * [`util`] — shared hashing/statistics/plotting helpers.
//!
//! ## Quickstart
//!
//! ```
//! use bartercast::core::{PrivateHistory, ReputationEngine};
//! use bartercast::util::units::{Bytes, PeerId, Seconds};
//!
//! // Peer 0's private view: it uploaded 100 MB to peer 1 and
//! // downloaded 300 MB from peer 2.
//! let me = PeerId(0);
//! let mut hist = PrivateHistory::new(me);
//! hist.record_upload(PeerId(1), Bytes::from_mb(100), Seconds(10));
//! hist.record_download(PeerId(2), Bytes::from_mb(300), Seconds(20));
//!
//! let mut engine = ReputationEngine::from_private(&hist);
//! // Peer 2 fed us data: positive reputation. Peer 1 only took: negative.
//! assert!(engine.reputation(me, PeerId(2)) > 0.0);
//! assert!(engine.reputation(me, PeerId(1)) < 0.0);
//! ```

pub use bartercast_bt as bt;
pub use bartercast_core as core;
pub use bartercast_deploy as deploy;
pub use bartercast_gossip as gossip;
pub use bartercast_graph as graph;
pub use bartercast_sim as sim;
pub use bartercast_trace as trace;
pub use bartercast_util as util;

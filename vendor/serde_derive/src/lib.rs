//! No-op `Serialize` / `Deserialize` derives.
//!
//! The workspace derives serde traits on its config and report types to
//! document serializability, but nothing serializes through serde yet
//! (the wire codec is hand-rolled in `bartercast-core::codec`). Until a
//! real serde is available offline, these derives expand to nothing.

use proc_macro::TokenStream;

/// Derive stub: expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Derive stub: expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard generator: xoshiro256++ with SplitMix64
/// seed expansion. Deterministic per seed, `Clone`-able, and fast.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expands the 64-bit seed into the 256-bit state;
        // the all-zero state is unreachable this way.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! provides the exact API subset the workspace uses — `StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::{gen, gen_range, gen_bool}`, and
//! `seq::SliceRandom::{shuffle, choose}` — backed by xoshiro256++
//! seeded through SplitMix64. The generated stream differs from the
//! real `rand::rngs::StdRng` (ChaCha12), but every consumer in this
//! workspace only requires determinism per seed, which this provides.

pub mod rngs;
pub mod seq;

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Construct deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly random value of a primitive type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniformly random value in `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore> Rng for R {}

/// A 53-bit-precision uniform draw from `[0, 1)`.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types sampleable uniformly over their whole domain (the subset of
/// rand's `Standard` distribution the workspace uses).
pub trait Standard {
    /// Draw one value.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

/// Ranges a value can be drawn from.
///
/// Implemented once for `Range<T>` and once for `RangeInclusive<T>`
/// over all [`SampleUniform`] `T` — a single blanket impl per range
/// kind, exactly like real rand, so type inference can resolve
/// `rng.gen_range(-1.5..1.5)` through float-literal fallback.
pub trait SampleRange<T> {
    /// Draw a uniform value from the range. Panics if the range is
    /// empty, matching `rand`.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// Types uniformly sampleable over an interval.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(lo, hi, rng)
    }
}

/// Widening-multiply bounded draw: uniform in `[0, span)`.
fn bounded(word: u64, span: u64) -> u64 {
    ((word as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "cannot sample empty range");
                lo + bounded(rng.next_u64(), (hi - lo) as u64) as $t
            }
            fn sample_inclusive<R: RngCore>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + bounded(rng.next_u64(), span + 1) as $t
            }
        }
    )*};
}
impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                (lo as i128 + bounded(rng.next_u64(), span) as i128) as $t
            }
            fn sample_inclusive<R: RngCore>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64 as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 * span >> 64) as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "cannot sample empty range");
                let unit = unit_f64(rng.next_u64()) as $t;
                lo + unit * (hi - lo)
            }
            fn sample_inclusive<R: RngCore>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "cannot sample empty range");
                let unit = unit_f64(rng.next_u64()) as $t;
                lo + unit * (hi - lo)
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0u64..=5);
            assert!(w <= 5);
            let x = rng.gen_range(-1.5f64..1.5);
            assert!((-1.5..1.5).contains(&x));
            let y = rng.gen_range(-20i64..-3);
            assert!((-20..-3).contains(&y));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "got {hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}

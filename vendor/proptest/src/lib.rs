//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`proptest!`] macro with an optional
//! `#![proptest_config(...)]` header, range / tuple / `vec` / `bool` /
//! `any` strategies, `prop_map`, and the `prop_assert*` macros.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports its inputs (via `Debug`)
//!   and the case index, but is not minimized.
//! * **Fixed derivation of case seeds.** Cases are generated from a
//!   deterministic per-case seed, so failures are reproducible without
//!   a regression file (`*.proptest-regressions` files are ignored).

use rand::rngs::StdRng;

// Re-exported for the `proptest!` macro expansion, which runs inside
// consumer crates that may not depend on `rand` themselves.
pub use rand::rngs::StdRng as __StdRng;
pub use rand::SeedableRng as __SeedableRng;

/// Controls how many random cases each property runs.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property-test assertion (returned by `prop_assert*`).
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a whole-domain default strategy (proptest's `Arbitrary`).
pub trait ArbitraryValue {
    /// Draw one value covering the full domain.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                use rand::Rng;
                rng.gen::<$t>()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        use rand::Rng;
        rng.gen::<bool>()
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// The default whole-domain strategy for `T`.
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Namespaced strategy constructors (`prop::collection::vec`,
/// `prop::bool::ANY`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;

        /// A vector whose length is drawn from `size` and whose
        /// elements come from `element`.
        pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, size }
        }

        /// The strategy returned by [`vec`].
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: std::ops::Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
                let len = if self.size.is_empty() {
                    self.size.start
                } else {
                    rng.gen_range(self.size.clone())
                };
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// Boolean strategies.
    pub mod bool {
        use super::super::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;

        /// Uniform over `{true, false}`.
        #[derive(Debug, Clone, Copy)]
        pub struct BoolAny;

        /// Uniform over `{true, false}`.
        pub const ANY: BoolAny = BoolAny;

        impl Strategy for BoolAny {
            type Value = bool;

            fn generate(&self, rng: &mut StdRng) -> bool {
                rng.gen::<bool>()
            }
        }
    }
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// Fail the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($lhs),
                stringify!($rhs),
                l,
                r
            )));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$lhs, &$rhs);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)*),
                l,
                r
            )));
        }
    }};
}

/// Fail the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($lhs),
                stringify!($rhs),
                l
            )));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$lhs, &$rhs);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)*)));
        }
    }};
}

/// Define property tests: each `#[test] fn name(arg in strategy, ...)`
/// item runs `cases` random cases of its body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $($(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                // One strategy instance per case: strategies are
                // consumed by value in real proptest, so rebuild them.
                for case in 0..config.cases as u64 {
                    let mut rng = <$crate::__StdRng as $crate::__SeedableRng>::seed_from_u64(
                        0xBA27E2CA57u64
                            .wrapping_add(case.wrapping_mul(0x9E3779B97F4A7C15)),
                    );
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    // Render inputs before the body runs: bodies may
                    // consume the generated values, so the failure
                    // report cannot borrow them afterwards.
                    let inputs = ::std::format!("{:#?}", ($(&$arg,)+));
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body; ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest case {case} of {} failed: {e}\ninputs: {inputs}",
                            stringify!($name),
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples(x in 1u32..10, pair in (0u64..5, -2i64..3), flag in prop::bool::ANY) {
            prop_assert!((1..10).contains(&x));
            prop_assert!(pair.0 < 5);
            prop_assert!((-2..3).contains(&pair.1));
            let _ = flag;
        }

        #[test]
        fn vec_and_map(xs in prop::collection::vec(0u32..100, 2..20).prop_map(|v| v.len()), b in any::<u8>()) {
            prop_assert!((2..20).contains(&xs));
            let _ = b;
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_property_panics() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(unused)]
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "impossible: {x}");
            }
        }
        always_fails();
    }
}

//! Offline stand-in for the `bytes` crate.
//!
//! Provides the subset the wire codec uses: a `Vec<u8>`-backed
//! [`BytesMut`] growable buffer, the [`BufMut`] little-endian writer
//! methods on it, and the [`Buf`] cursor trait implemented for
//! `&[u8]`. No reference-counted zero-copy splitting — consumers here
//! only ever build a frame and parse a slice.

use std::ops::{Deref, DerefMut};

/// A growable byte buffer (thin wrapper over `Vec<u8>`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut { inner: Vec::new() }
    }

    /// An empty buffer with room for `cap` bytes.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Consume the buffer, yielding the underlying vector.
    pub fn into_vec(self) -> Vec<u8> {
        self.inner
    }

    /// Drop the contents, keeping the allocation for reuse.
    pub fn clear(&mut self) {
        self.inner.clear();
    }

    /// Spare capacity currently held by the buffer.
    pub fn capacity(&self) -> usize {
        self.inner.capacity()
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(v: Vec<u8>) -> Self {
        BytesMut { inner: v }
    }
}

/// Appending writes of integers in little-endian byte order.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a `u16`, little-endian.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a `u32`, little-endian.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a `u64`, little-endian.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Consuming reads of integers in little-endian byte order.
///
/// Like the real crate, `get_*` panics when fewer than the needed
/// bytes remain — callers must check [`Buf::remaining`] first.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Read `n` bytes into `dst` and advance.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Read a `u16`, little-endian.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Read a `u32`, little-endian.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Read a `u64`, little-endian.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            dst.len() <= self.len(),
            "buffer underflow: need {} bytes, have {}",
            dst.len(),
            self.len()
        );
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_roundtrip() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u8(0xBC);
        buf.put_u16_le(300);
        buf.put_u32_le(70_000);
        buf.put_u64_le(u64::MAX - 1);
        assert_eq!(buf.len(), 15);

        let mut r: &[u8] = &buf;
        assert_eq!(r.remaining(), 15);
        assert_eq!(r.get_u8(), 0xBC);
        assert_eq!(r.get_u16_le(), 300);
        assert_eq!(r.get_u32_le(), 70_000);
        assert_eq!(r.get_u64_le(), u64::MAX - 1);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn deref_allows_indexing_and_to_vec() {
        let mut buf = BytesMut::new();
        buf.put_u8(1);
        buf.put_u8(2);
        buf[0] = 9;
        assert_eq!(buf.to_vec(), vec![9, 2]);
        assert!(!buf.is_empty());
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn short_read_panics() {
        let mut r: &[u8] = &[1u8];
        let _ = r.get_u32_le();
    }
}

//! Offline stand-in for `serde`.
//!
//! Provides the `Serialize`/`Deserialize` trait names and their derive
//! macros so the workspace's `#[derive(Serialize, Deserialize)]`
//! annotations compile without network access. The derives expand to
//! nothing; no code in this workspace performs serde serialization
//! (the wire format lives in `bartercast-core::codec`).

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait matching serde's `Serialize` name.
pub trait Serialize {}

/// Marker trait matching serde's `Deserialize` name.
pub trait Deserialize<'de>: Sized {}

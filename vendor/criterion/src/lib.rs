//! Offline stand-in for `criterion`.
//!
//! Implements the API subset the `bench` crate uses — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros — over a simple wall-clock harness:
//! per benchmark it calibrates an iteration batch to roughly one
//! millisecond, takes `sample_size` samples, and prints
//! min / median / mean. No statistical regression machinery, no HTML
//! reports; output goes to stdout, one line per benchmark.

use std::fmt::Display;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Top-level harness handle, threaded through the bench functions.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Set the number of timing samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Run a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.into().label();
        run_benchmark(&label, self.sample_size, &mut f);
        self
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timing samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label());
        run_benchmark(&label, self.sample_size, &mut f);
        self
    }

    /// Run one benchmark that receives a shared input.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into().label());
        run_benchmark(&label, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// End the group (kept for API compatibility; a no-op here).
    pub fn finish(self) {}
}

/// Identifies one benchmark, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// A benchmark id `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn label(&self) -> String {
        match &self.parameter {
            Some(p) => format!("{}/{}", self.function, p),
            None => self.function.clone(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            function: s.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId {
            function: s,
            parameter: None,
        }
    }
}

/// Passed to each benchmark closure; [`Bencher::iter`] runs and times
/// the workload.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `iters` executions of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Calibrate a batch size of roughly 1 ms, then collect samples and
/// print a one-line summary.
fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, f: &mut F) {
    // calibration: single iteration
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let once = b.elapsed.max(Duration::from_nanos(1));
    let target = Duration::from_millis(1);
    let iters = (target.as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;

    let mut samples: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    println!(
        "{label:<50} time: [min {} median {} mean {}]  ({} samples x {} iters)",
        fmt_time(min),
        fmt_time(median),
        fmt_time(mean),
        samples.len(),
        iters
    );
}

/// Human-readable seconds.
fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Define a group of benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut ran = 0u32;
        {
            let mut group = c.benchmark_group("g");
            group.bench_function("f", |b| b.iter(|| std::hint::black_box(1 + 1)));
            group.bench_with_input(BenchmarkId::new("with_input", 7), &7u32, |b, &x| {
                b.iter(|| std::hint::black_box(x * 2))
            });
            group.finish();
        }
        c.bench_function("top", |b| {
            b.iter(|| {
                ran += 1;
                std::hint::black_box(ran)
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn time_formatting() {
        assert!(fmt_time(5e-9).ends_with("ns"));
        assert!(fmt_time(5e-6).ends_with("µs"));
        assert!(fmt_time(5e-3).ends_with("ms"));
        assert!(fmt_time(5.0).ends_with('s'));
    }
}

//! Figure 1 — contribution versus reputation.
//!
//! * **(a)** average system reputation (Equation 2) of sharers vs
//!   freeriders over the week: the curves diverge, sharers positive,
//!   freeriders negative;
//! * **(b)** scatter of per-peer system reputation against ground-truth
//!   net contribution (GB): a consistent monotone relationship.
//!
//! The run uses no penalizing policy — Figure 1 measures the *metric*,
//! not its enforcement.

use crate::Scale;
use bartercast_sim::{SimReport, Simulation};
use bartercast_util::stats::spearman;

/// Data behind both panels.
#[derive(Debug)]
pub struct Fig1Data {
    /// `(day, mean system reputation)` for sharers.
    pub reputation_sharers: Vec<(f64, f64)>,
    /// Same for freeriders.
    pub reputation_freeriders: Vec<(f64, f64)>,
    /// `(net contribution GB, system reputation)` per peer.
    pub scatter: Vec<(f64, f64)>,
    /// Rank correlation of the scatter (consistency measure).
    pub spearman: Option<f64>,
    /// The full report, for further inspection.
    pub report: SimReport,
}

/// Run the Figure 1 experiment.
pub fn run(scale: Scale, seed: u64) -> Fig1Data {
    let trace = scale.trace(seed);
    let config = scale.sim_config(seed);
    let report = Simulation::new(trace, config).run();
    let reputation_sharers = report.reputation.sharers.means();
    let reputation_freeriders = report.reputation.freeriders.means();
    let scatter: Vec<(f64, f64)> = report
        .outcomes
        .iter()
        .map(|o| (o.net_contribution_gb, o.system_reputation))
        .collect();
    let xs: Vec<f64> = scatter.iter().map(|p| p.0).collect();
    let ys: Vec<f64> = scatter.iter().map(|p| p.1).collect();
    Fig1Data {
        reputation_sharers,
        reputation_freeriders,
        scatter,
        spearman: spearman(&xs, &ys),
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scale_reproduces_divergence() {
        let data = run(Scale::Quick, 42);
        // final sharer reputation above final freerider reputation
        let s_end = data.reputation_sharers.last().expect("sharer samples").1;
        let f_end = data
            .reputation_freeriders
            .last()
            .expect("freerider samples")
            .1;
        assert!(
            s_end > f_end,
            "sharers must end above freeriders: {s_end} vs {f_end}"
        );
        assert!(s_end > 0.0, "sharers end positive: {s_end}");
        assert!(f_end < 0.0, "freeriders end negative: {f_end}");
    }

    #[test]
    fn quick_scale_scatter_is_consistent() {
        let data = run(Scale::Quick, 42);
        assert!(data.scatter.len() >= 20);
        let rho = data.spearman.expect("enough points");
        assert!(
            rho > 0.5,
            "net contribution and reputation must correlate strongly, rho = {rho}"
        );
    }
}

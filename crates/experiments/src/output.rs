//! Output helpers shared by the figure binaries.

use bartercast_util::csv::CsvWriter;
use std::fs::File;
use std::io::BufWriter;
use std::path::{Path, PathBuf};

/// Directory experiment CSVs are written to (created on demand).
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("BARTERCAST_RESULTS")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results"));
    std::fs::create_dir_all(&dir).expect("create results directory");
    dir
}

/// Create `results/<name>.csv` with the given header.
pub fn csv(name: &str, header: &[&str]) -> CsvWriter<BufWriter<File>> {
    let path: PathBuf = results_dir().join(format!("{name}.csv"));
    CsvWriter::create(&path, header).unwrap_or_else(|e| panic!("create {}: {e}", path.display()))
}

/// Announce a written file on stdout.
pub fn announce(name: &str) {
    let path: PathBuf = results_dir().join(format!("{name}.csv"));
    println!("wrote {}", path.display());
}

/// Write a series of `(x, y)` rows to `results/<name>.csv`.
pub fn write_xy(name: &str, header: &[&str], rows: &[(f64, f64)]) {
    let mut w = csv(name, header);
    for &(x, y) in rows {
        w.row([format!("{x:.6}"), format!("{y:.6}")])
            .expect("write row");
    }
    w.finish().expect("flush csv");
    announce(name);
}

/// True iff `path` exists (used by tests).
pub fn exists(name: &str) -> bool {
    Path::new(&results_dir())
        .join(format!("{name}.csv"))
        .exists()
}

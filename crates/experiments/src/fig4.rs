//! Figure 4 — deployment measurements (§5.5).
//!
//! One month of a customized observer peer in a Tribler-like open
//! community of ~5000 peers:
//!
//! * **(a)** upload − download per observed peer on a symmetric log
//!   scale (±TB): majority negative, an exactly-zero install-only
//!   spike, a few multi-GB altruists;
//! * **(b)** the CDF of the observer-computed reputations: ~40 %
//!   negative, ~50 % ≈ 0, ~10 % positive.

use crate::Scale;
use bartercast_deploy::{Community, CommunityConfig, DeploymentReport, Observer, ObserverConfig};

/// Run the deployment study.
pub fn run(scale: Scale, seed: u64) -> DeploymentReport {
    let community_cfg = match scale {
        Scale::Paper => CommunityConfig::default(),
        Scale::Quick => CommunityConfig {
            peers: 600,
            ..Default::default()
        },
    };
    let observer_cfg = match scale {
        Scale::Paper => ObserverConfig::default(),
        Scale::Quick => ObserverConfig {
            meetings: 1800,
            own_partners: 100,
            ..Default::default()
        },
    };
    let community = Community::generate(&community_cfg, seed);
    Observer::new(community.len()).observe(&community, &observer_cfg, seed ^ 0xDEAD_BEEF)
}

/// Symmetric log transform used for the Figure 4a y-axis: maps a byte
/// count to sign(x) · log10(1 + |x| / 1 MB), so ±1 TB ≈ ±6.
pub fn symlog_mb(bytes: f64) -> f64 {
    let mb = bytes / (1024.0 * 1024.0);
    mb.signum() * (1.0 + mb.abs()).log10()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deployment_shape_matches_paper() {
        let report = run(Scale::Quick, 7);
        let (neg, zero, pos) = report.reputation_split(0.01);
        assert!(neg > pos, "more negative than positive: {neg} vs {pos}");
        assert!(zero >= 0.2, "large ≈0 mass: {zero}");
        // contribution imbalance: majority of nonzero peers negative
        let nets = &report.net_contributions_sorted;
        let negative = nets.iter().filter(|&&x| x < 0.0).count();
        let positive = nets.iter().filter(|&&x| x > 0.0).count();
        assert!(negative > positive);
    }

    #[test]
    fn symlog_is_odd_and_monotone() {
        assert_eq!(symlog_mb(0.0), 0.0);
        assert!(symlog_mb(1e12) > symlog_mb(1e9));
        assert!((symlog_mb(-1e9) + symlog_mb(1e9)).abs() < 1e-12);
    }
}

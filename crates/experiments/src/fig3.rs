//! Figure 3 — disobeying the message protocol (§5.4).
//!
//! With the ban policy (δ = −0.5) fixed, a growing fraction of the
//! freeriders manipulates BarterCast:
//!
//! * **(a)** *ignoring* peers send no messages: effectiveness is
//!   essentially unchanged up to 50 % of the population, because the
//!   sharers' banning decisions rest on information from obeying
//!   peers;
//! * **(b)** *lying* peers claim huge uploads and zero downloads: the
//!   mechanism degrades gradually and remains effective below ~18 %
//!   liars.

use crate::Scale;
use bartercast_core::policy::ReputationPolicy;
use bartercast_sim::adversary::AdversaryModel;
use bartercast_sim::sweep::run_configs;
use bartercast_sim::SimConfig;

/// Which manipulation the sweep applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Panel (a): silent peers.
    Ignore,
    /// Panel (b): lying peers.
    Lie,
}

/// One sweep point.
#[derive(Debug)]
pub struct SweepPoint {
    /// Fraction of the population disobeying (0–0.5).
    pub fraction: f64,
    /// Overall mean sharer speed (KBps).
    pub sharers_kbps: f64,
    /// Overall mean freerider speed (KBps).
    pub freeriders_kbps: f64,
}

impl SweepPoint {
    /// Freerider / sharer ratio at this point.
    pub fn ratio(&self) -> f64 {
        if self.sharers_kbps > 0.0 {
            self.freeriders_kbps / self.sharers_kbps
        } else {
            f64::NAN
        }
    }
}

/// The default sweep fractions (percent of peers disobeying, as in the
/// figure's x-axis: 0–50 %).
pub const FRACTIONS: [f64; 6] = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5];

/// Run one panel's sweep (all fractions in parallel).
pub fn run(scale: Scale, mode: Mode, seed: u64) -> Vec<SweepPoint> {
    let trace = scale.trace(seed);
    let base = scale.sim_config(seed);
    let configs: Vec<SimConfig> = FRACTIONS
        .iter()
        .map(|&fraction| SimConfig {
            policy: ReputationPolicy::Ban { delta: -0.5 },
            adversary: match mode {
                Mode::Ignore => {
                    if fraction == 0.0 {
                        AdversaryModel::None
                    } else {
                        AdversaryModel::Ignore { fraction }
                    }
                }
                Mode::Lie => {
                    if fraction == 0.0 {
                        AdversaryModel::None
                    } else {
                        AdversaryModel::default_lie(fraction)
                    }
                }
            },
            ..base.clone()
        })
        .collect();
    let reports = run_configs(&trace, configs);
    FRACTIONS
        .iter()
        .zip(reports)
        .map(|(&fraction, r)| SweepPoint {
            fraction,
            sharers_kbps: r.overall_speed_sharers,
            freeriders_kbps: r.overall_speed_freeriders,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ignoring_does_not_help_freeriders_much() {
        let points = run(Scale::Quick, Mode::Ignore, 42);
        assert_eq!(points.len(), FRACTIONS.len());
        let r0 = points[0].ratio();
        let r_max = points.last().unwrap().ratio();
        // paper: "this behaviour does not significantly change the
        // effectiveness" — allow modest drift but no collapse
        assert!(
            r_max < r0 + 0.35,
            "ignoring wrecked the mechanism: {r0} -> {r_max}"
        );
        // the penalty stays active: freeriders stay slower than sharers
        assert!(
            r_max < 1.0,
            "freeriders overtook sharers at 50% ignorers: {r_max}"
        );
    }

    #[test]
    fn lying_eventually_degrades_effectiveness() {
        let points = run(Scale::Quick, Mode::Lie, 42);
        let r0 = points[0].ratio();
        let r_mid = points[1].ratio(); // 10% liars — below the ~18% knee
        let r_end = points.last().unwrap().ratio();
        assert!(
            r_mid < 0.95,
            "mechanism must still bite at 10% liars: ratio {r_mid}"
        );
        // large lying fractions erode the freerider penalty relative
        // to the clean run
        assert!(
            r_end >= r0 - 0.1,
            "50% liars should not *strengthen* the penalty: {r0} -> {r_end}"
        );
    }
}

//! The figure-regeneration harness.
//!
//! One module per paper figure. Every module exposes a `run` function
//! returning plain data, used both by the `fig1`–`fig4` binaries
//! (which write CSVs and ASCII plots) and by the Criterion benches in
//! `crates/bench` (which time scaled-down versions).
//!
//! Scales:
//!
//! * [`Scale::Paper`] — the paper's setup (100 peers, 10 swarms, one
//!   week; 5000 peers / one month for Figure 4). Minutes per run in
//!   release mode.
//! * [`Scale::Quick`] — a reduced setup with the same qualitative
//!   behaviour, for smoke tests and benches.

#![warn(missing_docs)]

pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod output;

use bartercast_sim::config::SimConfig;
use bartercast_trace::model::Trace;
use bartercast_trace::synth::{SynthConfig, TraceBuilder};
use bartercast_util::units::Seconds;

/// Experiment size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// The paper's full setup.
    Paper,
    /// Reduced setup for smoke tests and benches.
    Quick,
}

impl Scale {
    /// Parse from a CLI flag.
    pub fn from_flag(args: &[String]) -> Scale {
        if args.iter().any(|a| a == "--quick") {
            Scale::Quick
        } else {
            Scale::Paper
        }
    }

    /// Parse `--seed N` from CLI args (default 42). Every figure is
    /// deterministic per seed; varying it gives independent replicas.
    pub fn seed_from_flag(args: &[String]) -> u64 {
        args.iter()
            .position(|a| a == "--seed")
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(42)
    }

    /// The §5.1 community trace at this scale.
    pub fn trace(self, seed: u64) -> Trace {
        let cfg = match self {
            Scale::Paper => SynthConfig::default(),
            Scale::Quick => SynthConfig {
                peers: 50,
                swarms: 5,
                horizon: Seconds::from_days(4),
                ..Default::default()
            },
        };
        TraceBuilder::new(cfg).build(seed)
    }

    /// Baseline simulation configuration at this scale.
    pub fn sim_config(self, seed: u64) -> SimConfig {
        match self {
            Scale::Paper => SimConfig {
                seed,
                round: Seconds(30),
                bt: bartercast_bt::BtConfig {
                    regular_slots: 4,
                    unchoke_period: Seconds(30),
                    optimistic_period: Seconds(30),
                },
                ..Default::default()
            },
            Scale::Quick => SimConfig {
                seed,
                round: Seconds(60),
                bt: bartercast_bt::BtConfig {
                    regular_slots: 4,
                    unchoke_period: Seconds(60),
                    optimistic_period: Seconds(60),
                },
                reputation_sample_interval: Seconds::from_hours(3),
                ..Default::default()
            },
        }
    }

    /// Horizon in days for this scale's trace.
    pub fn horizon_days(self) -> f64 {
        match self {
            Scale::Paper => 7.0,
            Scale::Quick => 4.0,
        }
    }
}

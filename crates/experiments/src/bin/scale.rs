//! Scalability study binary — the paper's future work ("simulations
//! with up to 100,000 peers and assess the scalability of our
//! mechanism").
//!
//! ```text
//! cargo run -p bartercast-experiments --release --bin scale [-- --quick]
//! ```
//!
//! Sweeps the population size and reports, per size: probe subjective
//! graph size, two-hop reputation query latency (p50/p95), pairwise
//! sharer-vs-freerider discrimination accuracy, and gossip volume.
//! Writes `results/scale.csv`.

use bartercast_experiments::output;
use bartercast_sim::scale::{run_scale, ScaleConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let sizes: &[usize] = if quick {
        &[300, 1_000, 3_000]
    } else {
        &[1_000, 10_000, 100_000]
    };
    let mut w = output::csv(
        "scale",
        &[
            "peers",
            "graph_edges",
            "query_us_p50",
            "query_us_p95",
            "pairwise_accuracy",
            "messages",
        ],
    );
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>10} {:>12}",
        "peers", "graph edges", "query p50", "query p95", "accuracy", "messages"
    );
    for &n in sizes {
        let config = ScaleConfig {
            peers: n,
            probes: 100.min(n / 10).max(10),
            rounds: 30,
            seed: 42,
            ..Default::default()
        };
        let start = std::time::Instant::now();
        let r = run_scale(&config);
        let wall = start.elapsed().as_secs_f64();
        println!(
            "{:>8} {:>12.0} {:>9.1} us {:>9.1} us {:>10.3} {:>12}   ({wall:.1}s wall)",
            r.peers,
            r.mean_graph_edges,
            r.query_us_p50,
            r.query_us_p95,
            r.pairwise_accuracy,
            r.messages
        );
        w.row([
            r.peers.to_string(),
            format!("{:.0}", r.mean_graph_edges),
            format!("{:.2}", r.query_us_p50),
            format!("{:.2}", r.query_us_p95),
            format!("{:.4}", r.pairwise_accuracy),
            r.messages.to_string(),
        ])
        .expect("csv row");
    }
    w.finish().expect("flush");
    output::announce("scale");
    println!(
        "\nThe deployed two-hop bound keeps query latency roughly flat in the\n\
         population size: a probe's subjective graph grows with what it *hears*,\n\
         not with the network, which is the scalability argument of §3.2."
    );
}

//! Ablation study: the design choices DESIGN.md calls out, measured
//! end-to-end in the trace-driven simulator rather than in isolation.
//!
//! ```text
//! cargo run -p bartercast-experiments --release --bin ablation [-- --quick]
//! ```
//!
//! * **Maxflow path bound** — the deployed two-hop bound versus a
//!   three-hop bound and unbounded Dinic: reputation *accuracy*
//!   (Spearman rank correlation of system reputation against
//!   ground-truth net contribution) and wall time.
//! * **Reputation metric** — arctan versus linear clamp at the same
//!   unit.
//!
//! Writes `results/ablation.csv`.

use bartercast_core::message::BarterCastConfig;
use bartercast_core::metric::ReputationMetric;
use bartercast_experiments::{output, Scale};
use bartercast_graph::maxflow::Method;
use bartercast_sim::sweep::run_configs;
use bartercast_sim::SimConfig;
use bartercast_util::stats::spearman;
use bartercast_util::units::Bytes;
use std::time::Instant;

struct Variant {
    label: &'static str,
    maxflow: Method,
    metric: ReputationMetric,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::from_flag(&args);
    let seed = Scale::seed_from_flag(&args);
    let variants = [
        Variant {
            label: "bounded2_arctan (deployed)",
            maxflow: Method::DEPLOYED,
            metric: ReputationMetric::default(),
        },
        Variant {
            label: "bounded3_arctan",
            maxflow: Method::Bounded(3),
            metric: ReputationMetric::default(),
        },
        Variant {
            label: "unbounded_dinic_arctan",
            maxflow: Method::Dinic,
            metric: ReputationMetric::default(),
        },
        Variant {
            label: "bounded2_linear_clamp",
            maxflow: Method::DEPLOYED,
            metric: ReputationMetric::LinearClamp {
                unit: Bytes::from_gb(2),
            },
        },
    ];
    eprintln!(
        "running {} ablation variants at {scale:?} scale (parallel) ...",
        variants.len()
    );
    let trace = scale.trace(seed);
    let base = scale.sim_config(seed);
    let configs: Vec<SimConfig> = variants
        .iter()
        .map(|v| SimConfig {
            maxflow: v.maxflow,
            metric: v.metric,
            ..base.clone()
        })
        .collect();
    let start = Instant::now();
    let reports = run_configs(&trace, configs);
    let wall = start.elapsed().as_secs_f64();

    let mut w = output::csv(
        "ablation",
        &["variant", "spearman", "sharer_rep", "freerider_rep"],
    );
    println!(
        "{:<28} {:>9} {:>12} {:>14}",
        "variant", "spearman", "sharer rep", "freerider rep"
    );
    for (v, r) in variants.iter().zip(&reports) {
        let xs: Vec<f64> = r.outcomes.iter().map(|o| o.net_contribution_gb).collect();
        let ys: Vec<f64> = r.outcomes.iter().map(|o| o.system_reputation).collect();
        let rho = spearman(&xs, &ys).unwrap_or(f64::NAN);
        let (s_rep, f_rep) = r.mean_final_reputation();
        println!("{:<28} {rho:>9.3} {s_rep:>+12.4} {f_rep:>+14.4}", v.label);
        w.row([
            v.label.to_string(),
            format!("{rho:.4}"),
            format!("{s_rep:.4}"),
            format!("{f_rep:.4}"),
        ])
        .expect("csv row");
    }
    w.finish().expect("flush");
    output::announce("ablation");

    // Nh/Nr record-selection ablation (§3.4: the paper uses 10/10):
    // fewer records per message starve the shared history; more mostly
    // cost bandwidth
    eprintln!("running Nh/Nr record-selection ablation ...");
    let selections = [5usize, 10, 25];
    let sel_configs: Vec<SimConfig> = selections
        .iter()
        .map(|&k| SimConfig {
            bartercast: BarterCastConfig { nh: k, nr: k },
            ..base.clone()
        })
        .collect();
    let sel_reports = run_configs(&trace, sel_configs);
    let mut w = output::csv("ablation_nh_nr", &["nh_nr", "spearman", "messages"]);
    println!("\n{:<8} {:>9} {:>12}", "Nh=Nr", "spearman", "messages");
    for (&k, r) in selections.iter().zip(&sel_reports) {
        let xs: Vec<f64> = r.outcomes.iter().map(|o| o.net_contribution_gb).collect();
        let ys: Vec<f64> = r.outcomes.iter().map(|o| o.system_reputation).collect();
        let rho = spearman(&xs, &ys).unwrap_or(f64::NAN);
        println!("{k:<8} {rho:>9.3} {:>12}", r.messages_delivered);
        w.row([
            k.to_string(),
            format!("{rho:.4}"),
            r.messages_delivered.to_string(),
        ])
        .expect("csv row");
    }
    w.finish().expect("flush");
    output::announce("ablation_nh_nr");
    println!("\ntotal wall time for all variants (parallel): {wall:.1}s");
    println!(
        "per-query cost of each maxflow variant is measured separately by \
         `cargo bench -p bench --bench maxflow`"
    );
}

//! Regenerates Figure 1: contribution versus reputation.
//!
//! ```text
//! cargo run -p bartercast-experiments --release --bin fig1 [-- --quick] [a|b]
//! ```
//!
//! Writes `results/fig1a_*.csv` / `results/fig1b_scatter.csv` and
//! prints ASCII renderings of both panels.

use bartercast_experiments::output;
use bartercast_experiments::{fig1, Scale};
use bartercast_util::plot::{line_plot, Series};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::from_flag(&args);
    let seed = Scale::seed_from_flag(&args);
    let panel = args
        .iter()
        .find(|a| *a == "a" || *a == "b")
        .cloned()
        .unwrap_or_default();
    eprintln!("running fig1 at {scale:?} scale ...");
    let data = fig1::run(scale, seed);

    if panel.is_empty() || panel == "a" {
        output::write_xy(
            "fig1a_sharers",
            &["day", "avg_system_reputation"],
            &data.reputation_sharers,
        );
        output::write_xy(
            "fig1a_freeriders",
            &["day", "avg_system_reputation"],
            &data.reputation_freeriders,
        );
        println!(
            "{}",
            line_plot(
                "Figure 1a: average system reputation over time (days)",
                &[
                    Series::new("sharers", data.reputation_sharers.clone()),
                    Series::new("freeriders", data.reputation_freeriders.clone()),
                ],
                72,
                18,
            )
        );
    }
    if panel.is_empty() || panel == "b" {
        output::write_xy(
            "fig1b_scatter",
            &["net_contribution_gb", "system_reputation"],
            &data.scatter,
        );
        println!(
            "{}",
            line_plot(
                "Figure 1b: system reputation vs net contribution (GB)",
                &[Series::new("peer", data.scatter.clone())],
                72,
                18,
            )
        );
        if let Some(rho) = data.spearman {
            println!("Spearman rank correlation: {rho:.3}");
        }
    }
    let (s, f) = data.report.mean_final_reputation();
    println!("final mean system reputation: sharers {s:.4}, freeriders {f:.4}");
    let r = &data.report;
    let total_down: f64 = r.outcomes.iter().map(|o| o.downloaded_gb).sum();
    let completions: usize = r.outcomes.iter().map(|o| o.completions).sum();
    println!(
        "diagnostics: {} pieces, {:.1} GB downloaded by regular peers, {} completions, \
         {} meetings, {} messages, overall speeds s={:.0} f={:.0} KBps",
        r.pieces_transferred,
        total_down,
        completions,
        r.meetings,
        r.messages_delivered,
        r.overall_speed_sharers,
        r.overall_speed_freeriders,
    );
}

//! Regenerates Figure 3: peers disobeying the message protocol.
//!
//! ```text
//! cargo run -p bartercast-experiments --release --bin fig3 [-- --quick] [ignore|lie]
//! ```
//!
//! Writes `results/fig3a_*.csv` / `results/fig3b_*.csv` and prints
//! ASCII renderings of speed versus disobeying fraction.

use bartercast_experiments::output;
use bartercast_experiments::{fig3, Scale};
use bartercast_util::plot::{line_plot, Series};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::from_flag(&args);
    let seed = Scale::seed_from_flag(&args);
    let which = args
        .iter()
        .find(|a| *a == "ignore" || *a == "lie")
        .cloned()
        .unwrap_or_default();

    for (mode, label) in [(fig3::Mode::Ignore, "ignore"), (fig3::Mode::Lie, "lie")] {
        if !which.is_empty() && which != label {
            continue;
        }
        eprintln!(
            "running fig3 ({label}) at {scale:?} scale ({} parallel simulations) ...",
            fig3::FRACTIONS.len()
        );
        let points = fig3::run(scale, mode, seed);
        let sharers: Vec<(f64, f64)> = points
            .iter()
            .map(|p| (p.fraction * 100.0, p.sharers_kbps))
            .collect();
        let freeriders: Vec<(f64, f64)> = points
            .iter()
            .map(|p| (p.fraction * 100.0, p.freeriders_kbps))
            .collect();
        let panel = if label == "ignore" { "fig3a" } else { "fig3b" };
        output::write_xy(
            &format!("{panel}_{label}_sharers"),
            &["percent_disobeying", "kbps"],
            &sharers,
        );
        output::write_xy(
            &format!("{panel}_{label}_freeriders"),
            &["percent_disobeying", "kbps"],
            &freeriders,
        );
        println!(
            "{}",
            line_plot(
                &format!("Figure 3 ({label}): avg download speed vs % of peers {label}ing"),
                &[
                    Series::new("sharers", sharers),
                    Series::new("freeriders", freeriders),
                ],
                72,
                18,
            )
        );
        for p in &points {
            println!(
                "{:>4.0}% {label}: sharers {:7.1} KBps, freeriders {:7.1} KBps, ratio {:.3}",
                p.fraction * 100.0,
                p.sharers_kbps,
                p.freeriders_kbps,
                p.ratio()
            );
        }
        println!();
    }
}

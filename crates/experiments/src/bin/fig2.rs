//! Regenerates Figure 2: rank and ban policy effectiveness.
//!
//! ```text
//! cargo run -p bartercast-experiments --release --bin fig2 [-- --quick] [rank|ban|sweep]
//! ```
//!
//! Writes `results/fig2a_*.csv`, `results/fig2b_*.csv`,
//! `results/fig2c_*.csv` and prints ASCII renderings.

use bartercast_experiments::output;
use bartercast_experiments::{fig2, Scale};
use bartercast_util::plot::{line_plot, Series};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::from_flag(&args);
    let seed = Scale::seed_from_flag(&args);
    let which = args
        .iter()
        .find(|a| ["rank", "ban", "sweep"].contains(&a.as_str()))
        .cloned()
        .unwrap_or_default();
    eprintln!("running fig2 at {scale:?} scale (5 parallel simulations) ...");
    let data = fig2::run(scale, seed);

    if which.is_empty() || which == "rank" {
        output::write_xy("fig2a_rank_sharers", &["day", "kbps"], &data.rank.sharers);
        output::write_xy(
            "fig2a_rank_freeriders",
            &["day", "kbps"],
            &data.rank.freeriders,
        );
        println!(
            "{}",
            line_plot(
                "Figure 2a: avg download speed (KBps), policy = rank",
                &[
                    Series::new("sharers", data.rank.sharers.clone()),
                    Series::new("freeriders", data.rank.freeriders.clone()),
                ],
                72,
                18,
            )
        );
        if let Some(r) = data.rank.final_ratio {
            println!("rank: freerider/sharer end-of-week speed ratio = {r:.3} (paper: ~0.75)");
        }
        if let Some(r) = data.rank.ratio {
            println!("rank: overall speed ratio = {r:.3}\n");
        }
    }
    if which.is_empty() || which == "ban" {
        output::write_xy("fig2b_ban_sharers", &["day", "kbps"], &data.ban.sharers);
        output::write_xy(
            "fig2b_ban_freeriders",
            &["day", "kbps"],
            &data.ban.freeriders,
        );
        println!(
            "{}",
            line_plot(
                "Figure 2b: avg download speed (KBps), policy = ban(-0.5)",
                &[
                    Series::new("sharers", data.ban.sharers.clone()),
                    Series::new("freeriders", data.ban.freeriders.clone()),
                ],
                72,
                18,
            )
        );
        if let Some(r) = data.ban.final_ratio {
            println!("ban(-0.5): freerider/sharer end-of-week speed ratio = {r:.3} (paper: ~0.5)");
        }
        if let Some(r) = data.ban.ratio {
            println!("ban(-0.5): overall speed ratio = {r:.3}\n");
        }
    }
    if which.is_empty() || which == "sweep" {
        let mut series = Vec::new();
        for run in &data.ban_sweep {
            let name = format!("fig2c_{}_freeriders", run.label.replace(['(', ')'], "_"));
            output::write_xy(&name, &["day", "kbps"], &run.freeriders);
            series.push(Series::new(run.label.clone(), run.freeriders.clone()));
        }
        println!(
            "{}",
            line_plot(
                "Figure 2c: freerider avg download speed (KBps) under ban policy",
                &series,
                72,
                18,
            )
        );
        for run in &data.ban_sweep {
            if let (Some(r), Some(fr)) = (run.ratio, run.final_ratio) {
                println!(
                    "{}: overall ratio = {r:.3}, end-of-week ratio = {fr:.3}",
                    run.label
                );
            }
        }
    }
}

//! Regenerates Figure 4: one month of deployment measurements.
//!
//! ```text
//! cargo run -p bartercast-experiments --release --bin fig4 [-- --quick] [a|b]
//! ```
//!
//! Writes `results/fig4a_contributions.csv` /
//! `results/fig4b_reputation_cdf.csv` and prints ASCII renderings.

use bartercast_deploy::{Community, CommunityConfig, Observer, ObserverConfig};
use bartercast_experiments::output;
use bartercast_experiments::{fig4, Scale};
use bartercast_util::plot::{cdf_plot, line_plot, Series};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::from_flag(&args);
    let seed = Scale::seed_from_flag(&args);
    let panel = args
        .iter()
        .find(|a| *a == "a" || *a == "b" || *a == "evolution")
        .cloned()
        .unwrap_or_default();
    eprintln!("running fig4 at {scale:?} scale ...");
    let report = fig4::run(scale, seed);

    if panel.is_empty() || panel == "a" {
        let rows: Vec<(f64, f64)> = report
            .net_contributions_sorted
            .iter()
            .enumerate()
            .map(|(i, &net)| (i as f64, net))
            .collect();
        output::write_xy("fig4a_contributions", &["peer_rank", "net_bytes"], &rows);
        // plot in symlog space so the TB..-TB range is readable
        let symlog: Vec<(f64, f64)> = rows
            .iter()
            .map(|&(i, net)| (i, fig4::symlog_mb(net)))
            .collect();
        println!(
            "{}",
            line_plot(
                "Figure 4a: upload - download per peer (symlog10 MB), sorted",
                &[Series::new("peer", symlog)],
                72,
                18,
            )
        );
    }
    if panel.is_empty() || panel == "b" {
        let cdf = report.reputation_cdf();
        let pts: Vec<(f64, f64)> = cdf.points().collect();
        output::write_xy("fig4b_reputation_cdf", &["reputation", "cdf"], &pts);
        println!(
            "{}",
            cdf_plot(
                "Figure 4b: CDF of observer-computed reputations",
                &pts,
                72,
                18
            )
        );
        let (neg, zero, pos) = report.reputation_split(0.01);
        println!(
            "reputation split: {:.0}% negative, {:.0}% ~zero, {:.0}% positive (paper: ~40/50/10)",
            neg * 100.0,
            zero * 100.0,
            pos * 100.0
        );
        println!(
            "observer logged {} messages; {} peers in subjective graph",
            report.messages_logged, report.peers_in_graph
        );
    }
    if panel == "evolution" {
        // extension: how the observer's picture sharpens over the month
        let peers = match scale {
            Scale::Paper => 5000,
            Scale::Quick => 600,
        };
        let community = Community::generate(
            &CommunityConfig {
                peers,
                ..Default::default()
            },
            seed,
        );
        let points = Observer::observe_evolution(
            &community,
            &ObserverConfig::default(),
            seed ^ 0xDEAD_BEEF,
            6,
        );
        let mut w = output::csv(
            "fig4_evolution",
            &["messages", "negative", "zeroish", "positive"],
        );
        println!(
            "{:>10} {:>9} {:>9} {:>9}",
            "messages", "negative", "~zero", "positive"
        );
        for &(m, neg, zero, pos) in &points {
            println!("{m:>10} {neg:>9.3} {zero:>9.3} {pos:>9.3}");
            w.row([
                m.to_string(),
                format!("{neg:.4}"),
                format!("{zero:.4}"),
                format!("{pos:.4}"),
            ])
            .expect("csv row");
        }
        w.finish().expect("flush");
        output::announce("fig4_evolution");
    }
}

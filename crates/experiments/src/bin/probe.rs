//! Diagnostic probe: inspect subjective graph richness and pairwise
//! reputation distribution after a paper-scale run. Not part of the
//! figure set; kept for debugging the reproduction.

use bartercast_experiments::Scale;
use bartercast_sim::Simulation;

fn main() {
    let scale = Scale::Paper;
    let trace = scale.trace(42);
    let config = scale.sim_config(42);
    let mut sim = Simulation::new(trace, config);
    while sim.now().0 < 7 * 86_400 {
        sim.step();
    }
    let ((cl, xl), (cs, xs)) = sim.mean_contention();
    println!("active choke candidates: leechers {cl:.2} (over-slot rounds {xl}), seeders {cs:.2} (over-slot rounds {xs})");
    // graph richness
    let mut edge_counts: Vec<usize> = Vec::new();
    for p in sim.peers() {
        edge_counts.push(p.engine.graph().edge_count());
    }
    edge_counts.sort_unstable();
    println!(
        "subjective graph edges: min {} median {} max {}",
        edge_counts[0],
        edge_counts[edge_counts.len() / 2],
        edge_counts[edge_counts.len() - 1]
    );
    // ground truth
    let mut ups: Vec<f64> = sim.peers().iter().map(|p| p.real_up.as_gb()).collect();
    ups.sort_by(|a, b| a.partial_cmp(b).unwrap());
    println!(
        "real upload GB: min {:.2} median {:.2} max {:.2}",
        ups[0],
        ups[ups.len() / 2],
        ups[ups.len() - 1]
    );
    // pairwise reputation distribution from one evaluator
    let n = sim.peers().len();
    let indices: Vec<usize> = (10..n.min(30)).collect();
    for &j in &indices {
        let evaluator = sim.peers()[j].id;
        for i in 10..n {
            if i == j {
                continue;
            }
            let target = sim.peers()[i].id;
            // need mutable access: recompute via immutable clone is heavy;
            // use system_reputations helper instead
            let _ = (evaluator, target);
        }
    }
    let idx: Vec<usize> = (10..n).collect();
    let sys = sim.system_reputations(&idx);
    let mut sorted = sys.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    println!(
        "system reputation: min {:.4} median {:.4} max {:.4}",
        sorted[0],
        sorted[sorted.len() / 2],
        sorted[sorted.len() - 1]
    );
    // one informed pair: evaluator 10's view of everyone
    let ids: Vec<_> = sim.peers().iter().map(|p| p.id).collect();
    let evaluator = ids[10];
    let mut probe_peers: Vec<(u32, f64)> = Vec::new();
    for i in 10..n {
        if i == 10 {
            continue;
        }
        let target = ids[i];
        let r = sim.peers_mut()[10].engine.reputation(evaluator, target);
        probe_peers.push((target.0, r));
    }
    let informed = probe_peers.iter().filter(|(_, r)| r.abs() > 0.01).count();
    let mut vals: Vec<f64> = probe_peers.iter().map(|(_, r)| *r).collect();
    vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
    println!(
        "peer 10's view: {} informed of {}; min {:.4} median {:.4} max {:.4}",
        informed,
        probe_peers.len(),
        vals[0],
        vals[vals.len() / 2],
        vals[vals.len() - 1]
    );
    // group upload/download totals
    let mut su = Vec::new();
    let mut fu = Vec::new();
    let mut sd = Vec::new();
    let mut fd = Vec::new();
    for (i, p) in sim.peers().iter().enumerate() {
        if sim.is_archival(i) {
            continue;
        }
        if p.behaviour == bartercast_sim::Behaviour::Freerider {
            fu.push(p.real_up.as_gb());
            fd.push(p.real_down.as_gb());
        } else {
            su.push(p.real_up.as_gb());
            sd.push(p.real_down.as_gb());
        }
    }
    for v in [&mut su, &mut fu, &mut sd, &mut fd] {
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    }
    println!(
        "sharer up median {:.2} GB / down {:.2} GB; freerider up median {:.2} GB / down {:.2} GB",
        su[su.len() / 2],
        sd[sd.len() / 2],
        fu[fu.len() / 2],
        fd[fd.len() / 2]
    );
    // group-wise view from peer 10
    let behaviours: Vec<bool> = sim
        .peers()
        .iter()
        .map(|p| p.behaviour == bartercast_sim::Behaviour::Freerider)
        .collect();
    let mut sharer_vals: Vec<f64> = Vec::new();
    let mut freerider_vals: Vec<f64> = Vec::new();
    for (pid, r) in &probe_peers {
        if behaviours[*pid as usize] {
            freerider_vals.push(*r);
        } else {
            sharer_vals.push(*r);
        }
    }
    sharer_vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
    freerider_vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
    println!(
        "peer 10's view of sharers: median {:.3}; of freeriders: median {:.3}",
        sharer_vals[sharer_vals.len() / 2],
        freerider_vals[freerider_vals.len() / 2]
    );
    let g = sim.peers()[10].engine.graph();
    let me = sim.peers()[10].id;
    println!(
        "peer 10 totals in own graph: up {} down {}",
        g.total_up(me),
        g.total_down(me)
    );
}

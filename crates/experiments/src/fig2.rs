//! Figure 2 — effectiveness of the rank and ban policies.
//!
//! * **(a)** average download speed of sharers vs freeriders under the
//!   *rank* policy: freeriders start faster (they spend no uplink on
//!   seeding), then fall behind; they end around 75 % of sharer speed;
//! * **(b)** the same under the *ban* policy with δ = −0.5: freeriders
//!   end around 50 % of sharer speed;
//! * **(c)** freerider speed under ban with δ ∈ {−0.3, −0.5, −0.7}:
//!   the −0.3/−0.5 gap is smaller than the −0.5/−0.7 gap.

use crate::Scale;
use bartercast_core::policy::ReputationPolicy;
use bartercast_sim::sweep::run_configs;
use bartercast_sim::SimReport;

/// One policy run's speed series.
#[derive(Debug)]
pub struct PolicyRun {
    /// Policy label.
    pub label: String,
    /// `(day, mean KBps)` for sharers.
    pub sharers: Vec<(f64, f64)>,
    /// `(day, mean KBps)` for freeriders.
    pub freeriders: Vec<(f64, f64)>,
    /// Freerider / sharer overall speed ratio.
    pub ratio: Option<f64>,
    /// Freerider / sharer speed ratio over the final day (the number
    /// the paper reads off the right edge of the plots).
    pub final_ratio: Option<f64>,
    /// Full report.
    pub report: SimReport,
}

/// Data behind all three panels.
#[derive(Debug)]
pub struct Fig2Data {
    /// Panel (a): the rank policy.
    pub rank: PolicyRun,
    /// Panel (b): ban with δ = −0.5.
    pub ban: PolicyRun,
    /// Panel (c): ban sweep over δ (freerider curves), including the
    /// −0.5 run shared with panel (b).
    pub ban_sweep: Vec<PolicyRun>,
}

/// The δ values of panel (c).
pub const DELTAS: [f64; 3] = [-0.3, -0.5, -0.7];

fn to_run(label: String, report: SimReport) -> PolicyRun {
    PolicyRun {
        label,
        sharers: report.speed.sharers.means(),
        freeriders: report.speed.freeriders.means(),
        ratio: report.freerider_speed_ratio(),
        final_ratio: report.final_speed_ratio(),
        report,
    }
}

/// Run all Figure 2 experiments (one trace, five policy configs, in
/// parallel).
pub fn run(scale: Scale, seed: u64) -> Fig2Data {
    let trace = scale.trace(seed);
    let base = scale.sim_config(seed);
    let mut configs = vec![bartercast_sim::SimConfig {
        policy: ReputationPolicy::Rank,
        ..base.clone()
    }];
    for &delta in &DELTAS {
        configs.push(bartercast_sim::SimConfig {
            policy: ReputationPolicy::Ban { delta },
            ..base.clone()
        });
    }
    let mut reports = run_configs(&trace, configs);
    let rank = to_run("rank".into(), reports.remove(0));
    let ban_sweep: Vec<PolicyRun> = DELTAS
        .iter()
        .zip(reports)
        .map(|(&d, r)| to_run(format!("ban({d})"), r))
        .collect();
    let ban = to_run("ban(-0.5)".into(), ban_sweep[1].report.clone());
    Fig2Data {
        rank,
        ban,
        ban_sweep,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policies_penalize_freeriders() {
        let data = run(Scale::Quick, 42);
        let rank_ratio = data.rank.ratio.expect("sharers moved data");
        let ban_ratio = data.ban.ratio.expect("sharers moved data");
        assert!(
            rank_ratio < 1.05,
            "rank must not leave freeriders much faster overall: {rank_ratio}"
        );
        assert!(
            ban_ratio < rank_ratio,
            "ban must be the stronger disincentive (paper: ~0.5 vs ~0.75): \
             ban {ban_ratio} vs rank {rank_ratio}"
        );
    }

    #[test]
    fn ban_sweep_is_monotone_in_delta() {
        let data = run(Scale::Quick, 42);
        // a stricter (less negative) δ bans more freeriders, so their
        // overall ratio should not increase as δ moves toward 0
        let ratios: Vec<f64> = data
            .ban_sweep
            .iter()
            .map(|r| r.ratio.unwrap_or(0.0))
            .collect();
        // DELTAS = [-0.3, -0.5, -0.7]: -0.3 strictest, -0.7 most lenient
        assert!(
            ratios[0] <= ratios[2] + 0.15,
            "stricter δ should not be meaningfully kinder to freeriders: {ratios:?}"
        );
    }
}

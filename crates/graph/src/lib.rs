//! Contribution graphs and maxflow algorithms for BarterCast.
//!
//! The paper (§3.1–3.2) models the network as a directed graph whose
//! nodes are peers and whose edge weights are the **total number of
//! bytes** transferred from one peer to another. A peer evaluates
//! another peer by computing the *maximum flow* between them in its
//! local, subjective copy of this graph.
//!
//! This crate provides:
//!
//! * [`ContributionGraph`] — the weighted directed graph of aggregated
//!   transfers, with max-merge semantics for gossiped records.
//! * [`FlowNetwork`] — a residual flow network built from a
//!   contribution graph.
//! * [`maxflow`] — five algorithms:
//!   Ford–Fulkerson with DFS (the paper's Algorithm 1), Edmonds–Karp,
//!   Dinic, FIFO push–relabel, and the **depth-bounded** variant with
//!   the deployed two-hop limit (§3.2: "our implementation only
//!   regards paths with a maximum length of two").
//! * [`ssat`] — the single-source all-targets kernel for the deployed
//!   two-hop bound: one traversal of a node's two-hop neighbourhood
//!   yields its bounded maxflow to (or from) every other peer at once.
//! * [`boundedk`] — the same sharing for **any** finite hop bound: a
//!   layered DAG unrolled per source (one BFS + level assignment)
//!   carries all-targets path-bounded flows, bit-identical to per-pair
//!   depth-bounded evaluation, with per-version DAG and value caching.
//! * [`gomoryhu`] — the all-pairs analogue for **unbounded** flow: a
//!   Gusfield-simplified Gomory–Hu cut tree over the min-symmetrized
//!   graph (n − 1 Dinic runs), answering any pair in `O(log n)` and a
//!   whole single-source sweep in `O(n)`; exact on symmetric graphs, a
//!   lower bound under directed asymmetry.
//! * [`backend`] — the [`FlowBackend`] trait unifying the three
//!   kernels above behind one dispatchable surface (`flow`,
//!   `all_flows_from`, `supports`), used as trait objects by the
//!   reputation engine.
//! * [`mincut`] — source- and sink-side minimum cuts, used by tests to
//!   verify the max-flow/min-cut theorem on every computed flow.
//! * [`analysis`] — graph statistics, the §3.2 two-hop coverage
//!   measure, and DOT export.

#![warn(missing_docs)]

pub mod analysis;
pub mod backend;
pub mod boundedk;
pub mod contribution;
mod csr;
pub mod gomoryhu;
pub mod maxflow;
pub mod mincut;
pub mod network;
pub mod ssat;

pub use backend::{FlowBackend, FlowPair};
pub use contribution::ContributionGraph;
pub use maxflow::{compute, Method, DEPLOYED_MAX_PATH_LEN};
pub use network::FlowNetwork;

//! Maximum-flow algorithms.
//!
//! Five interchangeable implementations over [`FlowNetwork`]:
//!
//! * [`ford_fulkerson`] — depth-first augmenting paths, a faithful
//!   rendering of the paper's Algorithm 1 ("for finding the paths in
//!   line 5 we use a common depth-first search").
//! * [`edmonds_karp`] — breadth-first (shortest) augmenting paths,
//!   strongly polynomial.
//! * [`dinic`] — level graphs + blocking flows, the fastest of the
//!   unbounded three on the simulator's graphs.
//! * [`push_relabel`] — FIFO preflow-push, included for the ablation
//!   bench (a non-augmenting-path algorithm behaves differently on the
//!   dense small-world graphs the simulator produces).
//! * [`bounded`] — augmenting paths restricted to at most `max_edges`
//!   edges. With [`DEPLOYED_MAX_PATH_LEN`]` = 2` this is the variant
//!   BarterCast actually deploys (§3.2). For `max_edges = 2` the result
//!   is exact (all ≤2-edge paths are internally disjoint through
//!   distinct middle nodes), and for `max_edges ≥ n − 1` it degenerates
//!   to plain Ford–Fulkerson.
//!
//! All of them mutate arc capacities in place; [`FlowNetwork::reset`]
//! restores the original graph.

use crate::contribution::ContributionGraph;
use crate::network::FlowNetwork;
use bartercast_util::units::{Bytes, PeerId};
use std::collections::VecDeque;

/// The path-length bound used by the deployed BarterCast (§3.2).
pub const DEPLOYED_MAX_PATH_LEN: usize = 2;

/// Which maxflow algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// DFS augmenting paths (paper Algorithm 1).
    FordFulkerson,
    /// BFS augmenting paths.
    EdmondsKarp,
    /// Dinic's algorithm.
    Dinic,
    /// FIFO push–relabel (preflow-push).
    PushRelabel,
    /// Augmenting paths of at most the given number of edges.
    Bounded(usize),
}

impl Method {
    /// The deployed configuration: two-hop bounded flow.
    pub const DEPLOYED: Method = Method::Bounded(DEPLOYED_MAX_PATH_LEN);
}

/// Compute the maxflow from `source` to `target` in `graph` using
/// `method`. Returns zero when either endpoint is absent from the
/// graph or when they are equal.
///
/// ```
/// use bartercast_graph::{compute, ContributionGraph, Method};
/// use bartercast_util::units::{Bytes, PeerId};
///
/// // 0 -> 1 -> 2 plus a direct 0 -> 2 edge
/// let mut g = ContributionGraph::new();
/// g.add_transfer(PeerId(0), PeerId(1), Bytes::from_mb(10));
/// g.add_transfer(PeerId(1), PeerId(2), Bytes::from_mb(4));
/// g.add_transfer(PeerId(0), PeerId(2), Bytes::from_mb(3));
///
/// let flow = compute(&g, PeerId(0), PeerId(2), Method::DEPLOYED);
/// assert_eq!(flow, Bytes::from_mb(7)); // min(10, 4) + 3
/// ```
pub fn compute(graph: &ContributionGraph, source: PeerId, target: PeerId, method: Method) -> Bytes {
    if source == target {
        return Bytes::ZERO;
    }
    let mut net = FlowNetwork::from_graph(graph);
    compute_on(&mut net, source, target, method)
}

/// Compute on a pre-built network (reset is performed first, so a
/// network can be reused across many `(s, t)` queries).
pub fn compute_on(net: &mut FlowNetwork, source: PeerId, target: PeerId, method: Method) -> Bytes {
    let (Some(s), Some(t)) = (net.node(source), net.node(target)) else {
        return Bytes::ZERO;
    };
    if s == t {
        return Bytes::ZERO;
    }
    net.reset();
    let flow = match method {
        Method::FordFulkerson => ford_fulkerson(net, s, t),
        Method::EdmondsKarp => edmonds_karp(net, s, t),
        Method::Dinic => dinic(net, s, t),
        Method::PushRelabel => push_relabel(net, s, t),
        Method::Bounded(k) => bounded(net, s, t, k),
    };
    Bytes(flow)
}

/// Ford–Fulkerson with depth-first augmenting-path search
/// (paper Algorithm 1, lines 5–12 with DFS path finding).
pub fn ford_fulkerson(net: &mut FlowNetwork, s: u32, t: u32) -> u64 {
    let n = net.node_count();
    let mut total = 0u64;
    let mut parent_arc: Vec<Option<u32>> = vec![None; n];
    let mut visited = vec![false; n];
    loop {
        visited.fill(false);
        parent_arc.fill(None);
        // iterative DFS for an augmenting path
        let mut stack = vec![s];
        visited[s as usize] = true;
        let mut found = false;
        'dfs: while let Some(u) = stack.pop() {
            for &ai in net.arcs_of(u) {
                let arc = net.arcs[ai as usize];
                if arc.cap > 0 && !visited[arc.to as usize] {
                    visited[arc.to as usize] = true;
                    parent_arc[arc.to as usize] = Some(ai);
                    if arc.to == t {
                        found = true;
                        break 'dfs;
                    }
                    stack.push(arc.to);
                }
            }
        }
        if !found {
            break;
        }
        total += augment(net, s, t, &parent_arc);
    }
    total
}

/// Edmonds–Karp: BFS (shortest) augmenting paths.
pub fn edmonds_karp(net: &mut FlowNetwork, s: u32, t: u32) -> u64 {
    let n = net.node_count();
    let mut total = 0u64;
    let mut parent_arc: Vec<Option<u32>> = vec![None; n];
    let mut visited = vec![false; n];
    loop {
        visited.fill(false);
        parent_arc.fill(None);
        let mut q = VecDeque::new();
        q.push_back(s);
        visited[s as usize] = true;
        let mut found = false;
        'bfs: while let Some(u) = q.pop_front() {
            for &ai in net.arcs_of(u) {
                let arc = net.arcs[ai as usize];
                if arc.cap > 0 && !visited[arc.to as usize] {
                    visited[arc.to as usize] = true;
                    parent_arc[arc.to as usize] = Some(ai);
                    if arc.to == t {
                        found = true;
                        break 'bfs;
                    }
                    q.push_back(arc.to);
                }
            }
        }
        if !found {
            break;
        }
        total += augment(net, s, t, &parent_arc);
    }
    total
}

/// Reusable scratch buffers for [`dinic_with`]: the BFS level array,
/// the per-node DFS arc cursor, and the BFS queue. One scratch serves
/// any number of runs over networks of any size (buffers grow to the
/// largest network seen and are reused thereafter) — Gusfield's
/// Gomory–Hu construction runs Dinic n − 1 times back to back and
/// would otherwise reallocate all three per run.
#[derive(Debug, Default)]
pub struct DinicScratch {
    level: Vec<i32>,
    iter: Vec<usize>,
    queue: VecDeque<u32>,
}

impl DinicScratch {
    /// Empty scratch; buffers are sized lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Size (or re-fill) the buffers for a network of `n` nodes.
    fn prepare(&mut self, n: usize) {
        self.level.clear();
        self.level.resize(n, -1);
        self.iter.clear();
        self.iter.resize(n, 0);
        self.queue.clear();
    }
}

/// Dinic's algorithm: BFS level graph + DFS blocking flow.
pub fn dinic(net: &mut FlowNetwork, s: u32, t: u32) -> u64 {
    dinic_with(net, s, t, &mut DinicScratch::new())
}

/// [`dinic`] with caller-provided scratch buffers, for hot loops that
/// run many flows back to back (identical results, no per-run
/// allocation).
pub fn dinic_with(net: &mut FlowNetwork, s: u32, t: u32, scratch: &mut DinicScratch) -> u64 {
    let n = net.node_count();
    let mut total = 0u64;
    loop {
        // build level graph
        scratch.prepare(n);
        let (level, iter, q) = (&mut scratch.level, &mut scratch.iter, &mut scratch.queue);
        level[s as usize] = 0;
        q.push_back(s);
        while let Some(u) = q.pop_front() {
            for &ai in net.arcs_of(u) {
                let arc = net.arcs[ai as usize];
                if arc.cap > 0 && level[arc.to as usize] < 0 {
                    level[arc.to as usize] = level[u as usize] + 1;
                    q.push_back(arc.to);
                }
            }
        }
        if level[t as usize] < 0 {
            break;
        }
        loop {
            let f = dinic_dfs(net, s, t, u64::MAX, level, iter);
            if f == 0 {
                break;
            }
            total += f;
        }
    }
    total
}

fn dinic_dfs(
    net: &mut FlowNetwork,
    u: u32,
    t: u32,
    limit: u64,
    level: &[i32],
    iter: &mut [usize],
) -> u64 {
    if u == t {
        return limit;
    }
    while iter[u as usize] < net.arcs_of(u).len() {
        let ai = net.arcs_of(u)[iter[u as usize]];
        let arc = net.arcs[ai as usize];
        if arc.cap > 0 && level[arc.to as usize] == level[u as usize] + 1 {
            let pushed = dinic_dfs(net, arc.to, t, limit.min(arc.cap), level, iter);
            if pushed > 0 {
                net.arcs[ai as usize].cap -= pushed;
                net.arcs[(ai ^ 1) as usize].cap += pushed;
                return pushed;
            }
        }
        iter[u as usize] += 1;
    }
    0
}

/// FIFO push–relabel (preflow-push) maximum flow.
///
/// Included as the fourth unbounded algorithm for the ablation bench:
/// unlike the augmenting-path family it saturates arcs eagerly and
/// relabels nodes, which behaves differently on the simulator's dense
/// small-world graphs. Uses the standard FIFO active-node queue; no
/// gap heuristic (graphs here are small enough not to need it).
pub fn push_relabel(net: &mut FlowNetwork, s: u32, t: u32) -> u64 {
    let n = net.node_count();
    if n == 0 || s == t {
        return 0;
    }
    let mut height = vec![0usize; n];
    let mut excess = vec![0i128; n];
    height[s as usize] = n;
    // saturate source arcs (index loop: `arcs_of` borrows are released
    // between iterations so arc capacities can be mutated in place)
    for i in 0..net.arcs_of(s).len() {
        let ai = net.arcs_of(s)[i];
        let cap = net.arcs[ai as usize].cap;
        if cap > 0 && ai.is_multiple_of(2) {
            let to = net.arcs[ai as usize].to;
            net.arcs[ai as usize].cap = 0;
            net.arcs[(ai ^ 1) as usize].cap += cap;
            excess[to as usize] += cap as i128;
        }
    }
    let mut queue: VecDeque<u32> = (0..n as u32)
        .filter(|&v| v != s && v != t && excess[v as usize] > 0)
        .collect();
    let mut in_queue = vec![false; n];
    for &v in &queue {
        in_queue[v as usize] = true;
    }
    while let Some(u) = queue.pop_front() {
        in_queue[u as usize] = false;
        let ui = u as usize;
        while excess[ui] > 0 {
            let mut pushed = false;
            for i in 0..net.arcs_of(u).len() {
                let ai = net.arcs_of(u)[i];
                let arc = net.arcs[ai as usize];
                if arc.cap > 0 && height[ui] == height[arc.to as usize] + 1 {
                    let delta = (excess[ui].min(arc.cap as i128)) as u64;
                    net.arcs[ai as usize].cap -= delta;
                    net.arcs[(ai ^ 1) as usize].cap += delta;
                    excess[ui] -= delta as i128;
                    let to = arc.to as usize;
                    excess[to] += delta as i128;
                    if to != s as usize && to != t as usize && !in_queue[to] {
                        queue.push_back(arc.to);
                        in_queue[to] = true;
                    }
                    pushed = true;
                    if excess[ui] == 0 {
                        break;
                    }
                }
            }
            if excess[ui] == 0 {
                break;
            }
            if !pushed {
                // relabel
                let mut min_h = usize::MAX;
                for &ai in net.arcs_of(u) {
                    let arc = net.arcs[ai as usize];
                    if arc.cap > 0 {
                        min_h = min_h.min(height[arc.to as usize]);
                    }
                }
                if min_h == usize::MAX {
                    break; // no residual arcs: trapped excess
                }
                height[ui] = min_h + 1;
                if height[ui] > 2 * n {
                    break; // defensive bound
                }
            }
        }
    }
    excess[t as usize] as u64
}

/// Maxflow restricted to augmenting paths of at most `max_edges` edges,
/// found with BFS (so shorter paths are preferred). This is the deployed
/// BarterCast computation for `max_edges = 2`.
pub fn bounded(net: &mut FlowNetwork, s: u32, t: u32, max_edges: usize) -> u64 {
    if max_edges == 0 {
        return 0;
    }
    let n = net.node_count();
    let mut total = 0u64;
    let mut parent_arc: Vec<Option<u32>> = vec![None; n];
    let mut depth = vec![usize::MAX; n];
    loop {
        parent_arc.fill(None);
        depth.fill(usize::MAX);
        let mut q = VecDeque::new();
        depth[s as usize] = 0;
        q.push_back(s);
        let mut found = false;
        'bfs: while let Some(u) = q.pop_front() {
            if depth[u as usize] >= max_edges {
                continue;
            }
            for &ai in net.arcs_of(u) {
                let arc = net.arcs[ai as usize];
                if arc.cap > 0 && depth[arc.to as usize] == usize::MAX {
                    depth[arc.to as usize] = depth[u as usize] + 1;
                    parent_arc[arc.to as usize] = Some(ai);
                    if arc.to == t {
                        found = true;
                        break 'bfs;
                    }
                    q.push_back(arc.to);
                }
            }
        }
        if !found {
            break;
        }
        total += augment(net, s, t, &parent_arc);
    }
    total
}

/// Apply the bottleneck of the found path and update residuals
/// (paper Algorithm 1 lines 6–10).
fn augment(net: &mut FlowNetwork, s: u32, t: u32, parent_arc: &[Option<u32>]) -> u64 {
    // bottleneck
    let mut bottleneck = u64::MAX;
    let mut v = t;
    while v != s {
        let ai = parent_arc[v as usize].expect("path must reach source");
        bottleneck = bottleneck.min(net.arcs[ai as usize].cap);
        v = net.arcs[(ai ^ 1) as usize].to;
    }
    // apply
    let mut v = t;
    while v != s {
        let ai = parent_arc[v as usize].unwrap();
        net.arcs[ai as usize].cap -= bottleneck;
        net.arcs[(ai ^ 1) as usize].cap += bottleneck;
        v = net.arcs[(ai ^ 1) as usize].to;
    }
    bottleneck
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> PeerId {
        PeerId(i)
    }

    /// CLRS-style example network with a known maxflow of 23.
    fn clrs_graph() -> ContributionGraph {
        let mut g = ContributionGraph::new();
        let edges = [
            (0, 1, 16),
            (0, 2, 13),
            (1, 2, 10),
            (2, 1, 4),
            (1, 3, 12),
            (3, 2, 9),
            (2, 4, 14),
            (4, 3, 7),
            (3, 5, 20),
            (4, 5, 4),
        ];
        for (f, t, c) in edges {
            g.add_transfer(p(f), p(t), Bytes(c));
        }
        g
    }

    #[test]
    fn clrs_example_all_methods() {
        let g = clrs_graph();
        for m in [
            Method::FordFulkerson,
            Method::EdmondsKarp,
            Method::Dinic,
            Method::PushRelabel,
            Method::Bounded(100),
        ] {
            assert_eq!(compute(&g, p(0), p(5), m), Bytes(23), "method {m:?}");
        }
    }

    #[test]
    fn single_edge() {
        let mut g = ContributionGraph::new();
        g.add_transfer(p(0), p(1), Bytes(42));
        assert_eq!(compute(&g, p(0), p(1), Method::Dinic), Bytes(42));
        assert_eq!(compute(&g, p(1), p(0), Method::Dinic), Bytes::ZERO);
    }

    #[test]
    fn missing_nodes_and_self_query() {
        let g = clrs_graph();
        assert_eq!(compute(&g, p(0), p(99), Method::Dinic), Bytes::ZERO);
        assert_eq!(compute(&g, p(99), p(0), Method::Dinic), Bytes::ZERO);
        assert_eq!(compute(&g, p(0), p(0), Method::Dinic), Bytes::ZERO);
    }

    #[test]
    fn bounded_two_hops_counts_only_short_paths() {
        // 0 -> a -> t (2 edges, counts) and 0 -> b -> c -> t (3 edges, excluded)
        let mut g = ContributionGraph::new();
        g.add_transfer(p(0), p(1), Bytes(5));
        g.add_transfer(p(1), p(9), Bytes(5));
        g.add_transfer(p(0), p(2), Bytes(7));
        g.add_transfer(p(2), p(3), Bytes(7));
        g.add_transfer(p(3), p(9), Bytes(7));
        assert_eq!(compute(&g, p(0), p(9), Method::Dinic), Bytes(12));
        assert_eq!(compute(&g, p(0), p(9), Method::DEPLOYED), Bytes(5));
        assert_eq!(compute(&g, p(0), p(9), Method::Bounded(3)), Bytes(12));
    }

    #[test]
    fn bounded_one_hop_is_direct_edge() {
        let g = clrs_graph();
        assert_eq!(compute(&g, p(0), p(1), Method::Bounded(1)), Bytes(16));
        assert_eq!(compute(&g, p(0), p(5), Method::Bounded(1)), Bytes::ZERO);
        assert_eq!(compute(&g, p(0), p(5), Method::Bounded(0)), Bytes::ZERO);
    }

    #[test]
    fn deployed_two_hop_direct_plus_intermediaries() {
        // direct 0->t of 3, plus 0->k->t min(10, 4) = 4, total 7
        let mut g = ContributionGraph::new();
        g.add_transfer(p(0), p(9), Bytes(3));
        g.add_transfer(p(0), p(1), Bytes(10));
        g.add_transfer(p(1), p(9), Bytes(4));
        assert_eq!(compute(&g, p(0), p(9), Method::DEPLOYED), Bytes(7));
    }

    #[test]
    fn maxflow_bounded_by_cut() {
        // The flow into t can never exceed t's total in-capacity — the
        // property §3.4 relies on to contain liars.
        let g = clrs_graph();
        let into_t: u64 = g.in_edges(p(5)).map(|(_, b)| b.0).sum();
        let f = compute(&g, p(0), p(5), Method::Dinic);
        assert!(f.0 <= into_t);
    }

    #[test]
    fn conservation_holds_for_all_methods() {
        let g = clrs_graph();
        for m in [
            Method::FordFulkerson,
            Method::EdmondsKarp,
            Method::Dinic,
            Method::PushRelabel,
            Method::Bounded(2),
        ] {
            let mut net = FlowNetwork::from_graph(&g);
            let s = net.node(p(0)).unwrap();
            let t = net.node(p(5)).unwrap();
            net.reset();
            match m {
                Method::FordFulkerson => ford_fulkerson(&mut net, s, t),
                Method::EdmondsKarp => edmonds_karp(&mut net, s, t),
                Method::Dinic => dinic(&mut net, s, t),
                Method::PushRelabel => push_relabel(&mut net, s, t),
                Method::Bounded(k) => bounded(&mut net, s, t, k),
            };
            net.check_conservation(s, t).unwrap();
        }
    }

    #[test]
    fn reverse_flow_cancellation_needed() {
        // Classic case where a greedy path must be partially undone via
        // the residual arc (Algorithm 1 line 9).
        let mut g = ContributionGraph::new();
        g.add_transfer(p(0), p(1), Bytes(1));
        g.add_transfer(p(0), p(2), Bytes(1));
        g.add_transfer(p(1), p(2), Bytes(1));
        g.add_transfer(p(1), p(3), Bytes(1));
        g.add_transfer(p(2), p(3), Bytes(1));
        assert_eq!(compute(&g, p(0), p(3), Method::FordFulkerson), Bytes(2));
    }

    #[test]
    fn empty_graph() {
        let g = ContributionGraph::new();
        assert_eq!(compute(&g, p(0), p(1), Method::Dinic), Bytes::ZERO);
    }
}

//! The [`FlowBackend`] trait: a uniform interface over the three ways
//! this crate can evaluate Equation-1 flows.
//!
//! The reputation engine used to dispatch on [`Method`] with ad-hoc
//! `match`es — one arm per kernel, each with its own lazily rebuilt
//! per-version state. Backends now present one surface:
//!
//! * [`Ssat`] — the single-source all-targets kernel for **every**
//!   finite path-length bound: the two-hop closed form for the
//!   deployed `k ≤ 2`, the layered-DAG kernel
//!   ([`crate::boundedk::BoundedKKernel`]) for `k ≥ 3`. Exact and
//!   bit-identical to per-pair bounded evaluation at every `k`.
//! * [`GomoryHu`] — the Gusfield Gomory–Hu tree over the
//!   min-symmetrized graph for unbounded methods, admissible while the
//!   graph's directed asymmetry stays within the backend's tolerance.
//! * [`PairwiseDinic`] — per-pair evaluation with whatever [`Method`]
//!   is configured, on a shared lazily rebuilt [`FlowNetwork`]. The
//!   universal fallback: supports every method at any asymmetry, but
//!   offers no batch sweep.
//!
//! Every backend caches whatever per-version state it needs (flow
//! network, cut tree) keyed by [`ContributionGraph::version`], so a
//! burst of queries against an unchanged graph shares one
//! construction and a graph mutation invalidates lazily — no explicit
//! reset calls.

use crate::boundedk::BoundedKKernel;
use crate::contribution::ContributionGraph;
use crate::gomoryhu::GomoryHuTree;
use crate::maxflow::{self, Method};
use crate::network::FlowNetwork;
use crate::ssat;
use bartercast_util::units::{Bytes, PeerId};
use bartercast_util::FxHashMap;

/// The two directed Equation-1 flows of one `(evaluator, target)`
/// pair, from the evaluator `i`'s point of view: `toward` is
/// `maxflow(j → i)` (service the target rendered), `away` is
/// `maxflow(i → j)` (service the target consumed).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlowPair {
    /// `maxflow(target → evaluator)`.
    pub toward: Bytes,
    /// `maxflow(evaluator → target)`.
    pub away: Bytes,
}

/// A reputation-flow evaluator: one of the interchangeable kernels
/// behind the reputation engine, used as a trait object.
pub trait FlowBackend: std::fmt::Debug + Send {
    /// Stable identifier for diagnostics and dispatch statistics.
    fn name(&self) -> &'static str;

    /// Whether this backend can serve `method` on a graph with the
    /// given directed asymmetry (see
    /// [`ContributionGraph::asymmetry`]). The engine consults backends
    /// in priority order and uses the first that answers `true`.
    fn supports(&self, method: Method, asymmetry: f64) -> bool;

    /// Directed flow `s → t` as this backend evaluates it. Zero when
    /// either endpoint is absent or `s == t`.
    fn flow(&mut self, graph: &ContributionGraph, s: PeerId, t: PeerId) -> Bytes;

    /// Both Equation-1 flows from evaluator `i` to **every** reachable
    /// peer in one sweep, or `None` when this backend has no batch
    /// kernel (the caller then falls back to per-pair
    /// [`FlowBackend::flow`] calls). Peers absent from the returned
    /// map have zero flow in both directions.
    fn all_flows_from(
        &mut self,
        graph: &ContributionGraph,
        i: PeerId,
    ) -> Option<FxHashMap<PeerId, FlowPair>>;
}

/// A lazily rebuilt [`FlowNetwork`] tagged with the graph version it
/// was built at — the shared-state pattern both point-query backends
/// use.
#[derive(Debug, Clone, Default)]
struct VersionedNet {
    net: Option<(u64, FlowNetwork)>,
}

impl VersionedNet {
    /// The network for the graph's current version, rebuilding at most
    /// once per version.
    fn at(&mut self, graph: &ContributionGraph) -> &mut FlowNetwork {
        let version = graph.version();
        if self.net.as_ref().map(|(v, _)| *v) != Some(version) {
            self.net = Some((version, FlowNetwork::from_graph(graph)));
        }
        &mut self.net.as_mut().expect("net built above").1
    }
}

/// Per-pair evaluation with the configured [`Method`] on a shared
/// network — the universal fallback (historically per-pair Dinic for
/// the unbounded ablations, hence the name). Supports every method at
/// any asymmetry; no batch sweep.
#[derive(Debug, Clone)]
pub struct PairwiseDinic {
    method: Method,
    net: VersionedNet,
}

impl PairwiseDinic {
    /// A per-pair backend evaluating flows with `method`.
    pub fn new(method: Method) -> Self {
        PairwiseDinic {
            method,
            net: VersionedNet::default(),
        }
    }
}

impl FlowBackend for PairwiseDinic {
    fn name(&self) -> &'static str {
        "pairwise"
    }

    fn supports(&self, _method: Method, _asymmetry: f64) -> bool {
        true
    }

    fn flow(&mut self, graph: &ContributionGraph, s: PeerId, t: PeerId) -> Bytes {
        maxflow::compute_on(self.net.at(graph), s, t, self.method)
    }

    fn all_flows_from(
        &mut self,
        _graph: &ContributionGraph,
        _i: PeerId,
    ) -> Option<FxHashMap<PeerId, FlowPair>> {
        None
    }
}

/// The single-source all-targets kernel for **every** finite path
/// bound `Bounded(k)`: one traversal of the evaluator's bounded
/// neighbourhood yields its flows to and from every peer at once,
/// bit-identical to per-pair bounded evaluation. `k = 1` degenerates
/// to reading the direct edges, `k = 2` uses the disjoint-paths closed
/// form ([`crate::ssat`]), and `k ≥ 3` — where the closed form breaks
/// down — routes through the layered-DAG kernel
/// ([`crate::boundedk`]), which shares per-source DAGs and memoized
/// pair values across sweeps. Until that kernel existed, `k ≥ 3`
/// silently fell through to per-pair evaluation with no sweep and no
/// incremental eviction.
#[derive(Debug, Clone)]
pub struct Ssat {
    method: Method,
    net: VersionedNet,
    /// The layered-DAG kernel, present exactly when `method` is
    /// `Bounded(k)` with `k ≥ 3`.
    kernel: Option<BoundedKKernel>,
}

impl Ssat {
    /// An SSAT backend evaluating point queries with `method` (which
    /// must be the same bounded method `supports` admits, or point and
    /// batch answers would diverge).
    pub fn new(method: Method) -> Self {
        let kernel = match method {
            Method::Bounded(k) if k >= 3 => Some(BoundedKKernel::new(k)),
            _ => None,
        };
        Ssat {
            method,
            net: VersionedNet::default(),
            kernel,
        }
    }
}

impl FlowBackend for Ssat {
    fn name(&self) -> &'static str {
        "ssat"
    }

    fn supports(&self, method: Method, _asymmetry: f64) -> bool {
        matches!(method, Method::Bounded(_))
    }

    fn flow(&mut self, graph: &ContributionGraph, s: PeerId, t: PeerId) -> Bytes {
        match self.kernel.as_mut() {
            // k ≥ 3: the kernel is bit-identical to per-pair bounded
            // evaluation and shares its DAG/value caches with sweeps
            Some(kernel) => kernel.flow(graph, s, t),
            None => maxflow::compute_on(self.net.at(graph), s, t, self.method),
        }
    }

    fn all_flows_from(
        &mut self,
        graph: &ContributionGraph,
        i: PeerId,
    ) -> Option<FxHashMap<PeerId, FlowPair>> {
        let (toward, away) = match self.method {
            Method::Bounded(0) => (FxHashMap::default(), FxHashMap::default()),
            Method::Bounded(1) => (
                graph.in_edges(i).collect::<FxHashMap<_, _>>(),
                graph.out_edges(i).collect::<FxHashMap<_, _>>(),
            ),
            Method::Bounded(2) => (ssat::flows_into(graph, i), ssat::flows_from(graph, i)),
            Method::Bounded(_) => {
                let kernel = self.kernel.as_mut().expect("kernel built for k >= 3");
                (kernel.flows_into(graph, i), kernel.flows_from(graph, i))
            }
            // unbounded methods are never admitted by `supports`; be
            // explicit rather than returning a wrong-method sweep
            _ => return None,
        };
        let mut flows: FxHashMap<PeerId, FlowPair> = FxHashMap::default();
        for (&j, &t) in &toward {
            flows.entry(j).or_default().toward = t;
        }
        for (&j, &a) in &away {
            flows.entry(j).or_default().away = a;
        }
        Some(flows)
    }
}

/// The Gomory–Hu cut tree over the min-symmetrized graph: `O(n)`
/// single-source sweeps for unbounded methods, built once per graph
/// version (n − 1 Dinic runs). Exact on symmetric graphs; admissible
/// up to the configured asymmetry tolerance, beyond which
/// [`FlowBackend::supports`] rejects and the engine falls back to
/// per-pair flow. The tree flow serves **both** directions of
/// Equation 1 (it is symmetric by construction).
#[derive(Debug, Clone)]
pub struct GomoryHu {
    tolerance: f64,
    tree: Option<GomoryHuTree>,
    patches: u64,
    rebuilds: u64,
}

impl GomoryHu {
    /// A tree backend admissible up to `tolerance` directed asymmetry.
    pub fn new(tolerance: f64) -> Self {
        GomoryHu {
            tolerance,
            tree: None,
            patches: 0,
            rebuilds: 0,
        }
    }

    /// Graph version of the currently built tree, if any (diagnostics:
    /// lets tests assert the tree is rebuilt once per version, not
    /// once per sweep).
    pub fn tree_version(&self) -> Option<u64> {
        self.tree.as_ref().map(GomoryHuTree::version)
    }

    /// How many version bumps were absorbed by an incremental
    /// [`GomoryHuTree::patch`] instead of a full rebuild.
    pub fn tree_patches(&self) -> u64 {
        self.patches
    }

    /// How many version bumps required a from-scratch
    /// [`GomoryHuTree::build`] (first build included).
    pub fn tree_rebuilds(&self) -> u64 {
        self.rebuilds
    }

    /// The tree for the graph's current version: try to patch the
    /// previous tree over the dirty node set first, fall back to a full
    /// rebuild when the dirty set is too large or the node set changed.
    /// At most one patch or rebuild per graph version.
    fn at(&mut self, graph: &ContributionGraph) -> &GomoryHuTree {
        let version = graph.version();
        if self.tree_version() != Some(version) {
            let patched = self.tree.as_ref().and_then(|t| t.patch(graph));
            match patched {
                Some(t) => {
                    self.patches += 1;
                    self.tree = Some(t);
                }
                None => {
                    self.rebuilds += 1;
                    self.tree = Some(GomoryHuTree::build(graph));
                }
            }
        }
        self.tree.as_ref().expect("tree built above")
    }
}

impl FlowBackend for GomoryHu {
    fn name(&self) -> &'static str {
        "gomory-hu"
    }

    fn supports(&self, method: Method, asymmetry: f64) -> bool {
        matches!(
            method,
            Method::FordFulkerson | Method::EdmondsKarp | Method::Dinic | Method::PushRelabel
        ) && asymmetry <= self.tolerance
    }

    fn flow(&mut self, graph: &ContributionGraph, s: PeerId, t: PeerId) -> Bytes {
        self.at(graph).flow(s, t)
    }

    fn all_flows_from(
        &mut self,
        graph: &ContributionGraph,
        i: PeerId,
    ) -> Option<FxHashMap<PeerId, FlowPair>> {
        let flows = self.at(graph).all_flows_from(i);
        Some(
            flows
                .into_iter()
                .map(|(j, f)| (j, FlowPair { toward: f, away: f }))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> PeerId {
        PeerId(i)
    }

    fn chain() -> ContributionGraph {
        // 2 -> 1 -> 0
        let mut g = ContributionGraph::new();
        g.add_transfer(p(2), p(1), Bytes::from_mb(300));
        g.add_transfer(p(1), p(0), Bytes::from_mb(200));
        g
    }

    #[test]
    fn ssat_sweep_matches_point_queries() {
        let g = chain();
        let mut b = Ssat::new(Method::DEPLOYED);
        let flows = b.all_flows_from(&g, p(0)).expect("ssat has a sweep");
        for j in [p(1), p(2)] {
            let pair = flows.get(&j).copied().unwrap_or_default();
            assert_eq!(pair.toward, b.flow(&g, j, p(0)), "toward {j}");
            assert_eq!(pair.away, b.flow(&g, p(0), j), "away {j}");
        }
    }

    #[test]
    fn ssat_bounded_one_reads_direct_edges() {
        let g = chain();
        let mut b = Ssat::new(Method::Bounded(1));
        assert!(b.supports(Method::Bounded(1), 1.0));
        let flows = b.all_flows_from(&g, p(0)).unwrap();
        // only the direct 1 -> 0 edge reaches peer 0 within one hop
        assert_eq!(flows.get(&p(1)).unwrap().toward, Bytes::from_mb(200));
        assert!(!flows.contains_key(&p(2)));
        assert_eq!(b.flow(&g, p(2), p(0)), Bytes::ZERO);
    }

    #[test]
    fn ssat_serves_all_finite_bounds() {
        // regression: `supports` used to hard-reject k ≥ 3, silently
        // degrading those methods to per-pair evaluation with no sweep
        let mut g = ContributionGraph::new();
        // 3 -> 2 -> 1 -> 0 plus a shortcut 3 -> 1
        g.add_transfer(p(3), p(2), Bytes::from_mb(100));
        g.add_transfer(p(2), p(1), Bytes::from_mb(80));
        g.add_transfer(p(1), p(0), Bytes::from_mb(60));
        g.add_transfer(p(3), p(1), Bytes::from_mb(10));
        for k in [3usize, 4, 7] {
            let method = Method::Bounded(k);
            let mut b = Ssat::new(method);
            assert!(b.supports(method, 1.0), "k = {k} must be admitted");
            let flows = b.all_flows_from(&g, p(0)).expect("k >= 3 has a sweep");
            for j in [p(1), p(2), p(3)] {
                let pair = flows.get(&j).copied().unwrap_or_default();
                assert_eq!(pair.toward, maxflow::compute(&g, j, p(0), method));
                assert_eq!(pair.away, maxflow::compute(&g, p(0), j, method));
                assert_eq!(pair.toward, b.flow(&g, j, p(0)));
            }
        }
        assert!(Ssat::new(Method::Bounded(0)).supports(Method::Bounded(0), 0.0));
        assert!(!Ssat::new(Method::Dinic).supports(Method::Dinic, 0.0));
    }

    #[test]
    fn pairwise_supports_everything_but_has_no_sweep() {
        let g = chain();
        let mut b = PairwiseDinic::new(Method::Dinic);
        assert!(b.supports(Method::Dinic, 1.0));
        assert!(b.supports(Method::Bounded(7), 1.0));
        assert!(b.all_flows_from(&g, p(0)).is_none());
        assert_eq!(b.flow(&g, p(2), p(0)), Bytes::from_mb(200));
    }

    #[test]
    fn gomoryhu_gated_by_tolerance_and_method() {
        let b = GomoryHu::new(0.25);
        assert!(b.supports(Method::Dinic, 0.2));
        assert!(!b.supports(Method::Dinic, 0.3));
        assert!(!b.supports(Method::DEPLOYED, 0.0), "bounded never admitted");
    }

    #[test]
    fn gomoryhu_builds_once_per_version() {
        let mut g = chain();
        // symmetrize so the tree is meaningful
        g.add_transfer(p(1), p(2), Bytes::from_mb(300));
        g.add_transfer(p(0), p(1), Bytes::from_mb(200));
        let mut b = GomoryHu::new(0.0);
        b.all_flows_from(&g, p(0)).unwrap();
        let v1 = b.tree_version().expect("tree built");
        b.all_flows_from(&g, p(1)).unwrap();
        assert_eq!(b.tree_version(), Some(v1), "unchanged graph reuses tree");
        g.add_transfer(p(0), p(2), Bytes::from_mb(1));
        b.flow(&g, p(0), p(2));
        assert!(b.tree_version().unwrap() > v1, "mutation forces rebuild");
    }

    #[test]
    fn gomoryhu_patches_small_mutations_and_counts_them() {
        let mut g = ContributionGraph::new();
        for (a, b, mb) in [(0, 1, 100), (1, 2, 200), (0, 3, 50), (3, 2, 50)] {
            g.add_transfer(p(a), p(b), Bytes::from_mb(mb));
            g.add_transfer(p(b), p(a), Bytes::from_mb(mb));
        }
        let mut b = GomoryHu::new(0.0);
        b.all_flows_from(&g, p(0)).unwrap();
        assert_eq!((b.tree_patches(), b.tree_rebuilds()), (0, 1));
        // touch one existing pair: two dirty nodes, patchable
        g.add_transfer(p(0), p(1), Bytes::from_mb(1));
        g.add_transfer(p(1), p(0), Bytes::from_mb(1));
        b.flow(&g, p(0), p(1));
        assert_eq!((b.tree_patches(), b.tree_rebuilds()), (1, 1));
        assert_eq!(b.tree_version(), Some(g.version()));
        // a brand-new node is not patchable: full rebuild
        g.add_transfer(p(9), p(0), Bytes::from_mb(5));
        g.add_transfer(p(0), p(9), Bytes::from_mb(5));
        b.flow(&g, p(0), p(9));
        assert_eq!((b.tree_patches(), b.tree_rebuilds()), (1, 2));
        // patched trees answer like rebuilt ones
        let fresh = GomoryHuTree::build(&g);
        for s in [0u32, 1, 2, 3, 9] {
            for t in [0u32, 1, 2, 3, 9] {
                assert_eq!(b.flow(&g, p(s), p(t)), fresh.flow(p(s), p(t)));
            }
        }
    }

    #[test]
    fn gomoryhu_sweep_matches_point_queries_on_symmetric_graph() {
        let mut g = ContributionGraph::new();
        for (a, b, mb) in [(0, 1, 100), (1, 2, 200), (0, 3, 50), (3, 2, 50)] {
            g.add_transfer(p(a), p(b), Bytes::from_mb(mb));
            g.add_transfer(p(b), p(a), Bytes::from_mb(mb));
        }
        let mut b = GomoryHu::new(0.0);
        let flows = b.all_flows_from(&g, p(0)).unwrap();
        for j in [p(1), p(2), p(3)] {
            let pair = flows.get(&j).copied().unwrap_or_default();
            assert_eq!(pair.toward, pair.away, "tree flow is symmetric");
            assert_eq!(pair.toward, b.flow(&g, j, p(0)));
        }
    }
}

//! Arena-backed compressed-sparse-row adjacency storage.
//!
//! One contiguous arena of `(neighbour, weight)` slots plus a per-node
//! `(start, len, cap)` span — the CSR layout every flow kernel in this
//! crate walks. Unlike a textbook CSR (frozen offset arrays built in
//! one pass), the arena is **incrementally appendable**: a node whose
//! span is full relocates its block to the arena tail with doubled
//! capacity (amortized `O(1)` per append), leaving a hole behind. When
//! holes exceed half the arena, [`AdjArena::compact`] rewrites it into
//! dense span order, so iteration stays contiguous in the steady state
//! while gossip keeps appending edges between compactions.
//!
//! Per-node slot order is insertion order and survives relocation and
//! compaction, so every traversal over the arena is deterministic —
//! the property the bit-identity differential suites lean on.

/// One adjacency slot: a neighbour (dense node index) and the edge
/// weight toward it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct EdgeSlot {
    /// Dense index of the neighbouring node.
    pub other: u32,
    /// Aggregated edge weight in bytes.
    pub weight: u64,
}

/// Per-node span into the arena: `len` live slots starting at `start`,
/// inside a block of `cap` reserved slots.
#[derive(Debug, Clone, Copy, Default)]
struct Span {
    start: u32,
    len: u32,
    cap: u32,
}

/// Smallest block a node's first edge reserves.
const MIN_BLOCK: u32 = 4;

/// Arena size below which compaction is never worth the copy.
const COMPACT_FLOOR: usize = 1024;

/// An incrementally appendable CSR adjacency arena.
#[derive(Debug, Clone, Default)]
pub(crate) struct AdjArena {
    entries: Vec<EdgeSlot>,
    spans: Vec<Span>,
    /// Live slots (Σ span.len), for the edge-count invariant checks.
    live: usize,
    /// Slots abandoned by block relocation; drives compaction.
    dead: usize,
}

impl AdjArena {
    /// Register one more node; returns its dense index.
    pub fn add_node(&mut self) -> u32 {
        let i = self.spans.len() as u32;
        self.spans.push(Span::default());
        i
    }

    /// Number of registered nodes.
    pub fn node_count(&self) -> usize {
        self.spans.len()
    }

    /// Total live slots across all nodes.
    pub fn len(&self) -> usize {
        self.live
    }

    /// The live adjacency slots of `node`, in insertion order.
    #[inline]
    pub fn slice(&self, node: u32) -> &[EdgeSlot] {
        let s = &self.spans[node as usize];
        &self.entries[s.start as usize..(s.start + s.len) as usize]
    }

    /// Mutable weight of the `node → other` slot, if present. A linear
    /// scan of the node's span: degrees here are gossip neighbourhood
    /// sizes, and the span is one cache-resident block.
    pub fn weight_mut(&mut self, node: u32, other: u32) -> Option<&mut u64> {
        let s = self.spans[node as usize];
        self.entries[s.start as usize..(s.start + s.len) as usize]
            .iter_mut()
            .find(|e| e.other == other)
            .map(|e| &mut e.weight)
    }

    /// Read-only weight of the `node → other` slot, if present.
    pub fn weight(&self, node: u32, other: u32) -> Option<u64> {
        self.slice(node)
            .iter()
            .find(|e| e.other == other)
            .map(|e| e.weight)
    }

    /// Append a new slot to `node` (the caller has checked it is not
    /// already present). Relocates the node's block to the arena tail
    /// when full, and compacts the whole arena once holes dominate.
    pub fn push(&mut self, node: u32, other: u32, weight: u64) {
        let s = self.spans[node as usize];
        if s.len == s.cap {
            self.relocate(node);
        }
        let s = &mut self.spans[node as usize];
        self.entries[(s.start + s.len) as usize] = EdgeSlot { other, weight };
        s.len += 1;
        self.live += 1;
        if self.dead > self.entries.len() / 2 && self.entries.len() >= COMPACT_FLOOR {
            self.compact();
        }
    }

    /// Move `node`'s block to the arena tail with doubled capacity.
    fn relocate(&mut self, node: u32) {
        let s = self.spans[node as usize];
        let new_cap = (s.cap * 2).max(MIN_BLOCK);
        let new_start = self.entries.len() as u32;
        self.entries.reserve(new_cap as usize);
        for i in 0..s.len {
            let slot = self.entries[(s.start + i) as usize];
            self.entries.push(slot);
        }
        self.entries.resize(
            new_start as usize + new_cap as usize,
            EdgeSlot {
                other: 0,
                weight: 0,
            },
        );
        self.dead += s.cap as usize;
        self.spans[node as usize] = Span {
            start: new_start,
            len: s.len,
            cap: new_cap,
        };
    }

    /// Rewrite the arena in node order with no holes (each block's
    /// capacity shrinks to its live length). Per-node slot order is
    /// preserved.
    pub fn compact(&mut self) {
        let mut dense: Vec<EdgeSlot> = Vec::with_capacity(self.live);
        for span in self.spans.iter_mut() {
            let start = dense.len() as u32;
            dense.extend_from_slice(
                &self.entries[span.start as usize..(span.start + span.len) as usize],
            );
            span.start = start;
            span.cap = span.len;
        }
        self.entries = dense;
        self.dead = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_find_and_grow() {
        let mut a = AdjArena::default();
        let n0 = a.add_node();
        let n1 = a.add_node();
        for i in 0..20 {
            a.push(n0, 100 + i, i as u64 + 1);
        }
        a.push(n1, 7, 9);
        assert_eq!(a.len(), 21);
        assert_eq!(a.slice(n0).len(), 20);
        assert_eq!(a.weight(n0, 105), Some(6));
        assert_eq!(a.weight(n0, 999), None);
        *a.weight_mut(n1, 7).unwrap() += 1;
        assert_eq!(a.weight(n1, 7), Some(10));
        // insertion order survives growth
        let others: Vec<u32> = a.slice(n0).iter().map(|e| e.other).collect();
        assert_eq!(others, (100..120).collect::<Vec<u32>>());
    }

    #[test]
    fn compaction_preserves_order_and_reclaims_holes() {
        let mut a = AdjArena::default();
        let nodes: Vec<u32> = (0..8).map(|_| a.add_node()).collect();
        // interleave pushes so every node relocates several times
        for round in 0..40u32 {
            for &n in &nodes {
                a.push(n, round, u64::from(round) + 1);
            }
        }
        assert!(a.dead > 0, "interleaved growth must leave holes");
        let before: Vec<Vec<EdgeSlot>> = nodes.iter().map(|&n| a.slice(n).to_vec()).collect();
        a.compact();
        assert_eq!(a.dead, 0);
        assert_eq!(a.entries.len(), a.live);
        for (i, &n) in nodes.iter().enumerate() {
            assert_eq!(a.slice(n), &before[i][..], "node {n} order changed");
        }
    }

    #[test]
    fn automatic_compaction_bounds_waste() {
        let mut a = AdjArena::default();
        let nodes: Vec<u32> = (0..64).map(|_| a.add_node()).collect();
        for round in 0..200u32 {
            for &n in &nodes {
                a.push(n, round, 1);
            }
        }
        // the arena may hold headroom, but holes stay under half + one
        // relocation's worth of slack
        assert!(a.dead <= a.entries.len() / 2 + a.entries.len() / 4);
        assert_eq!(a.len(), 64 * 200);
    }
}

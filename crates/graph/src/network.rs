//! Residual flow networks over contribution graphs.
//!
//! The maxflow algorithms operate on a compact arc-list representation:
//! arcs are stored in pairs so that arc `a` and arc `a ^ 1` are each
//! other's residual, the classic adjacency-list flow-network layout.
//! Node ids are remapped to dense indices so the inner loops are pure
//! array arithmetic (no hashing), and per-node arc lists live in one
//! flat CSR array (`adj_off`/`adj_arcs`) instead of a `Vec` per node:
//! a whole Dinic level sweep walks two contiguous allocations.

use crate::contribution::ContributionGraph;
use bartercast_util::units::{Bytes, PeerId};
use bartercast_util::FxHashMap;

/// One directed arc in the residual network.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Arc {
    /// Head node (dense index).
    pub to: u32,
    /// Remaining capacity.
    pub cap: u64,
}

/// A residual flow network with dense node indices.
///
/// Build one from a [`ContributionGraph`] with [`FlowNetwork::from_graph`]
/// (whole graph) or [`FlowNetwork::from_subgraph`] (restricted node set,
/// used for the deployed two-hop evaluation), then run any algorithm in
/// [`crate::maxflow`]. Call [`FlowNetwork::reset`] to restore original
/// capacities between runs.
#[derive(Debug, Clone)]
pub struct FlowNetwork {
    pub(crate) arcs: Vec<Arc>,
    original_caps: Vec<u64>,
    /// CSR offsets: node `u`'s incident arcs are
    /// `adj_arcs[adj_off[u]..adj_off[u + 1]]`, in increasing arc-index
    /// order (the order the old per-node `Vec`s produced).
    adj_off: Vec<u32>,
    adj_arcs: Vec<u32>,
    index: FxHashMap<PeerId, u32>,
    ids: Vec<PeerId>,
}

impl FlowNetwork {
    /// Build the network containing every edge of `graph`.
    pub fn from_graph(graph: &ContributionGraph) -> Self {
        Self::build(graph.edges())
    }

    /// Build the network restricted to edges whose both endpoints
    /// satisfy `keep`.
    pub fn from_subgraph<F: Fn(PeerId) -> bool>(graph: &ContributionGraph, keep: F) -> Self {
        Self::build(graph.edges().filter(|&(f, t, _)| keep(f) && keep(t)))
    }

    /// Build a network from an explicit edge list. Node indices are
    /// interned in first-appearance order and each edge's arc pair is
    /// appended in iteration order, so callers that need a specific
    /// relative arc order (the bounded-k kernel's pruned subnetworks)
    /// control it through the iterator.
    pub(crate) fn build<I: Iterator<Item = (PeerId, PeerId, Bytes)>>(edges: I) -> Self {
        let mut net = FlowNetwork {
            arcs: Vec::new(),
            original_caps: Vec::new(),
            adj_off: Vec::new(),
            adj_arcs: Vec::new(),
            index: FxHashMap::default(),
            ids: Vec::new(),
        };
        // First pass: intern endpoints and lay down the arc pairs; the
        // dense tail of each arc is recoverable from its residual twin
        // (`arcs[a ^ 1].to`), so no separate tail array is needed.
        for (f, t, b) in edges {
            let fi = net.intern(f);
            let ti = net.intern(t);
            net.arcs.push(Arc { to: ti, cap: b.0 });
            net.arcs.push(Arc { to: fi, cap: 0 });
            net.original_caps.push(b.0);
            net.original_caps.push(0);
        }
        // Second pass: counting sort of arc indices by tail node. Each
        // arc `a` is incident to the tail `arcs[a ^ 1].to`; visiting
        // arcs in index order reproduces, per node, exactly the
        // increasing-arc-index order the old per-node `Vec` pushes
        // produced — the property the bounded-k kernel's bit-identity
        // rests on.
        let n = net.ids.len();
        let mut degree = vec![0u32; n + 1];
        for ai in 0..net.arcs.len() {
            degree[net.arcs[ai ^ 1].to as usize + 1] += 1;
        }
        for u in 0..n {
            degree[u + 1] += degree[u];
        }
        net.adj_off = degree;
        let mut cursor = net.adj_off.clone();
        net.adj_arcs = vec![0u32; net.arcs.len()];
        for ai in 0..net.arcs.len() {
            let tail = net.arcs[ai ^ 1].to as usize;
            net.adj_arcs[cursor[tail] as usize] = ai as u32;
            cursor[tail] += 1;
        }
        net
    }

    fn intern(&mut self, id: PeerId) -> u32 {
        if let Some(&i) = self.index.get(&id) {
            return i;
        }
        let i = self.ids.len() as u32;
        self.ids.push(id);
        self.index.insert(id, i);
        i
    }

    /// The arc indices incident to `node` (forward arcs and residual
    /// twins), in increasing arc-index order.
    #[inline]
    pub(crate) fn arcs_of(&self, node: u32) -> &[u32] {
        let u = node as usize;
        &self.adj_arcs[self.adj_off[u] as usize..self.adj_off[u + 1] as usize]
    }

    /// Number of nodes in the network.
    pub fn node_count(&self) -> usize {
        self.ids.len()
    }

    /// Number of forward arcs (residual twins not counted).
    pub fn arc_count(&self) -> usize {
        self.arcs.len() / 2
    }

    /// Dense index of a peer, if it appears in this network.
    pub fn node(&self, id: PeerId) -> Option<u32> {
        self.index.get(&id).copied()
    }

    /// Peer id of a dense index.
    pub fn peer(&self, node: u32) -> PeerId {
        self.ids[node as usize]
    }

    /// Original (pre-flow) capacity of arc `ai` — forward arcs carry
    /// the edge weight, residual twins zero — regardless of any flow
    /// currently pushed through the network.
    pub(crate) fn original_cap(&self, ai: u32) -> u64 {
        self.original_caps[ai as usize]
    }

    /// Restore all arcs to their original capacities (undo any flow).
    pub fn reset(&mut self) {
        for (arc, &cap) in self.arcs.iter_mut().zip(&self.original_caps) {
            arc.cap = cap;
        }
    }

    /// Total flow currently pushed out of `node` (for assertions):
    /// the sum over forward arcs of `original − remaining` capacity.
    pub fn outflow(&self, node: u32) -> u64 {
        let mut sum = 0;
        for &ai in self.arcs_of(node) {
            if ai % 2 == 0 {
                // forward arc
                sum += self.original_caps[ai as usize] - self.arcs[ai as usize].cap;
            } else {
                // residual twin carrying flow back into `node` cancels
                sum = sum.saturating_sub(self.arcs[ai as usize].cap);
            }
        }
        sum
    }

    /// Flow conservation check: every node except `s` and `t` must have
    /// in-flow equal to out-flow. Returns `Err` with the offending node.
    pub fn check_conservation(&self, s: u32, t: u32) -> Result<(), u32> {
        let n = self.node_count();
        let mut balance = vec![0i64; n];
        for ai in (0..self.arcs.len()).step_by(2) {
            let flow = (self.original_caps[ai] - self.arcs[ai].cap) as i64;
            let to = self.arcs[ai].to as usize;
            let from = self.arcs[ai + 1].to as usize;
            balance[from] -= flow;
            balance[to] += flow;
        }
        for (i, &b) in balance.iter().enumerate() {
            let i = i as u32;
            if i != s && i != t && b != 0 {
                return Err(i);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> PeerId {
        PeerId(i)
    }

    fn diamond() -> ContributionGraph {
        // 0 -> 1 -> 3, 0 -> 2 -> 3
        let mut g = ContributionGraph::new();
        g.add_transfer(p(0), p(1), Bytes(10));
        g.add_transfer(p(1), p(3), Bytes(5));
        g.add_transfer(p(0), p(2), Bytes(8));
        g.add_transfer(p(2), p(3), Bytes(8));
        g
    }

    #[test]
    fn builds_dense_network() {
        let net = FlowNetwork::from_graph(&diamond());
        assert_eq!(net.node_count(), 4);
        assert_eq!(net.arc_count(), 4);
        assert!(net.node(p(0)).is_some());
        assert!(net.node(p(9)).is_none());
        let n1 = net.node(p(1)).unwrap();
        assert_eq!(net.peer(n1), p(1));
    }

    #[test]
    fn subgraph_filters_endpoints() {
        let g = diamond();
        let net = FlowNetwork::from_subgraph(&g, |id| id != p(2));
        // edges touching peer 2 are gone
        assert_eq!(net.arc_count(), 2);
        assert!(net.node(p(2)).is_none());
    }

    #[test]
    fn reset_restores_caps() {
        let g = diamond();
        let mut net = FlowNetwork::from_graph(&g);
        let s = net.node(p(0)).unwrap();
        let t = net.node(p(3)).unwrap();
        let f1 = crate::maxflow::dinic(&mut net, s, t);
        assert!(f1 > 0);
        net.reset();
        let f2 = crate::maxflow::dinic(&mut net, s, t);
        assert_eq!(f1, f2);
    }

    #[test]
    fn conservation_after_flow() {
        let g = diamond();
        let mut net = FlowNetwork::from_graph(&g);
        let s = net.node(p(0)).unwrap();
        let t = net.node(p(3)).unwrap();
        let _ = crate::maxflow::edmonds_karp(&mut net, s, t);
        net.check_conservation(s, t).unwrap();
    }
}

//! Minimum s–t cuts from residual reachability.
//!
//! After a maxflow run the set `S` of nodes reachable from the source in
//! the residual network defines a minimum cut `(S, V∖S)` whose capacity
//! equals the maxflow value (max-flow/min-cut theorem). The property
//! tests use this as an independent certificate for every flow the
//! algorithms produce.

use crate::network::FlowNetwork;

/// The source side of a minimum cut, as dense node indices, computed on
/// the residual network left behind by a maxflow run.
pub fn source_side(net: &FlowNetwork, s: u32) -> Vec<bool> {
    let n = net.node_count();
    let mut reachable = vec![false; n];
    let mut stack = vec![s];
    reachable[s as usize] = true;
    while let Some(u) = stack.pop() {
        for &ai in &net.adj[u as usize] {
            let arc = net.arcs[ai as usize];
            if arc.cap > 0 && !reachable[arc.to as usize] {
                reachable[arc.to as usize] = true;
                stack.push(arc.to);
            }
        }
    }
    reachable
}

/// Capacity of the cut `(S, V∖S)` in the **original** network: the sum
/// of original capacities of forward arcs leaving `S`.
///
/// `net` must be in post-maxflow state and `side` must come from
/// [`source_side`] on that same state; we recover original capacities
/// as `remaining + flow` = `cap_fwd + cap_residual_twin` is *not* valid
/// in general, so callers should pass a freshly rebuilt network via
/// [`cut_capacity_fresh`] when they have mutated capacities. This
/// function instead sums *current forward + twin* capacities, which for
/// an arc equals its original capacity (flow conservation on the pair).
pub fn cut_capacity(net: &FlowNetwork, side: &[bool]) -> u64 {
    let mut cap = 0u64;
    for ai in (0..net.arcs.len()).step_by(2) {
        let to = net.arcs[ai].to as usize;
        let from = net.arcs[ai + 1].to as usize;
        if side[from] && !side[to] {
            // original capacity = remaining forward + accumulated twin
            cap += net.arcs[ai].cap + net.arcs[ai + 1].cap;
        }
    }
    cap
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contribution::ContributionGraph;
    use crate::maxflow;
    use bartercast_util::units::{Bytes, PeerId};

    fn p(i: u32) -> PeerId {
        PeerId(i)
    }

    #[test]
    fn mincut_equals_maxflow_clrs() {
        let mut g = ContributionGraph::new();
        for (f, t, c) in [
            (0, 1, 16),
            (0, 2, 13),
            (1, 2, 10),
            (2, 1, 4),
            (1, 3, 12),
            (3, 2, 9),
            (2, 4, 14),
            (4, 3, 7),
            (3, 5, 20),
            (4, 5, 4),
        ] {
            g.add_transfer(p(f), p(t), Bytes(c));
        }
        let mut net = FlowNetwork::from_graph(&g);
        let s = net.node(p(0)).unwrap();
        let t = net.node(p(5)).unwrap();
        let flow = maxflow::dinic(&mut net, s, t);
        let side = source_side(&net, s);
        assert!(side[s as usize]);
        assert!(!side[t as usize]);
        assert_eq!(cut_capacity(&net, &side), flow);
        assert_eq!(flow, 23);
    }

    #[test]
    fn disconnected_target_gives_zero_cut() {
        let mut g = ContributionGraph::new();
        g.add_transfer(p(0), p(1), Bytes(5));
        g.add_transfer(p(2), p(3), Bytes(5));
        let mut net = FlowNetwork::from_graph(&g);
        let s = net.node(p(0)).unwrap();
        let t = net.node(p(3)).unwrap();
        let flow = maxflow::dinic(&mut net, s, t);
        assert_eq!(flow, 0);
        let side = source_side(&net, s);
        assert_eq!(cut_capacity(&net, &side), 0);
    }
}

//! Minimum s–t cuts from residual reachability.
//!
//! After a maxflow run the set `S` of nodes reachable from the source in
//! the residual network defines a minimum cut `(S, V∖S)` whose capacity
//! equals the maxflow value (max-flow/min-cut theorem). The property
//! tests use this as an independent certificate for every flow the
//! algorithms produce.

use crate::network::FlowNetwork;

/// The source side of a minimum cut, as dense node indices, computed on
/// the residual network left behind by a maxflow run.
pub fn source_side(net: &FlowNetwork, s: u32) -> Vec<bool> {
    let n = net.node_count();
    let mut reachable = vec![false; n];
    let mut stack = vec![s];
    reachable[s as usize] = true;
    while let Some(u) = stack.pop() {
        for &ai in net.arcs_of(u) {
            let arc = net.arcs[ai as usize];
            if arc.cap > 0 && !reachable[arc.to as usize] {
                reachable[arc.to as usize] = true;
                stack.push(arc.to);
            }
        }
    }
    reachable
}

/// The **complement of the sink side** of a minimum cut: `true` for
/// nodes that can *not* reach `t` in the residual network (so the
/// vector is directly usable as the `S` side for [`cut_capacity`]).
///
/// Unlike [`source_side`], this certificate is valid for a maximum
/// **preflow** as well as a maximum flow: push–relabel without a
/// second (flow-decomposition) phase may leave excess trapped at
/// interior nodes, which can make extra nodes residually reachable
/// *from* `s`, but the set of nodes that cannot reach `t` still forms
/// a minimum cut of value `excess(t)`.
pub fn sink_side_complement(net: &FlowNetwork, t: u32) -> Vec<bool> {
    let n = net.node_count();
    // reverse residual reachability: walk arcs (u -> v, cap > 0)
    // backwards from t, using the twin-arc layout (arc `ai` leaves the
    // node that arc `ai ^ 1` points at)
    let mut reaches_t = vec![false; n];
    let mut stack = vec![t];
    reaches_t[t as usize] = true;
    while let Some(v) = stack.pop() {
        for &ai in net.arcs_of(v) {
            // arc ai is (v -> x); its twin ai ^ 1 is (x -> v), whose
            // remaining capacity decides whether x reaches t through v
            let x = net.arcs[ai as usize].to;
            if net.arcs[(ai ^ 1) as usize].cap > 0 && !reaches_t[x as usize] {
                reaches_t[x as usize] = true;
                stack.push(x);
            }
        }
    }
    reaches_t.into_iter().map(|r| !r).collect()
}

/// Capacity of the cut `(S, V∖S)` in the **original** network: the sum
/// of original capacities of forward arcs leaving `S`.
///
/// `net` must be in post-maxflow state and `side` must come from
/// [`source_side`] on that same state; we recover original capacities
/// as `remaining + flow` = `cap_fwd + cap_residual_twin` is *not* valid
/// in general, so callers should pass a freshly rebuilt network via
/// [`cut_capacity_fresh`] when they have mutated capacities. This
/// function instead sums *current forward + twin* capacities, which for
/// an arc equals its original capacity (flow conservation on the pair).
pub fn cut_capacity(net: &FlowNetwork, side: &[bool]) -> u64 {
    let mut cap = 0u64;
    for ai in (0..net.arcs.len()).step_by(2) {
        let to = net.arcs[ai].to as usize;
        let from = net.arcs[ai + 1].to as usize;
        if side[from] && !side[to] {
            // original capacity = remaining forward + accumulated twin
            cap += net.arcs[ai].cap + net.arcs[ai + 1].cap;
        }
    }
    cap
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contribution::ContributionGraph;
    use crate::maxflow;
    use bartercast_util::units::{Bytes, PeerId};

    fn p(i: u32) -> PeerId {
        PeerId(i)
    }

    #[test]
    fn mincut_equals_maxflow_clrs() {
        let mut g = ContributionGraph::new();
        for (f, t, c) in [
            (0, 1, 16),
            (0, 2, 13),
            (1, 2, 10),
            (2, 1, 4),
            (1, 3, 12),
            (3, 2, 9),
            (2, 4, 14),
            (4, 3, 7),
            (3, 5, 20),
            (4, 5, 4),
        ] {
            g.add_transfer(p(f), p(t), Bytes(c));
        }
        let mut net = FlowNetwork::from_graph(&g);
        let s = net.node(p(0)).unwrap();
        let t = net.node(p(5)).unwrap();
        let flow = maxflow::dinic(&mut net, s, t);
        let side = source_side(&net, s);
        assert!(side[s as usize]);
        assert!(!side[t as usize]);
        assert_eq!(cut_capacity(&net, &side), flow);
        assert_eq!(flow, 23);
    }

    #[test]
    fn every_backend_produces_a_certified_cut() {
        // cross-backend min-cut certificate: for each maxflow backend,
        // the cut read off the residual network must separate s from t
        // and its capacity must equal the returned flow value
        let mut g = ContributionGraph::new();
        for (f, t, c) in [
            (0, 1, 16),
            (0, 2, 13),
            (1, 2, 10),
            (2, 1, 4),
            (1, 3, 12),
            (3, 2, 9),
            (2, 4, 14),
            (4, 3, 7),
            (3, 5, 20),
            (4, 5, 4),
        ] {
            g.add_transfer(p(f), p(t), Bytes(c));
        }
        let mut net = FlowNetwork::from_graph(&g);
        let s = net.node(p(0)).unwrap();
        let t = net.node(p(5)).unwrap();
        type Backend = (&'static str, fn(&mut FlowNetwork, u32, u32) -> u64);
        let backends: [Backend; 5] = [
            ("ford_fulkerson", maxflow::ford_fulkerson),
            ("edmonds_karp", maxflow::edmonds_karp),
            ("dinic", maxflow::dinic),
            ("push_relabel", maxflow::push_relabel),
            ("bounded_full", |n, s, t| maxflow::bounded(n, s, t, 100)),
        ];
        for (name, run) in backends {
            net.reset();
            let flow = run(&mut net, s, t);
            assert_eq!(flow, 23, "{name} flow value");
            // sink-side certificate: valid for flows and preflows alike
            let side = sink_side_complement(&net, t);
            assert!(side[s as usize], "{name}: s must be on the S side");
            assert!(!side[t as usize], "{name}: t must be cut off");
            assert_eq!(cut_capacity(&net, &side), flow, "{name} sink-side cut");
            if name != "push_relabel" {
                // source-side certificate needs a genuine flow (no
                // trapped excess), which augmenting backends guarantee
                let side = source_side(&net, s);
                assert!(side[s as usize] && !side[t as usize], "{name} separation");
                assert_eq!(cut_capacity(&net, &side), flow, "{name} source-side cut");
            }
        }
    }

    #[test]
    fn disconnected_target_gives_zero_cut() {
        let mut g = ContributionGraph::new();
        g.add_transfer(p(0), p(1), Bytes(5));
        g.add_transfer(p(2), p(3), Bytes(5));
        let mut net = FlowNetwork::from_graph(&g);
        let s = net.node(p(0)).unwrap();
        let t = net.node(p(3)).unwrap();
        let flow = maxflow::dinic(&mut net, s, t);
        assert_eq!(flow, 0);
        let side = source_side(&net, s);
        assert_eq!(cut_capacity(&net, &side), 0);
    }
}

//! Contribution-graph analytics.
//!
//! §3.2 justifies the deployed two-hop path bound with a measurement:
//! "98% of peer pairs either exchanged data directly or exchanged data
//! with a common third party". [`two_hop_coverage`] computes exactly
//! that statistic for any contribution graph, so simulations can check
//! whether their gossip layer reproduces the small-world premise. The
//! module also provides degree statistics and a Graphviz DOT export
//! for debugging subjective graphs.

use crate::contribution::ContributionGraph;
use bartercast_util::units::PeerId;
use bartercast_util::{FxHashMap, FxHashSet};
use std::fmt::Write as _;

/// Summary statistics of a contribution graph.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of directed edges.
    pub edges: usize,
    /// Directed density `edges / (n · (n − 1))`.
    pub density: f64,
    /// Mean out-degree.
    pub mean_out_degree: f64,
    /// Maximum out-degree.
    pub max_out_degree: usize,
}

/// Compute [`GraphStats`].
pub fn stats(graph: &ContributionGraph) -> GraphStats {
    let nodes: Vec<PeerId> = graph.nodes().into_iter().collect();
    let n = nodes.len();
    let edges = graph.edge_count();
    let mut max_out = 0usize;
    for &v in &nodes {
        max_out = max_out.max(graph.out_edges(v).count());
    }
    GraphStats {
        nodes: n,
        edges,
        density: if n > 1 {
            edges as f64 / (n as f64 * (n as f64 - 1.0))
        } else {
            0.0
        },
        mean_out_degree: if n > 0 { edges as f64 / n as f64 } else { 0.0 },
        max_out_degree: max_out,
    }
}

/// The §3.2 small-world statistic: the fraction of *ordered* node
/// pairs `(u, v)`, `u ≠ v`, connected by a directed path of at most
/// two edges (`u → v` or `u → k → v`).
///
/// The paper reports ≈ 0.98 for real file-sharing workloads (counting
/// undirected "exchanged data" relations; for a graph built from
/// bidirectional exchanges the directed and undirected statistics
/// coincide).
///
/// ```
/// use bartercast_graph::analysis::two_hop_coverage;
/// use bartercast_graph::ContributionGraph;
/// use bartercast_util::units::{Bytes, PeerId};
///
/// let mut g = ContributionGraph::new();
/// g.add_transfer(PeerId(0), PeerId(1), Bytes::from_mb(1));
/// g.add_transfer(PeerId(1), PeerId(2), Bytes::from_mb(1));
/// // 0->1, 1->2 and the two-hop 0->2: 3 of 6 ordered pairs
/// assert!((two_hop_coverage(&g) - 0.5).abs() < 1e-12);
/// ```
pub fn two_hop_coverage(graph: &ContributionGraph) -> f64 {
    let nodes: Vec<PeerId> = graph.nodes().into_iter().collect();
    let n = nodes.len();
    if n < 2 {
        return 1.0;
    }
    // successor sets
    let succ: FxHashMap<PeerId, FxHashSet<PeerId>> = nodes
        .iter()
        .map(|&u| (u, graph.out_edges(u).map(|(v, _)| v).collect()))
        .collect();
    let mut reached_pairs = 0usize;
    for &u in &nodes {
        let mut reach: FxHashSet<PeerId> = FxHashSet::default();
        if let Some(direct) = succ.get(&u) {
            for &v in direct {
                reach.insert(v);
                if let Some(second) = succ.get(&v) {
                    reach.extend(second.iter().copied());
                }
            }
        }
        reach.remove(&u);
        reached_pairs += reach.len();
    }
    reached_pairs as f64 / (n * (n - 1)) as f64
}

/// Render the graph in Graphviz DOT format, edge labels in MB.
pub fn to_dot(graph: &ContributionGraph) -> String {
    let mut out = String::from("digraph contributions {\n");
    let mut edges: Vec<_> = graph.edges().collect();
    edges.sort_by_key(|&(f, t, _)| (f, t));
    for (f, t, b) in edges {
        let _ = writeln!(out, "  \"{f}\" -> \"{t}\" [label=\"{:.0} MB\"];", b.as_mb());
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bartercast_util::units::Bytes;

    fn p(i: u32) -> PeerId {
        PeerId(i)
    }

    #[test]
    fn stats_of_triangle() {
        let mut g = ContributionGraph::new();
        g.add_transfer(p(0), p(1), Bytes::from_mb(1));
        g.add_transfer(p(1), p(2), Bytes::from_mb(1));
        g.add_transfer(p(2), p(0), Bytes::from_mb(1));
        let s = stats(&g);
        assert_eq!(s.nodes, 3);
        assert_eq!(s.edges, 3);
        assert!((s.density - 0.5).abs() < 1e-12);
        assert!((s.mean_out_degree - 1.0).abs() < 1e-12);
        assert_eq!(s.max_out_degree, 1);
    }

    #[test]
    fn two_hop_coverage_of_directed_triangle() {
        // 0 -> 1 -> 2 -> 0: every ordered pair reachable within 2 hops
        let mut g = ContributionGraph::new();
        g.add_transfer(p(0), p(1), Bytes::from_mb(1));
        g.add_transfer(p(1), p(2), Bytes::from_mb(1));
        g.add_transfer(p(2), p(0), Bytes::from_mb(1));
        assert!((two_hop_coverage(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn two_hop_coverage_of_long_chain() {
        // 0 -> 1 -> 2 -> 3: pairs (0,1),(0,2),(1,2),(1,3),(2,3) of 12
        let mut g = ContributionGraph::new();
        g.add_transfer(p(0), p(1), Bytes::from_mb(1));
        g.add_transfer(p(1), p(2), Bytes::from_mb(1));
        g.add_transfer(p(2), p(3), Bytes::from_mb(1));
        assert!((two_hop_coverage(&g) - 5.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn coverage_of_hub_star_is_high() {
        // star through a hub: i -> hub -> j covers all ordered pairs
        // among the spokes
        let mut g = ContributionGraph::new();
        for i in 1..=10 {
            g.add_transfer(p(i), p(0), Bytes::from_mb(1));
            g.add_transfer(p(0), p(i), Bytes::from_mb(1));
        }
        assert!((two_hop_coverage(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_singleton() {
        let g = ContributionGraph::new();
        assert_eq!(two_hop_coverage(&g), 1.0);
        assert_eq!(stats(&g).nodes, 0);
    }

    #[test]
    fn dot_export_contains_edges() {
        let mut g = ContributionGraph::new();
        g.add_transfer(p(0), p(1), Bytes::from_mb(5));
        let dot = to_dot(&g);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("\"p0\" -> \"p1\""));
        assert!(dot.contains("5 MB"));
    }
}

//! Layered-DAG bounded-k maxflow kernel: single-source all-targets
//! path-bounded flows for **any** finite hop bound.
//!
//! [`crate::ssat`] handles the deployed `k ≤ 2` bound with a closed
//! form, but for `3 ≤ k < ∞` the engine used to fall back to per-pair
//! evaluation — one full residual-network reset plus an augmentation
//! loop over the *whole* graph per `(s, t)` pair. This module
//! generalizes the sharing idea: unroll the contribution graph from an
//! evaluator into a **layered DAG** of at most `k` levels (one BFS +
//! level assignment per source), then answer every target from that
//! pruned structure.
//!
//! # Why pruning is exact
//!
//! For `k ≥ 3` the bounded flow value is *augmentation-order
//! dependent* (unlike `k ≤ 2`, saturating one short path can block a
//! different short path elsewhere), so an exact kernel cannot choose
//! its own paths — it must reproduce [`crate::maxflow::bounded`]'s
//! augmentation sequence verbatim. What it *can* do is drop arcs that
//! sequence provably never looks at:
//!
//! * `bounded` augments along **shortest** residual paths (BFS, first
//!   arrival at `t` wins). By the Edmonds–Karp monotonicity lemma,
//!   residual distances from `s` never decrease across augmentations,
//!   so every node the search visits at depth `d` satisfies
//!   `dist_G(s, v) ≤ d ≤ k` in the *original* graph.
//! * Therefore only forward arcs whose tail lies within the
//!   `(k − 1)`-ball of `s` are ever scanned with positive capacity,
//!   and only their residual twins ever carry flow. Every other arc —
//!   and every node outside the `k`-ball — is invisible for the whole
//!   run, for **every** target.
//!
//! Keeping exactly those arcs, **in their original relative order**
//! (each node's adjacency list is a subsequence of the full network's),
//! makes running the identical procedure on the pruned subnetwork
//! bit-identical to running it on the full graph — the differential
//! suite in `tests/boundedk_differential.rs` pins this for every
//! tested `k`.
//!
//! # What the sharing buys
//!
//! Per evaluator the full-network per-pair path pays
//! `O(E)` reset + `O(V)` scratch per target, `2(n − 1)` times. The
//! kernel pays one ball BFS, then per target a reset + augmentation
//! loop over only the layered DAG (`|B_k|` nodes), and memoizes each
//! `(source, target)` value per graph version — so a full Equation-2
//! system sweep computes every ordered pair at most once, sharing
//! layered DAGs across evaluators for the `toward` direction.
//! `BENCH_boundedk.json` quantifies the speedup.

use crate::contribution::ContributionGraph;
use crate::maxflow;
use crate::network::FlowNetwork;
use bartercast_util::units::{Bytes, PeerId};
use bartercast_util::FxHashMap;
use std::collections::hash_map::Entry;
use std::collections::VecDeque;

/// The unrolled `≤ k`-level view of the graph from one source: the
/// subnetwork induced by forward arcs whose tail is within `k − 1`
/// hops of the source, with arc order preserved, plus the BFS level of
/// every retained node.
///
/// Running [`crate::maxflow::bounded`] on this structure is
/// bit-identical to running it on the full network (see the module
/// docs), and per-target flow values are memoized so each target is
/// augmented at most once per graph version.
#[derive(Debug, Clone)]
pub struct LayeredDag {
    k: usize,
    net: FlowNetwork,
    /// Dense index of the source in `net`, when the source has any
    /// outgoing arc at all (otherwise every flow is trivially zero).
    source: Option<u32>,
    /// BFS level (hop distance from the source) per dense node index.
    levels: Vec<u32>,
    /// Memoized `target index → flow` values.
    memo: FxHashMap<u32, u64>,
}

impl LayeredDag {
    /// Unroll `full` from `source` to depth `k`: BFS over forward
    /// arcs, keeping every arc whose tail sits on a level `≤ k − 1`.
    /// Kept arcs are re-added **sorted by their global arc index**, so
    /// each node's adjacency in the subnetwork is a subsequence of its
    /// adjacency in `full` — the property the exactness argument
    /// needs.
    pub fn unroll(full: &FlowNetwork, source: PeerId, k: usize) -> LayeredDag {
        let n = full.node_count();
        let radius = k.min(n); // hop distances never exceed n − 1
        let mut kept: Vec<u32> = Vec::new();
        let mut dist = vec![u32::MAX; n];
        if let Some(s) = full.node(source) {
            if radius > 0 {
                dist[s as usize] = 0;
                let mut q = VecDeque::from([s]);
                while let Some(u) = q.pop_front() {
                    if dist[u as usize] as usize >= radius {
                        continue;
                    }
                    for &ai in full.arcs_of(u) {
                        if ai % 2 != 0 {
                            continue; // residual twin: not a graph edge
                        }
                        kept.push(ai);
                        let v = full.arcs[ai as usize].to as usize;
                        if dist[v] == u32::MAX {
                            dist[v] = dist[u as usize] + 1;
                            q.push_back(v as u32);
                        }
                    }
                }
            }
        }
        kept.sort_unstable();
        let net = FlowNetwork::build(kept.iter().map(|&ai| {
            let tail = full.arcs[(ai ^ 1) as usize].to;
            let head = full.arcs[ai as usize].to;
            (
                full.peer(tail),
                full.peer(head),
                Bytes(full.original_cap(ai)),
            )
        }));
        let levels = (0..net.node_count())
            .map(|i| {
                let fi = full.node(net.peer(i as u32)).expect("node came from full");
                dist[fi as usize]
            })
            .collect();
        LayeredDag {
            k,
            source: net.node(source),
            levels,
            net,
            memo: FxHashMap::default(),
        }
    }

    /// The hop bound this DAG was unrolled for.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Nodes retained in the layered DAG (the source's `k`-ball).
    pub fn node_count(&self) -> usize {
        self.net.node_count()
    }

    /// Forward arcs retained in the layered DAG.
    pub fn arc_count(&self) -> usize {
        self.net.arc_count()
    }

    /// BFS level of `node` within the DAG, if retained.
    pub fn level(&self, node: PeerId) -> Option<u32> {
        self.net.node(node).map(|i| self.levels[i as usize])
    }

    /// Bounded flow from the DAG's source to `target`, bit-identical
    /// to [`crate::maxflow::bounded`] on the full network. Memoized
    /// per target.
    pub fn flow_to(&mut self, target: PeerId) -> Bytes {
        let (Some(s), Some(t)) = (self.source, self.net.node(target)) else {
            return Bytes::ZERO;
        };
        if s == t {
            return Bytes::ZERO;
        }
        if let Some(&f) = self.memo.get(&t) {
            return Bytes(f);
        }
        self.net.reset();
        let f = maxflow::bounded(&mut self.net, s, t, self.k);
        self.memo.insert(t, f);
        Bytes(f)
    }

    /// Bounded flow from the source to **every** retained node, one
    /// augmentation loop per not-yet-memoized target. Zero-flow
    /// targets are omitted.
    pub fn sweep(&mut self) -> FxHashMap<PeerId, Bytes> {
        let mut out = FxHashMap::default();
        for i in 0..self.net.node_count() as u32 {
            if Some(i) == self.source {
                continue;
            }
            let peer = self.net.peer(i);
            let f = self.flow_to(peer);
            if f > Bytes::ZERO {
                out.insert(peer, f);
            }
        }
        out
    }
}

/// The shared-traversal bounded-k kernel: per-source [`LayeredDag`]s
/// and per-pair flow values cached against the graph version, so a
/// burst of queries (or a whole Equation-2 system sweep) against an
/// unchanged graph unrolls each source once and augments each ordered
/// pair once.
#[derive(Debug, Clone)]
pub struct BoundedKKernel {
    k: usize,
    state: Option<KernelState>,
}

#[derive(Debug, Clone)]
struct KernelState {
    version: u64,
    full: FlowNetwork,
    dags: FxHashMap<PeerId, LayeredDag>,
}

impl BoundedKKernel {
    /// A kernel evaluating `Method::Bounded(k)` flows.
    pub fn new(k: usize) -> Self {
        BoundedKKernel { k, state: None }
    }

    /// The hop bound this kernel evaluates.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of layered DAGs currently cached (diagnostics: lets
    /// tests assert sources are unrolled once per graph version).
    pub fn cached_dags(&self) -> usize {
        self.state.as_ref().map_or(0, |s| s.dags.len())
    }

    fn state_at(&mut self, graph: &ContributionGraph) -> &mut KernelState {
        let version = graph.version();
        if self.state.as_ref().map(|s| s.version) != Some(version) {
            self.state = Some(KernelState {
                version,
                full: FlowNetwork::from_graph(graph),
                dags: FxHashMap::default(),
            });
        }
        self.state.as_mut().expect("state built above")
    }

    /// Bounded flow `s → t`, bit-identical to
    /// `maxflow::compute(graph, s, t, Method::Bounded(k))`.
    pub fn flow(&mut self, graph: &ContributionGraph, s: PeerId, t: PeerId) -> Bytes {
        if s == t || self.k == 0 {
            return Bytes::ZERO;
        }
        let k = self.k;
        let KernelState { full, dags, .. } = self.state_at(graph);
        dags.entry(s)
            .or_insert_with(|| LayeredDag::unroll(full, s, k))
            .flow_to(t)
    }

    /// Bounded flow from `source` to every reachable peer (the `away`
    /// side of Equation 1): one layered DAG shared by all targets.
    /// Absent peers have zero flow.
    pub fn flows_from(
        &mut self,
        graph: &ContributionGraph,
        source: PeerId,
    ) -> FxHashMap<PeerId, Bytes> {
        if self.k == 0 {
            return FxHashMap::default();
        }
        let k = self.k;
        let KernelState { full, dags, .. } = self.state_at(graph);
        dags.entry(source)
            .or_insert_with(|| LayeredDag::unroll(full, source, k))
            .sweep()
    }

    /// Bounded flow **into** `target` from every peer that can reach
    /// it (the `toward` side of Equation 1). The candidate set is the
    /// reverse `k`-ball of `target`; each candidate's flow is computed
    /// on *its own* layered DAG — running the procedure from the
    /// candidate, exactly as the per-pair evaluation would — so the
    /// values stay bit-identical, and the DAGs are shared with every
    /// other query against this graph version.
    pub fn flows_into(
        &mut self,
        graph: &ContributionGraph,
        target: PeerId,
    ) -> FxHashMap<PeerId, Bytes> {
        if self.k == 0 {
            return FxHashMap::default();
        }
        let k = self.k;
        let KernelState { full, dags, .. } = self.state_at(graph);
        let mut out = FxHashMap::default();
        let Some(t) = full.node(target) else {
            return out;
        };
        // reverse BFS to depth k over residual twins (each twin in a
        // node's adjacency points at an in-neighbour)
        let n = full.node_count();
        let radius = k.min(n);
        let mut dist = vec![u32::MAX; n];
        dist[t as usize] = 0;
        let mut q = VecDeque::from([t]);
        let mut sources: Vec<PeerId> = Vec::new();
        while let Some(u) = q.pop_front() {
            if dist[u as usize] as usize >= radius {
                continue;
            }
            for &ai in full.arcs_of(u) {
                if ai % 2 == 0 {
                    continue; // forward arc: wrong direction
                }
                let v = full.arcs[ai as usize].to as usize;
                if dist[v] == u32::MAX {
                    dist[v] = dist[u as usize] + 1;
                    sources.push(full.peer(v as u32));
                    q.push_back(v as u32);
                }
            }
        }
        for j in sources {
            let f = dags
                .entry(j)
                .or_insert_with(|| LayeredDag::unroll(full, j, k))
                .flow_to(target);
            if f > Bytes::ZERO {
                out.insert(j, f);
            }
        }
        out
    }
}

/// Scheduling cost estimate for one evaluator's bounded-`k` sweep: the
/// number of arcs in its forward and reverse layered DAGs (arcs whose
/// tail/head lies within `k − 1` hops of the evaluator). This is the
/// work the kernel actually performs, unlike the raw edge count of the
/// whole subjective graph — `sim::sweep` uses it to order its
/// work-stealing task list.
pub fn layered_dag_cost(graph: &ContributionGraph, evaluator: PeerId, k: usize) -> usize {
    ball_arcs(evaluator, k, |u| graph.out_edges(u).map(|(v, _)| v))
        + ball_arcs(evaluator, k, |u| graph.in_edges(u).map(|(v, _)| v))
}

/// Arcs scanned by a depth-`k` layered BFS from `source` following
/// `neighbours`: every edge out of a node on a level `≤ k − 1`.
fn ball_arcs<F, I>(source: PeerId, k: usize, neighbours: F) -> usize
where
    F: Fn(PeerId) -> I,
    I: Iterator<Item = PeerId>,
{
    if k == 0 {
        return 0;
    }
    let mut dist: FxHashMap<PeerId, usize> = FxHashMap::default();
    dist.insert(source, 0);
    let mut q = VecDeque::from([source]);
    let mut arcs = 0usize;
    while let Some(u) = q.pop_front() {
        let du = dist[&u];
        if du >= k {
            continue;
        }
        for v in neighbours(u) {
            arcs += 1;
            if let Entry::Vacant(e) = dist.entry(v) {
                e.insert(du + 1);
                q.push_back(v);
            }
        }
    }
    arcs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maxflow::{compute, Method};

    fn p(i: u32) -> PeerId {
        PeerId(i)
    }

    /// Order-dependence witness: at k = 3 the bounded value depends on
    /// which augmenting path BFS commits to first, so the kernel must
    /// reproduce the exact sequence — this graph is the counterexample
    /// that rules out "any blocking flow" implementations.
    fn order_sensitive() -> ContributionGraph {
        let mut g = ContributionGraph::new();
        for (f, t) in [(0, 1), (0, 2), (1, 3), (2, 3), (2, 4), (3, 5), (4, 5)] {
            g.add_transfer(p(f), p(t), Bytes(1));
        }
        g
    }

    #[test]
    fn kernel_reproduces_order_sensitive_value() {
        let g = order_sensitive();
        let mut kernel = BoundedKKernel::new(3);
        assert_eq!(
            kernel.flow(&g, p(0), p(5)),
            compute(&g, p(0), p(5), Method::Bounded(3))
        );
    }

    #[test]
    fn dag_prunes_beyond_k_hops() {
        // 0 -> 1 -> 2 -> 3 -> 4: the 2-level DAG from 0 stops at node 2
        let mut g = ContributionGraph::new();
        for i in 0..4 {
            g.add_transfer(p(i), p(i + 1), Bytes(10));
        }
        let full = FlowNetwork::from_graph(&g);
        let dag = LayeredDag::unroll(&full, p(0), 2);
        assert_eq!(dag.node_count(), 3);
        assert_eq!(dag.arc_count(), 2);
        assert_eq!(dag.level(p(0)), Some(0));
        assert_eq!(dag.level(p(2)), Some(2));
        assert_eq!(dag.level(p(3)), None);
    }

    #[test]
    fn sweep_and_point_agree() {
        let g = order_sensitive();
        let mut kernel = BoundedKKernel::new(4);
        let away = kernel.flows_from(&g, p(0));
        for i in 1..=5 {
            assert_eq!(
                away.get(&p(i)).copied().unwrap_or(Bytes::ZERO),
                kernel.flow(&g, p(0), p(i)),
                "target {i}"
            );
        }
        let toward = kernel.flows_into(&g, p(5));
        for i in 0..5 {
            assert_eq!(
                toward.get(&p(i)).copied().unwrap_or(Bytes::ZERO),
                kernel.flow(&g, p(i), p(5)),
                "source {i}"
            );
        }
    }

    #[test]
    fn dags_cached_per_version() {
        let mut g = order_sensitive();
        let mut kernel = BoundedKKernel::new(3);
        kernel.flows_from(&g, p(0));
        kernel.flow(&g, p(0), p(5));
        assert_eq!(kernel.cached_dags(), 1, "same source reuses its DAG");
        kernel.flows_into(&g, p(5));
        assert!(kernel.cached_dags() > 1, "toward sweep adds source DAGs");
        g.add_transfer(p(0), p(5), Bytes(7));
        kernel.flow(&g, p(0), p(5));
        assert_eq!(kernel.cached_dags(), 1, "mutation drops stale DAGs");
    }

    #[test]
    fn zero_and_missing_cases() {
        let g = order_sensitive();
        let mut kernel = BoundedKKernel::new(0);
        assert_eq!(kernel.flow(&g, p(0), p(5)), Bytes::ZERO);
        assert!(kernel.flows_from(&g, p(0)).is_empty());
        let mut kernel = BoundedKKernel::new(3);
        assert_eq!(kernel.flow(&g, p(0), p(0)), Bytes::ZERO);
        assert_eq!(kernel.flow(&g, p(99), p(5)), Bytes::ZERO);
        assert!(kernel.flows_from(&g, p(99)).is_empty());
        assert!(kernel.flows_into(&g, p(99)).is_empty());
    }

    #[test]
    fn layered_cost_matches_local_structure() {
        // star: evaluator 0 connected to 1..=4, plus a distant clique
        let mut g = ContributionGraph::new();
        for i in 1..=4 {
            g.add_transfer(p(0), p(i), Bytes(1));
        }
        for f in 10..20u32 {
            for t in 10..20u32 {
                if f != t {
                    g.add_transfer(p(f), p(t), Bytes(1));
                }
            }
        }
        let local = layered_dag_cost(&g, p(0), 3);
        assert_eq!(local, 4, "distant clique must not inflate the cost");
        assert!(layered_dag_cost(&g, p(10), 3) > local);
        assert_eq!(layered_dag_cost(&g, p(0), 0), 0);
    }
}

//! Gomory–Hu cut tree for all-pairs unbounded maxflow.
//!
//! The paper's baseline comparisons (§3.2, Fig. 4) need *unbounded*
//! maxflow between every peer pair, which the per-pair machinery pays
//! for with one full Dinic run per `(evaluator, target)` query — `n²`
//! runs for an Equation-2 sweep. A Gomory–Hu tree collapses that to
//! **n − 1** maxflow computations total: on an undirected graph there
//! are at most `n − 1` distinct flow values, and they can be arranged
//! as a weighted tree in which
//!
//! ```text
//! flow(s, t) = min edge weight on the tree path s → … → t
//! ```
//!
//! Construction uses Gusfield's simplification (no node contraction:
//! every maxflow runs on the original graph), and queries use binary
//! lifting over the rooted tree — `O(log n)` per [`GomoryHuTree::flow`]
//! and `O(n)` for a whole [`GomoryHuTree::all_flows_from`] sweep.
//!
//! **Directionality.** Gomory–Hu trees only exist for undirected
//! graphs (directed flow values are not tree-representable: there can
//! be `n(n−1)` distinct ones). The contribution graph is directed, so
//! the tree is built over its **min-symmetrization**
//! ([`ContributionGraph::symmetrized`]): each unordered pair keeps
//! `min(c(i, j), c(j, i))` in both directions. Any flow on that graph
//! can be oriented into a feasible flow of the directed graph, so
//!
//! * tree flow values are a **lower bound** on the directed maxflow in
//!   *both* directions — `flow_tree(s, t) ≤ min(dir(s → t), dir(t → s))`;
//! * on a symmetric graph (`c(i, j) = c(j, i)` everywhere) the bound is
//!   **exact**: the tree reproduces per-pair Dinic / Edmonds–Karp /
//!   push–relabel values bit-for-bit (pinned by the differential
//!   property suite in `tests/differential.rs`).
//!
//! How much the bound loses is exactly the weight min-symmetrization
//! discards, measured by [`ContributionGraph::asymmetry`];
//! `ReputationEngine` uses that measure to decide when the tree is an
//! acceptable batch backend and when to fall back to exact per-pair
//! flow.

use crate::contribution::ContributionGraph;
use crate::maxflow;
use crate::mincut;
use crate::network::FlowNetwork;
use bartercast_util::units::{Bytes, PeerId};
use bartercast_util::FxHashMap;

/// An all-pairs flow oracle over the min-symmetrized contribution
/// graph: `n − 1` Dinic runs at build time, `O(log n)` per pair query,
/// `O(n)` per single-source sweep.
///
/// ```
/// use bartercast_graph::gomoryhu::GomoryHuTree;
/// use bartercast_graph::{compute, ContributionGraph, Method};
/// use bartercast_util::units::{Bytes, PeerId};
///
/// // a symmetric diamond: 0 = 1 = 3, 0 = 2 = 3
/// let mut g = ContributionGraph::new();
/// for (a, b, w) in [(0, 1, 10), (1, 3, 5), (0, 2, 8), (2, 3, 8)] {
///     g.add_transfer(PeerId(a), PeerId(b), Bytes(w));
///     g.add_transfer(PeerId(b), PeerId(a), Bytes(w));
/// }
/// let tree = GomoryHuTree::build(&g);
/// let exact = compute(&g, PeerId(0), PeerId(3), Method::Dinic);
/// assert_eq!(tree.flow(PeerId(0), PeerId(3)), exact);
/// ```
#[derive(Debug, Clone)]
pub struct GomoryHuTree {
    /// Graph version this tree was built at (for cache invalidation).
    version: u64,
    /// Tree node order: sorted peer ids, so construction is
    /// deterministic regardless of hash-map iteration order.
    ids: Vec<PeerId>,
    index: FxHashMap<PeerId, u32>,
    /// Gusfield parent pointers; node 0 is the root (`parent[0] = 0`).
    parent: Vec<u32>,
    /// Weight of the edge to the parent (`parent_w[0]` unused).
    parent_w: Vec<u64>,
    /// Undirected tree adjacency for `all_flows_from` sweeps.
    adj: Vec<Vec<(u32, u64)>>,
    /// Binary-lifting tables: `up[k][v]` is `v`'s 2^k-th ancestor and
    /// `up_min[k][v]` the minimum edge weight on that path segment.
    up: Vec<Vec<u32>>,
    up_min: Vec<Vec<u64>>,
    depth: Vec<u32>,
}

impl GomoryHuTree {
    /// Build the tree for the current state of `graph` (internally
    /// min-symmetrized first): `n − 1` Dinic runs via Gusfield's
    /// algorithm, then `O(n log n)` lifting tables.
    pub fn build(graph: &ContributionGraph) -> Self {
        let mut ids: Vec<PeerId> = graph.nodes().into_iter().collect();
        ids.sort_unstable();
        let index: FxHashMap<PeerId, u32> = ids
            .iter()
            .enumerate()
            .map(|(i, &id)| (id, i as u32))
            .collect();
        let n = ids.len();
        let mut parent = vec![0u32; n];
        let mut parent_w = vec![0u64; n];

        let sym = graph.symmetrized();
        let mut net = FlowNetwork::from_graph(&sym);

        // Gusfield: split node i off from its current parent with one
        // min cut; nodes of i's cut side that hang off the same parent
        // re-home under i.
        for i in 1..n {
            let p = parent[i] as usize;
            let si = net.node(ids[i]);
            let ti = net.node(ids[p]);
            let flow = match (si, ti) {
                (Some(s), Some(t)) => {
                    net.reset();
                    maxflow::dinic(&mut net, s, t)
                }
                _ => 0,
            };
            parent_w[i] = flow;
            // cut side containing i, as dense network indices; a node
            // absent from the symmetrized network is alone on its side
            let side = match si {
                Some(s) => {
                    if ti.is_none() {
                        net.reset();
                    }
                    mincut::source_side(&net, s)
                }
                None => Vec::new(),
            };
            for j in (i + 1)..n {
                if parent[j] as usize == p {
                    if let Some(dj) = net.node(ids[j]) {
                        if side.get(dj as usize).copied().unwrap_or(false) {
                            parent[j] = i as u32;
                        }
                    }
                }
            }
        }

        let mut adj: Vec<Vec<(u32, u64)>> = vec![Vec::new(); n];
        for i in 1..n {
            adj[i].push((parent[i], parent_w[i]));
            adj[parent[i] as usize].push((i as u32, parent_w[i]));
        }

        // Root the tree at 0 and build the lifting tables. The
        // Gusfield parent pointers already form a tree rooted at 0
        // (parent[i] < i), so depths come from a single pass in order.
        let mut depth = vec![0u32; n];
        for i in 1..n {
            depth[i] = depth[parent[i] as usize] + 1;
        }
        let levels = if n <= 1 {
            1
        } else {
            (usize::BITS - (n - 1).leading_zeros()) as usize
        };
        let mut up = vec![vec![0u32; n]; levels];
        let mut up_min = vec![vec![u64::MAX; n]; levels];
        if n > 0 {
            up[0].copy_from_slice(&parent);
            up_min[0][1..n].copy_from_slice(&parent_w[1..n]);
            // the root lifts to itself over an infinitely strong edge
            up_min[0][0] = u64::MAX;
            for k in 1..levels {
                for v in 0..n {
                    let mid = up[k - 1][v];
                    up[k][v] = up[k - 1][mid as usize];
                    up_min[k][v] = up_min[k - 1][v].min(up_min[k - 1][mid as usize]);
                }
            }
        }

        GomoryHuTree {
            version: graph.version(),
            ids,
            index,
            parent,
            parent_w,
            adj,
            up,
            up_min,
            depth,
        }
    }

    /// The graph version this tree reflects.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of peers in the tree (every node of the source graph,
    /// including ones isolated by symmetrization).
    pub fn node_count(&self) -> usize {
        self.ids.len()
    }

    /// Minimum edge weight on the tree path between two dense indices
    /// (binary lifting; `O(log n)`).
    fn min_on_path(&self, mut a: u32, mut b: u32) -> u64 {
        let mut best = u64::MAX;
        if self.depth[a as usize] < self.depth[b as usize] {
            std::mem::swap(&mut a, &mut b);
        }
        let mut diff = self.depth[a as usize] - self.depth[b as usize];
        let mut k = 0;
        while diff > 0 {
            if diff & 1 == 1 {
                best = best.min(self.up_min[k][a as usize]);
                a = self.up[k][a as usize];
            }
            diff >>= 1;
            k += 1;
        }
        if a == b {
            return best;
        }
        for k in (0..self.up.len()).rev() {
            if self.up[k][a as usize] != self.up[k][b as usize] {
                best = best.min(self.up_min[k][a as usize]);
                best = best.min(self.up_min[k][b as usize]);
                a = self.up[k][a as usize];
                b = self.up[k][b as usize];
            }
        }
        best.min(self.up_min[0][a as usize])
            .min(self.up_min[0][b as usize])
    }

    /// Symmetrized maxflow between `s` and `t`: the minimum edge
    /// weight on their tree path. Zero when either peer is unknown or
    /// `s == t`. Symmetric in its arguments, exact on symmetric
    /// graphs, and a lower bound on both directed flows otherwise (see
    /// the module docs).
    pub fn flow(&self, s: PeerId, t: PeerId) -> Bytes {
        if s == t {
            return Bytes::ZERO;
        }
        let (Some(&a), Some(&b)) = (self.index.get(&s), self.index.get(&t)) else {
            return Bytes::ZERO;
        };
        Bytes(self.min_on_path(a, b))
    }

    /// Symmetrized maxflow from `s` to **every** other peer in one
    /// `O(n)` tree sweep: the returned map holds every peer with
    /// nonzero flow (absent peers, including `s` itself, have zero) —
    /// the same shape as the SSAT kernel maps, so callers can swap
    /// between the two batch backends.
    pub fn all_flows_from(&self, s: PeerId) -> FxHashMap<PeerId, Bytes> {
        let mut flows: FxHashMap<PeerId, Bytes> = FxHashMap::default();
        let Some(&root) = self.index.get(&s) else {
            return flows;
        };
        // iterative DFS carrying the running path minimum
        let mut stack: Vec<(u32, u32, u64)> = Vec::with_capacity(self.adj[root as usize].len());
        for &(v, w) in &self.adj[root as usize] {
            stack.push((v, root, w));
        }
        while let Some((v, from, min_w)) = stack.pop() {
            if min_w > 0 {
                flows.insert(self.ids[v as usize], Bytes(min_w));
            }
            for &(next, w) in &self.adj[v as usize] {
                if next != from {
                    stack.push((next, v, min_w.min(w)));
                }
            }
        }
        flows
    }

    /// The tree's edges as `(child, parent, weight)` peer triples
    /// (n − 1 of them; used by tests and diagnostics).
    pub fn parent_edges(&self) -> impl Iterator<Item = (PeerId, PeerId, Bytes)> + '_ {
        (1..self.ids.len()).map(move |i| {
            (
                self.ids[i],
                self.ids[self.parent[i] as usize],
                Bytes(self.parent_w[i]),
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maxflow::{compute, Method};

    fn p(i: u32) -> PeerId {
        PeerId(i)
    }

    /// Add an undirected edge (both directions, equal weight).
    fn undirected(g: &mut ContributionGraph, a: u32, b: u32, w: u64) {
        g.add_transfer(p(a), p(b), Bytes(w));
        g.add_transfer(p(b), p(a), Bytes(w));
    }

    fn sym_diamond() -> ContributionGraph {
        let mut g = ContributionGraph::new();
        undirected(&mut g, 0, 1, 10);
        undirected(&mut g, 1, 3, 5);
        undirected(&mut g, 0, 2, 8);
        undirected(&mut g, 2, 3, 8);
        g
    }

    #[test]
    fn matches_dinic_on_symmetric_diamond() {
        let g = sym_diamond();
        let tree = GomoryHuTree::build(&g);
        for s in 0..4 {
            for t in 0..4 {
                if s == t {
                    continue;
                }
                let exact = compute(&g, p(s), p(t), Method::Dinic);
                assert_eq!(tree.flow(p(s), p(t)), exact, "flow({s}, {t})");
            }
        }
    }

    #[test]
    fn all_flows_match_pair_queries() {
        let g = sym_diamond();
        let tree = GomoryHuTree::build(&g);
        for s in 0..4 {
            let flows = tree.all_flows_from(p(s));
            for t in 0..4 {
                let expect = tree.flow(p(s), p(t));
                let got = flows.get(&p(t)).copied().unwrap_or(Bytes::ZERO);
                assert_eq!(got, expect, "all_flows_from({s})[{t}]");
            }
            assert!(!flows.contains_key(&p(s)), "source never its own target");
        }
    }

    #[test]
    fn lower_bounds_directed_flow_on_asymmetric_graph() {
        // 0 -> 1 strong, 1 -> 0 weak; plus a one-directional edge
        let mut g = ContributionGraph::new();
        g.add_transfer(p(0), p(1), Bytes(100));
        g.add_transfer(p(1), p(0), Bytes(30));
        g.add_transfer(p(1), p(2), Bytes(50));
        let tree = GomoryHuTree::build(&g);
        for (s, t) in [(0, 1), (1, 0), (1, 2), (0, 2)] {
            let tree_f = tree.flow(p(s), p(t));
            let fwd = compute(&g, p(s), p(t), Method::Dinic);
            let bwd = compute(&g, p(t), p(s), Method::Dinic);
            assert!(
                tree_f <= fwd.min(bwd),
                "tree flow {tree_f:?} must lower-bound both directions ({fwd:?}, {bwd:?})"
            );
        }
        assert_eq!(tree.flow(p(0), p(1)), Bytes(30));
        // the 1 -> 2 edge has no reverse direction: symmetrized away
        assert_eq!(tree.flow(p(1), p(2)), Bytes::ZERO);
    }

    #[test]
    fn disconnected_components_have_zero_cross_flow() {
        let mut g = ContributionGraph::new();
        undirected(&mut g, 0, 1, 10);
        undirected(&mut g, 5, 6, 20);
        let tree = GomoryHuTree::build(&g);
        assert_eq!(tree.flow(p(0), p(5)), Bytes::ZERO);
        assert_eq!(tree.flow(p(0), p(1)), Bytes(10));
        assert_eq!(tree.flow(p(5), p(6)), Bytes(20));
        let flows = tree.all_flows_from(p(0));
        assert!(!flows.contains_key(&p(5)));
        assert!(!flows.contains_key(&p(6)));
    }

    #[test]
    fn unknown_peers_and_self_queries_are_zero() {
        let g = sym_diamond();
        let tree = GomoryHuTree::build(&g);
        assert_eq!(tree.flow(p(0), p(0)), Bytes::ZERO);
        assert_eq!(tree.flow(p(0), p(99)), Bytes::ZERO);
        assert_eq!(tree.flow(p(99), p(0)), Bytes::ZERO);
        assert!(tree.all_flows_from(p(99)).is_empty());
    }

    #[test]
    fn empty_and_singleton_graphs() {
        let g = ContributionGraph::new();
        let tree = GomoryHuTree::build(&g);
        assert_eq!(tree.node_count(), 0);
        assert_eq!(tree.flow(p(0), p(1)), Bytes::ZERO);
        assert!(tree.all_flows_from(p(0)).is_empty());
    }

    #[test]
    fn tree_has_n_minus_one_edges_and_records_version() {
        let g = sym_diamond();
        let tree = GomoryHuTree::build(&g);
        assert_eq!(tree.parent_edges().count(), 3);
        assert_eq!(tree.version(), g.version());
    }

    #[test]
    fn flow_is_symmetric_in_arguments() {
        let g = sym_diamond();
        let tree = GomoryHuTree::build(&g);
        for s in 0..4 {
            for t in 0..4 {
                assert_eq!(tree.flow(p(s), p(t)), tree.flow(p(t), p(s)));
            }
        }
    }

    #[test]
    fn deep_path_exercises_lifting() {
        // a long chain: flow(0, k) = min of the chain prefix weights
        let mut g = ContributionGraph::new();
        let weights = [9, 3, 7, 2, 8, 5, 6, 4, 10, 1];
        for (i, &w) in weights.iter().enumerate() {
            undirected(&mut g, i as u32, i as u32 + 1, w);
        }
        let tree = GomoryHuTree::build(&g);
        for t in 1..=weights.len() as u32 {
            let expect = weights[..t as usize].iter().copied().min().unwrap();
            assert_eq!(tree.flow(p(0), p(t)), Bytes(expect), "chain flow 0 -> {t}");
        }
    }
}

//! Gomory–Hu cut tree for all-pairs unbounded maxflow.
//!
//! The paper's baseline comparisons (§3.2, Fig. 4) need *unbounded*
//! maxflow between every peer pair, which the per-pair machinery pays
//! for with one full Dinic run per `(evaluator, target)` query — `n²`
//! runs for an Equation-2 sweep. A Gomory–Hu tree collapses that to
//! **n − 1** maxflow computations total: on an undirected graph there
//! are at most `n − 1` distinct flow values, and they can be arranged
//! as a weighted tree in which
//!
//! ```text
//! flow(s, t) = min edge weight on the tree path s → … → t
//! ```
//!
//! Construction uses Gusfield's simplification (no node contraction:
//! every maxflow runs on the original graph), and queries use binary
//! lifting over the rooted tree — `O(log n)` per [`GomoryHuTree::flow`]
//! and `O(n)` for a whole [`GomoryHuTree::all_flows_from`] sweep.
//!
//! **Directionality.** Gomory–Hu trees only exist for undirected
//! graphs (directed flow values are not tree-representable: there can
//! be `n(n−1)` distinct ones). The contribution graph is directed, so
//! the tree is built over its **min-symmetrization**
//! ([`ContributionGraph::symmetrized`]): each unordered pair keeps
//! `min(c(i, j), c(j, i))` in both directions. Any flow on that graph
//! can be oriented into a feasible flow of the directed graph, so
//!
//! * tree flow values are a **lower bound** on the directed maxflow in
//!   *both* directions — `flow_tree(s, t) ≤ min(dir(s → t), dir(t → s))`;
//! * on a symmetric graph (`c(i, j) = c(j, i)` everywhere) the bound is
//!   **exact**: the tree reproduces per-pair Dinic / Edmonds–Karp /
//!   push–relabel values bit-for-bit (pinned by the differential
//!   property suite in `tests/differential.rs`).
//!
//! How much the bound loses is exactly the weight min-symmetrization
//! discards, measured by [`ContributionGraph::asymmetry`];
//! `ReputationEngine` uses that measure to decide when the tree is an
//! acceptable batch backend and when to fall back to exact per-pair
//! flow.
//!
//! **Incremental maintenance.** Contributions only accumulate, so
//! every edge weight — and therefore every min-symmetrized weight — is
//! monotone non-decreasing across graph versions. That gives each
//! Gusfield step a cheap validity certificate: the step's stored
//! minimum cut stays a minimum cut of unchanged value as long as no
//! changed edge crosses it, and every changed edge has both endpoints
//! in the dirty set, so "all dirty nodes on one side of the stored
//! cut" is a sound sufficient test. [`GomoryHuTree::patch`] replays
//! the construction reusing every step that passes the test and
//! re-running Dinic only for the handful that don't — turning an
//! `n − 1`-maxflow rebuild into an `O(|dirty|)`-maxflow patch when
//! gossip touched a few edges between syncs.

use crate::contribution::ContributionGraph;
use crate::maxflow;
use crate::mincut;
use crate::network::FlowNetwork;
use bartercast_util::units::{Bytes, PeerId};
use bartercast_util::FxHashMap;

/// 64-bit words per stored cut bitset for an `n`-node tree.
fn cut_stride(n: usize) -> usize {
    n.div_ceil(64)
}

#[inline]
fn set_bit(words: &mut [u64], j: usize) {
    words[j / 64] |= 1 << (j % 64);
}

#[inline]
fn get_bit(words: &[u64], j: usize) -> bool {
    words[j / 64] & (1 << (j % 64)) != 0
}

/// Does `cut` put dirty nodes on *both* of its sides? (`dirty` must
/// have no bits set at padding positions, which
/// [`GomoryHuTree::patch_with_limit`] guarantees.)
fn cut_separates_dirty(dirty: &[u64], cut: &[u64]) -> bool {
    let mut inside = 0u64;
    let mut outside = 0u64;
    for (d, c) in dirty.iter().zip(cut) {
        inside |= d & c;
        outside |= d & !c;
    }
    inside != 0 && outside != 0
}

/// An all-pairs flow oracle over the min-symmetrized contribution
/// graph: `n − 1` Dinic runs at build time, `O(log n)` per pair query,
/// `O(n)` per single-source sweep.
///
/// ```
/// use bartercast_graph::gomoryhu::GomoryHuTree;
/// use bartercast_graph::{compute, ContributionGraph, Method};
/// use bartercast_util::units::{Bytes, PeerId};
///
/// // a symmetric diamond: 0 = 1 = 3, 0 = 2 = 3
/// let mut g = ContributionGraph::new();
/// for (a, b, w) in [(0, 1, 10), (1, 3, 5), (0, 2, 8), (2, 3, 8)] {
///     g.add_transfer(PeerId(a), PeerId(b), Bytes(w));
///     g.add_transfer(PeerId(b), PeerId(a), Bytes(w));
/// }
/// let tree = GomoryHuTree::build(&g);
/// let exact = compute(&g, PeerId(0), PeerId(3), Method::Dinic);
/// assert_eq!(tree.flow(PeerId(0), PeerId(3)), exact);
/// ```
#[derive(Debug, Clone)]
pub struct GomoryHuTree {
    /// Graph version this tree was built at (for cache invalidation).
    version: u64,
    /// Tree node order: sorted peer ids, so construction is
    /// deterministic regardless of hash-map iteration order.
    ids: Vec<PeerId>,
    index: FxHashMap<PeerId, u32>,
    /// Gusfield parent pointers; node 0 is the root (`parent[0] = 0`).
    parent: Vec<u32>,
    /// Weight of the edge to the parent (`parent_w[0]` unused).
    parent_w: Vec<u64>,
    /// Per-step cut certificates for incremental maintenance: step
    /// `i`'s source-side min cut as a tree-indexed bitset at
    /// `cut_words[i * stride..(i + 1) * stride]`, with bit `i` always
    /// set (row 0 unused). `n² / 8` bytes total — 128 KiB at
    /// n = 1024 — the price of turning rebuilds into patches.
    cut_words: Vec<u64>,
    /// Words per cut row ([`cut_stride`] of the node count).
    stride: usize,
    /// Undirected tree adjacency for `all_flows_from` sweeps.
    adj: Vec<Vec<(u32, u64)>>,
    /// Binary-lifting tables: `up[k][v]` is `v`'s 2^k-th ancestor and
    /// `up_min[k][v]` the minimum edge weight on that path segment.
    up: Vec<Vec<u32>>,
    up_min: Vec<Vec<u64>>,
    depth: Vec<u32>,
}

impl GomoryHuTree {
    /// Build the tree for the current state of `graph` (internally
    /// min-symmetrized first): `n − 1` Dinic runs via Gusfield's
    /// algorithm, then `O(n log n)` lifting tables.
    pub fn build(graph: &ContributionGraph) -> Self {
        let mut ids: Vec<PeerId> = graph.nodes().into_iter().collect();
        ids.sort_unstable();
        let index: FxHashMap<PeerId, u32> = ids
            .iter()
            .enumerate()
            .map(|(i, &id)| (id, i as u32))
            .collect();
        let n = ids.len();
        let stride = cut_stride(n);
        let mut parent = vec![0u32; n];
        let mut parent_w = vec![0u64; n];
        let mut cut_words = vec![0u64; n * stride];

        let sym = graph.symmetrized();
        let mut net = FlowNetwork::from_graph(&sym);
        // tree index → dense network index (isolated nodes are absent
        // from the symmetrized network)
        let net_of: Vec<Option<u32>> = ids.iter().map(|&id| net.node(id)).collect();
        let mut scratch = maxflow::DinicScratch::new();

        // Gusfield: split node i off from its current parent with one
        // min cut; nodes of i's cut side that hang off the same parent
        // re-home under i. Each step's cut is recorded as a bitset so
        // `patch` can later certify it against a dirty set.
        for i in 1..n {
            let p = parent[i] as usize;
            let flow = match (net_of[i], net_of[p]) {
                (Some(s), Some(t)) => {
                    net.reset();
                    maxflow::dinic_with(&mut net, s, t, &mut scratch)
                }
                _ => 0,
            };
            parent_w[i] = flow;
            let cut = &mut cut_words[i * stride..(i + 1) * stride];
            // cut side containing i; a node absent from the symmetrized
            // network is alone on its side (only bit i set below)
            if let Some(s) = net_of[i] {
                if net_of[p].is_none() {
                    net.reset();
                }
                let side = mincut::source_side(&net, s);
                for (j, d) in net_of.iter().enumerate() {
                    if let Some(dj) = d {
                        if side[*dj as usize] {
                            set_bit(cut, j);
                        }
                    }
                }
            }
            set_bit(cut, i);
            for (j, pj) in parent.iter_mut().enumerate().skip(i + 1) {
                if *pj as usize == p && get_bit(cut, j) {
                    *pj = i as u32;
                }
            }
        }

        Self::assemble(
            graph.version(),
            ids,
            index,
            parent,
            parent_w,
            cut_words,
            stride,
        )
    }

    /// Rebuild only what a few changed edges require: replay the
    /// Gusfield steps, keeping every step whose stored cut no dirty
    /// node crosses (monotone growth keeps it a min cut of unchanged
    /// value — see the module docs) and re-running Dinic for the rest.
    ///
    /// Returns `None` — meaning "do a full [`GomoryHuTree::build`]" —
    /// when the node set changed or the dirty set exceeds an `n / 8`
    /// threshold, past which replaying costs more than rebuilding.
    /// The patched tree answers every [`GomoryHuTree::flow`] /
    /// [`GomoryHuTree::all_flows_from`] query bit-identically to a
    /// from-scratch build (pinned by `tests/incremental_gomoryhu.rs`).
    pub fn patch(&self, graph: &ContributionGraph) -> Option<GomoryHuTree> {
        self.patch_with_limit(graph, (self.ids.len() / 8).max(4))
    }

    /// [`GomoryHuTree::patch`] with an explicit dirty-set ceiling
    /// (exposed so tests can force the patch path on small graphs).
    pub fn patch_with_limit(
        &self,
        graph: &ContributionGraph,
        max_dirty: usize,
    ) -> Option<GomoryHuTree> {
        let n = self.ids.len();
        if graph.node_count() != n {
            return None; // node set grew: tree shape can change arbitrarily
        }
        // Dirty peers → tree indices. A dirty peer this tree has never
        // seen also means the node set changed (nodes are never
        // removed, so with equal counts this is just belt and braces).
        let mut dirty_words = vec![0u64; self.stride];
        let mut dirty = 0usize;
        for id in graph.dirty_nodes_since(self.version) {
            let &ti = self.index.get(&id)?;
            set_bit(&mut dirty_words, ti as usize);
            dirty += 1;
            if dirty > max_dirty {
                return None;
            }
        }
        if dirty == 0 {
            // version moved with no effective edge change
            let mut out = self.clone();
            out.version = graph.version();
            return Some(out);
        }

        let stride = self.stride;
        let sym = graph.symmetrized();
        let mut net = FlowNetwork::from_graph(&sym);
        let net_of: Vec<Option<u32>> = self.ids.iter().map(|&id| net.node(id)).collect();
        let mut scratch = maxflow::DinicScratch::new();

        let mut parent = vec![0u32; n];
        let mut parent_w = vec![0u64; n];
        let mut cut_words = vec![0u64; n * stride];
        for i in 1..n {
            let p = parent[i] as usize;
            let stored = &self.cut_words[i * stride..(i + 1) * stride];
            // The stored certificate transfers iff this step still
            // splits the same pair AND its cut is dirt-free on one
            // side: every changed edge has both endpoints dirty, so an
            // uncrossed cut kept its capacity, and monotone growth
            // means no other cut shrank below it.
            let reuse = parent[i] == self.parent[i] && !cut_separates_dirty(&dirty_words, stored);
            let cut = &mut cut_words[i * stride..(i + 1) * stride];
            if reuse {
                parent_w[i] = self.parent_w[i];
                cut.copy_from_slice(stored);
            } else {
                let flow = match (net_of[i], net_of[p]) {
                    (Some(s), Some(t)) => {
                        net.reset();
                        maxflow::dinic_with(&mut net, s, t, &mut scratch)
                    }
                    _ => 0,
                };
                parent_w[i] = flow;
                if let Some(s) = net_of[i] {
                    if net_of[p].is_none() {
                        net.reset();
                    }
                    let side = mincut::source_side(&net, s);
                    for (j, d) in net_of.iter().enumerate() {
                        if let Some(dj) = d {
                            if side[*dj as usize] {
                                set_bit(cut, j);
                            }
                        }
                    }
                }
                set_bit(cut, i);
            }
            for (j, pj) in parent.iter_mut().enumerate().skip(i + 1) {
                if *pj as usize == p && get_bit(cut, j) {
                    *pj = i as u32;
                }
            }
        }

        Some(Self::assemble(
            graph.version(),
            self.ids.clone(),
            self.index.clone(),
            parent,
            parent_w,
            cut_words,
            stride,
        ))
    }

    /// Shared tail of [`GomoryHuTree::build`] and
    /// [`GomoryHuTree::patch`]: turn parent pointers into the rooted
    /// adjacency, depths, and binary-lifting tables.
    fn assemble(
        version: u64,
        ids: Vec<PeerId>,
        index: FxHashMap<PeerId, u32>,
        parent: Vec<u32>,
        parent_w: Vec<u64>,
        cut_words: Vec<u64>,
        stride: usize,
    ) -> Self {
        let n = ids.len();
        let mut adj: Vec<Vec<(u32, u64)>> = vec![Vec::new(); n];
        for i in 1..n {
            adj[i].push((parent[i], parent_w[i]));
            adj[parent[i] as usize].push((i as u32, parent_w[i]));
        }

        // Root the tree at 0 and build the lifting tables. The
        // Gusfield parent pointers already form a tree rooted at 0
        // (parent[i] < i), so depths come from a single pass in order.
        let mut depth = vec![0u32; n];
        for i in 1..n {
            depth[i] = depth[parent[i] as usize] + 1;
        }
        let levels = if n <= 1 {
            1
        } else {
            (usize::BITS - (n - 1).leading_zeros()) as usize
        };
        let mut up = vec![vec![0u32; n]; levels];
        let mut up_min = vec![vec![u64::MAX; n]; levels];
        if n > 0 {
            up[0].copy_from_slice(&parent);
            up_min[0][1..n].copy_from_slice(&parent_w[1..n]);
            // the root lifts to itself over an infinitely strong edge
            up_min[0][0] = u64::MAX;
            for k in 1..levels {
                for v in 0..n {
                    let mid = up[k - 1][v];
                    up[k][v] = up[k - 1][mid as usize];
                    up_min[k][v] = up_min[k - 1][v].min(up_min[k - 1][mid as usize]);
                }
            }
        }

        GomoryHuTree {
            version,
            ids,
            index,
            parent,
            parent_w,
            cut_words,
            stride,
            adj,
            up,
            up_min,
            depth,
        }
    }

    /// The graph version this tree reflects.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of peers in the tree (every node of the source graph,
    /// including ones isolated by symmetrization).
    pub fn node_count(&self) -> usize {
        self.ids.len()
    }

    /// Minimum edge weight on the tree path between two dense indices
    /// (binary lifting; `O(log n)`).
    fn min_on_path(&self, mut a: u32, mut b: u32) -> u64 {
        let mut best = u64::MAX;
        if self.depth[a as usize] < self.depth[b as usize] {
            std::mem::swap(&mut a, &mut b);
        }
        let mut diff = self.depth[a as usize] - self.depth[b as usize];
        let mut k = 0;
        while diff > 0 {
            if diff & 1 == 1 {
                best = best.min(self.up_min[k][a as usize]);
                a = self.up[k][a as usize];
            }
            diff >>= 1;
            k += 1;
        }
        if a == b {
            return best;
        }
        for k in (0..self.up.len()).rev() {
            if self.up[k][a as usize] != self.up[k][b as usize] {
                best = best.min(self.up_min[k][a as usize]);
                best = best.min(self.up_min[k][b as usize]);
                a = self.up[k][a as usize];
                b = self.up[k][b as usize];
            }
        }
        best.min(self.up_min[0][a as usize])
            .min(self.up_min[0][b as usize])
    }

    /// Symmetrized maxflow between `s` and `t`: the minimum edge
    /// weight on their tree path. Zero when either peer is unknown or
    /// `s == t`. Symmetric in its arguments, exact on symmetric
    /// graphs, and a lower bound on both directed flows otherwise (see
    /// the module docs).
    pub fn flow(&self, s: PeerId, t: PeerId) -> Bytes {
        if s == t {
            return Bytes::ZERO;
        }
        let (Some(&a), Some(&b)) = (self.index.get(&s), self.index.get(&t)) else {
            return Bytes::ZERO;
        };
        Bytes(self.min_on_path(a, b))
    }

    /// Symmetrized maxflow from `s` to **every** other peer in one
    /// `O(n)` tree sweep: the returned map holds every peer with
    /// nonzero flow (absent peers, including `s` itself, have zero) —
    /// the same shape as the SSAT kernel maps, so callers can swap
    /// between the two batch backends.
    pub fn all_flows_from(&self, s: PeerId) -> FxHashMap<PeerId, Bytes> {
        let mut flows: FxHashMap<PeerId, Bytes> = FxHashMap::default();
        let Some(&root) = self.index.get(&s) else {
            return flows;
        };
        // iterative DFS carrying the running path minimum
        let mut stack: Vec<(u32, u32, u64)> = Vec::with_capacity(self.adj[root as usize].len());
        for &(v, w) in &self.adj[root as usize] {
            stack.push((v, root, w));
        }
        while let Some((v, from, min_w)) = stack.pop() {
            if min_w > 0 {
                flows.insert(self.ids[v as usize], Bytes(min_w));
            }
            for &(next, w) in &self.adj[v as usize] {
                if next != from {
                    stack.push((next, v, min_w.min(w)));
                }
            }
        }
        flows
    }

    /// The tree's edges as `(child, parent, weight)` peer triples
    /// (n − 1 of them; used by tests and diagnostics).
    pub fn parent_edges(&self) -> impl Iterator<Item = (PeerId, PeerId, Bytes)> + '_ {
        (1..self.ids.len()).map(move |i| {
            (
                self.ids[i],
                self.ids[self.parent[i] as usize],
                Bytes(self.parent_w[i]),
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maxflow::{compute, Method};

    fn p(i: u32) -> PeerId {
        PeerId(i)
    }

    /// Add an undirected edge (both directions, equal weight).
    fn undirected(g: &mut ContributionGraph, a: u32, b: u32, w: u64) {
        g.add_transfer(p(a), p(b), Bytes(w));
        g.add_transfer(p(b), p(a), Bytes(w));
    }

    fn sym_diamond() -> ContributionGraph {
        let mut g = ContributionGraph::new();
        undirected(&mut g, 0, 1, 10);
        undirected(&mut g, 1, 3, 5);
        undirected(&mut g, 0, 2, 8);
        undirected(&mut g, 2, 3, 8);
        g
    }

    #[test]
    fn matches_dinic_on_symmetric_diamond() {
        let g = sym_diamond();
        let tree = GomoryHuTree::build(&g);
        for s in 0..4 {
            for t in 0..4 {
                if s == t {
                    continue;
                }
                let exact = compute(&g, p(s), p(t), Method::Dinic);
                assert_eq!(tree.flow(p(s), p(t)), exact, "flow({s}, {t})");
            }
        }
    }

    #[test]
    fn all_flows_match_pair_queries() {
        let g = sym_diamond();
        let tree = GomoryHuTree::build(&g);
        for s in 0..4 {
            let flows = tree.all_flows_from(p(s));
            for t in 0..4 {
                let expect = tree.flow(p(s), p(t));
                let got = flows.get(&p(t)).copied().unwrap_or(Bytes::ZERO);
                assert_eq!(got, expect, "all_flows_from({s})[{t}]");
            }
            assert!(!flows.contains_key(&p(s)), "source never its own target");
        }
    }

    #[test]
    fn lower_bounds_directed_flow_on_asymmetric_graph() {
        // 0 -> 1 strong, 1 -> 0 weak; plus a one-directional edge
        let mut g = ContributionGraph::new();
        g.add_transfer(p(0), p(1), Bytes(100));
        g.add_transfer(p(1), p(0), Bytes(30));
        g.add_transfer(p(1), p(2), Bytes(50));
        let tree = GomoryHuTree::build(&g);
        for (s, t) in [(0, 1), (1, 0), (1, 2), (0, 2)] {
            let tree_f = tree.flow(p(s), p(t));
            let fwd = compute(&g, p(s), p(t), Method::Dinic);
            let bwd = compute(&g, p(t), p(s), Method::Dinic);
            assert!(
                tree_f <= fwd.min(bwd),
                "tree flow {tree_f:?} must lower-bound both directions ({fwd:?}, {bwd:?})"
            );
        }
        assert_eq!(tree.flow(p(0), p(1)), Bytes(30));
        // the 1 -> 2 edge has no reverse direction: symmetrized away
        assert_eq!(tree.flow(p(1), p(2)), Bytes::ZERO);
    }

    #[test]
    fn disconnected_components_have_zero_cross_flow() {
        let mut g = ContributionGraph::new();
        undirected(&mut g, 0, 1, 10);
        undirected(&mut g, 5, 6, 20);
        let tree = GomoryHuTree::build(&g);
        assert_eq!(tree.flow(p(0), p(5)), Bytes::ZERO);
        assert_eq!(tree.flow(p(0), p(1)), Bytes(10));
        assert_eq!(tree.flow(p(5), p(6)), Bytes(20));
        let flows = tree.all_flows_from(p(0));
        assert!(!flows.contains_key(&p(5)));
        assert!(!flows.contains_key(&p(6)));
    }

    #[test]
    fn unknown_peers_and_self_queries_are_zero() {
        let g = sym_diamond();
        let tree = GomoryHuTree::build(&g);
        assert_eq!(tree.flow(p(0), p(0)), Bytes::ZERO);
        assert_eq!(tree.flow(p(0), p(99)), Bytes::ZERO);
        assert_eq!(tree.flow(p(99), p(0)), Bytes::ZERO);
        assert!(tree.all_flows_from(p(99)).is_empty());
    }

    #[test]
    fn empty_and_singleton_graphs() {
        let g = ContributionGraph::new();
        let tree = GomoryHuTree::build(&g);
        assert_eq!(tree.node_count(), 0);
        assert_eq!(tree.flow(p(0), p(1)), Bytes::ZERO);
        assert!(tree.all_flows_from(p(0)).is_empty());
    }

    #[test]
    fn tree_has_n_minus_one_edges_and_records_version() {
        let g = sym_diamond();
        let tree = GomoryHuTree::build(&g);
        assert_eq!(tree.parent_edges().count(), 3);
        assert_eq!(tree.version(), g.version());
    }

    #[test]
    fn flow_is_symmetric_in_arguments() {
        let g = sym_diamond();
        let tree = GomoryHuTree::build(&g);
        for s in 0..4 {
            for t in 0..4 {
                assert_eq!(tree.flow(p(s), p(t)), tree.flow(p(t), p(s)));
            }
        }
    }

    /// All-pairs flow values of a tree, for patched-vs-rebuilt
    /// comparisons.
    fn all_pairs(tree: &GomoryHuTree, n: u32) -> Vec<u64> {
        let mut v = Vec::new();
        for s in 0..n {
            for t in 0..n {
                v.push(tree.flow(p(s), p(t)).0);
            }
        }
        v
    }

    #[test]
    fn patch_matches_rebuild_after_small_mutation() {
        let mut g = sym_diamond();
        let tree = GomoryHuTree::build(&g);
        undirected(&mut g, 1, 3, 20); // strengthen one edge
        let patched = tree
            .patch_with_limit(&g, 4)
            .expect("two dirty nodes fit the limit");
        let rebuilt = GomoryHuTree::build(&g);
        assert_eq!(patched.version(), g.version());
        assert_eq!(all_pairs(&patched, 4), all_pairs(&rebuilt, 4));
    }

    #[test]
    fn patch_refuses_new_nodes_and_big_dirty_sets() {
        let mut g = sym_diamond();
        let tree = GomoryHuTree::build(&g);
        let mut grown = g.clone();
        undirected(&mut grown, 0, 9, 5); // new node 9
        assert!(tree.patch_with_limit(&grown, 64).is_none());
        undirected(&mut g, 0, 1, 1);
        undirected(&mut g, 2, 3, 1);
        assert!(tree.patch_with_limit(&g, 3).is_none(), "4 dirty > limit 3");
        assert!(tree.patch_with_limit(&g, 4).is_some());
    }

    #[test]
    fn patch_with_no_effective_change_is_identity() {
        let mut g = sym_diamond();
        let tree = GomoryHuTree::build(&g);
        // bump the version without changing any edge weight: stale merge
        assert!(!g.merge_record(p(0), p(1), Bytes(1)));
        let patched = tree.patch_with_limit(&g, 4).unwrap();
        assert_eq!(all_pairs(&patched, 4), all_pairs(&tree, 4));
    }

    #[test]
    fn chained_patches_stay_exact_on_chain_graph() {
        // repeatedly strengthen chain edges, patching each time, and
        // compare against per-pair Dinic ground truth
        let mut g = ContributionGraph::new();
        let weights = [9, 3, 7, 2, 8, 5, 6, 4];
        for (i, &w) in weights.iter().enumerate() {
            undirected(&mut g, i as u32, i as u32 + 1, w);
        }
        let mut tree = GomoryHuTree::build(&g);
        for step in 0..weights.len() as u32 {
            undirected(&mut g, step, step + 1, u64::from(step) + 1);
            tree = tree
                .patch_with_limit(&g, 4)
                .expect("two dirty nodes per step");
            for t in 0..=weights.len() as u32 {
                let exact = compute(&g, p(0), p(t), Method::Dinic);
                assert_eq!(tree.flow(p(0), p(t)), exact, "step {step} target {t}");
            }
        }
    }

    #[test]
    fn deep_path_exercises_lifting() {
        // a long chain: flow(0, k) = min of the chain prefix weights
        let mut g = ContributionGraph::new();
        let weights = [9, 3, 7, 2, 8, 5, 6, 4, 10, 1];
        for (i, &w) in weights.iter().enumerate() {
            undirected(&mut g, i as u32, i as u32 + 1, w);
        }
        let tree = GomoryHuTree::build(&g);
        for t in 1..=weights.len() as u32 {
            let expect = weights[..t as usize].iter().copied().min().unwrap();
            assert_eq!(tree.flow(p(0), p(t)), Bytes(expect), "chain flow 0 -> {t}");
        }
    }
}

//! The contribution graph: aggregated byte transfers between peers.
//!
//! An edge `(i, j)` with weight `w` means "peer `i` has uploaded `w`
//! bytes to peer `j` in total" (§3.1). Edge weights only ever grow in
//! the real protocol, so merging a gossiped record about a pair takes
//! the **maximum** of the stored and received totals — a stale record
//! can never lower what we already know.
//!
//! Adjacency lives in two arena-backed CSR stores ([`crate::csr`]):
//! one forward (out-edges), one reverse (in-edges). Every flow kernel
//! that walks `out_edges`/`in_edges` — the SSAT closed form, the
//! layered-DAG unroll, network construction — therefore scans
//! contiguous slots instead of chasing hash buckets; the hash map here
//! only interns peer ids to dense indices once per node.

use crate::csr::AdjArena;
use bartercast_util::units::{Bytes, PeerId};
use bartercast_util::{FxHashMap, FxHashSet};

/// A directed graph of aggregated byte transfers between peers.
///
/// Both out- and in-adjacency are maintained so that the maxflow
/// network construction and two-hop neighbourhood queries are O(degree)
/// rather than O(edges).
///
/// ```
/// use bartercast_graph::ContributionGraph;
/// use bartercast_util::units::{Bytes, PeerId};
///
/// let mut g = ContributionGraph::new();
/// g.add_transfer(PeerId(1), PeerId(2), Bytes::from_mb(100));
/// g.add_transfer(PeerId(1), PeerId(2), Bytes::from_mb(50));
/// assert_eq!(g.edge(PeerId(1), PeerId(2)), Bytes::from_mb(150));
///
/// // gossiped records merge with max semantics: stale totals are ignored
/// assert!(!g.merge_record(PeerId(1), PeerId(2), Bytes::from_mb(120)));
/// assert!(g.merge_record(PeerId(1), PeerId(2), Bytes::from_mb(200)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct ContributionGraph {
    /// Peer id → dense node index, assigned on first sighting.
    index: FxHashMap<PeerId, u32>,
    /// Dense node index → peer id.
    ids: Vec<PeerId>,
    /// Out-adjacency: `fwd.slice(u)` holds `(target, weight)` slots.
    fwd: AdjArena,
    /// In-adjacency mirror: `rev.slice(u)` holds `(source, weight)`.
    rev: AdjArena,
    edge_count: usize,
    version: u64,
    /// Per-node change tracking: the version at which each node last
    /// had an incident edge change. Indexed densely and never
    /// truncated (it is bounded by the node count, not the mutation
    /// count), so a reader can fall arbitrarily far behind and still
    /// get an exact dirty set from
    /// [`ContributionGraph::dirty_nodes_since`].
    changed_at: Vec<u64>,
}

impl ContributionGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Monotone counter bumped on every mutation; used by reputation
    /// caches for invalidation.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Dense index of `id`, interning it on first sighting.
    fn intern(&mut self, id: PeerId) -> u32 {
        if let Some(&i) = self.index.get(&id) {
            return i;
        }
        let i = self.fwd.add_node();
        let r = self.rev.add_node();
        debug_assert_eq!(i, r);
        self.ids.push(id);
        self.changed_at.push(0);
        self.index.insert(id, i);
        i
    }

    /// Add `amount` to the `from → to` edge (the normal accounting path
    /// for a peer's own transfers). Self-edges are ignored.
    pub fn add_transfer(&mut self, from: PeerId, to: PeerId, amount: Bytes) {
        if from == to || amount.is_zero() {
            return;
        }
        let f = self.intern(from);
        let t = self.intern(to);
        match self.fwd.weight_mut(f, t) {
            Some(w) => {
                *w += amount.0;
                *self.rev.weight_mut(t, f).expect("in-adjacency mirrors out") += amount.0;
            }
            None => {
                self.fwd.push(f, t, amount.0);
                self.rev.push(t, f, amount.0);
                self.edge_count += 1;
            }
        }
        self.version += 1;
        self.log_change(f, t);
    }

    /// Merge a gossiped record about the pair `(from, to)`: the stored
    /// total becomes `max(stored, total)`. Returns `true` if the graph
    /// changed. This is the §3.4 shared-history update rule.
    pub fn merge_record(&mut self, from: PeerId, to: PeerId, total: Bytes) -> bool {
        if from == to || total.is_zero() {
            return false;
        }
        let f = self.intern(from);
        let t = self.intern(to);
        match self.fwd.weight_mut(f, t) {
            Some(w) if total.0 <= *w => return false,
            Some(w) => {
                *w = total.0;
                *self.rev.weight_mut(t, f).expect("in-adjacency mirrors out") = total.0;
            }
            None => {
                self.fwd.push(f, t, total.0);
                self.rev.push(t, f, total.0);
                self.edge_count += 1;
            }
        }
        self.version += 1;
        self.log_change(f, t);
        true
    }

    /// Record a changed edge: both endpoints become dirty at the
    /// current version.
    fn log_change(&mut self, from: u32, to: u32) {
        self.changed_at[from as usize] = self.version;
        self.changed_at[to as usize] = self.version;
    }

    /// Every node that has been an endpoint of an edge changed after
    /// version `since` (arbitrary order, no duplicates).
    ///
    /// Always answerable: the per-node versions never truncate, so a
    /// reader may fall arbitrarily far behind between reads without
    /// losing precision — the cost is one scan over the node table,
    /// not over the mutation history.
    pub fn dirty_nodes_since(&self, since: u64) -> impl Iterator<Item = PeerId> + '_ {
        self.changed_at
            .iter()
            .zip(&self.ids)
            .filter(move |&(&v, _)| v > since)
            .map(|(_, &p)| p)
    }

    /// The aggregated bytes `from` has uploaded to `to` (zero if no edge).
    pub fn edge(&self, from: PeerId, to: PeerId) -> Bytes {
        let (Some(&f), Some(&t)) = (self.index.get(&from), self.index.get(&to)) else {
            return Bytes::ZERO;
        };
        Bytes(self.fwd.weight(f, t).unwrap_or(0))
    }

    /// Outgoing edges of `node` as `(target, bytes)`, in first-recorded
    /// order (deterministic — no hash-map iteration anywhere beneath).
    pub fn out_edges(&self, node: PeerId) -> impl Iterator<Item = (PeerId, Bytes)> + '_ {
        self.index.get(&node).into_iter().flat_map(move |&u| {
            self.fwd
                .slice(u)
                .iter()
                .map(|e| (self.ids[e.other as usize], Bytes(e.weight)))
        })
    }

    /// Incoming edges of `node` as `(source, bytes)`, in first-recorded
    /// order.
    pub fn in_edges(&self, node: PeerId) -> impl Iterator<Item = (PeerId, Bytes)> + '_ {
        self.index.get(&node).into_iter().flat_map(move |&u| {
            self.rev
                .slice(u)
                .iter()
                .map(|e| (self.ids[e.other as usize], Bytes(e.weight)))
        })
    }

    /// Total bytes `node` has uploaded (sum of out-edge weights).
    pub fn total_up(&self, node: PeerId) -> Bytes {
        self.out_edges(node).map(|(_, b)| b).sum()
    }

    /// Total bytes `node` has downloaded (sum of in-edge weights).
    pub fn total_down(&self, node: PeerId) -> Bytes {
        self.in_edges(node).map(|(_, b)| b).sum()
    }

    /// Every node that appears as an endpoint of some edge.
    pub fn nodes(&self) -> FxHashSet<PeerId> {
        self.ids.iter().copied().collect()
    }

    /// Number of distinct nodes.
    pub fn node_count(&self) -> usize {
        self.ids.len()
    }

    /// Number of directed edges with nonzero weight.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// All edges as `(from, to, bytes)` triples, grouped by source in
    /// dense-node order (deterministic).
    pub fn edges(&self) -> impl Iterator<Item = (PeerId, PeerId, Bytes)> + '_ {
        (0..self.ids.len() as u32).flat_map(move |u| {
            self.fwd.slice(u).iter().map(move |e| {
                (
                    self.ids[u as usize],
                    self.ids[e.other as usize],
                    Bytes(e.weight),
                )
            })
        })
    }

    /// The set of nodes within `hops` directed-or-reverse hops of
    /// `center` (including `center`). The deployed BarterCast evaluates
    /// maxflow only on the 2-hop neighbourhood of the evaluating peer.
    pub fn neighbourhood(&self, center: PeerId, hops: usize) -> FxHashSet<PeerId> {
        let mut seen: FxHashSet<PeerId> = FxHashSet::default();
        seen.insert(center);
        let mut frontier = vec![center];
        for _ in 0..hops {
            let mut next = Vec::new();
            for &n in &frontier {
                for (m, _) in self.out_edges(n) {
                    if seen.insert(m) {
                        next.push(m);
                    }
                }
                for (m, _) in self.in_edges(n) {
                    if seen.insert(m) {
                        next.push(m);
                    }
                }
            }
            frontier = next;
            if frontier.is_empty() {
                break;
            }
        }
        seen
    }

    /// The undirected **min-symmetrization** of this graph: every
    /// unordered pair `{i, j}` keeps `min(c(i, j), c(j, i))` in *both*
    /// directions (pairs where either direction is zero disappear).
    ///
    /// This is the conservative approximation the Gomory–Hu batch
    /// backend is built on: any flow in the symmetrized graph can be
    /// oriented into a feasible flow of the original directed graph,
    /// so every symmetrized maxflow is a **lower bound** on the
    /// directed maxflow in either direction. On an already symmetric
    /// graph it is the identity and the bound is exact.
    pub fn symmetrized(&self) -> ContributionGraph {
        let mut g = ContributionGraph::new();
        for (f, t, w) in self.edges() {
            // handle each unordered pair once, from its smaller tail;
            // a pair visible only with f > t has a zero reverse edge
            // and therefore a zero min
            if f < t {
                let back = self.edge(t, f);
                let m = Bytes(w.0.min(back.0));
                if !m.is_zero() {
                    g.add_transfer(f, t, m);
                    g.add_transfer(t, f, m);
                }
            }
        }
        g
    }

    /// Directed-asymmetry measure in `[0, 1]`: the fraction of total
    /// edge weight that min-symmetrization discards,
    /// `Σ |c(i,j) − c(j,i)| / Σ (c(i,j) + c(j,i))` over unordered
    /// pairs. `0.0` means perfectly symmetric (the Gomory–Hu tree is
    /// exact), `1.0` means every pair is strictly one-directional
    /// (the symmetrized graph is empty). An empty graph measures `0.0`.
    pub fn asymmetry(&self) -> f64 {
        let mut diff = 0u128;
        let mut total = 0u128;
        for (f, t, w) in self.edges() {
            let back = self.edge(t, f).0;
            // count each unordered pair once; one-directional pairs
            // (back == 0) are only visible from their forward side
            if f < t || back == 0 {
                diff += w.0.abs_diff(back) as u128;
                total += (w.0 + back) as u128;
            }
        }
        if total == 0 {
            0.0
        } else {
            diff as f64 / total as f64
        }
    }

    /// Internal consistency check: the in-adjacency mirrors the
    /// out-adjacency exactly. Used by tests and `debug_assert!`s.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.fwd.node_count() != self.ids.len() || self.rev.node_count() != self.ids.len() {
            return Err(format!(
                "arena node counts {}/{} != interned {}",
                self.fwd.node_count(),
                self.rev.node_count(),
                self.ids.len()
            ));
        }
        let mut forward = 0usize;
        for u in 0..self.ids.len() as u32 {
            let f = self.ids[u as usize];
            for e in self.fwd.slice(u) {
                let t = self.ids[e.other as usize];
                if e.weight == 0 {
                    return Err(format!("zero-weight edge {f}->{t}"));
                }
                if u == e.other {
                    return Err(format!("self edge at {f}"));
                }
                let back = self.rev.weight(e.other, u).unwrap_or(0);
                if back != e.weight {
                    return Err(format!("in/out mismatch {f}->{t}: {} vs {back}", e.weight));
                }
                forward += 1;
            }
        }
        if forward != self.edge_count {
            return Err(format!(
                "edge_count {} != actual {}",
                self.edge_count, forward
            ));
        }
        if self.rev.len() != forward {
            return Err(format!(
                "reverse arena holds {} slots for {forward} edges",
                self.rev.len()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> PeerId {
        PeerId(i)
    }

    #[test]
    fn add_transfer_accumulates() {
        let mut g = ContributionGraph::new();
        g.add_transfer(p(1), p(2), Bytes::from_mb(10));
        g.add_transfer(p(1), p(2), Bytes::from_mb(5));
        assert_eq!(g.edge(p(1), p(2)), Bytes::from_mb(15));
        assert_eq!(g.edge(p(2), p(1)), Bytes::ZERO);
        assert_eq!(g.edge_count(), 1);
        g.check_invariants().unwrap();
    }

    #[test]
    fn self_and_zero_transfers_ignored() {
        let mut g = ContributionGraph::new();
        let v0 = g.version();
        g.add_transfer(p(1), p(1), Bytes::from_mb(10));
        g.add_transfer(p(1), p(2), Bytes::ZERO);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.version(), v0);
        assert_eq!(g.node_count(), 0, "ineffective ops intern no nodes");
    }

    #[test]
    fn merge_record_takes_max() {
        let mut g = ContributionGraph::new();
        assert!(g.merge_record(p(1), p(2), Bytes::from_mb(10)));
        // A stale (smaller) record never lowers what we know.
        assert!(!g.merge_record(p(1), p(2), Bytes::from_mb(4)));
        assert_eq!(g.edge(p(1), p(2)), Bytes::from_mb(10));
        // A fresher (larger) record replaces it.
        assert!(g.merge_record(p(1), p(2), Bytes::from_mb(25)));
        assert_eq!(g.edge(p(1), p(2)), Bytes::from_mb(25));
        g.check_invariants().unwrap();
    }

    #[test]
    fn totals_and_nodes() {
        let mut g = ContributionGraph::new();
        g.add_transfer(p(1), p(2), Bytes::from_mb(10));
        g.add_transfer(p(1), p(3), Bytes::from_mb(20));
        g.add_transfer(p(3), p(1), Bytes::from_mb(7));
        assert_eq!(g.total_up(p(1)), Bytes::from_mb(30));
        assert_eq!(g.total_down(p(1)), Bytes::from_mb(7));
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.edges().count(), 3);
    }

    #[test]
    fn version_bumps_on_change_only() {
        let mut g = ContributionGraph::new();
        let v0 = g.version();
        g.add_transfer(p(1), p(2), Bytes::from_mb(1));
        let v1 = g.version();
        assert!(v1 > v0);
        g.merge_record(p(1), p(2), Bytes::from_kb(1)); // stale, no-op
        assert_eq!(g.version(), v1);
    }

    #[test]
    fn neighbourhood_hops() {
        // chain 1 -> 2 -> 3 -> 4
        let mut g = ContributionGraph::new();
        g.add_transfer(p(1), p(2), Bytes::from_mb(1));
        g.add_transfer(p(2), p(3), Bytes::from_mb(1));
        g.add_transfer(p(3), p(4), Bytes::from_mb(1));
        let n0 = g.neighbourhood(p(1), 0);
        assert_eq!(n0.len(), 1);
        let n1 = g.neighbourhood(p(1), 1);
        assert!(n1.contains(&p(2)) && !n1.contains(&p(3)));
        let n2 = g.neighbourhood(p(1), 2);
        assert!(n2.contains(&p(3)) && !n2.contains(&p(4)));
        // neighbourhood follows reverse edges too
        let n1_rev = g.neighbourhood(p(4), 1);
        assert!(n1_rev.contains(&p(3)));
    }

    #[test]
    fn dirty_nodes_since_reports_exact_endpoints() {
        let mut g = ContributionGraph::new();
        let v0 = g.version();
        g.add_transfer(p(1), p(2), Bytes::from_mb(1));
        let v1 = g.version();
        g.merge_record(p(3), p(4), Bytes::from_mb(2));
        g.add_transfer(p(1), p(2), Bytes::from_mb(1));

        let mut all: Vec<_> = g.dirty_nodes_since(v0).collect();
        all.sort();
        assert_eq!(all, vec![p(1), p(2), p(3), p(4)]);
        let mut later: Vec<_> = g.dirty_nodes_since(v1).collect();
        later.sort();
        assert_eq!(later, vec![p(1), p(2), p(3), p(4)]);
        assert_eq!(g.dirty_nodes_since(g.version()).count(), 0);
    }

    #[test]
    fn ineffective_mutations_not_logged() {
        let mut g = ContributionGraph::new();
        g.add_transfer(p(1), p(2), Bytes::from_mb(10));
        let v = g.version();
        g.add_transfer(p(1), p(1), Bytes::from_mb(1)); // self edge: ignored
        g.add_transfer(p(1), p(2), Bytes::ZERO); // zero: ignored
        g.merge_record(p(1), p(2), Bytes::from_mb(4)); // stale: ignored
        assert_eq!(g.dirty_nodes_since(v).count(), 0);
    }

    #[test]
    fn dirty_tracking_survives_arbitrarily_long_gaps() {
        let mut g = ContributionGraph::new();
        g.add_transfer(p(5), p(6), Bytes(1));
        let v = g.version();
        // far more mutations than the old change-log cap (4096) ever
        // held: the per-node versions must stay exact, not truncate
        for i in 0..10_000u64 {
            g.add_transfer(p(1), p(2), Bytes(i + 1));
        }
        let mut dirty: Vec<_> = g.dirty_nodes_since(v).collect();
        dirty.sort();
        assert_eq!(dirty, vec![p(1), p(2)], "untouched nodes must stay clean");
    }

    #[test]
    fn symmetrized_takes_pairwise_min() {
        let mut g = ContributionGraph::new();
        g.add_transfer(p(1), p(2), Bytes(10));
        g.add_transfer(p(2), p(1), Bytes(4));
        g.add_transfer(p(2), p(3), Bytes(7)); // one-directional: dropped
        let s = g.symmetrized();
        assert_eq!(s.edge(p(1), p(2)), Bytes(4));
        assert_eq!(s.edge(p(2), p(1)), Bytes(4));
        assert_eq!(s.edge(p(2), p(3)), Bytes::ZERO);
        assert_eq!(s.edge_count(), 2);
        s.check_invariants().unwrap();
    }

    #[test]
    fn symmetrized_is_identity_on_symmetric_graphs() {
        let mut g = ContributionGraph::new();
        g.add_transfer(p(1), p(2), Bytes(10));
        g.add_transfer(p(2), p(1), Bytes(10));
        g.add_transfer(p(3), p(1), Bytes(5));
        g.add_transfer(p(1), p(3), Bytes(5));
        let s = g.symmetrized();
        for (f, t, w) in g.edges() {
            assert_eq!(s.edge(f, t), w);
        }
        assert_eq!(s.edge_count(), g.edge_count());
    }

    #[test]
    fn asymmetry_measure_ranges() {
        let mut g = ContributionGraph::new();
        assert_eq!(g.asymmetry(), 0.0, "empty graph is symmetric");
        g.add_transfer(p(1), p(2), Bytes(10));
        g.add_transfer(p(2), p(1), Bytes(10));
        assert_eq!(g.asymmetry(), 0.0, "balanced pair is symmetric");
        g.add_transfer(p(3), p(4), Bytes(20));
        // |10-10| + |20-0| = 20 over 20 + 20 = 40
        assert!((g.asymmetry() - 0.5).abs() < 1e-12);
        let mut one_way = ContributionGraph::new();
        one_way.add_transfer(p(1), p(2), Bytes(10));
        assert_eq!(one_way.asymmetry(), 1.0);
    }

    #[test]
    fn in_edges_mirror_out_edges() {
        let mut g = ContributionGraph::new();
        g.add_transfer(p(5), p(6), Bytes::from_mb(3));
        let ins: Vec<_> = g.in_edges(p(6)).collect();
        assert_eq!(ins, vec![(p(5), Bytes::from_mb(3))]);
    }

    #[test]
    fn iteration_order_is_insertion_order() {
        // the CSR arena guarantees deterministic first-recorded order,
        // where the old hash-of-hash layout gave arbitrary order
        let mut g = ContributionGraph::new();
        g.add_transfer(p(1), p(9), Bytes(1));
        g.add_transfer(p(1), p(3), Bytes(2));
        g.add_transfer(p(1), p(7), Bytes(3));
        let order: Vec<PeerId> = g.out_edges(p(1)).map(|(t, _)| t).collect();
        assert_eq!(order, vec![p(9), p(3), p(7)]);
        let triples: Vec<_> = g.edges().collect();
        assert_eq!(triples[0], (p(1), p(9), Bytes(1)));
    }

    #[test]
    fn heavy_churn_keeps_arena_consistent() {
        // enough interleaved growth to force block relocation and
        // compaction underneath, with invariants checked throughout
        let mut g = ContributionGraph::new();
        for round in 0..50u32 {
            for node in 0..40u32 {
                g.add_transfer(
                    p(node),
                    p((node + round + 1) % 41),
                    Bytes(u64::from(round) + 1),
                );
            }
            if round % 10 == 0 {
                g.check_invariants().unwrap();
            }
        }
        g.check_invariants().unwrap();
    }
}

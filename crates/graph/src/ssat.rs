//! Single-source all-targets (SSAT) two-hop bounded maxflow.
//!
//! The deployed BarterCast variant ([`Method::DEPLOYED`], §3.2) only
//! admits augmenting paths of at most two edges. That restriction has
//! a structural consequence the per-pair algorithm never exploits:
//! every admissible `s → t` path is either the direct edge `(s, t)` or
//! a two-edge path `s → m → t` through a middle node `m`, and paths
//! through **distinct** middles are internally disjoint — no two of
//! them share an edge, and none shares an edge with the direct path.
//! Residual (reverse) arcs never open new ≤2-edge paths either: a
//! reverse arc pointing *at* `t` would require flow leaving `t`, and
//! one leaving `s` would require flow entering `s`, neither of which a
//! bounded `s → t` augmentation produces. Greedy augmentation therefore
//! saturates each disjoint path independently, and the flow has the
//! closed form
//!
//! ```text
//! flow(s, t) = c(s, t) + Σ_{m ∉ {s, t}} min(c(s, m), c(m, t))
//! ```
//!
//! which means one traversal of `s`'s two-hop out-neighbourhood yields
//! the flows from `s` to **every** target at once — `O(Σ_{m ∈ N⁺(s)}
//! deg⁺(m))` for all targets, versus one full residual-network
//! construction and augmentation loop per target. [`flows_from`]
//! computes that out-direction map; [`flows_into`] is the symmetric
//! in-direction pass needed for the `maxflow(j → i)` side of
//! Equation 1.
//!
//! Both functions return exactly the values `maxflow::compute` returns
//! for `Method::Bounded(2)` (bit-identical `u64` totals; the property
//! tests in `tests/proptests.rs` pin this), so callers may substitute
//! them freely for per-pair computation.
//!
//! The traversal is expressed entirely through
//! [`ContributionGraph::out_edges`] / [`ContributionGraph::in_edges`],
//! so the kernel picked up the arena-backed CSR adjacency (see
//! `crate::csr`) without code changes: the two-hop neighbourhood walk
//! now reads contiguous edge slots instead of chasing hash buckets.

use crate::contribution::ContributionGraph;
use bartercast_util::units::{Bytes, PeerId};
use bartercast_util::FxHashMap;

/// Two-hop bounded maxflow from `source` to every reachable target.
///
/// The returned map holds an entry for each node with nonzero flow
/// from `source`; absent nodes (including `source` itself) have zero
/// flow. Equals `compute(graph, source, t, Method::Bounded(2))` for
/// every `t`.
///
/// ```
/// use bartercast_graph::ssat::flows_from;
/// use bartercast_graph::{compute, ContributionGraph, Method};
/// use bartercast_util::units::{Bytes, PeerId};
///
/// // 0 -> 1 -> 2 plus a direct 0 -> 2 edge
/// let mut g = ContributionGraph::new();
/// g.add_transfer(PeerId(0), PeerId(1), Bytes::from_mb(10));
/// g.add_transfer(PeerId(1), PeerId(2), Bytes::from_mb(4));
/// g.add_transfer(PeerId(0), PeerId(2), Bytes::from_mb(3));
///
/// let flows = flows_from(&g, PeerId(0));
/// assert_eq!(flows[&PeerId(2)], Bytes::from_mb(7)); // min(10, 4) + 3
/// assert_eq!(flows[&PeerId(2)], compute(&g, PeerId(0), PeerId(2), Method::DEPLOYED));
/// ```
pub fn flows_from(graph: &ContributionGraph, source: PeerId) -> FxHashMap<PeerId, Bytes> {
    let mut flows: FxHashMap<PeerId, Bytes> = FxHashMap::default();
    for (t, c_st) in graph.out_edges(source) {
        flows.insert(t, c_st);
    }
    for (m, c_sm) in graph.out_edges(source) {
        for (t, c_mt) in graph.out_edges(m) {
            if t == source {
                continue;
            }
            *flows.entry(t).or_insert(Bytes::ZERO) += Bytes(c_sm.0.min(c_mt.0));
        }
    }
    flows
}

/// Two-hop bounded maxflow into `target` from every source that can
/// reach it.
///
/// Symmetric to [`flows_from`], walking the in-adjacency instead:
/// entries are `s ↦ flow(s, target)` and equal
/// `compute(graph, s, target, Method::Bounded(2))` for every `s`.
pub fn flows_into(graph: &ContributionGraph, target: PeerId) -> FxHashMap<PeerId, Bytes> {
    let mut flows: FxHashMap<PeerId, Bytes> = FxHashMap::default();
    for (s, c_st) in graph.in_edges(target) {
        flows.insert(s, c_st);
    }
    for (m, c_mt) in graph.in_edges(target) {
        for (s, c_sm) in graph.in_edges(m) {
            if s == target {
                continue;
            }
            *flows.entry(s).or_insert(Bytes::ZERO) += Bytes(c_sm.0.min(c_mt.0));
        }
    }
    flows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maxflow::{compute, Method};

    fn p(i: u32) -> PeerId {
        PeerId(i)
    }

    fn diamond() -> ContributionGraph {
        // two middles plus a direct edge, and a back-edge to the source
        let mut g = ContributionGraph::new();
        g.add_transfer(p(0), p(1), Bytes(10));
        g.add_transfer(p(1), p(9), Bytes(4));
        g.add_transfer(p(0), p(2), Bytes(6));
        g.add_transfer(p(2), p(9), Bytes(8));
        g.add_transfer(p(0), p(9), Bytes(3));
        g.add_transfer(p(1), p(0), Bytes(5));
        g
    }

    #[test]
    fn matches_bounded_two_on_diamond() {
        let g = diamond();
        let out = flows_from(&g, p(0));
        for t in [p(1), p(2), p(9)] {
            assert_eq!(
                out.get(&t).copied().unwrap_or(Bytes::ZERO),
                compute(&g, p(0), t, Method::DEPLOYED),
                "flow 0 -> {t}"
            );
        }
        // direct + min(10,4) + min(6,8) = 3 + 4 + 6
        assert_eq!(out[&p(9)], Bytes(13));
    }

    #[test]
    fn into_matches_bounded_two() {
        let g = diamond();
        let into = flows_into(&g, p(9));
        for s in [p(0), p(1), p(2)] {
            assert_eq!(
                into.get(&s).copied().unwrap_or(Bytes::ZERO),
                compute(&g, s, p(9), Method::DEPLOYED),
                "flow {s} -> 9"
            );
        }
    }

    #[test]
    fn source_never_appears_as_target() {
        let g = diamond();
        // 0 -> 1 -> 0 is a two-edge cycle back to the source
        assert!(!flows_from(&g, p(0)).contains_key(&p(0)));
        assert!(!flows_into(&g, p(9)).contains_key(&p(9)));
    }

    #[test]
    fn absent_source_yields_empty_map() {
        let g = diamond();
        assert!(flows_from(&g, p(77)).is_empty());
        assert!(flows_into(&g, p(77)).is_empty());
    }

    #[test]
    fn empty_graph() {
        let g = ContributionGraph::new();
        assert!(flows_from(&g, p(0)).is_empty());
        assert!(flows_into(&g, p(0)).is_empty());
    }
}

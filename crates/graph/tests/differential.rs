//! Differential test harness for the maxflow backends.
//!
//! Pins the algebraic relationships between every flow implementation
//! in the crate on random graphs:
//!
//! * on **undirected** (symmetric) graphs, the Gomory–Hu tree, per-pair
//!   Dinic, Edmonds–Karp and FIFO push–relabel all agree exactly, for
//!   every pair — n − 1 maxflows really do reproduce all n(n−1) values;
//! * on **directed** (asymmetric) graphs, the tree flow is a lower
//!   bound of the per-pair directed flow in *both* directions (the
//!   documented min-symmetrization error model);
//! * every backend's flow carries a min-cut certificate: the residual
//!   cut separates s from t and its capacity equals the flow value;
//! * `all_flows_from` sweeps agree pointwise with pair queries, and
//!   tree flows are symmetric in their arguments.
//!
//! The suite runs under the vendored deterministic proptest (fixed
//! per-case seed derivation, no regression files); `scripts/tier1.sh`
//! runs it explicitly and fails on any `proptest-regressions` drift.

use bartercast_graph::contribution::ContributionGraph;
use bartercast_graph::gomoryhu::GomoryHuTree;
use bartercast_graph::maxflow::{self, Method};
use bartercast_graph::mincut;
use bartercast_graph::network::FlowNetwork;
use bartercast_util::units::{Bytes, PeerId};
use proptest::prelude::*;

/// A random undirected edge list over up to `n` nodes: each entry adds
/// the same weight in both directions.
fn sym_edges_strategy(n: u32, max_edges: usize) -> impl Strategy<Value = Vec<(u32, u32, u64)>> {
    prop::collection::vec((0..n, 0..n, 1u64..1000), 0..max_edges)
}

fn build_symmetric(edges: &[(u32, u32, u64)]) -> ContributionGraph {
    let mut g = ContributionGraph::new();
    for &(f, t, c) in edges {
        if f != t {
            g.add_transfer(PeerId(f), PeerId(t), Bytes(c));
            g.add_transfer(PeerId(t), PeerId(f), Bytes(c));
        }
    }
    g
}

fn build_directed(edges: &[(u32, u32, u64)]) -> ContributionGraph {
    let mut g = ContributionGraph::new();
    for &(f, t, c) in edges {
        if f != t {
            g.add_transfer(PeerId(f), PeerId(t), Bytes(c));
        }
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn gomoryhu_equals_every_unbounded_backend_on_undirected_graphs(
        edges in sym_edges_strategy(14, 40),
    ) {
        let g = build_symmetric(&edges);
        prop_assert_eq!(g.asymmetry(), 0.0);
        let tree = GomoryHuTree::build(&g);
        for s in 0..14u32 {
            for t in 0..14u32 {
                if s == t {
                    continue;
                }
                let tree_f = tree.flow(PeerId(s), PeerId(t));
                let dn = maxflow::compute(&g, PeerId(s), PeerId(t), Method::Dinic);
                let ek = maxflow::compute(&g, PeerId(s), PeerId(t), Method::EdmondsKarp);
                let pr = maxflow::compute(&g, PeerId(s), PeerId(t), Method::PushRelabel);
                prop_assert_eq!(tree_f, dn, "tree vs dinic at ({s}, {t})");
                prop_assert_eq!(dn, ek, "dinic vs edmonds-karp at ({s}, {t})");
                prop_assert_eq!(ek, pr, "edmonds-karp vs push-relabel at ({s}, {t})");
            }
        }
    }

    #[test]
    fn tree_flow_lower_bounds_directed_flow(
        edges in prop::collection::vec((0u32..12, 0u32..12, 1u64..1000), 0..40),
    ) {
        let g = build_directed(&edges);
        let tree = GomoryHuTree::build(&g);
        for s in 0..12u32 {
            for t in (s + 1)..12u32 {
                let tree_f = tree.flow(PeerId(s), PeerId(t));
                let fwd = maxflow::compute(&g, PeerId(s), PeerId(t), Method::Dinic);
                let bwd = maxflow::compute(&g, PeerId(t), PeerId(s), Method::Dinic);
                prop_assert!(
                    tree_f <= fwd && tree_f <= bwd,
                    "tree {tree_f:?} must lower-bound directed flows {fwd:?} / {bwd:?} at ({s}, {t})"
                );
            }
        }
    }

    #[test]
    fn tree_sweeps_match_pair_queries_and_are_symmetric(
        edges in sym_edges_strategy(12, 36),
        s in 0u32..14,
    ) {
        // s ranges past the node universe so absent sources are hit too
        let g = build_symmetric(&edges);
        let tree = GomoryHuTree::build(&g);
        let flows = tree.all_flows_from(PeerId(s));
        prop_assert!(!flows.contains_key(&PeerId(s)));
        for t in 0..14u32 {
            let pair = tree.flow(PeerId(s), PeerId(t));
            let swept = flows.get(&PeerId(t)).copied().unwrap_or(Bytes::ZERO);
            prop_assert_eq!(swept, pair, "all_flows_from({s})[{t}]");
            prop_assert_eq!(pair, tree.flow(PeerId(t), PeerId(s)), "symmetry at ({s}, {t})");
        }
    }

    #[test]
    fn every_backend_flow_carries_a_mincut_certificate(
        edges in prop::collection::vec((0u32..10, 0u32..10, 1u64..1000), 0..30),
        s in 0u32..10,
        t in 0u32..10,
    ) {
        let g = build_directed(&edges);
        let mut net = FlowNetwork::from_graph(&g);
        let (Some(si), Some(ti)) = (net.node(PeerId(s)), net.node(PeerId(t))) else {
            return Ok(());
        };
        if si == ti {
            return Ok(());
        }
        type Backend = (&'static str, fn(&mut FlowNetwork, u32, u32) -> u64);
        let backends: [Backend; 5] = [
            ("ford_fulkerson", maxflow::ford_fulkerson),
            ("edmonds_karp", maxflow::edmonds_karp),
            ("dinic", maxflow::dinic),
            ("push_relabel", maxflow::push_relabel),
            ("bounded_full", |n, s, t| maxflow::bounded(n, s, t, 64)),
        ];
        for (name, run) in backends {
            net.reset();
            let flow = run(&mut net, si, ti);
            // the sink-side certificate holds for flows and preflows
            let side = mincut::sink_side_complement(&net, ti);
            prop_assert!(side[si as usize], "{name}: s left the S side");
            prop_assert!(!side[ti as usize], "{name}: t not cut off");
            prop_assert_eq!(mincut::cut_capacity(&net, &side), flow, "{name} cut capacity");
            if name != "push_relabel" {
                let side = mincut::source_side(&net, si);
                prop_assert!(side[si as usize] && !side[ti as usize], "{name} separation");
                prop_assert_eq!(mincut::cut_capacity(&net, &side), flow, "{name} source cut");
            }
        }
    }
}

/// One deterministic large case at the satellite's 64-node ceiling:
/// a symmetric small-world-ish graph where the tree must agree with
/// per-pair Dinic on a sampled set of pairs.
#[test]
fn gomoryhu_agrees_with_dinic_at_64_nodes() {
    let n = 64u32;
    let mut g = ContributionGraph::new();
    // ring
    for i in 0..n {
        let j = (i + 1) % n;
        let w = 50 + (i as u64 * 37) % 400;
        g.add_transfer(PeerId(i), PeerId(j), Bytes(w));
        g.add_transfer(PeerId(j), PeerId(i), Bytes(w));
    }
    // deterministic chords
    let mut x = 0x9E3779B97F4A7C15u64;
    for _ in 0..3 * n {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let a = ((x >> 33) % n as u64) as u32;
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let b = ((x >> 33) % n as u64) as u32;
        if a != b {
            let w = 10 + (x % 300);
            g.add_transfer(PeerId(a), PeerId(b), Bytes(w));
            g.add_transfer(PeerId(b), PeerId(a), Bytes(w));
        }
    }
    assert_eq!(g.asymmetry(), 0.0);
    let tree = GomoryHuTree::build(&g);
    assert_eq!(tree.node_count(), 64);
    // sample pairs: every node against a stride of targets
    for s in 0..n {
        for k in 0..4 {
            let t = (s + 7 + 13 * k) % n;
            if s == t {
                continue;
            }
            let exact = maxflow::compute(&g, PeerId(s), PeerId(t), Method::Dinic);
            assert_eq!(tree.flow(PeerId(s), PeerId(t)), exact, "pair ({s}, {t})");
        }
    }
}

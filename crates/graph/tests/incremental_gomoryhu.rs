//! Differential suite for incremental Gomory–Hu maintenance and the
//! CSR adjacency layout.
//!
//! Pinned properties:
//! * a patched tree answers **every** pair query bit-identically to a
//!   from-scratch Gusfield rebuild, across random symmetric
//!   edge-mutation sequences with long sync gaps (many mutations per
//!   patch);
//! * on symmetric graphs both equal per-pair Dinic exactly;
//! * the CSR-backed `ContributionGraph` is observationally equivalent
//!   to a plain hash-map-of-hash-maps model under random interleaved
//!   `add_transfer` / `merge_record` sequences;
//! * a pinned 64-node case guards the patch path at a size where block
//!   relocation, compaction, and multi-word cut bitsets all engage.
//!
//! The vendored proptest derives every case deterministically, so
//! failures reproduce byte-for-byte.

use bartercast_graph::contribution::ContributionGraph;
use bartercast_graph::gomoryhu::GomoryHuTree;
use bartercast_graph::maxflow::{self, Method};
use bartercast_util::units::{Bytes, PeerId};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

fn p(i: u32) -> PeerId {
    PeerId(i)
}

/// Add an undirected edge: both directions, equal weight, so the graph
/// stays exactly symmetric and the tree stays exact.
fn undirected(g: &mut ContributionGraph, a: u32, b: u32, w: u64) {
    if a != b {
        g.add_transfer(p(a), p(b), Bytes(w));
        g.add_transfer(p(b), p(a), Bytes(w));
    }
}

/// Every ordered pair's tree flow over peer ids `0..n` — the raw `u64`
/// values whose bit-identity the suite pins.
fn all_pairs(tree: &GomoryHuTree, n: u32) -> Vec<u64> {
    let mut v = Vec::with_capacity((n * n) as usize);
    for s in 0..n {
        for t in 0..n {
            v.push(tree.flow(p(s), p(t)).0);
        }
    }
    v
}

/// A random symmetric edge list over nodes `0..n`.
fn sym_edges(n: u32, max: usize) -> impl Strategy<Value = Vec<(u32, u32, u64)>> {
    prop::collection::vec((0..n, 0..n, 1u64..1000), 1..max)
}

/// Batches of symmetric mutations: each inner vec is one sync gap's
/// worth of edge growth, applied together before a single patch.
fn mutation_batches(n: u32) -> impl Strategy<Value = Vec<Vec<(u32, u32, u64)>>> {
    prop::collection::vec(prop::collection::vec((0..n, 0..n, 1u64..500), 1..6), 1..5)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The tentpole differential: chain patches across mutation
    /// batches and demand bit-identity with a from-scratch rebuild
    /// after every sync — and exactness against per-pair Dinic, since
    /// the graph is kept symmetric throughout.
    #[test]
    fn patch_chain_matches_rebuild(
        base in sym_edges(10, 30),
        batches in mutation_batches(10),
    ) {
        let mut g = ContributionGraph::new();
        for &(a, b, w) in &base {
            undirected(&mut g, a, b, w);
        }
        let mut tree = GomoryHuTree::build(&g);
        for batch in &batches {
            // a long sync gap: the whole batch lands before one patch
            for &(a, b, w) in batch {
                undirected(&mut g, a, b, w);
            }
            // limit 64 > any dirty set here, so only node-set growth
            // can force the rebuild arm — both arms are exercised
            tree = match tree.patch_with_limit(&g, 64) {
                Some(t) => t,
                None => GomoryHuTree::build(&g),
            };
            let rebuilt = GomoryHuTree::build(&g);
            prop_assert_eq!(tree.version(), rebuilt.version());
            prop_assert_eq!(all_pairs(&tree, 10), all_pairs(&rebuilt, 10));
            for s in 0..10u32 {
                for t in 0..10u32 {
                    let exact = maxflow::compute(&g, p(s), p(t), Method::Dinic);
                    prop_assert_eq!(tree.flow(p(s), p(t)), exact, "pair ({s}, {t})");
                }
            }
        }
    }

    /// The CSR arena behind `ContributionGraph` is observationally
    /// equivalent to the old hash-of-hash adjacency: same edges, same
    /// totals, same counts, same dirty sets, under any interleaving of
    /// the two mutation entry points.
    #[test]
    fn csr_adjacency_matches_hashmap_model(
        ops in prop::collection::vec((0u32..9, 0u32..9, 1u64..200, prop::bool::ANY), 1..60),
        since_at in 0usize..60,
    ) {
        let mut g = ContributionGraph::new();
        let mut out: BTreeMap<u32, BTreeMap<u32, u64>> = BTreeMap::new();
        let mut inc: BTreeMap<u32, BTreeMap<u32, u64>> = BTreeMap::new();
        let mut model_dirty: BTreeSet<u32> = BTreeSet::new();
        let mut since = 0u64;
        for (i, &(f, t, w, merge)) in ops.iter().enumerate() {
            if i == since_at {
                since = g.version();
                model_dirty.clear();
            }
            let effective = if merge {
                let cur = out.get(&f).and_then(|m| m.get(&t)).copied().unwrap_or(0);
                let eff = f != t && w > cur;
                if eff {
                    out.entry(f).or_default().insert(t, w);
                    inc.entry(t).or_default().insert(f, w);
                }
                prop_assert_eq!(g.merge_record(p(f), p(t), Bytes(w)), eff);
                eff
            } else {
                let eff = f != t;
                if eff {
                    *out.entry(f).or_default().entry(t).or_default() += w;
                    *inc.entry(t).or_default().entry(f).or_default() += w;
                }
                g.add_transfer(p(f), p(t), Bytes(w));
                eff
            };
            if effective {
                model_dirty.insert(f);
                model_dirty.insert(t);
            }
        }
        g.check_invariants().unwrap();
        let model_nodes: BTreeSet<u32> =
            out.keys().chain(inc.keys()).copied().collect();
        prop_assert_eq!(g.node_count(), model_nodes.len());
        prop_assert_eq!(g.edge_count(), out.values().map(BTreeMap::len).sum::<usize>());
        for f in 0..9u32 {
            for t in 0..9u32 {
                let expect = out.get(&f).and_then(|m| m.get(&t)).copied().unwrap_or(0);
                prop_assert_eq!(g.edge(p(f), p(t)).0, expect, "edge ({f}, {t})");
            }
            let mut got_out: Vec<(u32, u64)> =
                g.out_edges(p(f)).map(|(id, b)| (id.0, b.0)).collect();
            got_out.sort_unstable();
            let expect_out: Vec<(u32, u64)> = out
                .get(&f)
                .map(|m| m.iter().map(|(&t, &w)| (t, w)).collect())
                .unwrap_or_default();
            prop_assert_eq!(got_out, expect_out, "out_edges({f})");
            let mut got_in: Vec<(u32, u64)> =
                g.in_edges(p(f)).map(|(id, b)| (id.0, b.0)).collect();
            got_in.sort_unstable();
            let expect_in: Vec<(u32, u64)> = inc
                .get(&f)
                .map(|m| m.iter().map(|(&s, &w)| (s, w)).collect())
                .unwrap_or_default();
            prop_assert_eq!(got_in, expect_in, "in_edges({f})");
            prop_assert_eq!(g.total_up(p(f)).0, expect_out.iter().map(|&(_, w)| w).sum::<u64>());
            prop_assert_eq!(g.total_down(p(f)).0, expect_in.iter().map(|&(_, w)| w).sum::<u64>());
        }
        let mut dirty: Vec<u32> = g.dirty_nodes_since(since).map(|id| id.0).collect();
        dirty.sort_unstable();
        let expect_dirty: Vec<u32> = model_dirty.into_iter().collect();
        prop_assert_eq!(dirty, expect_dirty, "dirty_nodes_since({since})");
    }
}

/// Deterministic 64-node symmetric graph: a ring for connectivity plus
/// LCG-derived chords — large enough that arena blocks relocate, cut
/// bitsets span a full word, and dirty sets stay a small fraction of n.
fn pinned_graph() -> ContributionGraph {
    let mut g = ContributionGraph::new();
    for i in 0..64u32 {
        undirected(&mut g, i, (i + 1) % 64, u64::from(i % 7) + 1);
    }
    let mut state = 0x9e3779b97f4a7c15u64;
    for _ in 0..96 {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let a = ((state >> 33) % 64) as u32;
        let b = ((state >> 13) % 64) as u32;
        undirected(&mut g, a, b, (state % 50) + 1);
    }
    g
}

#[test]
fn pinned_64_node_patch_case() {
    let mut g = pinned_graph();
    assert_eq!(g.node_count(), 64);
    assert_eq!(g.asymmetry(), 0.0);
    let tree = GomoryHuTree::build(&g);

    // m = 4 symmetric mutations on existing pairs: 8 dirty nodes,
    // exactly the small-dirty-set regime patch() itself accepts (its
    // default 64/8 = 8 ceiling) — no widened test-only limit here
    for (a, b, w) in [(0, 1, 100), (10, 11, 7), (30, 31, 50), (50, 51, 3)] {
        undirected(&mut g, a, b, w);
    }
    assert!(
        g.dirty_nodes_since(tree.version()).count() <= 8,
        "the fixture must stay in patch territory"
    );
    let patched = tree.patch(&g).expect("small dirty set must patch");
    let rebuilt = GomoryHuTree::build(&g);
    let (pa, ra) = (all_pairs(&patched, 64), all_pairs(&rebuilt, 64));
    assert_eq!(pa, ra, "patched tree must be bit-identical to rebuild");

    // pinned ground truth: the all-pairs flow checksum of this fixture
    // (catches regressions in build and patch alike, not just drift
    // between them)
    let checksum: u128 = pa.iter().map(|&f| u128::from(f)).sum();
    assert_eq!(checksum, PINNED_ALL_PAIRS_CHECKSUM);

    // spot-check exactness against per-pair Dinic on a sample spread
    for (s, t) in [(0u32, 32u32), (1, 63), (10, 50), (7, 23), (31, 30)] {
        let exact = maxflow::compute(&g, p(s), p(t), Method::Dinic);
        assert_eq!(patched.flow(p(s), p(t)), exact, "pair ({s}, {t})");
    }
}

/// Sum of all 64 × 64 ordered-pair flows of the mutated pinned graph.
const PINNED_ALL_PAIRS_CHECKSUM: u128 = 213948;

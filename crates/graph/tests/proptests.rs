//! Property-based tests for the maxflow algorithms and contribution
//! graph, using random graphs.
//!
//! Verified invariants:
//! * all three unbounded algorithms agree on every random graph;
//! * the max-flow/min-cut certificate holds for every computed flow;
//! * flow conservation holds at every interior node;
//! * bounded flow is monotone in the bound and converges to the
//!   unbounded value;
//! * adding capacity never decreases maxflow;
//! * `merge_record` is idempotent and order-insensitive (max-merge);
//! * the SSAT kernel reproduces per-pair `Bounded(2)` flows exactly,
//!   in both directions, including absent and saturated nodes.

use bartercast_graph::contribution::ContributionGraph;
use bartercast_graph::maxflow::{self, Method};
use bartercast_graph::mincut;
use bartercast_graph::network::FlowNetwork;
use bartercast_graph::ssat;
use bartercast_util::units::{Bytes, PeerId};
use proptest::prelude::*;

/// A random edge list over up to `n` nodes.
fn edges_strategy(n: u32, max_edges: usize) -> impl Strategy<Value = Vec<(u32, u32, u64)>> {
    prop::collection::vec((0..n, 0..n, 1u64..1000), 0..max_edges)
}

fn build(edges: &[(u32, u32, u64)]) -> ContributionGraph {
    let mut g = ContributionGraph::new();
    for &(f, t, c) in edges {
        if f != t {
            g.add_transfer(PeerId(f), PeerId(t), Bytes(c));
        }
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn unbounded_methods_agree(edges in edges_strategy(12, 40), s in 0u32..12, t in 0u32..12) {
        let g = build(&edges);
        let ff = maxflow::compute(&g, PeerId(s), PeerId(t), Method::FordFulkerson);
        let ek = maxflow::compute(&g, PeerId(s), PeerId(t), Method::EdmondsKarp);
        let dn = maxflow::compute(&g, PeerId(s), PeerId(t), Method::Dinic);
        let pr = maxflow::compute(&g, PeerId(s), PeerId(t), Method::PushRelabel);
        prop_assert_eq!(ff, ek);
        prop_assert_eq!(ek, dn);
        prop_assert_eq!(dn, pr);
    }

    #[test]
    fn mincut_certifies_maxflow(edges in edges_strategy(10, 30), s in 0u32..10, t in 0u32..10) {
        let g = build(&edges);
        let mut net = FlowNetwork::from_graph(&g);
        if let (Some(si), Some(ti)) = (net.node(PeerId(s)), net.node(PeerId(t))) {
            if si != ti {
                let flow = maxflow::dinic(&mut net, si, ti);
                let side = mincut::source_side(&net, si);
                prop_assert!(!side[ti as usize], "target must be cut off at optimum");
                prop_assert_eq!(mincut::cut_capacity(&net, &side), flow);
                prop_assert!(net.check_conservation(si, ti).is_ok());
            }
        }
    }

    #[test]
    fn bounded_is_monotone_and_converges(edges in edges_strategy(10, 30), s in 0u32..10, t in 0u32..10) {
        let g = build(&edges);
        let s = PeerId(s);
        let t = PeerId(t);
        let unbounded = maxflow::compute(&g, s, t, Method::Dinic);
        let mut prev = Bytes::ZERO;
        for k in 0..=10 {
            let f = maxflow::compute(&g, s, t, Method::Bounded(k));
            prop_assert!(f >= prev, "bound {k}: flow decreased from {prev:?} to {f:?}");
            prop_assert!(f <= unbounded);
            prev = f;
        }
        // with bound >= n-1, every simple path is admissible
        prop_assert_eq!(maxflow::compute(&g, s, t, Method::Bounded(10)), unbounded);
    }

    #[test]
    fn adding_capacity_never_decreases_flow(
        edges in edges_strategy(8, 20),
        extra in (0u32..8, 0u32..8, 1u64..500),
        s in 0u32..8, t in 0u32..8,
    ) {
        let g = build(&edges);
        let before = maxflow::compute(&g, PeerId(s), PeerId(t), Method::Dinic);
        let mut g2 = g.clone();
        let (ef, et, ec) = extra;
        if ef != et {
            g2.add_transfer(PeerId(ef), PeerId(et), Bytes(ec));
        }
        let after = maxflow::compute(&g2, PeerId(s), PeerId(t), Method::Dinic);
        prop_assert!(after >= before);
    }

    #[test]
    fn flow_bounded_by_degrees(edges in edges_strategy(10, 30), s in 0u32..10, t in 0u32..10) {
        let g = build(&edges);
        let f = maxflow::compute(&g, PeerId(s), PeerId(t), Method::EdmondsKarp);
        let out_s: u64 = g.out_edges(PeerId(s)).map(|(_, b)| b.0).sum();
        let in_t: u64 = g.in_edges(PeerId(t)).map(|(_, b)| b.0).sum();
        prop_assert!(f.0 <= out_s);
        prop_assert!(f.0 <= in_t);
    }

    #[test]
    fn merge_records_order_insensitive(
        records in prop::collection::vec((0u32..6, 0u32..6, 1u64..1000), 0..25),
        seed in 0u64..1000,
    ) {
        let mut a = ContributionGraph::new();
        for &(f, t, c) in &records {
            a.merge_record(PeerId(f), PeerId(t), Bytes(c));
        }
        // shuffle deterministically by seed
        let mut shuffled = records.clone();
        let mut state = seed.wrapping_add(1);
        for i in (1..shuffled.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            shuffled.swap(i, j);
        }
        let mut b = ContributionGraph::new();
        for &(f, t, c) in &shuffled {
            b.merge_record(PeerId(f), PeerId(t), Bytes(c));
        }
        for &(f, t, _) in &records {
            prop_assert_eq!(a.edge(PeerId(f), PeerId(t)), b.edge(PeerId(f), PeerId(t)));
        }
        a.check_invariants().unwrap();
        b.check_invariants().unwrap();
    }

    #[test]
    fn merge_record_idempotent(f in 0u32..5, t in 0u32..5, c in 1u64..1000) {
        let mut g = ContributionGraph::new();
        g.merge_record(PeerId(f), PeerId(t), Bytes(c));
        let v = g.version();
        let changed = g.merge_record(PeerId(f), PeerId(t), Bytes(c));
        prop_assert!(!changed);
        prop_assert_eq!(g.version(), v);
    }

    #[test]
    fn invariants_hold_after_random_ops(
        ops in prop::collection::vec((0u32..8, 0u32..8, 1u64..100, prop::bool::ANY), 0..50)
    ) {
        let mut g = ContributionGraph::new();
        for &(f, t, c, merge) in &ops {
            if merge {
                g.merge_record(PeerId(f), PeerId(t), Bytes(c));
            } else {
                g.add_transfer(PeerId(f), PeerId(t), Bytes(c));
            }
        }
        prop_assert!(g.check_invariants().is_ok());
    }

    #[test]
    fn ssat_matches_per_pair_bounded_two(edges in edges_strategy(12, 40), s in 0u32..14) {
        // s in 0..14 > node range so absent sources are exercised too;
        // self-loops are filtered by build(), and random graphs with
        // repeated (f, t) pairs produce saturated middles.
        let g = build(&edges);
        let source = PeerId(s);
        let out = ssat::flows_from(&g, source);
        let into = ssat::flows_into(&g, source);
        for t in 0..14u32 {
            let target = PeerId(t);
            let expect_out = maxflow::compute(&g, source, target, Method::Bounded(2));
            let got_out = out.get(&target).copied().unwrap_or(Bytes::ZERO);
            prop_assert_eq!(got_out, expect_out, "flows_from({source})[{target}]");
            let expect_in = maxflow::compute(&g, target, source, Method::Bounded(2));
            let got_in = into.get(&target).copied().unwrap_or(Bytes::ZERO);
            prop_assert_eq!(got_in, expect_in, "flows_into({source})[{target}]");
        }
        // the kernel must never report the source as its own target
        prop_assert!(!out.contains_key(&source));
        prop_assert!(!into.contains_key(&source));
    }

    #[test]
    fn ssat_matches_on_saturated_middles(
        caps in (1u64..50, 1u64..50, 1u64..50, 1u64..50),
    ) {
        // hub graph: s feeds one middle that fans out to two targets,
        // plus a direct edge — capacities chosen so the middle's in-
        // or out-capacity saturates in either order
        let (a, b, c, d) = caps;
        let mut g = ContributionGraph::new();
        g.add_transfer(PeerId(0), PeerId(1), Bytes(a)); // s -> m
        g.add_transfer(PeerId(1), PeerId(2), Bytes(b)); // m -> t1
        g.add_transfer(PeerId(1), PeerId(3), Bytes(c)); // m -> t2
        g.add_transfer(PeerId(0), PeerId(2), Bytes(d)); // s -> t1 direct
        let out = ssat::flows_from(&g, PeerId(0));
        for t in 1..4u32 {
            let expect = maxflow::compute(&g, PeerId(0), PeerId(t), Method::Bounded(2));
            prop_assert_eq!(out.get(&PeerId(t)).copied().unwrap_or(Bytes::ZERO), expect);
        }
    }

    #[test]
    fn compute_is_deterministic(edges in edges_strategy(10, 30), s in 0u32..10, t in 0u32..10) {
        let g = build(&edges);
        for m in [Method::FordFulkerson, Method::EdmondsKarp, Method::Dinic, Method::PushRelabel, Method::Bounded(2)] {
            let a = maxflow::compute(&g, PeerId(s), PeerId(t), m);
            let b = maxflow::compute(&g, PeerId(s), PeerId(t), m);
            prop_assert_eq!(a, b);
        }
    }
}

//! Differential harness for the layered-DAG bounded-k kernel.
//!
//! Pins the kernel's exactness contract on random directed graphs for
//! every hop bound `k ∈ {1..6}`:
//!
//! * `BoundedKKernel` point queries, `flows_from` sweeps and
//!   `flows_into` sweeps are all **bit-identical** to per-pair
//!   depth-bounded evaluation (`maxflow::compute` with
//!   `Method::Bounded(k)`) for every ordered pair — including pairs
//!   outside the k-ball, whose flow must be zero;
//! * at `k = 2` the kernel agrees with the existing closed-form SSAT
//!   kernel ([`bartercast_graph::ssat`]), tying the generalization
//!   back to the deployed two-hop path;
//! * the [`Ssat`] backend — which now admits every finite bound —
//!   produces the same values through its `FlowBackend` surface;
//! * a deterministic 64-node ring-plus-chords case (the Gomory–Hu
//!   suite's shape, directed this time) pins the behaviour at
//!   realistic scale for `k ∈ {3, 4}`.
//!
//! Bit-identity is the strongest possible contract here because for
//! `k ≥ 3` the bounded value is augmentation-order dependent: the
//! kernel must reproduce the reference procedure's exact path
//! sequence, not merely some maximal bounded flow.
//!
//! Runs under the vendored deterministic proptest (fixed per-case seed
//! derivation, no regression files); `scripts/tier1.sh` runs it
//! explicitly and fails on any `proptest-regressions` drift.

use bartercast_graph::backend::{FlowBackend, Ssat};
use bartercast_graph::boundedk::BoundedKKernel;
use bartercast_graph::contribution::ContributionGraph;
use bartercast_graph::maxflow::{self, Method};
use bartercast_graph::ssat;
use bartercast_util::units::{Bytes, PeerId};
use bartercast_util::FxHashMap;
use proptest::prelude::*;

fn p(i: u32) -> PeerId {
    PeerId(i)
}

fn edges_strategy() -> impl Strategy<Value = Vec<(u32, u32, u64)>> {
    prop::collection::vec((0u32..14, 0u32..14, 1u64..1000), 0..70)
}

fn build_directed(edges: &[(u32, u32, u64)]) -> ContributionGraph {
    let mut g = ContributionGraph::new();
    for &(f, t, c) in edges {
        if f != t {
            g.add_transfer(p(f), p(t), Bytes(c));
        }
    }
    g
}

fn sorted_nodes(g: &ContributionGraph) -> Vec<PeerId> {
    let mut nodes: Vec<PeerId> = g.nodes().into_iter().collect();
    nodes.sort_unstable_by_key(|n| n.0);
    nodes
}

fn get(m: &FxHashMap<PeerId, Bytes>, k: &PeerId) -> Bytes {
    m.get(k).copied().unwrap_or(Bytes::ZERO)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Tentpole contract: kernel == per-pair depth-bounded evaluation,
    /// bit for bit, on every ordered pair and every tested k.
    #[test]
    fn kernel_is_bit_identical_to_per_pair_bounded(
        edges in edges_strategy(),
        k in 1usize..=6,
    ) {
        let g = build_directed(&edges);
        let nodes = sorted_nodes(&g);
        let mut kernel = BoundedKKernel::new(k);
        for &s in &nodes {
            let away = kernel.flows_from(&g, s);
            let toward = kernel.flows_into(&g, s);
            for &t in &nodes {
                if s == t {
                    continue;
                }
                let out_ref = maxflow::compute(&g, s, t, Method::Bounded(k));
                let in_ref = maxflow::compute(&g, t, s, Method::Bounded(k));
                prop_assert_eq!(get(&away, &t), out_ref, "away {} -> {} at k={}", s, t, k);
                prop_assert_eq!(get(&toward, &t), in_ref, "toward {} -> {} at k={}", t, s, k);
                prop_assert_eq!(kernel.flow(&g, s, t), out_ref, "point {} -> {}", s, t);
            }
        }
    }

    /// At the deployed bound the layered DAG and the disjoint-paths
    /// closed form are two derivations of the same function.
    #[test]
    fn kernel_matches_closed_form_at_k2(edges in edges_strategy()) {
        let g = build_directed(&edges);
        let mut kernel = BoundedKKernel::new(2);
        for s in sorted_nodes(&g) {
            let away = kernel.flows_from(&g, s);
            let closed_away = ssat::flows_from(&g, s);
            let toward = kernel.flows_into(&g, s);
            let closed_toward = ssat::flows_into(&g, s);
            for j in away.keys().chain(closed_away.keys()) {
                prop_assert_eq!(get(&away, j), get(&closed_away, j), "away {} of {}", j, s);
            }
            for j in toward.keys().chain(closed_toward.keys()) {
                prop_assert_eq!(get(&toward, j), get(&closed_toward, j), "toward {} of {}", j, s);
            }
        }
    }

    /// The widened Ssat backend serves k ≥ 3 through the kernel:
    /// sweeps and point queries through the FlowBackend surface match
    /// per-pair evaluation exactly.
    #[test]
    fn ssat_backend_matches_per_pair_for_all_finite_k(
        edges in edges_strategy(),
        k in 1usize..=6,
    ) {
        let g = build_directed(&edges);
        let method = Method::Bounded(k);
        let mut backend = Ssat::new(method);
        prop_assert!(backend.supports(method, 1.0), "k = {} must be admitted", k);
        let nodes = sorted_nodes(&g);
        for &i in &nodes {
            let flows = backend.all_flows_from(&g, i).expect("finite k has a sweep");
            for &j in &nodes {
                if i == j {
                    continue;
                }
                let pair = flows.get(&j).copied().unwrap_or_default();
                prop_assert_eq!(pair.away, maxflow::compute(&g, i, j, method));
                prop_assert_eq!(pair.toward, maxflow::compute(&g, j, i, method));
                prop_assert_eq!(backend.flow(&g, i, j), pair.away);
            }
        }
    }
}

/// Deterministic 64-node directed ring plus pseudo-random chords (the
/// Gomory–Hu suite's pinned-case shape), checked at the two bounds the
/// bench exercises.
#[test]
fn kernel_agrees_with_per_pair_at_64_nodes() {
    let n = 64u32;
    let mut g = ContributionGraph::new();
    for i in 0..n {
        let j = (i + 1) % n;
        let w = 50 + (i as u64 * 37) % 400;
        g.add_transfer(p(i), p(j), Bytes(w));
        g.add_transfer(p(j), p(i), Bytes(w / 2 + 1));
    }
    let mut x = 0x9E3779B97F4A7C15u64;
    for _ in 0..3 * n {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let a = ((x >> 33) % n as u64) as u32;
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let b = ((x >> 33) % n as u64) as u32;
        if a != b {
            g.add_transfer(p(a), p(b), Bytes(10 + (x % 300)));
        }
    }
    for k in [3usize, 4] {
        let mut kernel = BoundedKKernel::new(k);
        for s in 0..n {
            let away = kernel.flows_from(&g, p(s));
            let toward = kernel.flows_into(&g, p(s));
            // every node against a stride of targets, plus full checks
            // that sweep entries absent from the stride are consistent
            for step in 0..4 {
                let t = (s + 7 + 13 * step) % n;
                if s == t {
                    continue;
                }
                let out_ref = maxflow::compute(&g, p(s), p(t), Method::Bounded(k));
                let in_ref = maxflow::compute(&g, p(t), p(s), Method::Bounded(k));
                assert_eq!(get(&away, &p(t)), out_ref, "away ({s}, {t}) k={k}");
                assert_eq!(get(&toward, &p(t)), in_ref, "toward ({t}, {s}) k={k}");
            }
        }
    }
}

/// The order-dependence witness as an integration pin: two graphs that
/// differ only in edge insertion order (hence adjacency order) may
/// have different Bounded(3) values — and the kernel must track the
/// reference on each of them individually.
#[test]
fn kernel_tracks_reference_across_insertion_orders() {
    let edge_sets: [&[(u32, u32)]; 2] = [
        &[(0, 1), (0, 2), (1, 3), (2, 3), (2, 4), (3, 5), (4, 5)],
        &[(0, 2), (0, 1), (2, 4), (2, 3), (1, 3), (4, 5), (3, 5)],
    ];
    for edges in edge_sets {
        let mut g = ContributionGraph::new();
        for &(f, t) in edges {
            g.add_transfer(p(f), p(t), Bytes(1));
        }
        let mut kernel = BoundedKKernel::new(3);
        assert_eq!(
            kernel.flow(&g, p(0), p(5)),
            maxflow::compute(&g, p(0), p(5), Method::Bounded(3))
        );
    }
}

//! Private-tracker ratio enforcement, a third choke policy beside
//! rank and ban.
//!
//! The paper observes (§2, §6) that private BitTorrent communities
//! suppress freeriding by banning members whose lifetime *share
//! ratio* — bytes uploaded over bytes downloaded — falls below a
//! threshold, at the cost of a central accounting server. BarterCast's
//! subjective contribution graphs let a peer apply the same rule with
//! no tracker: the `up`/`down` totals its own graph records for a
//! candidate (first-hand transfers max-merged with gossiped records)
//! stand in for the tracker's ledger.
//!
//! [`RatioPolicy`] admits a candidate when either
//!
//! * the candidate is still inside its **grace allowance** — it has
//!   downloaded fewer than `grace` bytes in total, so a fresh joiner
//!   that *cannot* have a meaningful ratio yet is not locked out (the
//!   same bootstrap hole the optimistic unchoke fills for
//!   tit-for-tat); or
//! * its share ratio `up / down` is at least `min_ratio`.
//!
//! Like the ban policy, refusal is total: a peer below the ratio gets
//! neither regular nor optimistic slots. Within the admitted pool the
//! optimistic rotation keeps plain round-robin order — the policy
//! gates, it does not rank. Note the whitewashing trade-off the paper
//! discusses: the grace allowance is exactly what a banned peer
//! reclaims by rejoining under a fresh identity, which the swarm
//! harness's whitewash scenario measures.

use crate::choke::{ChokePolicy, PeerScore};
use bartercast_util::units::{Bytes, PeerId};
use serde::{Deserialize, Serialize};

/// Minimum-share-ratio admission with a grace allowance for new
/// peers. See the [module docs](self) for the rule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RatioPolicy {
    /// Minimum acceptable share ratio `up / down`. Private trackers
    /// commonly require 0.3–0.7; the default is 0.5.
    pub min_ratio: f64,
    /// Candidates that have downloaded less than this many bytes in
    /// total are always admitted, ratio regardless.
    pub grace: Bytes,
}

impl Default for RatioPolicy {
    fn default() -> Self {
        RatioPolicy {
            min_ratio: 0.5,
            grace: Bytes::from_mb(64),
        }
    }
}

impl ChokePolicy for RatioPolicy {
    fn admit(&self, score: &PeerScore) -> bool {
        score.down < self.grace || score.share_ratio() >= self.min_ratio
    }

    fn order_candidates(
        &self,
        pool: &[PeerId],
        score: &mut dyn FnMut(PeerId) -> PeerScore,
    ) -> Vec<PeerId> {
        // Keep round-robin order; drop peers the ratio refuses (the
        // pool is pre-filtered by `admit` in the unchoke path, but the
        // trait contract is that ordering alone is also safe).
        pool.iter()
            .copied()
            .filter(|&p| self.admit(&score(p)))
            .collect()
    }

    fn policy_label(&self) -> String {
        format!("ratio({})", self.min_ratio)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn score(up: u64, down: u64) -> PeerScore {
        PeerScore {
            reputation: 0.0,
            up: Bytes(up),
            down: Bytes(down),
        }
    }

    #[test]
    fn grace_admits_fresh_peers() {
        let pol = RatioPolicy {
            min_ratio: 0.5,
            grace: Bytes::from_mb(1),
        };
        // zero history: ratio undefined, grace covers it
        assert!(pol.admit(&score(0, 0)));
        // downloaded under the grace allowance with no uploads
        assert!(pol.admit(&score(0, Bytes::from_mb(1).0 - 1)));
    }

    #[test]
    fn ratio_gates_past_grace() {
        let pol = RatioPolicy {
            min_ratio: 0.5,
            grace: Bytes::from_mb(1),
        };
        let past = Bytes::from_mb(10).0;
        assert!(!pol.admit(&score(0, past)), "pure freerider refused");
        assert!(!pol.admit(&score(past / 4, past)), "ratio 0.25 refused");
        assert!(pol.admit(&score(past / 2, past)), "ratio 0.5 admitted");
        assert!(pol.admit(&score(past * 2, past)), "over-seeder admitted");
    }

    #[test]
    fn ordering_filters_but_keeps_round_robin_order() {
        let pol = RatioPolicy {
            min_ratio: 0.5,
            grace: Bytes(0),
        };
        let pool = vec![PeerId(3), PeerId(1), PeerId(2)];
        let mut lookup = |p: PeerId| match p.0 {
            1 => score(0, 100),  // freerider
            2 => score(80, 100), // good ratio
            _ => score(50, 100), // exactly at threshold
        };
        assert_eq!(
            pol.order_candidates(&pool, &mut lookup),
            vec![PeerId(3), PeerId(2)]
        );
    }

    #[test]
    fn label_and_default() {
        assert_eq!(RatioPolicy::default().policy_label(), "ratio(0.5)");
        assert_eq!(RatioPolicy::default().grace, Bytes::from_mb(64));
    }
}

//! A piece-level BitTorrent protocol simulator (§4.1).
//!
//! Implements the protocol mechanics the paper's simulator models:
//!
//! * per-peer piece **bitfields** and interest ([`Bitfield`]);
//! * **tit-for-tat choking**: leechers unchoke the peers that provide
//!   the highest return rate, seeders unchoke the fastest downloaders,
//!   with a limited number of upload slots ([`choke`]);
//! * **optimistic unchoking** via round-robin rotation, the hook where
//!   BarterCast's *rank* policy plugs in;
//! * the *ban* policy filter that refuses all slots below a reputation
//!   threshold (§4.2);
//! * **rarest-first** piece selection ([`swarm`]);
//! * leecher/seeder state per swarm with byte-credit accounting that
//!   converts transferred bytes into completed pieces.
//!
//! The crate is deliberately independent of the trace/simulation
//! engine: it holds per-swarm protocol state and pure decision logic,
//! while `bartercast-sim` owns time, bandwidth and the network.

#![warn(missing_docs)]

pub mod bitfield;
pub mod choke;
pub mod config;
pub mod swarm;

pub use bitfield::Bitfield;
pub use choke::{Candidate, Choker};
pub use config::BtConfig;
pub use swarm::{Member, Role, Swarm};

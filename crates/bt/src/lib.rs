//! A piece-level BitTorrent protocol simulator (§4.1).
//!
//! Implements the protocol mechanics the paper's simulator models:
//!
//! * per-peer piece **bitfields** and interest ([`Bitfield`]);
//! * **tit-for-tat choking**: leechers unchoke the peers that provide
//!   the highest return rate, seeders unchoke the fastest downloaders,
//!   with a limited number of upload slots ([`choke`]);
//! * **optimistic unchoking** via round-robin rotation, the hook where
//!   BarterCast's *rank* policy plugs in;
//! * the *ban* policy filter that refuses all slots below a reputation
//!   threshold (§4.2);
//! * the [`ChokePolicy`] trait the slot mechanics consult, shared by
//!   the trace simulator and the live wire runtime, with the
//!   private-tracker *ratio* policy ([`RatioPolicy`]) as a third
//!   implementation beside rank/ban;
//! * **rarest-first** piece selection ([`swarm`]);
//! * leecher/seeder state per swarm with byte-credit accounting that
//!   converts transferred bytes into completed pieces.
//!
//! The crate is deliberately independent of the trace/simulation
//! engine: it holds per-swarm protocol state and pure decision logic,
//! while `bartercast-sim` owns time, bandwidth and the network.

#![warn(missing_docs)]

pub mod bitfield;
pub mod choke;
pub mod config;
pub mod ratio;
pub mod swarm;

pub use bitfield::Bitfield;
pub use choke::{Candidate, ChokePolicy, Choker, PeerScore};
pub use config::BtConfig;
pub use ratio::RatioPolicy;
pub use swarm::{Member, Role, Swarm};

//! The choking algorithm (§4.1) with reputation-policy hooks (§4.2).
//!
//! Every unchoke period a peer reassigns its upload slots:
//!
//! * a **leecher** unchokes the interested peers currently providing
//!   the highest upload rate *to it* (tit-for-tat);
//! * a **seeder** rotates its slots **round-robin** over the
//!   interested peers. (The original protocol description ranks by
//!   download rate; in a deterministic bandwidth model that ranking is
//!   self-reinforcing — the first unchoked peers are the only ones
//!   with a rate — and locks each seeder onto four peers until their
//!   downloads finish, which concentrates gigabytes onto single edges.
//!   Round-robin seeding, as deployed clients do to spread pieces,
//!   restores the load spreading a real swarm gets from rate noise and
//!   churn. See DESIGN.md, "Modelling notes".)
//! * one extra **optimistic** slot rotates round-robin over the
//!   remaining interested peers every optimistic period.
//!
//! BarterCast plugs in here: the *rank* policy replaces the optimistic
//! round-robin order with descending reputation, and the *ban* policy
//! removes peers below δ from all slot assignment.

use crate::config::BtConfig;
use crate::swarm::Role;
use bartercast_core::policy::{PolicyDecision, ReputationPolicy};
use bartercast_util::units::{Bytes, PeerId};

/// One interested peer competing for a slot, with its observed rates
/// over the last unchoke period.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Candidate {
    /// The competing peer.
    pub peer: PeerId,
    /// Bytes this candidate uploaded to us during the last period
    /// (tit-for-tat key for leechers).
    pub rate_to_me: u64,
    /// Bytes we uploaded to this candidate during the last period
    /// (the candidate's download rate; seeder ranking key).
    pub rate_from_me: u64,
}

/// Everything a choke policy may consult about one candidate.
///
/// The rank and ban policies look only at `reputation`; the
/// private-tracker ratio policy ([`RatioPolicy`](crate::RatioPolicy))
/// looks at the lifetime `up`/`down` totals the evaluator's subjective
/// contribution graph records for the candidate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeerScore {
    /// BarterCast reputation of the candidate as seen by the
    /// evaluator (Equation 1, in `(-1, 1)`).
    pub reputation: f64,
    /// Total bytes the candidate is known to have uploaded.
    pub up: Bytes,
    /// Total bytes the candidate is known to have downloaded.
    pub down: Bytes,
}

impl PeerScore {
    /// The score of a peer nothing is known about: zero reputation,
    /// zero transfer totals.
    pub const NEUTRAL: PeerScore = PeerScore {
        reputation: 0.0,
        up: Bytes::ZERO,
        down: Bytes::ZERO,
    };

    /// A score carrying only a reputation (transfer totals zero) —
    /// what the rank/ban policies need.
    pub fn reputation_only(reputation: f64) -> Self {
        PeerScore {
            reputation,
            ..PeerScore::NEUTRAL
        }
    }

    /// The candidate's share ratio `up / down`; peers that have not
    /// downloaded anything yet get `+inf` (nothing to reciprocate).
    pub fn share_ratio(&self) -> f64 {
        if self.down.0 == 0 {
            f64::INFINITY
        } else {
            self.up.0 as f64 / self.down.0 as f64
        }
    }
}

/// A choking policy: the seam between the slot-assignment mechanics in
/// [`Choker`] and the reputation system feeding it.
///
/// Both runtimes share every implementation — the trace-driven
/// simulator (`bartercast-sim`) and the live wire runtime
/// (`bartercast-swarm` over `bartercast-node`) call the same
/// [`Choker::unchoke`] with the same `&dyn ChokePolicy`, so a policy
/// behaves identically whether its inputs come from simulated byte
/// credits or from pieces moved over a transport.
///
/// Implementations: [`ReputationPolicy`] (none/rank/ban, §4.2) and
/// [`RatioPolicy`](crate::RatioPolicy) (private-tracker ratio
/// enforcement).
pub trait ChokePolicy {
    /// May this candidate receive any upload slot at all? Gates both
    /// regular and optimistic slots (the ban policy's "do not assign
    /// any upload slots to peers below δ").
    fn admit(&self, score: &PeerScore) -> bool;

    /// Order (and possibly filter) the optimistic-slot pool. The pool
    /// arrives in plain-BitTorrent round-robin order; the first peer
    /// of the returned vector wins the optimistic slot.
    fn order_candidates(
        &self,
        pool: &[PeerId],
        score: &mut dyn FnMut(PeerId) -> PeerScore,
    ) -> Vec<PeerId>;

    /// Short label for CSV output and plots.
    fn policy_label(&self) -> String;
}

impl ChokePolicy for ReputationPolicy {
    fn admit(&self, score: &PeerScore) -> bool {
        self.admission(score.reputation) == PolicyDecision::Allow
    }

    fn order_candidates(
        &self,
        pool: &[PeerId],
        score: &mut dyn FnMut(PeerId) -> PeerScore,
    ) -> Vec<PeerId> {
        self.order_optimistic(pool, |p| score(p).reputation)
    }

    fn policy_label(&self) -> String {
        self.label()
    }
}

/// Per-(peer, swarm) choking state.
#[derive(Debug, Clone)]
pub struct Choker {
    config: BtConfig,
    optimistic: Option<PeerId>,
    rounds_since_rotation: u32,
    rotation_cursor: u64,
    seed_cursor: u64,
}

impl Choker {
    /// Fresh state.
    pub fn new(config: BtConfig) -> Self {
        Choker {
            config,
            optimistic: None,
            rounds_since_rotation: 0,
            rotation_cursor: 0,
            seed_cursor: 0,
        }
    }

    /// The current optimistic unchoke target, if any.
    pub fn optimistic(&self) -> Option<PeerId> {
        self.optimistic
    }

    /// Recompute the unchoke set for one period.
    ///
    /// `candidates` are the currently *interested* connected peers.
    /// `score` is consulted only when the policy requires it.
    /// Returns the unchoked peers (regular slots plus the optimistic
    /// slot).
    pub fn unchoke<F>(
        &mut self,
        role: Role,
        candidates: &[Candidate],
        policy: &dyn ChokePolicy,
        mut score: F,
    ) -> Vec<PeerId>
    where
        F: FnMut(PeerId) -> PeerScore,
    {
        // Admission gates everything (§4.2: "do not assign any upload
        // slots to peers that have a reputation below δ").
        let admitted: Vec<Candidate> = candidates
            .iter()
            .copied()
            .filter(|c| policy.admit(&score(c.peer)))
            .collect();

        // Regular slots: leechers by tit-for-tat rate, seeders by
        // round-robin rotation (see module docs).
        let mut unchoked: Vec<PeerId> = match role {
            Role::Leecher => {
                let mut ranked = admitted.clone();
                ranked.sort_by(|a, b| b.rate_to_me.cmp(&a.rate_to_me).then(a.peer.cmp(&b.peer)));
                ranked
                    .iter()
                    .take(self.config.regular_slots)
                    .map(|c| c.peer)
                    .collect()
            }
            Role::Seeder => {
                let mut pool: Vec<PeerId> = admitted.iter().map(|c| c.peer).collect();
                pool.sort();
                if pool.is_empty() {
                    Vec::new()
                } else {
                    let offset = (self.seed_cursor as usize) % pool.len();
                    pool.rotate_left(offset);
                    self.seed_cursor = self
                        .seed_cursor
                        .wrapping_add(self.config.regular_slots as u64);
                    pool.truncate(self.config.regular_slots);
                    pool
                }
            }
        };

        // Optimistic slot.
        self.rounds_since_rotation += 1;
        let optimistic_still_valid = self
            .optimistic
            .is_some_and(|p| admitted.iter().any(|c| c.peer == p) && !unchoked.contains(&p));
        if self.rounds_since_rotation >= self.config.optimistic_rounds() || !optimistic_still_valid
        {
            self.optimistic = self.pick_optimistic(&admitted, &unchoked, policy, &mut score);
            self.rounds_since_rotation = 0;
        }
        if let Some(p) = self.optimistic {
            unchoked.push(p);
        }
        unchoked
    }

    fn pick_optimistic<F>(
        &mut self,
        admitted: &[Candidate],
        already: &[PeerId],
        policy: &dyn ChokePolicy,
        score: &mut F,
    ) -> Option<PeerId>
    where
        F: FnMut(PeerId) -> PeerScore,
    {
        let mut pool: Vec<PeerId> = admitted
            .iter()
            .map(|c| c.peer)
            .filter(|p| !already.contains(p))
            .collect();
        if pool.is_empty() {
            return None;
        }
        // Deterministic round-robin base order: sort by id, then rotate
        // by the cursor so that over successive rotations every peer
        // gets a turn (§4.1: "a 30 seconds round-robin shift over all
        // the interested peers").
        pool.sort();
        let offset = (self.rotation_cursor as usize) % pool.len();
        pool.rotate_left(offset);
        self.rotation_cursor = self.rotation_cursor.wrapping_add(1);
        // The rank policy reorders by reputation; ban has already
        // filtered; none keeps round-robin order (§4.2).
        let ordered = policy.order_candidates(&pool, score);
        ordered.first().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> PeerId {
        PeerId(i)
    }

    fn cand(i: u32, to_me: u64, from_me: u64) -> Candidate {
        Candidate {
            peer: p(i),
            rate_to_me: to_me,
            rate_from_me: from_me,
        }
    }

    fn cfg() -> BtConfig {
        BtConfig {
            regular_slots: 2,
            unchoke_period: bartercast_util::units::Seconds(10),
            optimistic_period: bartercast_util::units::Seconds(30),
        }
    }

    #[test]
    fn leecher_prefers_best_reciprocators() {
        let mut ch = Choker::new(cfg());
        let cands = vec![
            cand(1, 100, 0),
            cand(2, 500, 0),
            cand(3, 300, 0),
            cand(4, 10, 0),
        ];
        let unchoked = ch.unchoke(Role::Leecher, &cands, &ReputationPolicy::None, |_| {
            PeerScore::NEUTRAL
        });
        assert!(unchoked.contains(&p(2)));
        assert!(unchoked.contains(&p(3)));
        // 2 regular + 1 optimistic
        assert_eq!(unchoked.len(), 3);
    }

    #[test]
    fn seeder_rotates_over_all_interested_peers() {
        let mut ch = Choker::new(cfg());
        let cands: Vec<Candidate> = (1..=6).map(|i| cand(i, 0, 0)).collect();
        let mut served = std::collections::HashSet::new();
        for _ in 0..4 {
            let unchoked = ch.unchoke(Role::Seeder, &cands, &ReputationPolicy::None, |_| {
                PeerScore::NEUTRAL
            });
            assert!(unchoked.len() <= cfg().regular_slots + 1);
            served.extend(unchoked);
        }
        // round-robin must reach every interested peer quickly
        assert_eq!(served.len(), 6, "served: {served:?}");
    }

    #[test]
    fn seeder_slots_spread_rather_than_lock_in() {
        let mut ch = Choker::new(cfg());
        // a peer with a huge observed rate must not monopolize seed slots
        let cands = vec![
            cand(1, 0, 9000),
            cand(2, 0, 0),
            cand(3, 0, 0),
            cand(4, 0, 0),
        ];
        let mut first_slot_history = Vec::new();
        for _ in 0..4 {
            let unchoked = ch.unchoke(Role::Seeder, &cands, &ReputationPolicy::None, |_| {
                PeerScore::NEUTRAL
            });
            first_slot_history.push(unchoked[0]);
        }
        let distinct: std::collections::HashSet<_> = first_slot_history.iter().collect();
        assert!(
            distinct.len() > 1,
            "seed slots locked in: {first_slot_history:?}"
        );
    }

    #[test]
    fn optimistic_gives_new_peer_a_chance() {
        let mut ch = Choker::new(cfg());
        // peer 9 has no rate yet: never wins a regular slot
        let cands = vec![cand(1, 500, 0), cand(2, 400, 0), cand(9, 0, 0)];
        let unchoked = ch.unchoke(Role::Leecher, &cands, &ReputationPolicy::None, |_| {
            PeerScore::NEUTRAL
        });
        assert!(
            unchoked.contains(&p(9)),
            "optimistic slot must pick the zero-rate peer"
        );
    }

    #[test]
    fn optimistic_rotates_round_robin() {
        let mut ch = Choker::new(cfg());
        let cands = vec![
            cand(1, 500, 0),
            cand(2, 400, 0),
            cand(8, 0, 0),
            cand(9, 0, 0),
        ];
        let mut seen = std::collections::HashSet::new();
        // rotation period is 3 rounds; run enough rounds to cycle
        for _ in 0..12 {
            let unchoked = ch.unchoke(Role::Leecher, &cands, &ReputationPolicy::None, |_| {
                PeerScore::NEUTRAL
            });
            seen.insert(*unchoked.last().unwrap());
        }
        assert!(
            seen.contains(&p(8)) && seen.contains(&p(9)),
            "both zero-rate peers get turns: {seen:?}"
        );
    }

    #[test]
    fn ban_policy_excludes_low_reputation_everywhere() {
        let mut ch = Choker::new(cfg());
        let cands = vec![cand(1, 900, 0), cand(2, 100, 0)];
        let rep = |q: PeerId| PeerScore::reputation_only(if q == p(1) { -0.9 } else { 0.0 });
        let unchoked = ch.unchoke(
            Role::Leecher,
            &cands,
            &ReputationPolicy::Ban { delta: -0.5 },
            rep,
        );
        assert!(!unchoked.contains(&p(1)), "banned even as top reciprocator");
        assert!(unchoked.contains(&p(2)));
    }

    #[test]
    fn rank_policy_orders_optimistic_by_reputation() {
        let mut ch = Choker::new(cfg());
        // regular slots go to 1 and 2; optimistic pool is {8, 9}
        let cands = vec![
            cand(1, 500, 0),
            cand(2, 400, 0),
            cand(8, 0, 0),
            cand(9, 0, 0),
        ];
        let rep = |q: PeerId| {
            PeerScore::reputation_only(match q.0 {
                8 => -0.4,
                9 => 0.7,
                _ => 0.0,
            })
        };
        let unchoked = ch.unchoke(Role::Leecher, &cands, &ReputationPolicy::Rank, rep);
        assert_eq!(
            *unchoked.last().unwrap(),
            p(9),
            "higher reputation wins the optimistic slot"
        );
    }

    #[test]
    fn empty_candidates_no_unchokes() {
        let mut ch = Choker::new(cfg());
        let unchoked = ch.unchoke(Role::Leecher, &[], &ReputationPolicy::None, |_| {
            PeerScore::NEUTRAL
        });
        assert!(unchoked.is_empty());
        assert_eq!(ch.optimistic(), None);
    }

    #[test]
    fn departed_optimistic_is_replaced() {
        let mut ch = Choker::new(cfg());
        let cands = vec![cand(1, 500, 0), cand(2, 400, 0), cand(9, 0, 0)];
        ch.unchoke(Role::Leecher, &cands, &ReputationPolicy::None, |_| {
            PeerScore::NEUTRAL
        });
        assert_eq!(ch.optimistic(), Some(p(9)));
        // peer 9 leaves; next round someone else (or none) is optimistic
        let cands2 = vec![cand(1, 500, 0), cand(2, 400, 0)];
        let unchoked = ch.unchoke(Role::Leecher, &cands2, &ReputationPolicy::None, |_| {
            PeerScore::NEUTRAL
        });
        assert!(!unchoked.contains(&p(9)));
    }

    #[test]
    fn fewer_candidates_than_slots() {
        let mut ch = Choker::new(cfg());
        let cands = vec![cand(1, 5, 0)];
        let unchoked = ch.unchoke(Role::Leecher, &cands, &ReputationPolicy::None, |_| {
            PeerScore::NEUTRAL
        });
        // peer 1 takes a regular slot; optimistic pool is empty
        assert_eq!(unchoked, vec![p(1)]);
    }
}

//! Piece bitfields.

/// A fixed-size bitset recording which pieces a peer has.
///
/// ```
/// use bartercast_bt::Bitfield;
///
/// let mut mine = Bitfield::new(4);
/// let seeder = Bitfield::full(4);
/// assert!(mine.interested_in(&seeder));
/// for i in 0..4 {
///     mine.set(i);
/// }
/// assert!(mine.is_complete());
/// assert!(!mine.interested_in(&seeder));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitfield {
    bits: Vec<u64>,
    len: usize,
    count: usize,
}

impl Bitfield {
    /// An all-zero bitfield over `len` pieces.
    pub fn new(len: usize) -> Self {
        Bitfield {
            bits: vec![0; len.div_ceil(64)],
            len,
            count: 0,
        }
    }

    /// An all-one bitfield (a seeder's).
    pub fn full(len: usize) -> Self {
        let mut bf = Self::new(len);
        for i in 0..len {
            bf.set(i);
        }
        bf
    }

    /// Number of pieces in the torrent.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff the torrent has zero pieces (degenerate).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether piece `i` is present.
    #[inline]
    pub fn has(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.bits[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Mark piece `i` present. Returns `true` if it was newly set.
    #[inline]
    pub fn set(&mut self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let w = &mut self.bits[i / 64];
        let mask = 1u64 << (i % 64);
        if *w & mask == 0 {
            *w |= mask;
            self.count += 1;
            true
        } else {
            false
        }
    }

    /// Number of pieces present.
    pub fn count(&self) -> usize {
        self.count
    }

    /// True iff every piece is present.
    pub fn is_complete(&self) -> bool {
        self.count == self.len
    }

    /// Fraction of pieces present in `[0, 1]`.
    pub fn completeness(&self) -> f64 {
        if self.len == 0 {
            1.0
        } else {
            self.count as f64 / self.len as f64
        }
    }

    /// True iff `other` has at least one piece that `self` lacks —
    /// i.e. `self`'s owner is *interested* in `other`'s owner.
    pub fn interested_in(&self, other: &Bitfield) -> bool {
        debug_assert_eq!(self.len, other.len);
        self.bits
            .iter()
            .zip(&other.bits)
            .any(|(&mine, &theirs)| theirs & !mine != 0)
    }

    /// Iterate over the pieces present.
    pub fn iter_set(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len).filter(move |&i| self.has(i))
    }

    /// Iterate over the pieces missing.
    pub fn iter_missing(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len).filter(move |&i| !self.has(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_query() {
        let mut b = Bitfield::new(100);
        assert!(!b.has(3));
        assert!(b.set(3));
        assert!(!b.set(3), "setting twice reports false");
        assert!(b.has(3));
        assert_eq!(b.count(), 1);
        assert!(!b.is_complete());
    }

    #[test]
    fn full_is_complete() {
        let b = Bitfield::full(65);
        assert!(b.is_complete());
        assert_eq!(b.count(), 65);
        assert!((b.completeness() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn word_boundary_pieces() {
        let mut b = Bitfield::new(129);
        b.set(63);
        b.set(64);
        b.set(128);
        assert!(b.has(63) && b.has(64) && b.has(128));
        assert!(!b.has(62) && !b.has(65) && !b.has(127));
    }

    #[test]
    fn interest_semantics() {
        let mut me = Bitfield::new(10);
        let mut them = Bitfield::new(10);
        assert!(!me.interested_in(&them), "empty peer is uninteresting");
        them.set(4);
        assert!(me.interested_in(&them));
        me.set(4);
        assert!(!me.interested_in(&them), "no interest once I have it all");
        them.set(9);
        assert!(me.interested_in(&them));
    }

    #[test]
    fn seeder_never_interested() {
        let me = Bitfield::full(20);
        let mut them = Bitfield::new(20);
        them.set(5);
        assert!(!me.interested_in(&them));
    }

    #[test]
    fn iterators() {
        let mut b = Bitfield::new(5);
        b.set(1);
        b.set(3);
        assert_eq!(b.iter_set().collect::<Vec<_>>(), vec![1, 3]);
        assert_eq!(b.iter_missing().collect::<Vec<_>>(), vec![0, 2, 4]);
    }

    #[test]
    fn empty_torrent_degenerate() {
        let b = Bitfield::new(0);
        assert!(b.is_empty());
        assert!(b.is_complete());
        assert_eq!(b.completeness(), 1.0);
    }
}

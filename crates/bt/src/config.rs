//! BitTorrent protocol parameters.

use bartercast_util::units::Seconds;
use serde::{Deserialize, Serialize};

/// Protocol constants (§4.1). Defaults follow the paper's description:
/// "a limited number of simultaneous upload slots (usually 4-7)", one
/// extra optimistic slot rotated every 30 seconds, and a 10-second
/// choke recalculation period.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BtConfig {
    /// Regular (tit-for-tat) upload slots.
    pub regular_slots: usize,
    /// Choke recalculation period.
    pub unchoke_period: Seconds,
    /// Optimistic unchoke rotation period.
    pub optimistic_period: Seconds,
}

impl Default for BtConfig {
    fn default() -> Self {
        BtConfig {
            regular_slots: 4,
            unchoke_period: Seconds(10),
            optimistic_period: Seconds(30),
        }
    }
}

impl BtConfig {
    /// Rotation period expressed in unchoke rounds (at least 1).
    pub fn optimistic_rounds(&self) -> u32 {
        (self.optimistic_period.0 / self.unchoke_period.0.max(1)).max(1) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_protocol() {
        let c = BtConfig::default();
        assert_eq!(c.regular_slots, 4);
        assert_eq!(c.unchoke_period, Seconds(10));
        assert_eq!(c.optimistic_period, Seconds(30));
        assert_eq!(c.optimistic_rounds(), 3);
    }

    #[test]
    fn optimistic_rounds_floors_at_one() {
        let c = BtConfig {
            regular_slots: 4,
            unchoke_period: Seconds(60),
            optimistic_period: Seconds(30),
        };
        assert_eq!(c.optimistic_rounds(), 1);
    }
}

//! Per-swarm protocol state: members, bitfields, piece accounting and
//! rarest-first selection.

use crate::bitfield::Bitfield;
use crate::choke::Choker;
use crate::config::BtConfig;
use bartercast_util::units::{Bytes, PeerId};
use bartercast_util::FxHashMap;

/// Whether a member still needs pieces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Still downloading.
    Leecher,
    /// Has the complete file and uploads only.
    Seeder,
}

/// One peer's state inside a swarm.
#[derive(Debug, Clone)]
pub struct Member {
    /// Pieces currently held.
    pub bitfield: Bitfield,
    /// Partial-piece byte credit accumulated toward the next piece.
    pub credit: Bytes,
    /// Choking state.
    pub choker: Choker,
    /// Peers currently unchoked by this member.
    pub unchoked: Vec<PeerId>,
    /// Bytes received from each peer during the last unchoke period.
    pub recv_last: FxHashMap<PeerId, u64>,
    /// Bytes sent to each peer during the last unchoke period.
    pub sent_last: FxHashMap<PeerId, u64>,
}

impl Member {
    fn new(bitfield: Bitfield, config: BtConfig) -> Self {
        Member {
            bitfield,
            credit: Bytes::ZERO,
            choker: Choker::new(config),
            unchoked: Vec::new(),
            recv_last: FxHashMap::default(),
            sent_last: FxHashMap::default(),
        }
    }

    /// The member's current role.
    pub fn role(&self) -> Role {
        if self.bitfield.is_complete() {
            Role::Seeder
        } else {
            Role::Leecher
        }
    }
}

/// One swarm: a shared file and its current members.
///
/// ```
/// use bartercast_bt::{BtConfig, Swarm};
/// use bartercast_util::units::{Bytes, PeerId};
///
/// let mut swarm = Swarm::new(10, Bytes::from_mb(1), BtConfig::default());
/// swarm.join_seeder(PeerId(0));
/// swarm.join_leecher(PeerId(1));
/// assert!(swarm.interested(PeerId(1), PeerId(0)));
///
/// // 10 MB of credit completes the whole 10-piece file
/// let done = swarm.credit_download(PeerId(1), &[PeerId(0)], Bytes::from_mb(10));
/// assert_eq!(done.len(), 10);
/// assert!(swarm.member(PeerId(1)).unwrap().bitfield.is_complete());
/// ```
#[derive(Debug, Clone)]
pub struct Swarm {
    piece_count: usize,
    piece_size: Bytes,
    config: BtConfig,
    members: FxHashMap<PeerId, Member>,
    /// How many members hold each piece (for rarest-first).
    availability: Vec<u32>,
}

impl Swarm {
    /// A swarm over a file of `piece_count` pieces of `piece_size` each.
    pub fn new(piece_count: usize, piece_size: Bytes, config: BtConfig) -> Self {
        assert!(piece_count > 0, "file must have at least one piece");
        assert!(!piece_size.is_zero());
        Swarm {
            piece_count,
            piece_size,
            config,
            members: FxHashMap::default(),
            availability: vec![0; piece_count],
        }
    }

    /// Number of pieces in the file.
    pub fn piece_count(&self) -> usize {
        self.piece_count
    }

    /// Piece size.
    pub fn piece_size(&self) -> Bytes {
        self.piece_size
    }

    /// Total file size.
    pub fn file_size(&self) -> Bytes {
        self.piece_size * self.piece_count as u64
    }

    /// Current member ids (arbitrary order).
    pub fn members(&self) -> impl Iterator<Item = PeerId> + '_ {
        self.members.keys().copied()
    }

    /// Number of members.
    pub fn member_count(&self) -> usize {
        self.members.len()
    }

    /// Access a member.
    pub fn member(&self, peer: PeerId) -> Option<&Member> {
        self.members.get(&peer)
    }

    /// Mutable access to a member.
    pub fn member_mut(&mut self, peer: PeerId) -> Option<&mut Member> {
        self.members.get_mut(&peer)
    }

    /// True iff `peer` is in the swarm.
    pub fn contains(&self, peer: PeerId) -> bool {
        self.members.contains_key(&peer)
    }

    /// Join as a leecher with an empty bitfield. No-op if already a
    /// member.
    pub fn join_leecher(&mut self, peer: PeerId) {
        if self.members.contains_key(&peer) {
            return;
        }
        let m = Member::new(Bitfield::new(self.piece_count), self.config);
        self.members.insert(peer, m);
    }

    /// Join as a seeder with a complete bitfield. No-op if already a
    /// member (an existing leecher is *not* upgraded).
    pub fn join_seeder(&mut self, peer: PeerId) {
        if self.members.contains_key(&peer) {
            return;
        }
        let m = Member::new(Bitfield::full(self.piece_count), self.config);
        for a in &mut self.availability {
            *a += 1;
        }
        self.members.insert(peer, m);
    }

    /// Remove a member (departure), updating availability.
    pub fn leave(&mut self, peer: PeerId) {
        if let Some(m) = self.members.remove(&peer) {
            for i in m.bitfield.iter_set() {
                self.availability[i] -= 1;
            }
        }
    }

    /// Whether `downloader` is interested in `uploader` (the uploader
    /// has a piece the downloader lacks). Unknown peers are never
    /// interesting.
    pub fn interested(&self, downloader: PeerId, uploader: PeerId) -> bool {
        match (self.members.get(&downloader), self.members.get(&uploader)) {
            (Some(d), Some(u)) => d.bitfield.interested_in(&u.bitfield),
            _ => false,
        }
    }

    /// Rarest-first piece selection: among pieces `downloader` lacks
    /// and at least one of `providers` has, pick the one with the
    /// lowest swarm-wide availability (ties by lowest index).
    pub fn rarest_wanted(&self, downloader: PeerId, providers: &[PeerId]) -> Option<usize> {
        self.rarest_wanted_salted(downloader, providers, 0)
    }

    /// Rarest-first with randomized tie-breaking: among equally rare
    /// pieces, the one minimizing a salt-dependent hash wins. Real
    /// BitTorrent breaks rarest-first ties randomly so simultaneous
    /// downloaders diversify and can trade with each other; a
    /// deterministic tie-break would make every empty leecher fetch
    /// piece 0 first and kill tit-for-tat. Salt 0 reproduces the
    /// deterministic lowest-index order.
    pub fn rarest_wanted_salted(
        &self,
        downloader: PeerId,
        providers: &[PeerId],
        salt: u64,
    ) -> Option<usize> {
        let d = self.members.get(&downloader)?;
        let mut best: Option<(u32, u64, usize)> = None;
        for i in 0..self.piece_count {
            if d.bitfield.has(i) {
                continue;
            }
            let offered = providers
                .iter()
                .any(|p| self.members.get(p).is_some_and(|m| m.bitfield.has(i)));
            if !offered {
                continue;
            }
            let avail = self.availability[i];
            let tie = if salt == 0 {
                i as u64
            } else {
                // multiply-xor mix; any fixed bijection works here
                (i as u64 ^ salt).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            };
            match best {
                Some((a, t, _)) if (a, t) <= (avail, tie) => {}
                _ => best = Some((avail, tie, i)),
            }
        }
        best.map(|(_, _, i)| i)
    }

    /// Credit `bytes` of download toward `downloader`, completing
    /// pieces rarest-first from `providers` while credit suffices.
    /// Returns the piece indices completed. Credit that cannot complete
    /// a piece (no provider offers anything new) is **discarded** —
    /// bytes cannot buy pieces nobody offered.
    pub fn credit_download(
        &mut self,
        downloader: PeerId,
        providers: &[PeerId],
        bytes: Bytes,
    ) -> Vec<usize> {
        self.credit_download_salted(downloader, providers, bytes, 0)
    }

    /// [`Swarm::credit_download`] with randomized rarest-first
    /// tie-breaking (see [`Swarm::rarest_wanted_salted`]).
    pub fn credit_download_salted(
        &mut self,
        downloader: PeerId,
        providers: &[PeerId],
        bytes: Bytes,
        salt: u64,
    ) -> Vec<usize> {
        let piece_size = self.piece_size;
        let mut completed = Vec::new();
        {
            let Some(d) = self.members.get_mut(&downloader) else {
                return completed;
            };
            if d.bitfield.is_complete() {
                return completed;
            }
            d.credit += bytes;
        }
        loop {
            let credit = self.members[&downloader].credit;
            if credit < piece_size {
                break;
            }
            let Some(piece) = self.rarest_wanted_salted(downloader, providers, salt) else {
                // nothing on offer: drop the surplus credit
                self.members.get_mut(&downloader).unwrap().credit = Bytes::ZERO;
                break;
            };
            let d = self.members.get_mut(&downloader).unwrap();
            d.credit -= piece_size;
            if d.bitfield.set(piece) {
                self.availability[piece] += 1;
                completed.push(piece);
            }
        }
        completed
    }

    /// Swarm-wide availability of piece `i`.
    pub fn availability(&self, i: usize) -> u32 {
        self.availability[i]
    }

    /// Consistency check: availability counters match member bitfields.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut counts = vec![0u32; self.piece_count];
        for m in self.members.values() {
            for i in m.bitfield.iter_set() {
                counts[i] += 1;
            }
        }
        if counts != self.availability {
            return Err("availability counters out of sync".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> PeerId {
        PeerId(i)
    }

    fn swarm() -> Swarm {
        Swarm::new(10, Bytes::from_mb(1), BtConfig::default())
    }

    #[test]
    fn join_and_roles() {
        let mut s = swarm();
        s.join_leecher(p(1));
        s.join_seeder(p(2));
        assert_eq!(s.member(p(1)).unwrap().role(), Role::Leecher);
        assert_eq!(s.member(p(2)).unwrap().role(), Role::Seeder);
        assert_eq!(s.member_count(), 2);
        s.check_invariants().unwrap();
    }

    #[test]
    fn join_is_idempotent() {
        let mut s = swarm();
        s.join_seeder(p(1));
        s.join_seeder(p(1));
        assert_eq!(s.member_count(), 1);
        assert_eq!(s.availability(0), 1);
        // an existing leecher is not silently upgraded
        s.join_leecher(p(2));
        s.join_seeder(p(2));
        assert_eq!(s.member(p(2)).unwrap().role(), Role::Leecher);
        s.check_invariants().unwrap();
    }

    #[test]
    fn leave_updates_availability() {
        let mut s = swarm();
        s.join_seeder(p(1));
        assert_eq!(s.availability(3), 1);
        s.leave(p(1));
        assert_eq!(s.availability(3), 0);
        assert!(!s.contains(p(1)));
        s.check_invariants().unwrap();
    }

    #[test]
    fn interest_requires_missing_piece() {
        let mut s = swarm();
        s.join_leecher(p(1));
        s.join_seeder(p(2));
        assert!(s.interested(p(1), p(2)));
        assert!(!s.interested(p(2), p(1)));
        assert!(!s.interested(p(1), p(99)));
    }

    #[test]
    fn credit_completes_pieces() {
        let mut s = swarm();
        s.join_leecher(p(1));
        s.join_seeder(p(2));
        let done = s.credit_download(p(1), &[p(2)], Bytes::from_mb(3));
        assert_eq!(done.len(), 3);
        assert_eq!(s.member(p(1)).unwrap().bitfield.count(), 3);
        assert_eq!(s.member(p(1)).unwrap().credit, Bytes::ZERO);
        s.check_invariants().unwrap();
    }

    #[test]
    fn partial_credit_carries_over() {
        let mut s = swarm();
        s.join_leecher(p(1));
        s.join_seeder(p(2));
        let done = s.credit_download(p(1), &[p(2)], Bytes::from_kb(700));
        assert!(done.is_empty());
        let done = s.credit_download(p(1), &[p(2)], Bytes::from_kb(400));
        assert_eq!(done.len(), 1, "700 KB + 400 KB crosses one 1 MB piece");
    }

    #[test]
    fn credit_without_providers_is_discarded() {
        let mut s = swarm();
        s.join_leecher(p(1));
        let done = s.credit_download(p(1), &[], Bytes::from_mb(5));
        assert!(done.is_empty());
        assert_eq!(s.member(p(1)).unwrap().credit, Bytes::ZERO);
    }

    #[test]
    fn completing_download_turns_seeder() {
        let mut s = swarm();
        s.join_leecher(p(1));
        s.join_seeder(p(2));
        s.credit_download(p(1), &[p(2)], Bytes::from_mb(10));
        assert_eq!(s.member(p(1)).unwrap().role(), Role::Seeder);
        assert!(!s.interested(p(1), p(2)));
    }

    #[test]
    fn rarest_first_prefers_low_availability() {
        let mut s = swarm();
        s.join_seeder(p(1)); // all pieces availability 1
        s.join_leecher(p(2));
        // peer 2 grabs pieces 0..4 => availability 2 for those
        for i in 0..5 {
            let m = s.member_mut(p(2)).unwrap();
            m.bitfield.set(i);
            s.availability[i] += 1;
        }
        s.join_leecher(p(3));
        // for peer 3, pieces 5..9 (availability 1) are rarer than 0..4
        let pick = s.rarest_wanted(p(3), &[p(1), p(2)]).unwrap();
        assert!(pick >= 5, "picked {pick}");
        s.check_invariants().unwrap();
    }

    #[test]
    fn rarest_wanted_respects_providers() {
        let mut s = swarm();
        s.join_leecher(p(1));
        s.join_leecher(p(2));
        // peer 2 only has piece 7
        s.member_mut(p(2)).unwrap().bitfield.set(7);
        s.availability[7] += 1;
        assert_eq!(s.rarest_wanted(p(1), &[p(2)]), Some(7));
        assert_eq!(s.rarest_wanted(p(1), &[]), None);
    }

    #[test]
    fn seeder_gets_no_pieces_from_credit() {
        let mut s = swarm();
        s.join_seeder(p(1));
        s.join_seeder(p(2));
        let done = s.credit_download(p(1), &[p(2)], Bytes::from_mb(5));
        assert!(done.is_empty());
    }
}

//! Property-based tests for choking and swarm-state invariants.

use bartercast_bt::choke::{Candidate, Choker, PeerScore};
use bartercast_bt::swarm::{Role, Swarm};
use bartercast_bt::BtConfig;
use bartercast_core::policy::ReputationPolicy;
use bartercast_util::units::{Bytes, PeerId, Seconds};
use proptest::prelude::*;

fn candidates() -> impl Strategy<Value = Vec<Candidate>> {
    prop::collection::vec((1u32..40, 0u64..10_000, 0u64..10_000), 0..20).prop_map(|v| {
        let mut seen = std::collections::HashSet::new();
        v.into_iter()
            .filter(|(p, _, _)| seen.insert(*p))
            .map(|(p, to_me, from_me)| Candidate {
                peer: PeerId(p),
                rate_to_me: to_me,
                rate_from_me: from_me,
            })
            .collect()
    })
}

fn config() -> BtConfig {
    BtConfig {
        regular_slots: 4,
        unchoke_period: Seconds(10),
        optimistic_period: Seconds(30),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The unchoke set is always a subset of the candidates, has no
    /// duplicates, and respects the slot budget.
    #[test]
    fn unchoke_set_is_well_formed(
        cands in candidates(),
        rounds in 1usize..8,
        seeder in prop::bool::ANY,
    ) {
        let mut ch = Choker::new(config());
        let role = if seeder { Role::Seeder } else { Role::Leecher };
        for _ in 0..rounds {
            let unchoked = ch.unchoke(role, &cands, &ReputationPolicy::None, |_| PeerScore::NEUTRAL);
            prop_assert!(unchoked.len() <= config().regular_slots + 1);
            let mut dedup = unchoked.clone();
            dedup.sort();
            dedup.dedup();
            prop_assert_eq!(dedup.len(), unchoked.len(), "duplicate slot assignment");
            for p in &unchoked {
                prop_assert!(cands.iter().any(|c| c.peer == *p), "unchoked a stranger");
            }
        }
    }

    /// Under the ban policy, no peer below δ ever gets a slot.
    #[test]
    fn ban_policy_never_leaks_slots(
        cands in candidates(),
        delta in -0.9f64..-0.1,
        rounds in 1usize..6,
    ) {
        let mut ch = Choker::new(config());
        // deterministic pseudo-reputation per peer id
        let rep = |p: PeerId| (p.0 as f64 * 0.37).sin();
        for _ in 0..rounds {
            let unchoked = ch.unchoke(Role::Leecher, &cands, &ReputationPolicy::Ban { delta }, |p| {
                PeerScore::reputation_only(rep(p))
            });
            for p in unchoked {
                prop_assert!(rep(p) >= delta, "banned peer {p} got a slot");
            }
        }
    }

    /// Leecher regular slots are filled by descending reciprocation
    /// rate: nobody outside the unchoke set has a strictly higher rate
    /// than the slowest regular slot (the optimistic slot excepted).
    #[test]
    fn leecher_tit_for_tat_orders_rates(cands in candidates()) {
        let mut ch = Choker::new(config());
        let unchoked = ch.unchoke(Role::Leecher, &cands, &ReputationPolicy::None, |_| PeerScore::NEUTRAL);
        let regular: Vec<PeerId> = unchoked
            .iter()
            .take(config().regular_slots.min(cands.len()))
            .copied()
            .collect();
        if regular.len() == config().regular_slots {
            let min_regular = regular
                .iter()
                .map(|p| cands.iter().find(|c| c.peer == *p).unwrap().rate_to_me)
                .min()
                .unwrap();
            for c in &cands {
                if !unchoked.contains(&c.peer) {
                    prop_assert!(
                        c.rate_to_me <= min_regular,
                        "peer {} (rate {}) beat a regular slot (min {})",
                        c.peer, c.rate_to_me, min_regular
                    );
                }
            }
        }
    }

    /// Random join/leave/credit sequences never break the swarm's
    /// availability accounting.
    #[test]
    fn swarm_invariants_under_random_ops(
        ops in prop::collection::vec((0u8..4, 0u32..10, 0u64..2048), 1..60)
    ) {
        let mut s = Swarm::new(16, Bytes::from_kb(64), config());
        for (op, peer, amount) in ops {
            let pid = PeerId(peer);
            match op {
                0 => s.join_leecher(pid),
                1 => s.join_seeder(pid),
                2 => s.leave(pid),
                _ => {
                    let providers: Vec<PeerId> = s.members().collect();
                    let _ = s.credit_download(pid, &providers, Bytes(amount * 1024));
                }
            }
            s.check_invariants().unwrap();
        }
    }

    /// A leecher fed by a seeder always completes with enough credit,
    /// regardless of chunking.
    #[test]
    fn credit_chunking_is_irrelevant(chunks in prop::collection::vec(1u64..200, 1..40)) {
        let piece = Bytes::from_kb(64);
        let total_pieces = 8usize;
        let mut s = Swarm::new(total_pieces, piece, config());
        s.join_seeder(PeerId(0));
        s.join_leecher(PeerId(1));
        let needed = piece.0 * total_pieces as u64;
        let mut fed = 0u64;
        for kb in chunks {
            let amount = (kb * 1024).min(needed.saturating_sub(fed));
            fed += amount;
            s.credit_download(PeerId(1), &[PeerId(0)], Bytes(amount));
        }
        // top up to exactly the file size
        if fed < needed {
            s.credit_download(PeerId(1), &[PeerId(0)], Bytes(needed - fed));
        }
        prop_assert!(s.member(PeerId(1)).unwrap().bitfield.is_complete());
        s.check_invariants().unwrap();
    }

    /// Rarest-first with any salt picks a piece the downloader lacks
    /// and some provider has.
    #[test]
    fn rarest_first_picks_valid_pieces(salt in any::<u64>(), have in 0usize..15) {
        let mut s = Swarm::new(16, Bytes::from_kb(64), config());
        s.join_seeder(PeerId(0));
        s.join_leecher(PeerId(1));
        // give the leecher a prefix of pieces through the credit path,
        // then query the next pick directly
        s.credit_download(PeerId(1), &[PeerId(0)], Bytes(have as u64 * 64 * 1024));
        if let Some(pick) = s.rarest_wanted_salted(PeerId(1), &[PeerId(0)], salt) {
            prop_assert!(pick < 16);
            prop_assert!(!s.member(PeerId(1)).unwrap().bitfield.has(pick));
            prop_assert!(s.member(PeerId(0)).unwrap().bitfield.has(pick));
        } else {
            prop_assert!(s.member(PeerId(1)).unwrap().bitfield.is_complete());
        }
    }
}

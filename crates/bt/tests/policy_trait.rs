//! Regression pin for the `ChokePolicy` extraction.
//!
//! `Choker::unchoke` used to consult `ReputationPolicy` directly
//! through an `FnMut(PeerId) -> f64` reputation closure; it now goes
//! through the `ChokePolicy` trait so the live wire runtime can share
//! the decision logic (and so the ratio policy can plug in). This test
//! keeps a verbatim copy of the pre-trait algorithm and checks that
//! the trait-driven `Choker` produces **identical unchoke sets, in
//! order, round by round** across seeded random scenarios for all
//! three legacy policies and both roles.

use bartercast_bt::choke::{Candidate, Choker, PeerScore};
use bartercast_bt::{BtConfig, Role};
use bartercast_core::policy::{PolicyDecision, ReputationPolicy};
use bartercast_util::units::{PeerId, Seconds};

/// The pre-extraction choking algorithm, kept verbatim (modulo struct
/// names) as the behavioural reference.
struct LegacyChoker {
    config: BtConfig,
    optimistic: Option<PeerId>,
    rounds_since_rotation: u32,
    rotation_cursor: u64,
    seed_cursor: u64,
}

impl LegacyChoker {
    fn new(config: BtConfig) -> Self {
        LegacyChoker {
            config,
            optimistic: None,
            rounds_since_rotation: 0,
            rotation_cursor: 0,
            seed_cursor: 0,
        }
    }

    fn unchoke<F>(
        &mut self,
        role: Role,
        candidates: &[Candidate],
        policy: &ReputationPolicy,
        mut reputation: F,
    ) -> Vec<PeerId>
    where
        F: FnMut(PeerId) -> f64,
    {
        let admitted: Vec<Candidate> = candidates
            .iter()
            .copied()
            .filter(|c| policy.admission(reputation(c.peer)) == PolicyDecision::Allow)
            .collect();

        let mut unchoked: Vec<PeerId> = match role {
            Role::Leecher => {
                let mut ranked = admitted.clone();
                ranked.sort_by(|a, b| b.rate_to_me.cmp(&a.rate_to_me).then(a.peer.cmp(&b.peer)));
                ranked
                    .iter()
                    .take(self.config.regular_slots)
                    .map(|c| c.peer)
                    .collect()
            }
            Role::Seeder => {
                let mut pool: Vec<PeerId> = admitted.iter().map(|c| c.peer).collect();
                pool.sort();
                if pool.is_empty() {
                    Vec::new()
                } else {
                    let offset = (self.seed_cursor as usize) % pool.len();
                    pool.rotate_left(offset);
                    self.seed_cursor = self
                        .seed_cursor
                        .wrapping_add(self.config.regular_slots as u64);
                    pool.truncate(self.config.regular_slots);
                    pool
                }
            }
        };

        self.rounds_since_rotation += 1;
        let optimistic_still_valid = self
            .optimistic
            .is_some_and(|p| admitted.iter().any(|c| c.peer == p) && !unchoked.contains(&p));
        if self.rounds_since_rotation >= self.config.optimistic_rounds() || !optimistic_still_valid
        {
            self.optimistic = self.pick_optimistic(&admitted, &unchoked, policy, &mut reputation);
            self.rounds_since_rotation = 0;
        }
        if let Some(p) = self.optimistic {
            unchoked.push(p);
        }
        unchoked
    }

    fn pick_optimistic<F>(
        &mut self,
        admitted: &[Candidate],
        already: &[PeerId],
        policy: &ReputationPolicy,
        reputation: &mut F,
    ) -> Option<PeerId>
    where
        F: FnMut(PeerId) -> f64,
    {
        let mut pool: Vec<PeerId> = admitted
            .iter()
            .map(|c| c.peer)
            .filter(|p| !already.contains(p))
            .collect();
        if pool.is_empty() {
            return None;
        }
        pool.sort();
        let offset = (self.rotation_cursor as usize) % pool.len();
        pool.rotate_left(offset);
        self.rotation_cursor = self.rotation_cursor.wrapping_add(1);
        let ordered = policy.order_optimistic(&pool, reputation);
        ordered.first().copied()
    }
}

/// Tiny deterministic PRNG (xorshift64*) so the scenarios are seeded
/// without depending on any random-crate API surface.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

fn config() -> BtConfig {
    BtConfig {
        regular_slots: 3,
        unchoke_period: Seconds(10),
        optimistic_period: Seconds(30),
    }
}

/// One reputation landscape shared by both chokers: a fixed pseudo-
/// random value per peer id, spanning the whole `(-1, 1)` range so
/// ban thresholds actually bite.
fn reputation_of(peer: PeerId) -> f64 {
    ((peer.0 as f64 * 0.7311) + 0.17).sin() * 0.99
}

/// Drive legacy and trait-driven chokers through `rounds` rounds of a
/// churning candidate set and assert identical outputs each round.
fn assert_identical_decisions(seed: u64, policy: ReputationPolicy, role: Role, rounds: usize) {
    let mut rng = Rng(seed | 1);
    let mut legacy = LegacyChoker::new(config());
    let mut modern = Choker::new(config());
    for round in 0..rounds {
        // churning candidate set: between 0 and 12 distinct peers with
        // random rates, resampled every round
        let n = rng.below(13) as usize;
        let mut cands: Vec<Candidate> = Vec::new();
        for _ in 0..n {
            let peer = PeerId(rng.below(20) as u32);
            if cands.iter().any(|c| c.peer == peer) {
                continue;
            }
            cands.push(Candidate {
                peer,
                rate_to_me: rng.below(10_000),
                rate_from_me: rng.below(10_000),
            });
        }
        let expect = legacy.unchoke(role, &cands, &policy, reputation_of);
        let got = modern.unchoke(role, &cands, &policy, |p| {
            PeerScore::reputation_only(reputation_of(p))
        });
        assert_eq!(
            got, expect,
            "unchoke sets diverged: seed {seed}, policy {policy:?}, role {role:?}, round {round}"
        );
        assert_eq!(
            modern.optimistic(),
            legacy.optimistic,
            "optimistic slot diverged"
        );
    }
}

#[test]
fn trait_driven_choker_matches_legacy_for_every_policy() {
    let policies = [
        ReputationPolicy::None,
        ReputationPolicy::Rank,
        ReputationPolicy::Ban { delta: -0.3 },
        ReputationPolicy::Ban { delta: -0.7 },
    ];
    for policy in policies {
        for role in [Role::Leecher, Role::Seeder] {
            for seed in [1u64, 42, 0xBA27, 0xDEAD_BEEF] {
                assert_identical_decisions(seed, policy, role, 64);
            }
        }
    }
}

#[test]
fn policy_labels_pass_through_the_trait() {
    use bartercast_bt::ChokePolicy;
    assert_eq!(ReputationPolicy::Rank.policy_label(), "rank");
    assert_eq!(
        ReputationPolicy::Ban { delta: -0.5 }.policy_label(),
        "ban(-0.5)"
    );
    assert_eq!(
        bartercast_bt::RatioPolicy::default().policy_label(),
        "ratio(0.5)"
    );
}

//! Synthetic open-community generation.
//!
//! Models the Tribler population the customized peer observed:
//!
//! * a fraction of **install-only** peers with exactly zero transfer
//!   (the paper: peers at zero "have most likely just installed the
//!   client without using it");
//! * active peers whose download volume is log-normal (most move a few
//!   hundred MB to a few GB over a month, heavy upper tail into TB);
//! * per-peer **sharing ratios** skewed below 1 — "a majority of the
//!   peers has downloaded more than what they have uploaded" — with a
//!   small altruist minority whose ratio is far above 1;
//! * an open-network imbalance knob: Tribler peers also exchange data
//!   with non-Tribler BitTorrent clients, so observed upload and
//!   download totals need not balance globally (§5.5 notes this
//!   explicitly).
//!
//! Pairwise transfers are materialized by weighted matching: repeated
//! draws pick an uploader (weighted by unassigned upload volume) and a
//! downloader (weighted by unassigned download volume), creating the
//! contribution edges the gossip layer will report.

use bartercast_util::units::{Bytes, PeerId};
use bartercast_util::FxHashMap;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr_shim::sample_lognormal;

/// Minimal log-normal sampling without the `rand_distr` crate
/// (outside the allowed dependency set): Box–Muller over `Rng`.
mod rand_distr_shim {
    use rand::Rng;

    /// Sample `exp(mu + sigma * Z)` with `Z ~ N(0,1)`.
    pub fn sample_lognormal<R: Rng>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (mu + sigma * z).exp()
    }
}

/// Community generation parameters.
#[derive(Debug, Clone)]
pub struct CommunityConfig {
    /// Number of peers the observer will have seen (paper: ~5000).
    pub peers: usize,
    /// Fraction with exactly zero transfers (fresh installs).
    pub install_only_fraction: f64,
    /// Median download volume of active peers, in MB.
    pub median_download_mb: f64,
    /// Log-normal sigma of download volumes.
    pub download_sigma: f64,
    /// Fraction of active peers that are altruists (ratio >> 1).
    pub altruist_fraction: f64,
    /// Mean number of transfer partners per active peer.
    pub mean_degree: f64,
}

impl Default for CommunityConfig {
    fn default() -> Self {
        CommunityConfig {
            peers: 5000,
            install_only_fraction: 0.25,
            median_download_mb: 1500.0,
            download_sigma: 1.6,
            altruist_fraction: 0.02,
            mean_degree: 18.0,
        }
    }
}

/// One generated community: ground-truth totals plus the pairwise
/// transfer edges.
#[derive(Debug, Clone)]
pub struct Community {
    /// Ground-truth per-peer upload totals.
    pub upload: Vec<Bytes>,
    /// Ground-truth per-peer download totals.
    pub download: Vec<Bytes>,
    /// Directed transfer edges `(from, to) -> bytes`.
    pub transfers: FxHashMap<(PeerId, PeerId), Bytes>,
}

impl Community {
    /// Generate a community. Deterministic per `(config, seed)`.
    pub fn generate(config: &CommunityConfig, seed: u64) -> Self {
        assert!(config.peers >= 2);
        let mut rng = StdRng::seed_from_u64(seed);
        let n = config.peers;
        let mu = config.median_download_mb.ln();

        let mut download_target = vec![0f64; n]; // in MB
        let mut upload_target = vec![0f64; n];
        for i in 0..n {
            if rng.gen_bool(config.install_only_fraction) {
                continue; // install-only: both stay zero
            }
            let down = sample_lognormal(&mut rng, mu, config.download_sigma);
            // sharing ratio: most below 1 (lazy tendency), altruists far above
            let ratio = if rng.gen_bool(config.altruist_fraction) {
                rng.gen_range(2.0..20.0)
            } else {
                // Beta-ish skew toward low ratios: cube a uniform.
                // P(ratio > 1) ≈ 14% of actives ≈ 10% of all peers,
                // matching Figure 4's "only 10% have uploaded more
                // than they have downloaded".
                let u: f64 = rng.gen_range(0.0..1.0);
                u * u * u * 1.6
            };
            download_target[i] = down;
            upload_target[i] = down * ratio;
        }

        // Materialize pairwise transfers by weighted matching in MB
        // chunks. Uploads and downloads need not globally balance (the
        // open-network effect): leftover mass on either side is
        // attributed to "external" BitTorrent clients and simply kept
        // in the totals.
        let mut transfers: FxHashMap<(PeerId, PeerId), Bytes> = FxHashMap::default();
        let mut up_left = upload_target.clone();
        let mut down_left = download_target.clone();
        let target_edges = (n as f64 * config.mean_degree) as usize;
        let mut up_pool: Vec<usize> = (0..n).filter(|&i| up_left[i] > 1.0).collect();
        let mut down_pool: Vec<usize> = (0..n).filter(|&i| down_left[i] > 1.0).collect();
        for _ in 0..target_edges {
            if up_pool.is_empty() || down_pool.is_empty() {
                break;
            }
            let ui = up_pool[rng.gen_range(0..up_pool.len())];
            let di = down_pool[rng.gen_range(0..down_pool.len())];
            if ui == di {
                continue;
            }
            // transfer a random share of the smaller remaining side
            let amount = (up_left[ui].min(down_left[di]) * rng.gen_range(0.2..0.9)).max(1.0);
            up_left[ui] -= amount;
            down_left[di] -= amount;
            let bytes = Bytes((amount * 1024.0 * 1024.0) as u64);
            *transfers
                .entry((PeerId(ui as u32), PeerId(di as u32)))
                .or_insert(Bytes::ZERO) += bytes;
            if up_left[ui] <= 1.0 {
                up_pool.retain(|&x| x != ui);
            }
            if down_left[di] <= 1.0 {
                down_pool.retain(|&x| x != di);
            }
        }

        // Ground-truth totals are the *targets* (they include transfer
        // volume with external, non-Tribler clients).
        let upload = upload_target
            .iter()
            .map(|&mb| Bytes((mb * 1024.0 * 1024.0) as u64))
            .collect();
        let download = download_target
            .iter()
            .map(|&mb| Bytes((mb * 1024.0 * 1024.0) as u64))
            .collect();
        Community {
            upload,
            download,
            transfers,
        }
    }

    /// Number of peers.
    pub fn len(&self) -> usize {
        self.upload.len()
    }

    /// True iff the community has no peers.
    pub fn is_empty(&self) -> bool {
        self.upload.is_empty()
    }

    /// Ground-truth net contribution (upload − download) per peer, in
    /// bytes (possibly negative) — the quantity behind Figure 4a.
    pub fn net_contributions(&self) -> Vec<f64> {
        self.upload
            .iter()
            .zip(&self.download)
            .map(|(u, d)| u.0 as f64 - d.0 as f64)
            .collect()
    }

    /// The peers a given peer uploaded to, with amounts.
    pub fn uploads_of(&self, peer: PeerId) -> Vec<(PeerId, Bytes)> {
        self.transfers
            .iter()
            .filter(|(&(from, _), _)| from == peer)
            .map(|(&(_, to), &b)| (to, b))
            .collect()
    }

    /// The peers a given peer downloaded from, with amounts.
    pub fn downloads_of(&self, peer: PeerId) -> Vec<(PeerId, Bytes)> {
        self.transfers
            .iter()
            .filter(|(&(_, to), _)| to == peer)
            .map(|(&(from, _), &b)| (from, b))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CommunityConfig {
        CommunityConfig {
            peers: 300,
            ..Default::default()
        }
    }

    #[test]
    fn deterministic() {
        let a = Community::generate(&small(), 5);
        let b = Community::generate(&small(), 5);
        assert_eq!(a.upload, b.upload);
        assert_eq!(a.transfers.len(), b.transfers.len());
    }

    #[test]
    fn install_only_peers_exist() {
        let c = Community::generate(&small(), 1);
        let zeros = c
            .upload
            .iter()
            .zip(&c.download)
            .filter(|(u, d)| u.is_zero() && d.is_zero())
            .count();
        // ~25% of 300
        assert!(zeros > 30 && zeros < 150, "zeros = {zeros}");
    }

    #[test]
    fn majority_downloads_exceed_uploads() {
        let c = Community::generate(&CommunityConfig::default(), 2);
        let nets = c.net_contributions();
        let negative = nets.iter().filter(|&&x| x < 0.0).count();
        let positive = nets.iter().filter(|&&x| x > 0.0).count();
        assert!(
            negative > positive * 2,
            "paper shape: majority negative (neg={negative}, pos={positive})"
        );
    }

    #[test]
    fn altruists_contribute_tens_of_gb() {
        let c = Community::generate(&CommunityConfig::default(), 3);
        let max_net = c
            .net_contributions()
            .into_iter()
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(
            max_net > 10.0 * 1024.0 * 1024.0 * 1024.0,
            "expected an altruist above 10 GB, max {max_net}"
        );
    }

    #[test]
    fn transfers_reference_valid_peers_and_positive_amounts() {
        let c = Community::generate(&small(), 4);
        for (&(f, t), &b) in &c.transfers {
            assert!((f.index()) < c.len());
            assert!((t.index()) < c.len());
            assert_ne!(f, t);
            assert!(!b.is_zero());
        }
        assert!(!c.transfers.is_empty());
    }

    #[test]
    fn uploads_and_downloads_of_are_consistent() {
        let c = Community::generate(&small(), 6);
        let (&(f, t), &b) = c.transfers.iter().next().unwrap();
        assert!(c.uploads_of(f).iter().any(|&(to, amt)| to == t && amt == b));
        assert!(c
            .downloads_of(t)
            .iter()
            .any(|&(from, amt)| from == f && amt == b));
    }
}

//! The instrumented observer peer (§5.5).
//!
//! "We logged all BarterCast messages received by a customized peer
//! participating in the network during the first month after its
//! initial deployment." The observer here does the same: over a month
//! of meetings it collects messages from community peers (each message
//! carrying the §3.4 record selection of the sender's private
//! history), absorbs them into its subjective graph, and computes
//! Equation 1 reputations for every peer it has seen.

use crate::community::Community;
use bartercast_core::history::PrivateHistory;
use bartercast_core::message::{BarterCastConfig, BarterCastMessage};
use bartercast_core::ReputationEngine;
use bartercast_util::stats::Ecdf;
use bartercast_util::units::{Bytes, PeerId, Seconds};
use bartercast_util::FxHashSet;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Observer parameters.
#[derive(Debug, Clone)]
pub struct ObserverConfig {
    /// Distinct community peers the observer meets over the month
    /// (each delivers at least one message).
    pub meetings: usize,
    /// BarterCast record-selection parameters.
    pub bartercast: BarterCastConfig,
    /// How many community peers the observer itself exchanged data
    /// with while participating (its own private history size).
    pub own_partners: usize,
}

impl Default for ObserverConfig {
    fn default() -> Self {
        ObserverConfig {
            meetings: 9000,
            bartercast: BarterCastConfig::default(),
            own_partners: 800,
        }
    }
}

/// Results of the month-long observation — Figure 4's two panels.
#[derive(Debug, Clone)]
pub struct DeploymentReport {
    /// Ground-truth upload − download per observed peer, **sorted
    /// descending** (Figure 4a's curve), in bytes.
    pub net_contributions_sorted: Vec<f64>,
    /// Observer-computed reputation of every observed peer.
    pub reputations: Vec<f64>,
    /// Number of distinct peers that appear in the observer's
    /// subjective graph.
    pub peers_in_graph: usize,
    /// Messages the observer logged.
    pub messages_logged: u64,
}

impl DeploymentReport {
    /// Empirical CDF of the reputations (Figure 4b).
    pub fn reputation_cdf(&self) -> Ecdf {
        Ecdf::new(self.reputations.clone())
    }

    /// `(negative, zeroish, positive)` fractions of the reputation
    /// distribution, with `|r| <= eps` counting as zero. The paper
    /// reports roughly (0.4, 0.5, 0.1).
    pub fn reputation_split(&self, eps: f64) -> (f64, f64, f64) {
        let n = self.reputations.len().max(1) as f64;
        let neg = self.reputations.iter().filter(|&&r| r < -eps).count() as f64 / n;
        let pos = self.reputations.iter().filter(|&&r| r > eps).count() as f64 / n;
        (neg, 1.0 - neg - pos, pos)
    }
}

/// The customized measurement peer.
#[derive(Debug)]
pub struct Observer {
    id: PeerId,
    engine: ReputationEngine,
    history: PrivateHistory,
    messages_logged: u64,
}

impl Observer {
    /// A fresh observer with the next id after the community's.
    pub fn new(community_size: usize) -> Self {
        let id = PeerId(community_size as u32);
        Observer {
            id,
            engine: ReputationEngine::new(),
            history: PrivateHistory::new(id),
            messages_logged: 0,
        }
    }

    /// The observer's peer id.
    pub fn id(&self) -> PeerId {
        self.id
    }

    /// Run the observation, sampling the reputation split at
    /// `snapshots` evenly spaced points through the meeting budget —
    /// how the observer's picture sharpens over the month. Returns
    /// `(messages logged so far, negative, ~zero, positive)` rows.
    pub fn observe_evolution(
        community: &Community,
        config: &ObserverConfig,
        seed: u64,
        snapshots: usize,
    ) -> Vec<(u64, f64, f64, f64)> {
        assert!(snapshots >= 1);
        let mut points = Vec::with_capacity(snapshots);
        for step in 1..=snapshots {
            let partial = ObserverConfig {
                meetings: config.meetings * step / snapshots,
                ..config.clone()
            };
            // identical seed: the meeting sequence is a prefix of the
            // full run's, so each snapshot is the same month observed
            // for a shorter time
            let report = Observer::new(community.len()).observe(community, &partial, seed);
            let (neg, zero, pos) = report.reputation_split(0.01);
            points.push((report.messages_logged, neg, zero, pos));
        }
        points
    }

    /// Run the month-long observation over `community`.
    pub fn observe(
        mut self,
        community: &Community,
        config: &ObserverConfig,
        seed: u64,
    ) -> DeploymentReport {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = community.len();

        // The observer participated itself for the whole month: it
        // exchanged substantial amounts of data with a set of partners,
        // giving it the first-hand incident edges that anchor every
        // maxflow evaluation (§3.4). Per-partner volumes follow the
        // partner's own activity.
        let mut partner_pool: Vec<usize> = (0..n)
            .filter(|&i| !community.upload[i].is_zero() || !community.download[i].is_zero())
            .collect();
        partner_pool.shuffle(&mut rng);
        let partners: Vec<usize> = partner_pool
            .iter()
            .take(config.own_partners)
            .copied()
            .collect();
        for &i in &partners {
            let peer = PeerId(i as u32);
            let down =
                Bytes((community.upload[i].0 / 10).clamp(50 * 1024 * 1024, 2 * 1024 * 1024 * 1024));
            // the instrumented peer was a well-provisioned participant
            // that gave more than it took from most partners
            let ratio = rng.gen_range(0.8..2.0);
            let up = Bytes((down.0 as f64 * ratio) as u64);
            self.history.record_download(peer, down, Seconds(1));
            self.history.record_upload(peer, up, Seconds(1));
        }
        self.engine.absorb_private(&self.history);

        // BarterCast exchanges happen when peers meet, so the observer
        // certainly holds a message from each of its own transfer
        // partners, plus the random meetings of a month online.
        let mut senders: Vec<usize> = partners.clone();
        for _ in 0..config.meetings {
            senders.push(rng.gen_range(0..n));
        }
        for i in senders {
            let sender = PeerId(i as u32);
            let mut h = PrivateHistory::new(sender);
            let mut t = 0u64;
            for (to, b) in community.uploads_of(sender) {
                t += 1;
                h.record_upload(to, b, Seconds(t));
            }
            for (from, b) in community.downloads_of(sender) {
                t += 1;
                h.record_download(from, b, Seconds(t));
            }
            if h.is_empty() {
                continue; // install-only peers have nothing to report
            }
            let msg = BarterCastMessage::from_history(&h, config.bartercast);
            self.engine.absorb_message(&msg);
            self.messages_logged += 1;
        }

        // Compute the observer's reputation of every community peer.
        let reputations: Vec<f64> = (0..n)
            .map(|i| self.engine.reputation(self.id, PeerId(i as u32)))
            .collect();
        let peers_in_graph = {
            let nodes: FxHashSet<PeerId> = self.engine.graph().nodes();
            nodes.len().saturating_sub(1) // exclude the observer itself
        };
        let mut nets = community.net_contributions();
        nets.sort_by(|a, b| b.partial_cmp(a).unwrap());
        DeploymentReport {
            net_contributions_sorted: nets,
            reputations,
            peers_in_graph,
            messages_logged: self.messages_logged,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::community::CommunityConfig;

    fn small_community() -> Community {
        Community::generate(
            &CommunityConfig {
                peers: 400,
                ..Default::default()
            },
            11,
        )
    }

    fn small_observer_cfg() -> ObserverConfig {
        ObserverConfig {
            meetings: 600,
            own_partners: 20,
            ..Default::default()
        }
    }

    #[test]
    fn observation_produces_report() {
        let c = small_community();
        let report = Observer::new(c.len()).observe(&c, &small_observer_cfg(), 1);
        assert_eq!(report.reputations.len(), 400);
        assert_eq!(report.net_contributions_sorted.len(), 400);
        assert!(report.messages_logged > 0);
        assert!(
            report.peers_in_graph > 50,
            "graph too sparse: {}",
            report.peers_in_graph
        );
    }

    #[test]
    fn contributions_sorted_descending() {
        let c = small_community();
        let report = Observer::new(c.len()).observe(&c, &small_observer_cfg(), 2);
        for w in report.net_contributions_sorted.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn reputation_split_has_paper_shape() {
        let c = small_community();
        let report = Observer::new(c.len()).observe(&c, &small_observer_cfg(), 3);
        let (neg, zero, pos) = report.reputation_split(0.01);
        // The exact numbers are distributional; the *shape* must hold:
        // more negatives than positives, and a large ≈0 mass.
        assert!(neg > pos, "neg={neg} pos={pos}");
        assert!(zero > 0.2, "zero mass too small: {zero}");
        assert!((neg + zero + pos - 1.0).abs() < 1e-9);
    }

    #[test]
    fn reputations_bounded() {
        let c = small_community();
        let report = Observer::new(c.len()).observe(&c, &small_observer_cfg(), 4);
        assert!(report
            .reputations
            .iter()
            .all(|&r| (-1.0..=1.0).contains(&r)));
    }

    #[test]
    fn cdf_is_monotone_over_support() {
        let c = small_community();
        let report = Observer::new(c.len()).observe(&c, &small_observer_cfg(), 5);
        let cdf = report.reputation_cdf();
        let mut last = 0.0;
        for (_, y) in cdf.points() {
            assert!(y >= last);
            last = y;
        }
        assert!((last - 1.0).abs() < 1e-9);
    }

    #[test]
    fn evolution_negative_mass_grows_with_coverage() {
        let c = small_community();
        let points = Observer::observe_evolution(&c, &small_observer_cfg(), 8, 4);
        assert_eq!(points.len(), 4);
        // messages monotone
        for w in points.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
        // the picture sharpens: the final negative mass is at least the
        // first snapshot's (more coverage => more peers leave the zero bin)
        let first_neg = points[0].1;
        let last_neg = points.last().unwrap().1;
        assert!(
            last_neg >= first_neg,
            "negative mass should not shrink with coverage: {first_neg} -> {last_neg}"
        );
        // splits are valid distributions
        for &(_, neg, zero, pos) in &points {
            assert!((neg + zero + pos - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn deterministic() {
        let c = small_community();
        let a = Observer::new(c.len()).observe(&c, &small_observer_cfg(), 6);
        let b = Observer::new(c.len()).observe(&c, &small_observer_cfg(), 6);
        assert_eq!(a.reputations, b.reputations);
        assert_eq!(a.messages_logged, b.messages_logged);
    }
}

//! The Tribler deployment study model (§5.5, Figure 4).
//!
//! The paper reports one month of measurements from a customized peer
//! participating in the live Tribler network (~5000 peers observed):
//!
//! * Figure 4a — upload − download of every observed peer, on a
//!   symmetric log scale from −1 TB to +1 TB: a majority downloaded
//!   more than they uploaded, a spike of exactly-zero peers that "have
//!   most likely just installed the client", and a few very generous
//!   altruists with tens of GB contributed;
//! * Figure 4b — the CDF of the observer-computed reputation of those
//!   peers: about 40 % negative, roughly half ≈ 0, and only ~10 %
//!   positive.
//!
//! We cannot rerun the live measurement, so [`community`] generates a
//! synthetic open community with a heavy-tailed contribution imbalance
//! (log-normal transfer volumes, install-only peers, a sharing-ratio
//! distribution skewed below 1, rare altruists) and [`observer`]
//! replays the instrumented peer: it meets community members over a
//! month, collects their BarterCast messages, and computes Equation 1
//! reputations over the resulting subjective graph.

#![warn(missing_docs)]

pub mod community;
pub mod observer;

pub use community::{Community, CommunityConfig};
pub use observer::{DeploymentReport, Observer, ObserverConfig};

//! Property tests for the deployment community model and observer.

use bartercast_deploy::{Community, CommunityConfig, Observer, ObserverConfig};
use proptest::prelude::*;

fn config(peers: usize, install_only: f64, altruists: f64) -> CommunityConfig {
    CommunityConfig {
        peers,
        install_only_fraction: install_only,
        altruist_fraction: altruists,
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Generated communities are internally consistent for any
    /// reasonable parameters.
    #[test]
    fn community_is_consistent(
        peers in 20usize..200,
        install_only in 0.0f64..0.6,
        altruists in 0.0f64..0.1,
        seed in 0u64..50,
    ) {
        let c = Community::generate(&config(peers, install_only, altruists), seed);
        prop_assert_eq!(c.len(), peers);
        // install-only peers never appear in a transfer
        for (&(f, t), &b) in &c.transfers {
            prop_assert!(!b.is_zero());
            prop_assert_ne!(f, t);
            prop_assert!(!c.upload[f.index()].is_zero(), "zero peer uploads");
            prop_assert!(!c.download[t.index()].is_zero(), "zero peer downloads");
        }
        // per-peer matched transfer volume never exceeds its target
        let mut up_assigned = vec![0u64; peers];
        let mut down_assigned = vec![0u64; peers];
        for (&(f, t), &b) in &c.transfers {
            up_assigned[f.index()] += b.0;
            down_assigned[t.index()] += b.0;
        }
        for i in 0..peers {
            prop_assert!(
                up_assigned[i] <= c.upload[i].0 + 2 * 1024 * 1024,
                "peer {i} over-assigned upload"
            );
            prop_assert!(
                down_assigned[i] <= c.download[i].0 + 2 * 1024 * 1024,
                "peer {i} over-assigned download"
            );
        }
    }

    /// The observer's report is structurally sound on any community.
    #[test]
    fn observer_report_is_sound(seed in 0u64..20) {
        let c = Community::generate(&config(120, 0.25, 0.02), seed);
        let report = Observer::new(c.len()).observe(
            &c,
            &ObserverConfig {
                meetings: 200,
                own_partners: 20,
                ..Default::default()
            },
            seed,
        );
        prop_assert_eq!(report.reputations.len(), 120);
        prop_assert!(report.reputations.iter().all(|r| (-1.0..=1.0).contains(r)));
        for w in report.net_contributions_sorted.windows(2) {
            prop_assert!(w[0] >= w[1]);
        }
        let (neg, zero, pos) = report.reputation_split(0.01);
        prop_assert!((neg + zero + pos - 1.0).abs() < 1e-9);
    }
}

//! Trace reconstruction from tracker event logs.
//!
//! The paper's traces were scraped from the `filelist.org` tracker,
//! which exposes the raw BitTorrent announce stream: every client
//! reports `started` when it joins a swarm, periodic heartbeats while
//! online, `completed` when its download finishes, and `stopped` when
//! it leaves. This module reconstructs a simulator [`Trace`] from such
//! a log, which is exactly what the authors did ("the traces contain
//! detailed behaviour of all peers ... including uptimes, downtimes,
//! connectability, and file-requests").
//!
//! Input format: one event per line,
//!
//! ```text
//! <unix-seconds> <peer> <swarm> started|heartbeat|completed|stopped
//! ```
//!
//! with `#` comments and blank lines ignored. Peers and swarms are
//! arbitrary string tokens, interned in order of first appearance.
//!
//! Reconstruction rules:
//!
//! * a peer's **sessions** are the unions of `[first event, last
//!   event + grace]` windows, split whenever two consecutive events
//!   are more than `session_gap` apart (announce heartbeats are
//!   typically 30-minute; a multiple of that separates sessions);
//! * each peer's first `started` per swarm becomes a **file request**;
//! * a swarm's **initial seeder** is the first peer ever seen in it
//!   (trackers list the uploader first); its file size must be
//!   supplied via [`ImportConfig::file_sizes`] or a default;
//! * **connectability** cannot be derived from announces and comes
//!   from [`ImportConfig`].

use crate::model::{FileRequest, PeerTrace, Session, SwarmId, SwarmTrace, Trace};
use bartercast_util::units::{Bandwidth, Bytes, PeerId, Seconds};
use bartercast_util::FxHashMap;

/// Reconstruction parameters.
#[derive(Debug, Clone)]
pub struct ImportConfig {
    /// Gap between announces that splits two sessions.
    pub session_gap: Seconds,
    /// Grace period appended after a peer's last event of a session.
    pub session_grace: Seconds,
    /// File size per swarm token; missing swarms use `default_file_size`.
    pub file_sizes: FxHashMap<String, Bytes>,
    /// Fallback file size.
    pub default_file_size: Bytes,
    /// Piece size for all reconstructed swarms.
    pub piece_size: Bytes,
    /// Downlink assigned to every peer (announce logs carry none).
    pub down_bw: Bandwidth,
    /// Uplink assigned to every peer.
    pub up_bw: Bandwidth,
}

impl Default for ImportConfig {
    fn default() -> Self {
        ImportConfig {
            session_gap: Seconds::from_minutes(90),
            session_grace: Seconds::from_minutes(15),
            file_sizes: FxHashMap::default(),
            default_file_size: Bytes::from_mb(700),
            piece_size: Bytes::from_mb(1),
            down_bw: Bandwidth::from_mbps(3),
            up_bw: Bandwidth::from_kbps(512),
        }
    }
}

/// A parse/reconstruction failure, with its line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImportError {
    /// 1-based line number (0 for whole-log errors).
    pub line: usize,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for ImportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ImportError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EventKind {
    Started,
    Heartbeat,
    Completed,
    Stopped,
}

#[derive(Debug, Clone)]
struct Event {
    time: Seconds,
    peer: usize,
    swarm: usize,
    kind: EventKind,
}

/// Reconstruct a [`Trace`] from a tracker event log.
pub fn import_tracker_log(text: &str, config: &ImportConfig) -> Result<Trace, ImportError> {
    let mut peers: Vec<String> = Vec::new();
    let mut peer_ids: FxHashMap<String, usize> = FxHashMap::default();
    let mut swarms: Vec<String> = Vec::new();
    let mut swarm_ids: FxHashMap<String, usize> = FxHashMap::default();
    let mut events: Vec<Event> = Vec::new();

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(ts), Some(peer), Some(swarm), Some(kind)) =
            (parts.next(), parts.next(), parts.next(), parts.next())
        else {
            return Err(ImportError {
                line: lineno,
                message: "expected '<time> <peer> <swarm> <event>'".into(),
            });
        };
        let time: u64 = ts.parse().map_err(|_| ImportError {
            line: lineno,
            message: format!("bad timestamp '{ts}'"),
        })?;
        let kind = match kind {
            "started" => EventKind::Started,
            "heartbeat" => EventKind::Heartbeat,
            "completed" => EventKind::Completed,
            "stopped" => EventKind::Stopped,
            other => {
                return Err(ImportError {
                    line: lineno,
                    message: format!("unknown event '{other}'"),
                })
            }
        };
        let p = *peer_ids.entry(peer.to_string()).or_insert_with(|| {
            peers.push(peer.to_string());
            peers.len() - 1
        });
        let s = *swarm_ids.entry(swarm.to_string()).or_insert_with(|| {
            swarms.push(swarm.to_string());
            swarms.len() - 1
        });
        events.push(Event {
            time: Seconds(time),
            peer: p,
            swarm: s,
            kind,
        });
    }
    if events.is_empty() {
        return Err(ImportError {
            line: 0,
            message: "log contains no events".into(),
        });
    }
    events.sort_by_key(|e| (e.time, e.peer, e.swarm));
    // normalize times so the trace starts at zero
    let t0 = events[0].time;
    for e in &mut events {
        e.time = e.time.saturating_sub(t0);
    }
    let horizon = Seconds(events.last().expect("non-empty").time.0 + config.session_grace.0 + 1);

    // per-peer event times -> sessions
    let mut peer_times: Vec<Vec<Seconds>> = vec![Vec::new(); peers.len()];
    for e in &events {
        peer_times[e.peer].push(e.time);
    }
    // per-peer first `started` per swarm -> requests
    let mut requests: Vec<Vec<FileRequest>> = vec![Vec::new(); peers.len()];
    let mut seen_request: FxHashMap<(usize, usize), ()> = FxHashMap::default();
    // first peer seen per swarm -> initial seeder
    let mut initial_seeder: Vec<Option<usize>> = vec![None; swarms.len()];
    for e in &events {
        if initial_seeder[e.swarm].is_none() {
            initial_seeder[e.swarm] = Some(e.peer);
        }
        if e.kind == EventKind::Started
            && initial_seeder[e.swarm] != Some(e.peer)
            && !seen_request.contains_key(&(e.peer, e.swarm))
        {
            seen_request.insert((e.peer, e.swarm), ());
            requests[e.peer].push(FileRequest {
                swarm: SwarmId(e.swarm as u32),
                time: e.time,
            });
        }
    }

    let peer_traces: Vec<PeerTrace> = (0..peers.len())
        .map(|i| {
            let mut sessions = Vec::new();
            let times = &peer_times[i];
            let mut start = times[0];
            let mut last = times[0];
            for &t in &times[1..] {
                if t.0 > last.0 + config.session_gap.0 {
                    sessions.push(Session {
                        start,
                        end: last + config.session_grace,
                    });
                    start = t;
                }
                last = t;
            }
            sessions.push(Session {
                start,
                end: last + config.session_grace,
            });
            let mut reqs = requests[i].clone();
            reqs.sort_by_key(|r| r.time);
            PeerTrace {
                peer: PeerId(i as u32),
                sessions,
                requests: reqs,
                connectable: true,
                down_bw: config.down_bw,
                up_bw: config.up_bw,
            }
        })
        .collect();

    let swarm_traces: Vec<SwarmTrace> = (0..swarms.len())
        .map(|s| SwarmTrace {
            swarm: SwarmId(s as u32),
            file_size: config
                .file_sizes
                .get(&swarms[s])
                .copied()
                .unwrap_or(config.default_file_size),
            piece_size: config.piece_size,
            initial_seeder: PeerId(initial_seeder[s].expect("swarm has events") as u32),
        })
        .collect();

    let trace = Trace {
        horizon,
        peers: peer_traces,
        swarms: swarm_traces,
    };
    trace.validate().map_err(|e| ImportError {
        line: 0,
        message: format!("reconstructed trace invalid: {e}"),
    })?;
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    const LOG: &str = "\
# a tiny tracker log
1000 uploader movie started
1000 alice   movie started
2800 alice   movie heartbeat
4600 alice   movie completed
5000 alice   movie stopped
20000 alice  movie started
20010 bob    movie started
21000 bob    movie stopped
";

    #[test]
    fn reconstructs_sessions_requests_and_seeder() {
        let trace = import_tracker_log(LOG, &ImportConfig::default()).unwrap();
        assert_eq!(trace.peer_count(), 3);
        assert_eq!(trace.swarm_count(), 1);
        // uploader was first seen: it is the initial seeder and has no request
        let seeder = trace.swarms[0].initial_seeder;
        assert_eq!(seeder, PeerId(0));
        assert!(trace.peer(seeder).unwrap().requests.is_empty());
        // alice has two sessions: the 90-minute gap between 5000 and
        // 20000 splits them
        let alice = trace.peer(PeerId(1)).unwrap();
        assert_eq!(alice.sessions.len(), 2);
        assert_eq!(alice.requests.len(), 1);
        assert_eq!(alice.requests[0].time, Seconds(0)); // normalized to t0
                                                        // bob's single short session
        let bob = trace.peer(PeerId(2)).unwrap();
        assert_eq!(bob.sessions.len(), 1);
        assert_eq!(bob.requests.len(), 1);
    }

    #[test]
    fn times_are_normalized_to_zero() {
        let trace = import_tracker_log(LOG, &ImportConfig::default()).unwrap();
        let first_start = trace
            .peers
            .iter()
            .flat_map(|p| p.sessions.iter().map(|s| s.start))
            .min()
            .unwrap();
        assert_eq!(first_start, Seconds(0));
    }

    #[test]
    fn file_sizes_can_be_supplied() {
        let mut cfg = ImportConfig::default();
        cfg.file_sizes.insert("movie".into(), Bytes::from_gb(2));
        let trace = import_tracker_log(LOG, &cfg).unwrap();
        assert_eq!(trace.swarms[0].file_size, Bytes::from_gb(2));
    }

    #[test]
    fn rejects_malformed_lines() {
        let err = import_tracker_log("1000 alice movie\n", &ImportConfig::default()).unwrap_err();
        assert_eq!(err.line, 1);
        let err =
            import_tracker_log("abc alice movie started\n", &ImportConfig::default()).unwrap_err();
        assert!(err.message.contains("bad timestamp"));
        let err =
            import_tracker_log("1 alice movie exploded\n", &ImportConfig::default()).unwrap_err();
        assert!(err.message.contains("unknown event"));
    }

    #[test]
    fn rejects_empty_log() {
        let err = import_tracker_log("# nothing\n", &ImportConfig::default()).unwrap_err();
        assert!(err.message.contains("no events"));
    }

    #[test]
    fn imported_trace_drives_a_simulation_shape() {
        // the reconstructed trace validates, which is what the
        // simulator requires; a full sim run is exercised in the
        // root integration tests
        let trace = import_tracker_log(LOG, &ImportConfig::default()).unwrap();
        trace.validate().unwrap();
        assert!(trace.horizon > Seconds(20000 - 1000));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let log = format!("# header\n\n{LOG}\n# trailer\n");
        let trace = import_tracker_log(&log, &ImportConfig::default()).unwrap();
        assert_eq!(trace.peer_count(), 3);
    }
}

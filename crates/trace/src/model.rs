//! The trace data model.
//!
//! A [`Trace`] captures everything the simulator consumes: which peers
//! exist, when they are online, whether they are connectable, which
//! files (swarms) they request and when, and how large each file is.

use bartercast_util::units::{Bandwidth, Bytes, PeerId, Seconds};
use serde::{Deserialize, Serialize};

/// Identifier of a swarm (one shared file).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SwarmId(pub u32);

impl SwarmId {
    /// Dense index form.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for SwarmId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// An interval during which a peer is online.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Session {
    /// Inclusive start.
    pub start: Seconds,
    /// Exclusive end.
    pub end: Seconds,
}

impl Session {
    /// True iff `t` lies inside the session.
    pub fn contains(&self, t: Seconds) -> bool {
        self.start <= t && t < self.end
    }

    /// Session length.
    pub fn duration(&self) -> Seconds {
        self.end.saturating_sub(self.start)
    }
}

/// A request to download one file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FileRequest {
    /// Which swarm the peer joins.
    pub swarm: SwarmId,
    /// When the peer issues the request.
    pub time: Seconds,
}

/// Everything the trace knows about one peer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PeerTrace {
    /// The peer's permanent identity.
    pub peer: PeerId,
    /// Online intervals, sorted and non-overlapping.
    pub sessions: Vec<Session>,
    /// File requests, sorted by time.
    pub requests: Vec<FileRequest>,
    /// Whether the peer accepts incoming connections (NAT/firewall).
    pub connectable: bool,
    /// Downlink capacity.
    pub down_bw: Bandwidth,
    /// Uplink capacity.
    pub up_bw: Bandwidth,
}

impl PeerTrace {
    /// True iff the peer is online at `t`.
    pub fn online_at(&self, t: Seconds) -> bool {
        self.sessions.iter().any(|s| s.contains(t))
    }

    /// Total online time.
    pub fn uptime(&self) -> Seconds {
        self.sessions
            .iter()
            .fold(Seconds::ZERO, |acc, s| acc + s.duration())
    }
}

/// Everything the trace knows about one swarm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SwarmTrace {
    /// The swarm identifier.
    pub swarm: SwarmId,
    /// Size of the shared file.
    pub file_size: Bytes,
    /// Piece size used by the swarm.
    pub piece_size: Bytes,
    /// Peer seeding the file from t = 0 (the initial seeder).
    pub initial_seeder: PeerId,
}

impl SwarmTrace {
    /// Number of pieces (last piece may be short).
    pub fn piece_count(&self) -> usize {
        assert!(!self.piece_size.is_zero());
        (self.file_size.0.div_ceil(self.piece_size.0)) as usize
    }
}

/// A full community trace.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct Trace {
    /// Trace horizon: events beyond this are not simulated.
    pub horizon: Seconds,
    /// Per-peer behaviour.
    pub peers: Vec<PeerTrace>,
    /// Per-swarm metadata.
    pub swarms: Vec<SwarmTrace>,
}

impl Trace {
    /// Number of peers.
    pub fn peer_count(&self) -> usize {
        self.peers.len()
    }

    /// Number of swarms.
    pub fn swarm_count(&self) -> usize {
        self.swarms.len()
    }

    /// Look up a peer's trace by id.
    pub fn peer(&self, id: PeerId) -> Option<&PeerTrace> {
        self.peers.iter().find(|p| p.peer == id)
    }

    /// Look up a swarm by id.
    pub fn swarm(&self, id: SwarmId) -> Option<&SwarmTrace> {
        self.swarms.iter().find(|s| s.swarm == id)
    }

    /// Validate structural invariants: sorted non-overlapping sessions,
    /// sorted requests referencing existing swarms, positive sizes,
    /// initial seeders that exist, unique ids.
    pub fn validate(&self) -> Result<(), String> {
        let mut peer_ids: Vec<u32> = self.peers.iter().map(|p| p.peer.0).collect();
        peer_ids.sort_unstable();
        if peer_ids.windows(2).any(|w| w[0] == w[1]) {
            return Err("duplicate peer id".into());
        }
        let mut swarm_ids: Vec<u32> = self.swarms.iter().map(|s| s.swarm.0).collect();
        swarm_ids.sort_unstable();
        if swarm_ids.windows(2).any(|w| w[0] == w[1]) {
            return Err("duplicate swarm id".into());
        }
        for s in &self.swarms {
            if s.file_size.is_zero() || s.piece_size.is_zero() {
                return Err(format!("swarm {} has zero size", s.swarm));
            }
            if self.peer(s.initial_seeder).is_none() {
                return Err(format!("swarm {} initial seeder missing", s.swarm));
            }
        }
        for p in &self.peers {
            for w in p.sessions.windows(2) {
                if w[0].end > w[1].start {
                    return Err(format!("peer {} has overlapping sessions", p.peer));
                }
            }
            for s in &p.sessions {
                if s.start >= s.end {
                    return Err(format!("peer {} has empty session", p.peer));
                }
            }
            for w in p.requests.windows(2) {
                if w[0].time > w[1].time {
                    return Err(format!("peer {} has unsorted requests", p.peer));
                }
            }
            for r in &p.requests {
                if self.swarm(r.swarm).is_none() {
                    return Err(format!(
                        "peer {} requests unknown swarm {}",
                        p.peer, r.swarm
                    ));
                }
            }
            if p.up_bw.0 == 0 || p.down_bw.0 == 0 {
                return Err(format!("peer {} has zero bandwidth", p.peer));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn valid_trace() -> Trace {
        Trace {
            horizon: Seconds::from_days(7),
            peers: vec![
                PeerTrace {
                    peer: PeerId(0),
                    sessions: vec![
                        Session {
                            start: Seconds(0),
                            end: Seconds(100),
                        },
                        Session {
                            start: Seconds(200),
                            end: Seconds(300),
                        },
                    ],
                    requests: vec![FileRequest {
                        swarm: SwarmId(0),
                        time: Seconds(10),
                    }],
                    connectable: true,
                    down_bw: Bandwidth::from_mbps(3),
                    up_bw: Bandwidth::from_kbps(512),
                },
                PeerTrace {
                    peer: PeerId(1),
                    sessions: vec![Session {
                        start: Seconds(0),
                        end: Seconds(1000),
                    }],
                    requests: vec![],
                    connectable: false,
                    down_bw: Bandwidth::from_mbps(3),
                    up_bw: Bandwidth::from_kbps(512),
                },
            ],
            swarms: vec![SwarmTrace {
                swarm: SwarmId(0),
                file_size: Bytes::from_mb(700),
                piece_size: Bytes::from_mb(1),
                initial_seeder: PeerId(1),
            }],
        }
    }

    #[test]
    fn valid_trace_validates() {
        valid_trace().validate().unwrap();
    }

    #[test]
    fn session_queries() {
        let t = valid_trace();
        let p = t.peer(PeerId(0)).unwrap();
        assert!(p.online_at(Seconds(50)));
        assert!(!p.online_at(Seconds(150)));
        assert!(p.online_at(Seconds(200)));
        assert!(!p.online_at(Seconds(300))); // end-exclusive
        assert_eq!(p.uptime(), Seconds(200));
    }

    #[test]
    fn piece_count_rounds_up() {
        let s = SwarmTrace {
            swarm: SwarmId(0),
            file_size: Bytes(10),
            piece_size: Bytes(3),
            initial_seeder: PeerId(0),
        };
        assert_eq!(s.piece_count(), 4);
    }

    #[test]
    fn rejects_overlapping_sessions() {
        let mut t = valid_trace();
        t.peers[0].sessions = vec![
            Session {
                start: Seconds(0),
                end: Seconds(100),
            },
            Session {
                start: Seconds(50),
                end: Seconds(150),
            },
        ];
        assert!(t.validate().is_err());
    }

    #[test]
    fn rejects_unknown_swarm_request() {
        let mut t = valid_trace();
        t.peers[0].requests = vec![FileRequest {
            swarm: SwarmId(99),
            time: Seconds(1),
        }];
        assert!(t.validate().is_err());
    }

    #[test]
    fn rejects_duplicate_ids() {
        let mut t = valid_trace();
        t.peers[1].peer = PeerId(0);
        assert!(t.validate().is_err());
    }

    #[test]
    fn rejects_missing_seeder() {
        let mut t = valid_trace();
        t.swarms[0].initial_seeder = PeerId(42);
        assert!(t.validate().is_err());
    }

    #[test]
    fn rejects_zero_bandwidth() {
        let mut t = valid_trace();
        t.peers[0].up_bw = Bandwidth(0);
        assert!(t.validate().is_err());
    }
}

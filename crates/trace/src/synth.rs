//! Synthetic `filelist.org`-style trace generation.
//!
//! The real traces are proprietary; this generator reproduces the
//! workload **shape** the paper describes (§5.1):
//!
//! * `N = 100` peers active in `10` swarms during one week;
//! * file sizes "from several tens of megabytes to about one to two
//!   gigabytes, representing mostly audio and movie files" — drawn
//!   from a mixture of a small-file (audio) and a large-file (movie)
//!   log-uniform component;
//! * diurnal online sessions: each peer has a preferred daily online
//!   window plus random extra sessions;
//! * staggered file requests: each peer requests a subset of the
//!   swarms at random times inside its sessions;
//! * common ADSL bandwidth (3 MBps down / 512 KBps up) and a
//!   configurable fraction of unconnectable (NATed) peers.
//!
//! All randomness flows from one seed, so a `(SynthConfig, seed)` pair
//! defines the trace exactly.

use crate::model::{FileRequest, PeerTrace, Session, SwarmId, SwarmTrace, Trace};
use bartercast_util::units::{Bandwidth, Bytes, PeerId, Seconds};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Generator parameters. Defaults match the paper's simulation setup.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthConfig {
    /// Number of peers (paper: 100).
    pub peers: usize,
    /// Number of swarms (paper: 10).
    pub swarms: usize,
    /// Trace length (paper: one week).
    pub horizon: Seconds,
    /// Fraction of peers that are behind NATs.
    pub unconnectable_fraction: f64,
    /// Mean number of swarms each peer requests.
    pub requests_per_peer: f64,
    /// Downlink (paper: 3 MBps).
    pub down_bw: Bandwidth,
    /// Uplink (paper: 512 KBps).
    pub up_bw: Bandwidth,
    /// Uplink of the archival initial seeders. Kept below the regular
    /// uplink so the always-on seeders bootstrap the swarms without
    /// absorbing all demand — the community's own sharers must carry
    /// the load, as in the paper's private-tracker setting.
    pub seeder_up_bw: Bandwidth,
    /// Piece size for all swarms.
    pub piece_size: Bytes,
    /// Probability a file is a small "audio" file rather than a
    /// large "movie" file.
    pub small_file_prob: f64,
    /// Optional heterogeneous access-link mix. When non-empty, each
    /// regular peer draws its `(down, up)` from these weighted classes
    /// instead of the flat `down_bw`/`up_bw` pair (the paper models
    /// uniform ADSL because it lacked real bandwidth data; the mix
    /// lets experiments test sensitivity to heterogeneity).
    pub bandwidth_classes: Vec<BandwidthClass>,
}

/// One access-link class for heterogeneous populations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BandwidthClass {
    /// Relative weight of this class.
    pub weight: f64,
    /// Downlink.
    pub down: Bandwidth,
    /// Uplink.
    pub up: Bandwidth,
}

impl BandwidthClass {
    /// The paper's ADSL profile (3 MBps down / 512 KBps up).
    pub fn adsl(weight: f64) -> Self {
        BandwidthClass {
            weight,
            down: Bandwidth::from_mbps(3),
            up: Bandwidth::from_kbps(512),
        }
    }

    /// A cable-like profile (8 MBps down / 1 MBps up).
    pub fn cable(weight: f64) -> Self {
        BandwidthClass {
            weight,
            down: Bandwidth::from_mbps(8),
            up: Bandwidth::from_mbps(1),
        }
    }

    /// A symmetric fibre profile (10 MBps each way).
    pub fn fibre(weight: f64) -> Self {
        BandwidthClass {
            weight,
            down: Bandwidth::from_mbps(10),
            up: Bandwidth::from_mbps(10),
        }
    }
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            peers: 100,
            swarms: 10,
            horizon: Seconds::from_days(7),
            unconnectable_fraction: 0.2,
            requests_per_peer: 10.0,
            down_bw: Bandwidth::from_mbps(3),
            up_bw: Bandwidth::from_kbps(512),
            seeder_up_bw: Bandwidth::from_kbps(32),
            piece_size: Bytes::from_mb(1),
            small_file_prob: 0.15,
            bandwidth_classes: Vec::new(),
        }
    }
}

/// Builds [`Trace`]s from a [`SynthConfig`] and a seed.
///
/// ```
/// use bartercast_trace::{SynthConfig, TraceBuilder};
///
/// let builder = TraceBuilder::new(SynthConfig::default());
/// let trace = builder.build(42);
/// assert_eq!(trace.peer_count(), 100); // the paper's N
/// assert_eq!(trace.swarm_count(), 10);
/// assert_eq!(trace, builder.build(42)); // deterministic per seed
/// ```
#[derive(Debug, Clone)]
pub struct TraceBuilder {
    config: SynthConfig,
}

impl TraceBuilder {
    /// A builder with the given configuration.
    pub fn new(config: SynthConfig) -> Self {
        TraceBuilder { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SynthConfig {
        &self.config
    }

    /// Generate a trace. Identical `(config, seed)` pairs give
    /// identical traces.
    pub fn build(&self, seed: u64) -> Trace {
        let cfg = &self.config;
        assert!(
            cfg.peers >= 2,
            "need at least an initial seeder and a leecher"
        );
        assert!(cfg.swarms >= 1);
        let mut rng = StdRng::seed_from_u64(seed);

        // Swarm files: log-uniform audio (30-120 MB) or movie (500-2000 MB).
        let swarms: Vec<SwarmTrace> = (0..cfg.swarms)
            .map(|i| {
                let small = rng.gen_bool(cfg.small_file_prob);
                let (lo, hi) = if small {
                    (30.0, 120.0)
                } else {
                    (600.0, 2500.0)
                };
                let mb = log_uniform(&mut rng, lo, hi);
                SwarmTrace {
                    swarm: SwarmId(i as u32),
                    file_size: Bytes::from_mb(mb as u64),
                    piece_size: cfg.piece_size,
                    // Initial seeders are spread across the first peers;
                    // they are always-online archival peers (see below).
                    initial_seeder: PeerId((i % cfg.peers.min(cfg.swarms)) as u32),
                }
            })
            .collect();

        let seeder_count = cfg.swarms.min(cfg.peers);
        let peers: Vec<PeerTrace> = (0..cfg.peers)
            .map(|i| {
                let peer = PeerId(i as u32);
                let is_initial_seeder = i < seeder_count;
                let sessions = if is_initial_seeder {
                    // archival seeders stay online for the whole trace
                    vec![Session {
                        start: Seconds::ZERO,
                        end: cfg.horizon,
                    }]
                } else {
                    diurnal_sessions(&mut rng, cfg.horizon)
                };
                let requests = if is_initial_seeder {
                    Vec::new()
                } else {
                    random_requests(&mut rng, cfg)
                };
                let (down_bw, up_bw) = if is_initial_seeder {
                    (cfg.down_bw, cfg.seeder_up_bw)
                } else if cfg.bandwidth_classes.is_empty() {
                    (cfg.down_bw, cfg.up_bw)
                } else {
                    let class = pick_class(&mut rng, &cfg.bandwidth_classes);
                    (class.down, class.up)
                };
                PeerTrace {
                    peer,
                    sessions,
                    requests,
                    connectable: is_initial_seeder || !rng.gen_bool(cfg.unconnectable_fraction),
                    down_bw,
                    up_bw,
                }
            })
            .collect();

        let trace = Trace {
            horizon: cfg.horizon,
            peers,
            swarms,
        };
        debug_assert!(trace.validate().is_ok(), "{:?}", trace.validate());
        trace
    }
}

/// Weighted draw from the bandwidth classes.
fn pick_class(rng: &mut StdRng, classes: &[BandwidthClass]) -> BandwidthClass {
    let total: f64 = classes.iter().map(|c| c.weight).sum();
    let mut pick = rng.gen_range(0.0..total.max(f64::MIN_POSITIVE));
    for c in classes {
        if pick < c.weight {
            return *c;
        }
        pick -= c.weight;
    }
    *classes.last().expect("non-empty class list")
}

/// Log-uniform sample in `[lo, hi]`.
fn log_uniform(rng: &mut StdRng, lo: f64, hi: f64) -> f64 {
    let u = rng.gen_range(lo.ln()..=hi.ln());
    u.exp()
}

/// Release times: swarm `i` is "released" at a staggered point in the
/// first 70 % of the trace; peers request a file shortly after its
/// release (private-tracker flashcrowd behaviour), which is what
/// builds up concurrent swarm membership.
fn release_time(swarm: u32, swarms: usize, horizon: Seconds) -> Seconds {
    // releases span ~90 % of the trace so demand persists to the end;
    // a fixed coprime permutation decorrelates release order from the
    // Zipf popularity ranks (otherwise the most popular file is always
    // the oldest)
    let n = swarms.max(1) as u64;
    let pos = (swarm as u64 * 7 + 3) % n;
    let span = horizon.0 * 9 / 10;
    Seconds(span * pos / n)
}

/// Diurnal sessions: one main online window per day (centred on a
/// per-peer preferred hour) with jittered start/length, occasionally
/// skipped.
fn diurnal_sessions(rng: &mut StdRng, horizon: Seconds) -> Vec<Session> {
    let days = (horizon.0 / 86_400).max(1);
    // preferred start hour, biased toward evenings
    let pref_hour: f64 = if rng.gen_bool(0.7) {
        rng.gen_range(17.0..23.0)
    } else {
        rng.gen_range(7.0..17.0)
    };
    let mut sessions = Vec::new();
    for day in 0..days {
        if rng.gen_bool(0.1) {
            continue; // offline day
        }
        let start_h = (pref_hour + rng.gen_range(-1.5..1.5)).clamp(0.0, 23.0);
        // Private-community members keep their client running long —
        // sharing-ratio enforcement rewards seeding time (cf. [2] in
        // the paper) — so sessions run 6–18 h rather than an evening.
        let len_h = rng.gen_range(6.0..18.0);
        let start = day as f64 * 24.0 + start_h;
        let end = (start + len_h).min(horizon.as_hours());
        let start_s = Seconds((start * 3600.0) as u64);
        let end_s = Seconds((end * 3600.0) as u64);
        if end_s.0 > start_s.0 {
            sessions.push(Session {
                start: start_s,
                end: end_s,
            });
        }
    }
    if sessions.is_empty() {
        // guarantee at least one session so the peer exists in the trace
        sessions.push(Session {
            start: Seconds::ZERO,
            end: Seconds::from_hours(4).min(horizon),
        });
    }
    // clamp overlaps introduced by jitter across midnight
    sessions.sort_by_key(|s| s.start);
    let mut merged: Vec<Session> = Vec::with_capacity(sessions.len());
    for s in sessions {
        if let Some(last) = merged.last_mut() {
            if s.start < last.end {
                last.end = last.end.max(s.end);
                continue;
            }
        }
        merged.push(s);
    }
    merged
}

fn random_requests(rng: &mut StdRng, cfg: &SynthConfig) -> Vec<FileRequest> {
    let mean = cfg.requests_per_peer;
    // Poisson-ish: sample count from a geometric-like distribution
    // around the mean, clamped to the number of swarms.
    let count = ((mean * rng.gen_range(0.5..1.5)).round() as usize).clamp(1, cfg.swarms);
    // choose distinct swarms with Zipf-like popularity: low swarm ids
    // are requested far more often, so popular swarms build up the
    // concurrent membership real trackers show while niche swarms stay
    // sparse.
    let mut ids: Vec<u32> = Vec::with_capacity(count);
    let weights: Vec<f64> = (0..cfg.swarms).map(|r| 1.0 / (r as f64 + 1.0)).collect();
    let total: f64 = weights.iter().sum();
    while ids.len() < count {
        let mut pick = rng.gen_range(0.0..total);
        let mut chosen = 0;
        for (i, w) in weights.iter().enumerate() {
            if pick < *w {
                chosen = i;
                break;
            }
            pick -= w;
        }
        if !ids.contains(&(chosen as u32)) {
            ids.push(chosen as u32);
        }
    }
    let mut requests: Vec<FileRequest> = ids
        .into_iter()
        .map(|sid| {
            // flashcrowd: request soon after the swarm's release, with
            // an exponential-ish tail (mean ~12 h)
            let release = release_time(sid, cfg.swarms, cfg.horizon);
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            let delay_h = -12.0 * u.ln();
            let t = Seconds(
                (release.0 + (delay_h * 3600.0) as u64).min(cfg.horizon.0.saturating_sub(1)),
            );
            FileRequest {
                swarm: SwarmId(sid),
                time: t,
            }
        })
        .collect();
    requests.sort_by_key(|r| r.time);
    requests
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_setup() {
        let cfg = SynthConfig::default();
        assert_eq!(cfg.peers, 100);
        assert_eq!(cfg.swarms, 10);
        assert_eq!(cfg.horizon, Seconds::from_days(7));
        assert_eq!(cfg.down_bw, Bandwidth::from_mbps(3));
        assert_eq!(cfg.up_bw, Bandwidth::from_kbps(512));
    }

    #[test]
    fn generated_trace_is_valid() {
        let t = TraceBuilder::new(SynthConfig::default()).build(1);
        t.validate().unwrap();
        assert_eq!(t.peer_count(), 100);
        assert_eq!(t.swarm_count(), 10);
    }

    #[test]
    fn deterministic_per_seed() {
        let b = TraceBuilder::new(SynthConfig::default());
        assert_eq!(b.build(7), b.build(7));
        assert_ne!(b.build(7), b.build(8));
    }

    #[test]
    fn file_sizes_in_paper_range() {
        let t = TraceBuilder::new(SynthConfig::default()).build(3);
        for s in &t.swarms {
            let mb = s.file_size.as_mb();
            assert!(
                (25.0..=2600.0).contains(&mb),
                "file size {mb} MB out of range"
            );
        }
    }

    #[test]
    fn initial_seeders_always_online_and_request_nothing() {
        let t = TraceBuilder::new(SynthConfig::default()).build(5);
        for s in &t.swarms {
            let p = t.peer(s.initial_seeder).unwrap();
            assert!(p.online_at(Seconds::ZERO));
            assert!(p.online_at(Seconds(t.horizon.0 - 1)));
            assert!(p.requests.is_empty());
        }
    }

    #[test]
    fn non_seeders_have_requests_and_bounded_sessions() {
        let t = TraceBuilder::new(SynthConfig::default()).build(9);
        let seeders: Vec<PeerId> = t.swarms.iter().map(|s| s.initial_seeder).collect();
        let mut with_requests = 0;
        for p in &t.peers {
            if seeders.contains(&p.peer) {
                continue;
            }
            if !p.requests.is_empty() {
                with_requests += 1;
            }
            for s in &p.sessions {
                assert!(s.end <= t.horizon);
            }
        }
        assert!(with_requests > 80, "most peers should request files");
    }

    #[test]
    fn small_config_works() {
        let cfg = SynthConfig {
            peers: 5,
            swarms: 2,
            horizon: Seconds::from_days(1),
            ..Default::default()
        };
        let t = TraceBuilder::new(cfg).build(0);
        t.validate().unwrap();
        assert_eq!(t.peer_count(), 5);
    }

    #[test]
    fn bandwidth_classes_are_applied() {
        let cfg = SynthConfig {
            peers: 60,
            bandwidth_classes: vec![BandwidthClass::adsl(0.5), BandwidthClass::fibre(0.5)],
            ..Default::default()
        };
        let t = TraceBuilder::new(cfg).build(3);
        t.validate().unwrap();
        let adsl = t
            .peers
            .iter()
            .skip(10) // skip archival seeders
            .filter(|p| p.up_bw == Bandwidth::from_kbps(512))
            .count();
        let fibre = t
            .peers
            .iter()
            .skip(10)
            .filter(|p| p.up_bw == Bandwidth::from_mbps(10))
            .count();
        assert_eq!(adsl + fibre, 50, "every regular peer is in a class");
        assert!(adsl > 10 && fibre > 10, "roughly even mix: {adsl}/{fibre}");
    }

    #[test]
    fn empty_classes_fall_back_to_flat_profile() {
        let t = TraceBuilder::new(SynthConfig::default()).build(4);
        for p in t.peers.iter().skip(10) {
            assert_eq!(p.down_bw, Bandwidth::from_mbps(3));
            assert_eq!(p.up_bw, Bandwidth::from_kbps(512));
        }
    }

    #[test]
    fn requests_lie_within_horizon() {
        let t = TraceBuilder::new(SynthConfig::default()).build(11);
        for p in &t.peers {
            for r in &p.requests {
                assert!(r.time < t.horizon);
            }
        }
    }
}

//! Community traces for trace-driven simulation (§5.1).
//!
//! The paper drives its simulations with traces scraped from the
//! private BitTorrent tracker `filelist.org`, containing "detailed
//! behaviour of all peers that were active in the file-sharing network,
//! including uptimes, downtimes, connectability, and file-requests".
//! Those traces are proprietary, so this crate provides:
//!
//! * [`model`] — a trace data model capturing exactly the quantities
//!   the paper lists: per-peer online sessions, connectability, file
//!   requests, and per-swarm file sizes;
//! * [`synth`] — a seeded synthetic generator reproducing the paper's
//!   workload *shape* (100 peers, 10 swarms, one week, tens-of-MB to
//!   2 GB files, diurnal sessions);
//! * [`format`] — a line-oriented text serialization so real tracker
//!   traces can be converted and dropped in;
//! * [`import`] — trace **reconstruction** from raw tracker announce
//!   logs (started/heartbeat/completed/stopped events), the same
//!   process the authors applied to the `filelist.org` scrape.

#![warn(missing_docs)]

pub mod format;
pub mod import;
pub mod model;
pub mod synth;

pub use import::{import_tracker_log, ImportConfig, ImportError};
pub use model::{FileRequest, PeerTrace, Session, SwarmTrace, Trace};
pub use synth::{SynthConfig, TraceBuilder};

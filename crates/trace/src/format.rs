//! Line-oriented text format for traces.
//!
//! Binary serde formats are outside the allowed dependency set, so
//! traces are stored as a simple text format that is easy to produce
//! from real tracker scrapes:
//!
//! ```text
//! # comment
//! trace horizon=<secs>
//! swarm id=<u32> size=<bytes> piece=<bytes> seeder=<u32>
//! peer id=<u32> connectable=<0|1> down=<Bps> up=<Bps>
//! session peer=<u32> start=<secs> end=<secs>
//! request peer=<u32> swarm=<u32> time=<secs>
//! ```
//!
//! Line order is free except that `session`/`request` lines must follow
//! their `peer` line's declaration (they reference it by id, so in fact
//! any order parses; the writer emits them grouped).

use crate::model::{FileRequest, PeerTrace, Session, SwarmId, SwarmTrace, Trace};
use bartercast_util::units::{Bandwidth, Bytes, PeerId, Seconds};
use std::fmt::Write as _;

/// Serialization errors (currently none are possible; reserved).
#[derive(Debug)]
pub enum WriteError {}

/// Parse errors with line numbers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Serialize a trace to the text format.
pub fn write_trace(trace: &Trace) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# bartercast trace v1");
    let _ = writeln!(out, "trace horizon={}", trace.horizon.0);
    for s in &trace.swarms {
        let _ = writeln!(
            out,
            "swarm id={} size={} piece={} seeder={}",
            s.swarm.0, s.file_size.0, s.piece_size.0, s.initial_seeder.0
        );
    }
    for p in &trace.peers {
        let _ = writeln!(
            out,
            "peer id={} connectable={} down={} up={}",
            p.peer.0,
            u8::from(p.connectable),
            p.down_bw.0,
            p.up_bw.0
        );
        for s in &p.sessions {
            let _ = writeln!(
                out,
                "session peer={} start={} end={}",
                p.peer.0, s.start.0, s.end.0
            );
        }
        for r in &p.requests {
            let _ = writeln!(
                out,
                "request peer={} swarm={} time={}",
                p.peer.0, r.swarm.0, r.time.0
            );
        }
    }
    out
}

/// Parse the text format back into a [`Trace`].
pub fn parse_trace(text: &str) -> Result<Trace, ParseError> {
    let mut trace = Trace::default();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let kind = parts.next().unwrap_or_default();
        let kv = parse_kv(parts, lineno)?;
        match kind {
            "trace" => {
                trace.horizon = Seconds(get(&kv, "horizon", lineno)?);
            }
            "swarm" => {
                trace.swarms.push(SwarmTrace {
                    swarm: SwarmId(get(&kv, "id", lineno)? as u32),
                    file_size: Bytes(get(&kv, "size", lineno)?),
                    piece_size: Bytes(get(&kv, "piece", lineno)?),
                    initial_seeder: PeerId(get(&kv, "seeder", lineno)? as u32),
                });
            }
            "peer" => {
                trace.peers.push(PeerTrace {
                    peer: PeerId(get(&kv, "id", lineno)? as u32),
                    connectable: get(&kv, "connectable", lineno)? != 0,
                    down_bw: Bandwidth(get(&kv, "down", lineno)?),
                    up_bw: Bandwidth(get(&kv, "up", lineno)?),
                    sessions: Vec::new(),
                    requests: Vec::new(),
                });
            }
            "session" => {
                let peer = PeerId(get(&kv, "peer", lineno)? as u32);
                let session = Session {
                    start: Seconds(get(&kv, "start", lineno)?),
                    end: Seconds(get(&kv, "end", lineno)?),
                };
                find_peer(&mut trace, peer, lineno)?.sessions.push(session);
            }
            "request" => {
                let peer = PeerId(get(&kv, "peer", lineno)? as u32);
                let request = FileRequest {
                    swarm: SwarmId(get(&kv, "swarm", lineno)? as u32),
                    time: Seconds(get(&kv, "time", lineno)?),
                };
                find_peer(&mut trace, peer, lineno)?.requests.push(request);
            }
            other => {
                return Err(ParseError {
                    line: lineno,
                    message: format!("unknown record kind '{other}'"),
                });
            }
        }
    }
    Ok(trace)
}

fn parse_kv<'a, I: Iterator<Item = &'a str>>(
    parts: I,
    line: usize,
) -> Result<Vec<(&'a str, &'a str)>, ParseError> {
    parts
        .map(|p| {
            p.split_once('=').ok_or_else(|| ParseError {
                line,
                message: format!("malformed field '{p}' (expected key=value)"),
            })
        })
        .collect()
}

fn get(kv: &[(&str, &str)], key: &str, line: usize) -> Result<u64, ParseError> {
    let (_, v) = kv
        .iter()
        .find(|(k, _)| *k == key)
        .ok_or_else(|| ParseError {
            line,
            message: format!("missing field '{key}'"),
        })?;
    v.parse().map_err(|_| ParseError {
        line,
        message: format!("field '{key}' is not a number: '{v}'"),
    })
}

fn find_peer(trace: &mut Trace, id: PeerId, line: usize) -> Result<&mut PeerTrace, ParseError> {
    trace
        .peers
        .iter_mut()
        .find(|p| p.peer == id)
        .ok_or_else(|| ParseError {
            line,
            message: format!("session/request references undeclared peer {id}"),
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{SynthConfig, TraceBuilder};

    #[test]
    fn roundtrip_synthetic_trace() {
        let t = TraceBuilder::new(SynthConfig::default()).build(42);
        let text = write_trace(&t);
        let back = parse_trace(&text).unwrap();
        assert_eq!(t, back);
        back.validate().unwrap();
    }

    #[test]
    fn roundtrip_small_trace() {
        let cfg = SynthConfig {
            peers: 4,
            swarms: 2,
            ..Default::default()
        };
        let t = TraceBuilder::new(cfg).build(0);
        assert_eq!(parse_trace(&write_trace(&t)).unwrap(), t);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# hello\n\ntrace horizon=100\n  # indented comment\n";
        let t = parse_trace(text).unwrap();
        assert_eq!(t.horizon, Seconds(100));
    }

    #[test]
    fn unknown_kind_rejected() {
        let err = parse_trace("bogus id=1\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("unknown record kind"));
    }

    #[test]
    fn missing_field_rejected() {
        let err = parse_trace("swarm id=0 size=100 piece=10\n").unwrap_err();
        assert!(err.message.contains("missing field 'seeder'"));
    }

    #[test]
    fn malformed_field_rejected() {
        let err = parse_trace("trace horizon\n").unwrap_err();
        assert!(err.message.contains("malformed field"));
    }

    #[test]
    fn non_numeric_rejected() {
        let err = parse_trace("trace horizon=abc\n").unwrap_err();
        assert!(err.message.contains("not a number"));
    }

    #[test]
    fn orphan_session_rejected() {
        let err = parse_trace("session peer=5 start=0 end=10\n").unwrap_err();
        assert!(err.message.contains("undeclared peer"));
    }

    #[test]
    fn error_display_contains_line() {
        let err = parse_trace("trace horizon=1\nbogus x=1\n").unwrap_err();
        assert!(err.to_string().starts_with("line 2:"));
    }
}

//! The reputation engine: subjective graph + maxflow + metric + cache.
//!
//! Each peer owns one [`ReputationEngine`]. It holds the peer's
//! subjective [`ContributionGraph`] (private history edges plus
//! gossiped records), evaluates Equation 1 with a configurable maxflow
//! method (the deployed default is two-hop-bounded), and memoizes
//! results until the graph changes.

use crate::history::PrivateHistory;
use crate::message::BarterCastMessage;
use crate::metric::ReputationMetric;
use bartercast_graph::gomoryhu::GomoryHuTree;
use bartercast_graph::maxflow::{self, Method};
use bartercast_graph::{ssat, ContributionGraph, FlowNetwork};
use bartercast_util::units::{Bytes, PeerId};
use bartercast_util::{FxHashMap, FxHashSet};

/// Default ceiling on memoized `(evaluator, target)` entries before
/// idle sweep eviction kicks in (see
/// [`ReputationEngine::with_cache_budget`]).
pub const DEFAULT_CACHE_BUDGET: usize = 1 << 20;

/// Subjective reputation evaluation with memoization.
#[derive(Debug, Clone)]
pub struct ReputationEngine {
    graph: ContributionGraph,
    method: Method,
    metric: ReputationMetric,
    cache: FxHashMap<(PeerId, PeerId), f64>,
    /// Graph version the cache and `net` were last synchronized to;
    /// [`ReputationEngine::sync`] is the single place that moves it.
    cached_version: u64,
    /// Flow network rebuilt lazily when the graph version moves, so a
    /// burst of reputation queries against an unchanged graph shares
    /// one network construction. Valid only at `cached_version`
    /// (`sync` drops it whenever the version advances).
    net: Option<FlowNetwork>,
    /// Gomory–Hu tree over the min-symmetrized graph: the batch
    /// backend for unbounded methods. Like `net`, rebuilt lazily and
    /// only when the graph version moves.
    gh_tree: Option<GomoryHuTree>,
    /// Maximum directed asymmetry ([`ContributionGraph::asymmetry`])
    /// at which the Gomory–Hu batch backend is trusted; beyond it,
    /// unbounded batch queries fall back to exact per-pair flow.
    flow_tolerance: f64,
    /// Memoized `(version, asymmetry)` so a burst of batch queries
    /// measures the graph once.
    asymmetry_at: Option<(u64, f64)>,
    /// Per-evaluator last-use stamps for sweep-filled cache regions,
    /// driving idle eviction under [`ReputationEngine::cache_budget`].
    sweep_stamp: FxHashMap<PeerId, u64>,
    /// Monotone sweep counter backing `sweep_stamp`.
    sweep_clock: u64,
    /// Entry ceiling for the memo cache: when a batch sweep pushes the
    /// cache past it, whole idle evaluators (oldest sweep stamp first)
    /// are evicted until it fits again.
    cache_budget: usize,
    hits: u64,
    misses: u64,
    /// Batch sweeps answered by the Gomory–Hu tree vs. per-pair
    /// fallback (diagnostics; see `batch_backend_stats`).
    tree_sweeps: u64,
    fallback_sweeps: u64,
}

impl Default for ReputationEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl ReputationEngine {
    /// An engine with an empty graph and the deployed configuration
    /// (two-hop bounded maxflow, arctan metric with 1 GB unit).
    pub fn new() -> Self {
        ReputationEngine {
            graph: ContributionGraph::new(),
            method: Method::DEPLOYED,
            metric: ReputationMetric::default(),
            cache: FxHashMap::default(),
            cached_version: 0,
            net: None,
            gh_tree: None,
            flow_tolerance: 0.0,
            asymmetry_at: None,
            sweep_stamp: FxHashMap::default(),
            sweep_clock: 0,
            cache_budget: DEFAULT_CACHE_BUDGET,
            hits: 0,
            misses: 0,
            tree_sweeps: 0,
            fallback_sweeps: 0,
        }
    }

    /// Seed an engine from a peer's own private history: each entry
    /// `(j, up, down)` becomes the edges `owner → j` and `j → owner`.
    pub fn from_private(history: &PrivateHistory) -> Self {
        let mut engine = Self::new();
        engine.absorb_private(history);
        engine
    }

    /// Override the maxflow method (ablation: unbounded algorithms).
    /// Invalidates any memoized reputations.
    pub fn with_method(mut self, method: Method) -> Self {
        self.method = method;
        self.cache.clear();
        self.sweep_stamp.clear();
        self.gh_tree = None;
        self
    }

    /// Override the reputation metric. Invalidates any memoized
    /// reputations.
    pub fn with_metric(mut self, metric: ReputationMetric) -> Self {
        self.metric = metric;
        self.cache.clear();
        self.sweep_stamp.clear();
        self
    }

    /// Set the directed-asymmetry tolerance for the Gomory–Hu batch
    /// backend (unbounded methods only).
    ///
    /// The tree is built on the min-symmetrized graph, where the two
    /// directed flows of Equation 1 coincide — so batch reputations
    /// computed through it collapse to the *symmetric* part of the
    /// relationship, and the error against exact per-pair evaluation
    /// is bounded by the weight asymmetry the graph carries. At the
    /// default tolerance of `0.0` the tree is only used on exactly
    /// symmetric graphs, where it is bit-identical to per-pair Dinic;
    /// any positive tolerance trades that exactness for `O(n)` sweeps
    /// on nearly-symmetric graphs. Asymmetry beyond the tolerance
    /// always falls back to exact per-pair flow.
    pub fn with_flow_tolerance(mut self, tolerance: f64) -> Self {
        self.flow_tolerance = tolerance;
        // tree-filled entries are only as exact as the tolerance that
        // admitted them; changing it must not mix approximations
        self.cache.clear();
        self.sweep_stamp.clear();
        self
    }

    /// Cap the memo cache at `budget` entries. Batch sweeps memoize
    /// their full single-source result set (every reachable peer, not
    /// just the requested targets); when that pushes the cache past
    /// the budget, the engine evicts whole evaluators that have been
    /// idle longest (by sweep recency) until the cache fits. Purely a
    /// memory/perf knob: eviction can never produce stale values.
    pub fn with_cache_budget(mut self, budget: usize) -> Self {
        self.cache_budget = budget;
        self
    }

    /// Bring the memo cache and shared flow network up to the current
    /// graph version. The single synchronization point for all query
    /// paths (`reputation`, `reputations_from`, `flows_cached`).
    ///
    /// When the graph moved, the shared network is always dropped, but
    /// the memo cache is evicted **incrementally** where the method
    /// permits: for path-length bounds ≤ 2, a changed edge `(a, b)`
    /// can only alter `flow(s, t)` when `s = a` or `t = b`, so the
    /// entry `(i, j)` — which combines `flow(j → i)` and
    /// `flow(i → j)` — is affected exactly when `i` or `j` is an
    /// endpoint of a changed edge. Entries whose pairs avoid every
    /// dirty endpoint are provably unchanged and survive. Unbounded
    /// methods (where a distant edge can reroute flow anywhere) and a
    /// truncated change log fall back to clearing everything.
    fn sync(&mut self) {
        let version = self.graph.version();
        if version == self.cached_version {
            return;
        }
        let evicted_incrementally = matches!(self.method, Method::Bounded(k) if k <= 2)
            && match self.graph.changes_since(self.cached_version) {
                Some(changes) => {
                    let mut dirty: FxHashSet<PeerId> = FxHashSet::default();
                    for (a, b) in changes {
                        dirty.insert(a);
                        dirty.insert(b);
                    }
                    self.cache
                        .retain(|&(i, j), _| !dirty.contains(&i) && !dirty.contains(&j));
                    true
                }
                None => false,
            };
        if !evicted_incrementally {
            self.cache.clear();
            self.sweep_stamp.clear();
        }
        self.net = None;
        self.gh_tree = None;
        self.cached_version = version;
    }

    /// Directed asymmetry of the current graph, measured at most once
    /// per graph version.
    fn asymmetry_cached(&mut self) -> f64 {
        let version = self.graph.version();
        if let Some((v, a)) = self.asymmetry_at {
            if v == version {
                return a;
            }
        }
        let a = self.graph.asymmetry();
        self.asymmetry_at = Some((version, a));
        a
    }

    /// Re-absorb the owner's private history (max-merge, so calling it
    /// repeatedly as the history grows is safe and cheap).
    pub fn absorb_private(&mut self, history: &PrivateHistory) {
        let me = history.owner();
        for (peer, totals) in history.iter() {
            self.graph.merge_record(me, peer, totals.up);
            self.graph.merge_record(peer, me, totals.down);
        }
    }

    /// Merge one gossiped message into the subjective graph. Returns
    /// the number of changed edges.
    pub fn absorb_message(&mut self, msg: &BarterCastMessage) -> usize {
        msg.apply(&mut self.graph)
    }

    /// Direct read-only access to the subjective graph.
    pub fn graph(&self) -> &ContributionGraph {
        &self.graph
    }

    /// Mutable access (used by tests and by the deployment model).
    pub fn graph_mut(&mut self) -> &mut ContributionGraph {
        &mut self.graph
    }

    /// The two directed maxflows of Equation 1:
    /// `(maxflow(j → i), maxflow(i → j))`.
    pub fn flows(&self, i: PeerId, j: PeerId) -> (Bytes, Bytes) {
        (
            maxflow::compute(&self.graph, j, i, self.method),
            maxflow::compute(&self.graph, i, j, self.method),
        )
    }

    /// [`ReputationEngine::flows`] against the shared, lazily rebuilt
    /// flow network (hot path for bulk reputation queries).
    fn flows_cached(&mut self, i: PeerId, j: PeerId) -> (Bytes, Bytes) {
        self.sync();
        let net = self
            .net
            .get_or_insert_with(|| FlowNetwork::from_graph(&self.graph));
        (
            maxflow::compute_on(net, j, i, self.method),
            maxflow::compute_on(net, i, j, self.method),
        )
    }

    /// Subjective reputation `R_i(j)` (§3.3, Equation 1), memoized
    /// until the graph changes.
    pub fn reputation(&mut self, i: PeerId, j: PeerId) -> f64 {
        if i == j {
            return 0.0;
        }
        self.sync();
        if let Some(&r) = self.cache.get(&(i, j)) {
            self.hits += 1;
            return r;
        }
        self.misses += 1;
        let (toward, away) = self.flows_cached(i, j);
        let r = self.metric.eval(toward, away);
        self.cache.insert((i, j), r);
        r
    }

    /// Batch form of [`ReputationEngine::reputation`]: `R_i(j)` for
    /// every `j` in `targets`, in order.
    ///
    /// Three backends, dispatched on the method:
    ///
    /// * **`Bounded(2)`** (deployed): the single-source all-targets
    ///   kernel ([`ssat::flows_into`] / [`ssat::flows_from`]) — two
    ///   traversals of `i`'s two-hop neighbourhood replace one maxflow
    ///   pair per target, bit-identical to per-pair evaluation. The
    ///   **full** single-source result set (every reachable peer) is
    ///   memoized, so consecutive sweeps over different target lists
    ///   are pure cache hits; the cache budget bounds the memory this
    ///   can take (idle evaluators evicted first).
    /// * **Unbounded methods**: the Gomory–Hu tree over the
    ///   min-symmetrized graph, when the graph's directed asymmetry is
    ///   within [`ReputationEngine::with_flow_tolerance`] — one
    ///   `O(n)` tree sweep instead of `2·|targets|` full maxflow runs,
    ///   with the tree itself costing n − 1 Dinic runs *per graph
    ///   version* instead of per sweep. Exact (bit-identical) on
    ///   symmetric graphs; beyond the tolerance every query falls back
    ///   to exact per-pair flow (the oracle).
    /// * **Anything else** (`Bounded(k ≠ 2)`): a plain per-pair loop.
    pub fn reputations_from(&mut self, i: PeerId, targets: &[PeerId]) -> Vec<f64> {
        match self.method {
            Method::Bounded(2) => self.reputations_from_ssat(i, targets),
            Method::FordFulkerson
            | Method::EdmondsKarp
            | Method::Dinic
            | Method::PushRelabel => self.reputations_from_unbounded(i, targets),
            _ => targets.iter().map(|&j| self.reputation(i, j)).collect(),
        }
    }

    /// `Bounded(2)` batch path: SSAT kernel + full-sweep memoization.
    fn reputations_from_ssat(&mut self, i: PeerId, targets: &[PeerId]) -> Vec<f64> {
        self.sync();
        self.touch_sweep(i);
        let mut fresh: Option<FxHashSet<PeerId>> = None;
        let mut out = Vec::with_capacity(targets.len());
        for &j in targets {
            if j == i {
                out.push(0.0);
                continue;
            }
            // entries inserted by *this call's* sweep still count as
            // misses the first time they are requested, so hit/miss
            // totals stay comparable with the pre-sweep accounting
            let prefilled = fresh.as_ref().is_some_and(|f| f.contains(&j));
            if !prefilled {
                if let Some(&r) = self.cache.get(&(i, j)) {
                    self.hits += 1;
                    out.push(r);
                    continue;
                }
            }
            self.misses += 1;
            let inserted = fresh.get_or_insert_with(|| {
                let toward = ssat::flows_into(&self.graph, i);
                let away = ssat::flows_from(&self.graph, i);
                Self::fill_sweep(
                    &mut self.cache,
                    &self.metric,
                    i,
                    toward.keys().chain(away.keys()).copied(),
                    |j| {
                        let t = toward.get(&j).copied().unwrap_or(Bytes::ZERO);
                        let a = away.get(&j).copied().unwrap_or(Bytes::ZERO);
                        (t, a)
                    },
                )
            });
            inserted.remove(&j);
            // peers absent from both SSAT maps have zero flow either
            // way; memoize them too so repeat queries hit
            let r = match self.cache.get(&(i, j)) {
                Some(&r) => r,
                None => {
                    let r = self.metric.eval(Bytes::ZERO, Bytes::ZERO);
                    self.cache.insert((i, j), r);
                    r
                }
            };
            out.push(r);
        }
        if fresh.is_some() {
            self.enforce_budget(i);
        }
        out
    }

    /// Memoize evaluator `i`'s **entire** single-source result set —
    /// the sweep already covers every reachable peer, so caching only
    /// requested targets (as the first version of this path did) threw
    /// the rest away. Entries already memoized are left alone (they
    /// are at the same graph version, hence identical); the returned
    /// set holds the keys that were genuinely new.
    fn fill_sweep(
        cache: &mut FxHashMap<(PeerId, PeerId), f64>,
        metric: &ReputationMetric,
        i: PeerId,
        keys: impl Iterator<Item = PeerId>,
        flows_of: impl Fn(PeerId) -> (Bytes, Bytes),
    ) -> FxHashSet<PeerId> {
        let mut fresh = FxHashSet::default();
        for j in keys {
            if j != i && !cache.contains_key(&(i, j)) {
                let (t, a) = flows_of(j);
                cache.insert((i, j), metric.eval(t, a));
                fresh.insert(j);
            }
        }
        fresh
    }

    /// Unbounded batch path: Gomory–Hu tree within the asymmetry
    /// tolerance, exact per-pair fallback beyond it.
    fn reputations_from_unbounded(&mut self, i: PeerId, targets: &[PeerId]) -> Vec<f64> {
        self.sync();
        if self.asymmetry_cached() > self.flow_tolerance {
            self.fallback_sweeps += 1;
            return targets.iter().map(|&j| self.reputation(i, j)).collect();
        }
        self.tree_sweeps += 1;
        self.touch_sweep(i);
        let version = self.graph.version();
        if self.gh_tree.as_ref().map(GomoryHuTree::version) != Some(version) {
            self.gh_tree = Some(GomoryHuTree::build(&self.graph));
        }
        let tree = self.gh_tree.take().expect("tree built above");
        let flows = tree.all_flows_from(i);
        let mut fresh: Option<FxHashSet<PeerId>> = None;
        let mut out = Vec::with_capacity(targets.len());
        for &j in targets {
            if j == i {
                out.push(0.0);
                continue;
            }
            let prefilled = fresh.as_ref().is_some_and(|f| f.contains(&j));
            if !prefilled {
                if let Some(&r) = self.cache.get(&(i, j)) {
                    self.hits += 1;
                    out.push(r);
                    continue;
                }
            }
            self.misses += 1;
            let inserted = fresh.get_or_insert_with(|| {
                // the tree flow serves both directions of Equation 1
                // (see with_flow_tolerance for the error model)
                Self::fill_sweep(&mut self.cache, &self.metric, i, flows.keys().copied(), |j| {
                    let f = flows.get(&j).copied().unwrap_or(Bytes::ZERO);
                    (f, f)
                })
            });
            inserted.remove(&j);
            let r = match self.cache.get(&(i, j)) {
                Some(&r) => r,
                None => {
                    let r = self.metric.eval(Bytes::ZERO, Bytes::ZERO);
                    self.cache.insert((i, j), r);
                    r
                }
            };
            out.push(r);
        }
        self.gh_tree = Some(tree);
        if fresh.is_some() {
            self.enforce_budget(i);
        }
        out
    }

    /// Refresh evaluator `i`'s sweep-recency stamp.
    fn touch_sweep(&mut self, i: PeerId) {
        self.sweep_clock += 1;
        self.sweep_stamp.insert(i, self.sweep_clock);
    }

    /// Evict whole idle evaluators (oldest sweep stamp first, never
    /// the one currently sweeping) until the cache fits its budget.
    fn enforce_budget(&mut self, current: PeerId) {
        if self.cache.len() <= self.cache_budget {
            return;
        }
        let mut owners: Vec<(u64, PeerId)> = self
            .sweep_stamp
            .iter()
            .filter(|&(&p, _)| p != current)
            .map(|(&p, &stamp)| (stamp, p))
            .collect();
        owners.sort_unstable();
        for (_, p) in owners {
            if self.cache.len() <= self.cache_budget {
                break;
            }
            self.cache.retain(|&(e, _), _| e != p);
            self.sweep_stamp.remove(&p);
        }
    }

    /// `(cache hits, cache misses)` since construction. A hit is a
    /// query answered from the memo cache, a miss one that computed
    /// flows; both [`ReputationEngine::reputation`] and
    /// [`ReputationEngine::reputations_from`] count each queried pair
    /// exactly once, so the totals stay comparable across query paths
    /// and cache invalidations.
    pub fn cache_stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Number of memoized `(i, j)` entries currently held.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// `(tree sweeps, fallback sweeps)`: how many unbounded batch
    /// queries the Gomory–Hu backend answered vs. how many fell back
    /// to exact per-pair flow because the graph's asymmetry exceeded
    /// the tolerance.
    pub fn batch_backend_stats(&self) -> (u64, u64) {
        (self.tree_sweeps, self.fallback_sweeps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bartercast_util::units::Seconds;

    fn p(i: u32) -> PeerId {
        PeerId(i)
    }

    fn engine_with_chain() -> ReputationEngine {
        // 2 -> 1 -> 0: peer 0 evaluates peer 2 through intermediary 1
        let mut e = ReputationEngine::new();
        e.graph_mut().add_transfer(p(2), p(1), Bytes::from_mb(300));
        e.graph_mut().add_transfer(p(1), p(0), Bytes::from_mb(200));
        e
    }

    #[test]
    fn from_private_builds_both_directions() {
        let mut h = PrivateHistory::new(p(0));
        h.record_upload(p(1), Bytes::from_mb(100), Seconds(1));
        h.record_download(p(2), Bytes::from_mb(300), Seconds(2));
        let e = ReputationEngine::from_private(&h);
        assert_eq!(e.graph().edge(p(0), p(1)), Bytes::from_mb(100));
        assert_eq!(e.graph().edge(p(2), p(0)), Bytes::from_mb(300));
    }

    #[test]
    fn indirect_service_counts_but_is_limited() {
        let mut e = engine_with_chain();
        // maxflow(2 -> 0) = min(300, 200) = 200 MB through peer 1
        let (toward, away) = e.flows(p(0), p(2));
        assert_eq!(toward, Bytes::from_mb(200));
        assert_eq!(away, Bytes::ZERO);
        assert!(e.reputation(p(0), p(2)) > 0.0);
    }

    #[test]
    fn liar_constrained_by_receivers_incoming_edges() {
        // §3.4: maxflow(j, i) is bounded by i's incoming capacity,
        // which comes from i's own private history.
        let mut e = ReputationEngine::new();
        // I (peer 0) downloaded only 10 MB from peer 1 in total.
        e.graph_mut().add_transfer(p(1), p(0), Bytes::from_mb(10));
        // Liar (peer 9) claims it uploaded 100 GB to peer 1.
        e.graph_mut().merge_record(p(9), p(1), Bytes::from_gb(100));
        let (toward, _) = e.flows(p(0), p(9));
        assert!(toward <= Bytes::from_mb(10), "lie must be capped at {toward:?}");
        let r = e.reputation(p(0), p(9));
        assert!(r < 0.02, "liar reputation barely moves: {r}");
    }

    #[test]
    fn self_reputation_is_zero() {
        let mut e = engine_with_chain();
        assert_eq!(e.reputation(p(0), p(0)), 0.0);
    }

    #[test]
    fn unknown_peer_is_neutral() {
        let mut e = engine_with_chain();
        assert_eq!(e.reputation(p(0), p(77)), 0.0);
    }

    #[test]
    fn cache_hits_until_graph_changes() {
        let mut e = engine_with_chain();
        let r1 = e.reputation(p(0), p(2));
        let r2 = e.reputation(p(0), p(2));
        assert_eq!(r1, r2);
        let (hits, misses) = e.cache_stats();
        assert_eq!((hits, misses), (1, 1));
        // mutate graph: cache must invalidate
        e.graph_mut().add_transfer(p(2), p(1), Bytes::from_gb(1));
        let r3 = e.reputation(p(0), p(2));
        let (_, misses2) = e.cache_stats();
        assert_eq!(misses2, 2);
        assert!(r3 >= r1);
    }

    #[test]
    fn deployed_method_ignores_three_hop_paths() {
        let mut e = ReputationEngine::new();
        // 3 -> 2 -> 1 -> 0 (three hops)
        e.graph_mut().add_transfer(p(3), p(2), Bytes::from_gb(1));
        e.graph_mut().add_transfer(p(2), p(1), Bytes::from_gb(1));
        e.graph_mut().add_transfer(p(1), p(0), Bytes::from_gb(1));
        assert_eq!(e.reputation(p(0), p(3)), 0.0);
        let mut unbounded = e.clone().with_method(Method::Dinic);
        assert!(unbounded.reputation(p(0), p(3)) > 0.0);
    }

    #[test]
    fn batch_matches_per_pair_bitwise() {
        let mut batch = ReputationEngine::new();
        batch.graph_mut().add_transfer(p(2), p(1), Bytes::from_mb(300));
        batch.graph_mut().add_transfer(p(1), p(0), Bytes::from_mb(200));
        batch.graph_mut().add_transfer(p(0), p(3), Bytes::from_gb(1));
        batch.graph_mut().add_transfer(p(3), p(2), Bytes::from_mb(50));
        let mut per_pair = batch.clone();

        let targets = [p(0), p(1), p(2), p(3), p(77)];
        let rs = batch.reputations_from(p(0), &targets);
        for (&j, &r) in targets.iter().zip(&rs) {
            assert_eq!(
                r.to_bits(),
                per_pair.reputation(p(0), j).to_bits(),
                "R_0({j}) differs between batch and per-pair"
            );
        }
    }

    #[test]
    fn batch_falls_back_for_unbounded_methods() {
        let mut e = engine_with_chain().with_method(Method::Dinic);
        let mut per_pair = e.clone();
        let targets = [p(1), p(2)];
        let rs = e.reputations_from(p(0), &targets);
        for (&j, &r) in targets.iter().zip(&rs) {
            assert_eq!(r.to_bits(), per_pair.reputation(p(0), j).to_bits());
        }
    }

    #[test]
    fn batch_and_per_pair_share_cache_and_stats() {
        let mut e = engine_with_chain();
        // batch fills the cache: 2 misses (self-query is free)
        e.reputations_from(p(0), &[p(0), p(1), p(2)]);
        assert_eq!(e.cache_stats(), (0, 2));
        assert_eq!(e.cache_len(), 2);
        // per-pair queries now hit the batch-filled entries
        e.reputation(p(0), p(1));
        e.reputation(p(0), p(2));
        assert_eq!(e.cache_stats(), (2, 2));
        // and a second batch is pure hits
        e.reputations_from(p(0), &[p(1), p(2)]);
        assert_eq!(e.cache_stats(), (4, 2));
    }

    #[test]
    fn incremental_invalidation_keeps_untouched_entries() {
        let mut e = ReputationEngine::new();
        // two disjoint components: {0,1} and {5,6}
        e.graph_mut().add_transfer(p(1), p(0), Bytes::from_mb(100));
        e.graph_mut().add_transfer(p(6), p(5), Bytes::from_mb(100));
        e.reputation(p(0), p(1));
        e.reputation(p(5), p(6));
        assert_eq!(e.cache_stats(), (0, 2));
        // touching the {5,6} component must not evict the (0,1) entry
        e.graph_mut().add_transfer(p(6), p(5), Bytes::from_mb(1));
        e.reputation(p(0), p(1));
        assert_eq!(e.cache_stats(), (1, 2), "(0,1) must survive eviction");
        e.reputation(p(5), p(6));
        assert_eq!(e.cache_stats(), (1, 3), "(5,6) must be recomputed");
    }

    #[test]
    fn incremental_invalidation_never_serves_stale_values() {
        let mut e = engine_with_chain();
        let before = e.reputation(p(0), p(2));
        // strengthen the 2 -> 1 edge: flow(2 -> 0) rises from 200 MB
        // to min(1300, 200)... still 200 through 1 — so raise 1 -> 0 too
        e.graph_mut().add_transfer(p(2), p(1), Bytes::from_gb(1));
        e.graph_mut().add_transfer(p(1), p(0), Bytes::from_gb(1));
        let after = e.reputation(p(0), p(2));
        let mut fresh = ReputationEngine::new();
        fresh.graph_mut().add_transfer(p(2), p(1), Bytes::from_mb(300));
        fresh.graph_mut().add_transfer(p(1), p(0), Bytes::from_mb(200));
        fresh.graph_mut().add_transfer(p(2), p(1), Bytes::from_gb(1));
        fresh.graph_mut().add_transfer(p(1), p(0), Bytes::from_gb(1));
        assert_eq!(after.to_bits(), fresh.reputation(p(0), p(2)).to_bits());
        assert!(after > before);
    }

    #[test]
    fn unbounded_methods_clear_everything_on_change() {
        let mut e = ReputationEngine::new().with_method(Method::Dinic);
        e.graph_mut().add_transfer(p(1), p(0), Bytes::from_mb(100));
        e.graph_mut().add_transfer(p(6), p(5), Bytes::from_mb(100));
        e.reputation(p(0), p(1));
        // under Dinic a distant edge can matter, so any change clears
        e.graph_mut().add_transfer(p(6), p(5), Bytes::from_mb(1));
        e.reputation(p(0), p(1));
        assert_eq!(e.cache_stats(), (0, 2));
    }

    /// Symmetric diamond: every edge mirrored, so asymmetry is 0 and
    /// the Gomory–Hu batch backend is admissible at zero tolerance.
    fn engine_with_symmetric_diamond(method: Method) -> ReputationEngine {
        let mut e = ReputationEngine::new().with_method(method);
        for (a, b, mb) in [(0, 1, 100), (1, 2, 200), (0, 3, 50), (3, 2, 50)] {
            e.graph_mut().add_transfer(p(a), p(b), Bytes::from_mb(mb));
            e.graph_mut().add_transfer(p(b), p(a), Bytes::from_mb(mb));
        }
        e
    }

    #[test]
    fn tree_backend_matches_per_pair_on_symmetric_graphs() {
        let mut batch = engine_with_symmetric_diamond(Method::Dinic);
        let mut per_pair = batch.clone();
        let targets = [p(0), p(1), p(2), p(3), p(9)];
        let rs = batch.reputations_from(p(0), &targets);
        assert_eq!(batch.batch_backend_stats(), (1, 0), "must use the tree");
        for (&j, &r) in targets.iter().zip(&rs) {
            assert_eq!(
                r.to_bits(),
                per_pair.reputation(p(0), j).to_bits(),
                "R_0({j}) differs between tree batch and per-pair Dinic"
            );
        }
    }

    #[test]
    fn asymmetric_graph_falls_back_to_per_pair() {
        // the chain is maximally asymmetric: zero tolerance rejects it
        let mut e = engine_with_chain().with_method(Method::Dinic);
        let mut per_pair = e.clone();
        let targets = [p(1), p(2)];
        let rs = e.reputations_from(p(0), &targets);
        assert_eq!(e.batch_backend_stats(), (0, 1), "must fall back");
        for (&j, &r) in targets.iter().zip(&rs) {
            assert_eq!(r.to_bits(), per_pair.reputation(p(0), j).to_bits());
        }
    }

    #[test]
    fn tolerance_admits_near_symmetric_graphs() {
        let mut e = engine_with_symmetric_diamond(Method::Dinic).with_flow_tolerance(0.2);
        // one small one-way edge: asymmetric, but within tolerance
        e.graph_mut().add_transfer(p(1), p(3), Bytes::from_mb(10));
        assert!(e.graph().asymmetry() > 0.0);
        e.reputations_from(p(0), &[p(1), p(2)]);
        assert_eq!(e.batch_backend_stats(), (1, 0));
        // but zero tolerance rejects the same graph
        let mut strict = e.clone().with_flow_tolerance(0.0);
        strict.reputations_from(p(0), &[p(1), p(2)]);
        assert_eq!(strict.batch_backend_stats(), (1, 1));
    }

    #[test]
    fn full_sweep_memoization_makes_later_targets_hits() {
        // the sweep memoizes every reachable peer, not just requested
        // targets: asking for a *different* reachable target later must
        // be a pure cache hit
        let mut e = engine_with_chain();
        e.reputations_from(p(0), &[p(1)]);
        assert_eq!(e.cache_stats(), (0, 1));
        e.reputations_from(p(0), &[p(2)]);
        assert_eq!(e.cache_stats(), (1, 1), "peer 2 was memoized by the first sweep");
        assert_eq!(
            e.reputation(p(0), p(2)).to_bits(),
            engine_with_chain().reputation(p(0), p(2)).to_bits()
        );
    }

    #[test]
    fn cache_budget_evicts_idle_evaluators_without_staleness() {
        let mut e = engine_with_chain().with_cache_budget(3);
        e.reputations_from(p(0), &[p(2)]); // fills (0,1), (0,2)
        assert_eq!(e.cache_len(), 2);
        e.reputations_from(p(1), &[p(2)]); // fills (1,0), (1,2): over budget
        assert!(e.cache_len() <= 3, "budget must hold: {}", e.cache_len());
        // evaluator 0 (idle longest) was evicted wholesale; re-querying
        // recomputes the same value — eviction is never stale
        let (_, misses_before) = e.cache_stats();
        let r = e.reputation(p(0), p(2));
        let (_, misses_after) = e.cache_stats();
        assert_eq!(misses_after, misses_before + 1, "entry was evicted");
        assert_eq!(r.to_bits(), engine_with_chain().reputation(p(0), p(2)).to_bits());
    }

    #[test]
    fn tree_rebuild_only_on_version_change() {
        let mut e = engine_with_symmetric_diamond(Method::Dinic);
        e.reputations_from(p(0), &[p(2)]);
        let v1 = e.gh_tree.as_ref().expect("tree built by sweep").version();
        // graph unchanged: a sweep from another evaluator reuses the
        // same tree instead of paying n − 1 Dinic runs again
        e.reputations_from(p(1), &[p(2)]);
        assert_eq!(e.gh_tree.as_ref().unwrap().version(), v1);
        assert_eq!(e.batch_backend_stats(), (2, 0));
        // symmetric mutation: the version moves and the next sweep
        // rebuilds (PR 1's version-based invalidation, reused here)
        e.graph_mut().add_transfer(p(0), p(2), Bytes::from_gb(1));
        e.graph_mut().add_transfer(p(2), p(0), Bytes::from_gb(1));
        e.reputations_from(p(0), &[p(2)]);
        let v2 = e.gh_tree.as_ref().unwrap().version();
        assert!(v2 > v1, "tree must track the graph version: {v1} -> {v2}");
        assert_eq!(e.batch_backend_stats(), (3, 0));
    }

    #[test]
    fn absorb_message_roundtrip() {
        let mut h = PrivateHistory::new(p(5));
        h.record_upload(p(6), Bytes::from_mb(42), Seconds(1));
        let msg = BarterCastMessage::from_history(&h, Default::default());
        let mut e = ReputationEngine::new();
        assert!(e.absorb_message(&msg) > 0);
        assert_eq!(e.graph().edge(p(5), p(6)), Bytes::from_mb(42));
    }
}

//! The reputation engine: subjective graph + maxflow + metric + cache.
//!
//! Each peer owns one [`ReputationEngine`]. It holds the peer's
//! subjective [`ContributionGraph`] (private history edges plus
//! gossiped records), evaluates Equation 1 with a configurable maxflow
//! method (the deployed default is two-hop-bounded), and memoizes
//! results until the graph changes.

use crate::history::PrivateHistory;
use crate::message::BarterCastMessage;
use crate::metric::ReputationMetric;
use bartercast_graph::maxflow::{self, Method};
use bartercast_graph::{ssat, ContributionGraph, FlowNetwork};
use bartercast_util::units::{Bytes, PeerId};
use bartercast_util::{FxHashMap, FxHashSet};

/// Subjective reputation evaluation with memoization.
#[derive(Debug, Clone)]
pub struct ReputationEngine {
    graph: ContributionGraph,
    method: Method,
    metric: ReputationMetric,
    cache: FxHashMap<(PeerId, PeerId), f64>,
    /// Graph version the cache and `net` were last synchronized to;
    /// [`ReputationEngine::sync`] is the single place that moves it.
    cached_version: u64,
    /// Flow network rebuilt lazily when the graph version moves, so a
    /// burst of reputation queries against an unchanged graph shares
    /// one network construction. Valid only at `cached_version`
    /// (`sync` drops it whenever the version advances).
    net: Option<FlowNetwork>,
    hits: u64,
    misses: u64,
}

impl Default for ReputationEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl ReputationEngine {
    /// An engine with an empty graph and the deployed configuration
    /// (two-hop bounded maxflow, arctan metric with 1 GB unit).
    pub fn new() -> Self {
        ReputationEngine {
            graph: ContributionGraph::new(),
            method: Method::DEPLOYED,
            metric: ReputationMetric::default(),
            cache: FxHashMap::default(),
            cached_version: 0,
            net: None,
            hits: 0,
            misses: 0,
        }
    }

    /// Seed an engine from a peer's own private history: each entry
    /// `(j, up, down)` becomes the edges `owner → j` and `j → owner`.
    pub fn from_private(history: &PrivateHistory) -> Self {
        let mut engine = Self::new();
        engine.absorb_private(history);
        engine
    }

    /// Override the maxflow method (ablation: unbounded algorithms).
    /// Invalidates any memoized reputations.
    pub fn with_method(mut self, method: Method) -> Self {
        self.method = method;
        self.cache.clear();
        self
    }

    /// Override the reputation metric. Invalidates any memoized
    /// reputations.
    pub fn with_metric(mut self, metric: ReputationMetric) -> Self {
        self.metric = metric;
        self.cache.clear();
        self
    }

    /// Bring the memo cache and shared flow network up to the current
    /// graph version. The single synchronization point for all query
    /// paths (`reputation`, `reputations_from`, `flows_cached`).
    ///
    /// When the graph moved, the shared network is always dropped, but
    /// the memo cache is evicted **incrementally** where the method
    /// permits: for path-length bounds ≤ 2, a changed edge `(a, b)`
    /// can only alter `flow(s, t)` when `s = a` or `t = b`, so the
    /// entry `(i, j)` — which combines `flow(j → i)` and
    /// `flow(i → j)` — is affected exactly when `i` or `j` is an
    /// endpoint of a changed edge. Entries whose pairs avoid every
    /// dirty endpoint are provably unchanged and survive. Unbounded
    /// methods (where a distant edge can reroute flow anywhere) and a
    /// truncated change log fall back to clearing everything.
    fn sync(&mut self) {
        let version = self.graph.version();
        if version == self.cached_version {
            return;
        }
        let evicted_incrementally = matches!(self.method, Method::Bounded(k) if k <= 2)
            && match self.graph.changes_since(self.cached_version) {
                Some(changes) => {
                    let mut dirty: FxHashSet<PeerId> = FxHashSet::default();
                    for (a, b) in changes {
                        dirty.insert(a);
                        dirty.insert(b);
                    }
                    self.cache
                        .retain(|&(i, j), _| !dirty.contains(&i) && !dirty.contains(&j));
                    true
                }
                None => false,
            };
        if !evicted_incrementally {
            self.cache.clear();
        }
        self.net = None;
        self.cached_version = version;
    }

    /// Re-absorb the owner's private history (max-merge, so calling it
    /// repeatedly as the history grows is safe and cheap).
    pub fn absorb_private(&mut self, history: &PrivateHistory) {
        let me = history.owner();
        for (peer, totals) in history.iter() {
            self.graph.merge_record(me, peer, totals.up);
            self.graph.merge_record(peer, me, totals.down);
        }
    }

    /// Merge one gossiped message into the subjective graph. Returns
    /// the number of changed edges.
    pub fn absorb_message(&mut self, msg: &BarterCastMessage) -> usize {
        msg.apply(&mut self.graph)
    }

    /// Direct read-only access to the subjective graph.
    pub fn graph(&self) -> &ContributionGraph {
        &self.graph
    }

    /// Mutable access (used by tests and by the deployment model).
    pub fn graph_mut(&mut self) -> &mut ContributionGraph {
        &mut self.graph
    }

    /// The two directed maxflows of Equation 1:
    /// `(maxflow(j → i), maxflow(i → j))`.
    pub fn flows(&self, i: PeerId, j: PeerId) -> (Bytes, Bytes) {
        (
            maxflow::compute(&self.graph, j, i, self.method),
            maxflow::compute(&self.graph, i, j, self.method),
        )
    }

    /// [`ReputationEngine::flows`] against the shared, lazily rebuilt
    /// flow network (hot path for bulk reputation queries).
    fn flows_cached(&mut self, i: PeerId, j: PeerId) -> (Bytes, Bytes) {
        self.sync();
        let net = self
            .net
            .get_or_insert_with(|| FlowNetwork::from_graph(&self.graph));
        (
            maxflow::compute_on(net, j, i, self.method),
            maxflow::compute_on(net, i, j, self.method),
        )
    }

    /// Subjective reputation `R_i(j)` (§3.3, Equation 1), memoized
    /// until the graph changes.
    pub fn reputation(&mut self, i: PeerId, j: PeerId) -> f64 {
        if i == j {
            return 0.0;
        }
        self.sync();
        if let Some(&r) = self.cache.get(&(i, j)) {
            self.hits += 1;
            return r;
        }
        self.misses += 1;
        let (toward, away) = self.flows_cached(i, j);
        let r = self.metric.eval(toward, away);
        self.cache.insert((i, j), r);
        r
    }

    /// Batch form of [`ReputationEngine::reputation`]: `R_i(j)` for
    /// every `j` in `targets`, in order.
    ///
    /// For the deployed two-hop bound this runs the single-source
    /// all-targets kernel ([`ssat::flows_into`] for the `j → i`
    /// direction, [`ssat::flows_from`] for `i → j`) — two traversals of
    /// `i`'s two-hop neighbourhood replace one maxflow pair per target
    /// — and fills the memo cache in bulk. Values are identical to
    /// per-pair evaluation (the SSAT kernel reproduces
    /// `Method::Bounded(2)` flows exactly); other methods simply loop
    /// over [`ReputationEngine::reputation`].
    pub fn reputations_from(&mut self, i: PeerId, targets: &[PeerId]) -> Vec<f64> {
        if self.method != Method::Bounded(2) {
            return targets.iter().map(|&j| self.reputation(i, j)).collect();
        }
        self.sync();
        let mut ssat_flows: Option<(FxHashMap<PeerId, Bytes>, FxHashMap<PeerId, Bytes>)> = None;
        let mut out = Vec::with_capacity(targets.len());
        for &j in targets {
            if j == i {
                out.push(0.0);
                continue;
            }
            if let Some(&r) = self.cache.get(&(i, j)) {
                self.hits += 1;
                out.push(r);
                continue;
            }
            self.misses += 1;
            let (toward, away) = ssat_flows.get_or_insert_with(|| {
                (ssat::flows_into(&self.graph, i), ssat::flows_from(&self.graph, i))
            });
            let t = toward.get(&j).copied().unwrap_or(Bytes::ZERO);
            let a = away.get(&j).copied().unwrap_or(Bytes::ZERO);
            let r = self.metric.eval(t, a);
            self.cache.insert((i, j), r);
            out.push(r);
        }
        out
    }

    /// `(cache hits, cache misses)` since construction. A hit is a
    /// query answered from the memo cache, a miss one that computed
    /// flows; both [`ReputationEngine::reputation`] and
    /// [`ReputationEngine::reputations_from`] count each queried pair
    /// exactly once, so the totals stay comparable across query paths
    /// and cache invalidations.
    pub fn cache_stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Number of memoized `(i, j)` entries currently held.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bartercast_util::units::Seconds;

    fn p(i: u32) -> PeerId {
        PeerId(i)
    }

    fn engine_with_chain() -> ReputationEngine {
        // 2 -> 1 -> 0: peer 0 evaluates peer 2 through intermediary 1
        let mut e = ReputationEngine::new();
        e.graph_mut().add_transfer(p(2), p(1), Bytes::from_mb(300));
        e.graph_mut().add_transfer(p(1), p(0), Bytes::from_mb(200));
        e
    }

    #[test]
    fn from_private_builds_both_directions() {
        let mut h = PrivateHistory::new(p(0));
        h.record_upload(p(1), Bytes::from_mb(100), Seconds(1));
        h.record_download(p(2), Bytes::from_mb(300), Seconds(2));
        let e = ReputationEngine::from_private(&h);
        assert_eq!(e.graph().edge(p(0), p(1)), Bytes::from_mb(100));
        assert_eq!(e.graph().edge(p(2), p(0)), Bytes::from_mb(300));
    }

    #[test]
    fn indirect_service_counts_but_is_limited() {
        let mut e = engine_with_chain();
        // maxflow(2 -> 0) = min(300, 200) = 200 MB through peer 1
        let (toward, away) = e.flows(p(0), p(2));
        assert_eq!(toward, Bytes::from_mb(200));
        assert_eq!(away, Bytes::ZERO);
        assert!(e.reputation(p(0), p(2)) > 0.0);
    }

    #[test]
    fn liar_constrained_by_receivers_incoming_edges() {
        // §3.4: maxflow(j, i) is bounded by i's incoming capacity,
        // which comes from i's own private history.
        let mut e = ReputationEngine::new();
        // I (peer 0) downloaded only 10 MB from peer 1 in total.
        e.graph_mut().add_transfer(p(1), p(0), Bytes::from_mb(10));
        // Liar (peer 9) claims it uploaded 100 GB to peer 1.
        e.graph_mut().merge_record(p(9), p(1), Bytes::from_gb(100));
        let (toward, _) = e.flows(p(0), p(9));
        assert!(toward <= Bytes::from_mb(10), "lie must be capped at {toward:?}");
        let r = e.reputation(p(0), p(9));
        assert!(r < 0.02, "liar reputation barely moves: {r}");
    }

    #[test]
    fn self_reputation_is_zero() {
        let mut e = engine_with_chain();
        assert_eq!(e.reputation(p(0), p(0)), 0.0);
    }

    #[test]
    fn unknown_peer_is_neutral() {
        let mut e = engine_with_chain();
        assert_eq!(e.reputation(p(0), p(77)), 0.0);
    }

    #[test]
    fn cache_hits_until_graph_changes() {
        let mut e = engine_with_chain();
        let r1 = e.reputation(p(0), p(2));
        let r2 = e.reputation(p(0), p(2));
        assert_eq!(r1, r2);
        let (hits, misses) = e.cache_stats();
        assert_eq!((hits, misses), (1, 1));
        // mutate graph: cache must invalidate
        e.graph_mut().add_transfer(p(2), p(1), Bytes::from_gb(1));
        let r3 = e.reputation(p(0), p(2));
        let (_, misses2) = e.cache_stats();
        assert_eq!(misses2, 2);
        assert!(r3 >= r1);
    }

    #[test]
    fn deployed_method_ignores_three_hop_paths() {
        let mut e = ReputationEngine::new();
        // 3 -> 2 -> 1 -> 0 (three hops)
        e.graph_mut().add_transfer(p(3), p(2), Bytes::from_gb(1));
        e.graph_mut().add_transfer(p(2), p(1), Bytes::from_gb(1));
        e.graph_mut().add_transfer(p(1), p(0), Bytes::from_gb(1));
        assert_eq!(e.reputation(p(0), p(3)), 0.0);
        let mut unbounded = e.clone().with_method(Method::Dinic);
        assert!(unbounded.reputation(p(0), p(3)) > 0.0);
    }

    #[test]
    fn batch_matches_per_pair_bitwise() {
        let mut batch = ReputationEngine::new();
        batch.graph_mut().add_transfer(p(2), p(1), Bytes::from_mb(300));
        batch.graph_mut().add_transfer(p(1), p(0), Bytes::from_mb(200));
        batch.graph_mut().add_transfer(p(0), p(3), Bytes::from_gb(1));
        batch.graph_mut().add_transfer(p(3), p(2), Bytes::from_mb(50));
        let mut per_pair = batch.clone();

        let targets = [p(0), p(1), p(2), p(3), p(77)];
        let rs = batch.reputations_from(p(0), &targets);
        for (&j, &r) in targets.iter().zip(&rs) {
            assert_eq!(
                r.to_bits(),
                per_pair.reputation(p(0), j).to_bits(),
                "R_0({j}) differs between batch and per-pair"
            );
        }
    }

    #[test]
    fn batch_falls_back_for_unbounded_methods() {
        let mut e = engine_with_chain().with_method(Method::Dinic);
        let mut per_pair = e.clone();
        let targets = [p(1), p(2)];
        let rs = e.reputations_from(p(0), &targets);
        for (&j, &r) in targets.iter().zip(&rs) {
            assert_eq!(r.to_bits(), per_pair.reputation(p(0), j).to_bits());
        }
    }

    #[test]
    fn batch_and_per_pair_share_cache_and_stats() {
        let mut e = engine_with_chain();
        // batch fills the cache: 2 misses (self-query is free)
        e.reputations_from(p(0), &[p(0), p(1), p(2)]);
        assert_eq!(e.cache_stats(), (0, 2));
        assert_eq!(e.cache_len(), 2);
        // per-pair queries now hit the batch-filled entries
        e.reputation(p(0), p(1));
        e.reputation(p(0), p(2));
        assert_eq!(e.cache_stats(), (2, 2));
        // and a second batch is pure hits
        e.reputations_from(p(0), &[p(1), p(2)]);
        assert_eq!(e.cache_stats(), (4, 2));
    }

    #[test]
    fn incremental_invalidation_keeps_untouched_entries() {
        let mut e = ReputationEngine::new();
        // two disjoint components: {0,1} and {5,6}
        e.graph_mut().add_transfer(p(1), p(0), Bytes::from_mb(100));
        e.graph_mut().add_transfer(p(6), p(5), Bytes::from_mb(100));
        e.reputation(p(0), p(1));
        e.reputation(p(5), p(6));
        assert_eq!(e.cache_stats(), (0, 2));
        // touching the {5,6} component must not evict the (0,1) entry
        e.graph_mut().add_transfer(p(6), p(5), Bytes::from_mb(1));
        e.reputation(p(0), p(1));
        assert_eq!(e.cache_stats(), (1, 2), "(0,1) must survive eviction");
        e.reputation(p(5), p(6));
        assert_eq!(e.cache_stats(), (1, 3), "(5,6) must be recomputed");
    }

    #[test]
    fn incremental_invalidation_never_serves_stale_values() {
        let mut e = engine_with_chain();
        let before = e.reputation(p(0), p(2));
        // strengthen the 2 -> 1 edge: flow(2 -> 0) rises from 200 MB
        // to min(1300, 200)... still 200 through 1 — so raise 1 -> 0 too
        e.graph_mut().add_transfer(p(2), p(1), Bytes::from_gb(1));
        e.graph_mut().add_transfer(p(1), p(0), Bytes::from_gb(1));
        let after = e.reputation(p(0), p(2));
        let mut fresh = ReputationEngine::new();
        fresh.graph_mut().add_transfer(p(2), p(1), Bytes::from_mb(300));
        fresh.graph_mut().add_transfer(p(1), p(0), Bytes::from_mb(200));
        fresh.graph_mut().add_transfer(p(2), p(1), Bytes::from_gb(1));
        fresh.graph_mut().add_transfer(p(1), p(0), Bytes::from_gb(1));
        assert_eq!(after.to_bits(), fresh.reputation(p(0), p(2)).to_bits());
        assert!(after > before);
    }

    #[test]
    fn unbounded_methods_clear_everything_on_change() {
        let mut e = ReputationEngine::new().with_method(Method::Dinic);
        e.graph_mut().add_transfer(p(1), p(0), Bytes::from_mb(100));
        e.graph_mut().add_transfer(p(6), p(5), Bytes::from_mb(100));
        e.reputation(p(0), p(1));
        // under Dinic a distant edge can matter, so any change clears
        e.graph_mut().add_transfer(p(6), p(5), Bytes::from_mb(1));
        e.reputation(p(0), p(1));
        assert_eq!(e.cache_stats(), (0, 2));
    }

    #[test]
    fn absorb_message_roundtrip() {
        let mut h = PrivateHistory::new(p(5));
        h.record_upload(p(6), Bytes::from_mb(42), Seconds(1));
        let msg = BarterCastMessage::from_history(&h, Default::default());
        let mut e = ReputationEngine::new();
        assert!(e.absorb_message(&msg) > 0);
        assert_eq!(e.graph().edge(p(5), p(6)), Bytes::from_mb(42));
    }
}

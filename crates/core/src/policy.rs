//! Reputation policies for BitTorrent (§4.2).
//!
//! * **rank** — optimistic unchoke slots go to interested peers in
//!   order of reputation: "a peer can not get an upload slot while
//!   peers with a higher reputation are also interested and not yet
//!   served".
//! * **ban** — no upload slots at all for peers whose reputation is
//!   below a negative threshold δ (the paper evaluates δ ∈ {−0.3,
//!   −0.5, −0.7}).
//! * **none** — plain BitTorrent, the baseline.

use bartercast_util::units::PeerId;
use serde::{Deserialize, Serialize};

/// Which reputation policy a peer enforces.
///
/// ```
/// use bartercast_core::{PolicyDecision, ReputationPolicy};
///
/// let ban = ReputationPolicy::Ban { delta: -0.5 };
/// assert_eq!(ban.admission(-0.6), PolicyDecision::Banned);
/// assert_eq!(ban.admission(-0.4), PolicyDecision::Allow);
/// assert_eq!(ReputationPolicy::Rank.admission(-0.9), PolicyDecision::Allow);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub enum ReputationPolicy {
    /// Plain BitTorrent tit-for-tat only (baseline).
    #[default]
    None,
    /// Optimistic unchokes ordered by reputation (§4.2 rank policy).
    Rank,
    /// Refuse any slot to peers below `delta` (§4.2 ban policy).
    Ban {
        /// The (negative) reputation threshold δ.
        delta: f64,
    },
}

/// What the policy says about serving a particular peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyDecision {
    /// The peer may receive slots as usual.
    Allow,
    /// The peer must not receive any upload slot.
    Banned,
}

impl ReputationPolicy {
    /// Decide whether `reputation` is acceptable for receiving service.
    pub fn admission(&self, reputation: f64) -> PolicyDecision {
        match *self {
            ReputationPolicy::Ban { delta } if reputation < delta => PolicyDecision::Banned,
            _ => PolicyDecision::Allow,
        }
    }

    /// Order candidate peers for the optimistic unchoke slot.
    ///
    /// Under the rank policy candidates are sorted by descending
    /// reputation (ties broken by the round-robin order given by the
    /// input sequence). Other policies keep the input order, which the
    /// caller supplies as the plain BitTorrent round-robin rotation.
    /// Banned peers are filtered out under the ban policy.
    pub fn order_optimistic<F>(&self, candidates: &[PeerId], mut reputation: F) -> Vec<PeerId>
    where
        F: FnMut(PeerId) -> f64,
    {
        match *self {
            ReputationPolicy::None => candidates.to_vec(),
            ReputationPolicy::Rank => {
                let mut scored: Vec<(usize, PeerId, f64)> = candidates
                    .iter()
                    .enumerate()
                    .map(|(i, &p)| (i, p, reputation(p)))
                    .collect();
                // stable by reputation desc, then original order
                scored.sort_by(|a, b| {
                    b.2.partial_cmp(&a.2)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.0.cmp(&b.0))
                });
                scored.into_iter().map(|(_, p, _)| p).collect()
            }
            ReputationPolicy::Ban { delta } => candidates
                .iter()
                .copied()
                .filter(|&p| reputation(p) >= delta)
                .collect(),
        }
    }

    /// Short label for CSV output and plots.
    pub fn label(&self) -> String {
        match *self {
            ReputationPolicy::None => "none".to_string(),
            ReputationPolicy::Rank => "rank".to_string(),
            ReputationPolicy::Ban { delta } => format!("ban({delta})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> PeerId {
        PeerId(i)
    }

    #[test]
    fn none_policy_allows_everyone() {
        let pol = ReputationPolicy::None;
        assert_eq!(pol.admission(-0.99), PolicyDecision::Allow);
        let c = vec![p(3), p(1), p(2)];
        assert_eq!(pol.order_optimistic(&c, |_| 0.0), c);
    }

    #[test]
    fn ban_threshold_is_strict_less_than() {
        let pol = ReputationPolicy::Ban { delta: -0.5 };
        assert_eq!(pol.admission(-0.5), PolicyDecision::Allow);
        assert_eq!(pol.admission(-0.51), PolicyDecision::Banned);
        assert_eq!(pol.admission(0.2), PolicyDecision::Allow);
    }

    #[test]
    fn ban_filters_candidates() {
        let pol = ReputationPolicy::Ban { delta: -0.5 };
        let c = vec![p(1), p(2), p(3)];
        let reps = |q: PeerId| match q.0 {
            1 => -0.9,
            2 => -0.2,
            _ => 0.5,
        };
        assert_eq!(pol.order_optimistic(&c, reps), vec![p(2), p(3)]);
    }

    #[test]
    fn rank_orders_by_reputation_desc() {
        let pol = ReputationPolicy::Rank;
        let c = vec![p(1), p(2), p(3)];
        let reps = |q: PeerId| match q.0 {
            1 => -0.3,
            2 => 0.8,
            _ => 0.1,
        };
        assert_eq!(pol.order_optimistic(&c, reps), vec![p(2), p(3), p(1)]);
    }

    #[test]
    fn rank_is_stable_under_ties() {
        let pol = ReputationPolicy::Rank;
        let c = vec![p(9), p(4), p(7)];
        assert_eq!(pol.order_optimistic(&c, |_| 0.0), c);
    }

    #[test]
    fn rank_never_bans() {
        let pol = ReputationPolicy::Rank;
        assert_eq!(pol.admission(-1.0), PolicyDecision::Allow);
        let c = vec![p(1)];
        assert_eq!(pol.order_optimistic(&c, |_| -0.99).len(), 1);
    }

    #[test]
    fn labels() {
        assert_eq!(ReputationPolicy::None.label(), "none");
        assert_eq!(ReputationPolicy::Rank.label(), "rank");
        assert_eq!(ReputationPolicy::Ban { delta: -0.5 }.label(), "ban(-0.5)");
    }
}

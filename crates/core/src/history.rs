//! Private transfer histories (§3.4).
//!
//! "The private history at peer *i* is a table where an entry
//! `(j, up, down)` is a record of the number of bytes peer *i* has
//! uploaded to, respectively downloaded from, peer *j*."
//!
//! The private history is the trust anchor of BarterCast: the edges
//! incident to *i* in *i*'s subjective graph come from here and cannot
//! be manipulated by other peers, which is what bounds the influence of
//! liars (§3.4).

use bartercast_util::units::{Bytes, PeerId, Seconds};
use bartercast_util::{FxHashMap, FxHashSet};

/// Aggregated transfer totals with one remote peer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransferTotals {
    /// Bytes the local peer uploaded to the remote peer.
    pub up: Bytes,
    /// Bytes the local peer downloaded from the remote peer.
    pub down: Bytes,
    /// Last time the remote peer was seen (transfer or meeting).
    pub last_seen: Seconds,
}

/// Provenance of the transfer totals with one peer: how many of the
/// bytes arrived as completed swarm *pieces* (live transfer workload)
/// versus bulk `record_upload`/`record_download` bookkeeping. The
/// swarm runtime's tier-1 gate uses this to assert that piece
/// transfers are the *sole* source of its contribution edges.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PieceProvenance {
    /// Completed pieces uploaded to the peer.
    pub pieces_up: u64,
    /// Bytes of those uploaded pieces.
    pub piece_bytes_up: Bytes,
    /// Completed pieces downloaded from the peer.
    pub pieces_down: u64,
    /// Bytes of those downloaded pieces.
    pub piece_bytes_down: Bytes,
}

/// Peer *i*'s private table of its own transfers.
///
/// ```
/// use bartercast_core::PrivateHistory;
/// use bartercast_util::units::{Bytes, PeerId, Seconds};
///
/// let mut h = PrivateHistory::new(PeerId(0));
/// h.record_upload(PeerId(1), Bytes::from_mb(100), Seconds(10));
/// h.record_download(PeerId(1), Bytes::from_mb(40), Seconds(20));
/// let totals = h.get(PeerId(1)).unwrap();
/// assert_eq!(totals.up, Bytes::from_mb(100));
/// assert_eq!(totals.down, Bytes::from_mb(40));
/// assert_eq!(totals.last_seen, Seconds(20));
/// ```
#[derive(Debug, Clone)]
pub struct PrivateHistory {
    owner: PeerId,
    entries: FxHashMap<PeerId, TransferTotals>,
    /// Piece-transfer provenance, kept beside the totals so
    /// [`TransferTotals`] stays the small `Copy` value every caller
    /// compares. Only peers with at least one piece transfer appear.
    provenance: FxHashMap<PeerId, PieceProvenance>,
    /// Monotone write counter, bumped on every mutating call. Callers
    /// that derive something from the table (advertised record slices,
    /// encoded exchange messages, frontiers) key their memos on this
    /// so invalidation rides the existing write path for free.
    version: u64,
}

impl PrivateHistory {
    /// An empty history owned by `owner`.
    pub fn new(owner: PeerId) -> Self {
        PrivateHistory {
            owner,
            entries: FxHashMap::default(),
            provenance: FxHashMap::default(),
            version: 0,
        }
    }

    /// The peer this history belongs to.
    pub fn owner(&self) -> PeerId {
        self.owner
    }

    /// Monotone write counter: advances on every mutating call, so a
    /// memo keyed on it is stale iff the table changed underneath it.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Record that the owner uploaded `amount` to `peer` at time `now`.
    pub fn record_upload(&mut self, peer: PeerId, amount: Bytes, now: Seconds) {
        if peer == self.owner {
            return;
        }
        let e = self.entries.entry(peer).or_default();
        e.up += amount;
        e.last_seen = e.last_seen.max(now);
        self.version += 1;
    }

    /// Record that the owner downloaded `amount` from `peer` at `now`.
    pub fn record_download(&mut self, peer: PeerId, amount: Bytes, now: Seconds) {
        if peer == self.owner {
            return;
        }
        let e = self.entries.entry(peer).or_default();
        e.down += amount;
        e.last_seen = e.last_seen.max(now);
        self.version += 1;
    }

    /// Record one completed piece *upload* of `amount` bytes to
    /// `peer`: the bytes enter the transfer totals exactly as
    /// [`PrivateHistory::record_upload`] would, and the piece
    /// provenance counters advance.
    pub fn record_piece_upload(&mut self, peer: PeerId, amount: Bytes, now: Seconds) {
        if peer == self.owner {
            return;
        }
        self.record_upload(peer, amount, now);
        let p = self.provenance.entry(peer).or_default();
        p.pieces_up += 1;
        p.piece_bytes_up += amount;
    }

    /// Record one completed piece *download* of `amount` bytes from
    /// `peer` — the mirror of [`PrivateHistory::record_piece_upload`].
    pub fn record_piece_download(&mut self, peer: PeerId, amount: Bytes, now: Seconds) {
        if peer == self.owner {
            return;
        }
        self.record_download(peer, amount, now);
        let p = self.provenance.entry(peer).or_default();
        p.pieces_down += 1;
        p.piece_bytes_down += amount;
    }

    /// Piece-transfer provenance with `peer`, if any piece ever moved.
    pub fn provenance(&self, peer: PeerId) -> Option<PieceProvenance> {
        self.provenance.get(&peer).copied()
    }

    /// Summed piece provenance across all peers.
    pub fn total_provenance(&self) -> PieceProvenance {
        let mut total = PieceProvenance::default();
        for p in self.provenance.values() {
            total.pieces_up += p.pieces_up;
            total.piece_bytes_up += p.piece_bytes_up;
            total.pieces_down += p.pieces_down;
            total.piece_bytes_down += p.piece_bytes_down;
        }
        total
    }

    /// Whether every byte in the table arrived as a completed piece —
    /// i.e. nothing was seeded or bulk-recorded. The swarm gates
    /// assert this to pin piece transfers as the sole edge source.
    pub fn all_from_pieces(&self) -> bool {
        self.entries.iter().all(|(peer, totals)| {
            let p = self.provenance.get(peer).copied().unwrap_or_default();
            totals.up == p.piece_bytes_up && totals.down == p.piece_bytes_down
        })
    }

    /// Note that `peer` was seen (e.g. a gossip meeting) without any
    /// transfer, refreshing its recency for the `Nr` selection.
    pub fn touch(&mut self, peer: PeerId, now: Seconds) {
        if peer == self.owner {
            return;
        }
        let e = self.entries.entry(peer).or_default();
        e.last_seen = e.last_seen.max(now);
        self.version += 1;
    }

    /// Totals with `peer`, if any transfer or meeting happened.
    pub fn get(&self, peer: PeerId) -> Option<TransferTotals> {
        self.entries.get(&peer).copied()
    }

    /// Number of peers in the table.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True iff no peer has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate all entries.
    pub fn iter(&self) -> impl Iterator<Item = (PeerId, TransferTotals)> + '_ {
        self.entries.iter().map(|(&k, &v)| (k, v))
    }

    /// Total bytes uploaded by the owner.
    pub fn total_up(&self) -> Bytes {
        self.entries.values().map(|e| e.up).sum()
    }

    /// Total bytes downloaded by the owner.
    pub fn total_down(&self) -> Bytes {
        self.entries.values().map(|e| e.down).sum()
    }

    /// Bound the table to `max_entries`: half the slots go to the
    /// highest-volume entries and the rest to the most recently seen —
    /// the same two criteria the §3.4 record selection uses, so
    /// pruning keeps exactly the entries messages are built from.
    /// Long-running peers need this to keep state sublinear in
    /// everyone-they-ever-met. Returns how many entries were evicted.
    pub fn prune(&mut self, max_entries: usize) -> usize {
        if self.entries.len() <= max_entries {
            return 0;
        }
        // keep the top half by transfer volume, then fill the rest by
        // recency — the same two criteria the §3.4 selection uses
        let volume_slots = max_entries / 2;
        let mut by_volume: Vec<PeerId> = self.entries.keys().copied().collect();
        by_volume.sort_by_key(|p| {
            let e = &self.entries[p];
            (std::cmp::Reverse(e.up + e.down), *p)
        });
        let mut keep: FxHashSet<PeerId> = by_volume.iter().take(volume_slots).copied().collect();
        let mut by_recency: Vec<PeerId> = self.entries.keys().copied().collect();
        by_recency.sort_by_key(|p| (std::cmp::Reverse(self.entries[p].last_seen), *p));
        for p in by_recency {
            if keep.len() >= max_entries {
                break;
            }
            keep.insert(p);
        }
        let before = self.entries.len();
        self.entries.retain(|p, _| keep.contains(p));
        self.provenance.retain(|p, _| keep.contains(p));
        self.version += 1;
        before - self.entries.len()
    }

    /// The paper's record selection (§3.4): the `nh` peers with the
    /// highest upload **to** the owner, plus the `nr` peers most
    /// recently seen, deduplicated. Ordering among selected peers is
    /// deterministic (by the selection keys, then peer id).
    pub fn select_peers(&self, nh: usize, nr: usize) -> Vec<PeerId> {
        let mut by_upload: Vec<(PeerId, TransferTotals)> =
            self.entries.iter().map(|(&k, &v)| (k, v)).collect();
        // "highest upload to i" = bytes i downloaded from them
        by_upload.sort_by(|a, b| b.1.down.cmp(&a.1.down).then(a.0.cmp(&b.0)));
        let mut selected: Vec<PeerId> = Vec::with_capacity(nh + nr);
        for (p, t) in by_upload.iter().take(nh) {
            if !t.down.is_zero() {
                selected.push(*p);
            }
        }
        let mut by_recent: Vec<(PeerId, TransferTotals)> =
            self.entries.iter().map(|(&k, &v)| (k, v)).collect();
        by_recent.sort_by(|a, b| b.1.last_seen.cmp(&a.1.last_seen).then(a.0.cmp(&b.0)));
        for (p, _) in by_recent.iter().take(nr) {
            if !selected.contains(p) {
                selected.push(*p);
            }
        }
        selected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> PeerId {
        PeerId(i)
    }

    #[test]
    fn records_accumulate() {
        let mut h = PrivateHistory::new(p(0));
        h.record_upload(p(1), Bytes::from_mb(10), Seconds(5));
        h.record_upload(p(1), Bytes::from_mb(15), Seconds(9));
        h.record_download(p(1), Bytes::from_mb(3), Seconds(11));
        let t = h.get(p(1)).unwrap();
        assert_eq!(t.up, Bytes::from_mb(25));
        assert_eq!(t.down, Bytes::from_mb(3));
        assert_eq!(t.last_seen, Seconds(11));
        assert_eq!(h.total_up(), Bytes::from_mb(25));
        assert_eq!(h.total_down(), Bytes::from_mb(3));
    }

    #[test]
    fn ignores_self_transfers() {
        let mut h = PrivateHistory::new(p(0));
        h.record_upload(p(0), Bytes::from_mb(10), Seconds(1));
        h.record_download(p(0), Bytes::from_mb(10), Seconds(1));
        h.record_piece_upload(p(0), Bytes::from_mb(1), Seconds(1));
        h.touch(p(0), Seconds(1));
        assert!(h.is_empty());
        assert_eq!(h.total_provenance(), PieceProvenance::default());
    }

    #[test]
    fn piece_transfers_carry_provenance() {
        let mut h = PrivateHistory::new(p(0));
        h.record_piece_upload(p(1), Bytes::from_kb(256), Seconds(5));
        h.record_piece_upload(p(1), Bytes::from_kb(256), Seconds(6));
        h.record_piece_download(p(2), Bytes::from_kb(256), Seconds(7));
        // totals and provenance agree: everything came from pieces
        assert_eq!(h.get(p(1)).unwrap().up, Bytes::from_kb(512));
        let prov = h.provenance(p(1)).unwrap();
        assert_eq!(prov.pieces_up, 2);
        assert_eq!(prov.piece_bytes_up, Bytes::from_kb(512));
        assert_eq!(prov.pieces_down, 0);
        assert!(h.all_from_pieces());
        let total = h.total_provenance();
        assert_eq!(total.pieces_up, 2);
        assert_eq!(total.pieces_down, 1);
        // a bulk record breaks the piece-only invariant
        h.record_upload(p(3), Bytes::from_mb(1), Seconds(8));
        assert!(!h.all_from_pieces());
        assert!(h.provenance(p(3)).is_none());
    }

    #[test]
    fn last_seen_is_monotone() {
        let mut h = PrivateHistory::new(p(0));
        h.touch(p(1), Seconds(100));
        h.record_upload(p(1), Bytes::from_kb(1), Seconds(50)); // stale clock
        assert_eq!(h.get(p(1)).unwrap().last_seen, Seconds(100));
    }

    #[test]
    fn selection_top_uploaders_then_recent() {
        let mut h = PrivateHistory::new(p(0));
        // peers 1..=3 uploaded (i.e. we downloaded) decreasing amounts
        h.record_download(p(1), Bytes::from_mb(300), Seconds(10));
        h.record_download(p(2), Bytes::from_mb(200), Seconds(20));
        h.record_download(p(3), Bytes::from_mb(100), Seconds(30));
        // peer 4 uploaded nothing but was seen most recently
        h.touch(p(4), Seconds(99));
        let sel = h.select_peers(2, 2);
        // top-2 by upload-to-me: 1, 2; most recent: 4 (99), 3 (30)
        assert_eq!(sel, vec![p(1), p(2), p(4), p(3)]);
    }

    #[test]
    fn selection_dedups() {
        let mut h = PrivateHistory::new(p(0));
        h.record_download(p(1), Bytes::from_mb(10), Seconds(100));
        let sel = h.select_peers(5, 5);
        assert_eq!(sel, vec![p(1)]);
    }

    #[test]
    fn selection_skips_zero_uploaders_in_nh() {
        let mut h = PrivateHistory::new(p(0));
        h.record_upload(p(1), Bytes::from_mb(10), Seconds(1)); // we only uploaded to them
        let sel = h.select_peers(3, 0);
        assert!(
            sel.is_empty(),
            "nh selection must not include zero uploaders"
        );
        let sel = h.select_peers(3, 3);
        assert_eq!(sel, vec![p(1)], "nr selection still includes them");
    }

    #[test]
    fn prune_keeps_recent_and_heavy_entries() {
        let mut h = PrivateHistory::new(p(0));
        // heavy, old entry
        h.record_download(p(1), Bytes::from_gb(5), Seconds(1));
        // light, recent entry
        h.touch(p(2), Seconds(1000));
        // light, old entries — the eviction candidates
        for i in 3..=10 {
            h.record_download(p(i), Bytes::from_kb(1), Seconds(2));
        }
        let evicted = h.prune(4);
        assert_eq!(evicted, 6);
        assert_eq!(h.len(), 4);
        assert!(h.get(p(1)).is_some(), "heavy uploader kept");
        assert!(h.get(p(2)).is_some(), "recent contact kept");
    }

    #[test]
    fn prune_is_noop_under_limit() {
        let mut h = PrivateHistory::new(p(0));
        h.record_download(p(1), Bytes::from_mb(1), Seconds(1));
        assert_eq!(h.prune(10), 0);
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn prune_to_zero_empties_table() {
        let mut h = PrivateHistory::new(p(0));
        h.record_download(p(1), Bytes::from_mb(1), Seconds(1));
        h.record_download(p(2), Bytes::from_mb(2), Seconds(2));
        assert_eq!(h.prune(0), 2);
        assert!(h.is_empty());
    }

    #[test]
    fn version_advances_on_every_mutation() {
        let mut h = PrivateHistory::new(p(0));
        let v0 = h.version();
        h.record_upload(p(1), Bytes::from_mb(1), Seconds(1));
        let v1 = h.version();
        assert!(v1 > v0);
        h.record_download(p(2), Bytes::from_mb(1), Seconds(2));
        let v2 = h.version();
        assert!(v2 > v1);
        h.touch(p(3), Seconds(3));
        let v3 = h.version();
        assert!(v3 > v2);
        h.prune(1);
        assert!(h.version() > v3);
        // read-only calls leave it alone
        let frozen = h.version();
        let _ = h.select_peers(4, 4);
        let _ = h.get(p(1));
        assert_eq!(h.version(), frozen);
        // self-transfers are ignored entirely, version included
        h.record_upload(p(0), Bytes::from_mb(1), Seconds(9));
        assert_eq!(h.version(), frozen);
    }

    #[test]
    fn selection_is_deterministic_under_ties() {
        let mut h = PrivateHistory::new(p(0));
        for i in 1..=5 {
            h.record_download(p(i), Bytes::from_mb(100), Seconds(50));
        }
        let a = h.select_peers(3, 0);
        let b = h.select_peers(3, 0);
        assert_eq!(a, b);
        assert_eq!(a, vec![p(1), p(2), p(3)]); // tie-broken by id
    }
}

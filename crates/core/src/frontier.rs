//! Per-owner record frontiers for delta anti-entropy.
//!
//! Blind epidemic push resends a peer's whole advertised history slice
//! on every exchange, so receivers discard most of what arrives once
//! the network warms up. Records are *max-merge monotone* — `up`/`down`
//! totals only grow and `last_seen` only advances — which means a
//! compact summary of the advertised slice is enough for the owner to
//! compute exactly which records a remote copy lacks:
//!
//! - `count`: how many records the slice holds,
//! - `max_ts`: the newest `last_seen` among them,
//! - `checksum`: an order-independent hash of the full slice content.
//!
//! A digest sender transmits the [`Frontier`] it last saw from the
//! owner; the owner compares it against the frontier of its *current*
//! slice and answers with nothing (in sync), the records written since
//! the claimed watermark (partial delta), or the whole slice (full
//! sync) — see [`plan_sync`] for the exact decision table and the
//! soundness argument.
//!
//! The watermark comparison is **inclusive** (`last_seen >= max_ts`):
//! a record stamped exactly at the claimed watermark may or may not be
//! covered by the claim, so it is always resent. Max-merge idempotence
//! makes the resend harmless, and excess is always safe — only
//! *omission* of a changed record would be a correctness bug.

use crate::history::{PrivateHistory, TransferTotals};
use crate::message::{BarterCastConfig, BarterCastMessage, TransferRecord};
use bartercast_util::units::{PeerId, Seconds};

/// One record of the advertised slice with the recency stamp the
/// frontier watermark is computed from ([`BarterCastMessage`] records
/// drop `last_seen`; the sync planner needs it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SliceRecord {
    /// Remote peer the totals are with.
    pub peer: PeerId,
    /// Totals as they would appear in an exchange message.
    pub totals: TransferTotals,
}

/// Compact summary of one owner's advertised record slice.
///
/// `Frontier::default()` is the *empty claim* — "I have nothing of
/// yours" — and [`plan_sync`] answers it with every record, which is
/// the induction base of the soundness argument.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Frontier {
    /// Number of records in the slice.
    pub count: u32,
    /// Newest `last_seen` among the slice's records.
    pub max_ts: Seconds,
    /// Order-independent FNV/XOR checksum over the slice content.
    pub checksum: u64,
}

/// The owner's answer to a digest claim.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SyncPlan {
    /// Claim matches the current slice exactly: send nothing.
    InSync,
    /// Send `records`; `full` marks a checksum-mismatch resync (the
    /// whole slice) rather than a watermark delta.
    Send {
        /// True when the whole slice is being resent.
        full: bool,
        /// The records the digest sender needs.
        records: Vec<TransferRecord>,
    },
}

/// A `Delta` reply as it travels on the wire: the records the digest
/// sender was missing plus the owner's fresh [`Frontier`] stamp, which
/// the receiver caches for its next digest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaMsg {
    /// The owner of the records (the responder).
    pub sender: PeerId,
    /// True when this is a full resync rather than a watermark delta.
    pub full: bool,
    /// The responder's current frontier, to be cached by the receiver.
    pub stamp: Frontier,
    /// The missing records.
    pub records: Vec<TransferRecord>,
}

fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn record_hash(r: &SliceRecord) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    h = fnv1a(h, &r.peer.0.to_le_bytes());
    h = fnv1a(h, &r.totals.up.0.to_le_bytes());
    h = fnv1a(h, &r.totals.down.0.to_le_bytes());
    h = fnv1a(h, &r.totals.last_seen.0.to_le_bytes());
    h
}

/// Materialize the advertised slice of `history` under `config`: the
/// records [`BarterCastMessage::from_history`] would ship, with their
/// `last_seen` stamps attached. Ordering follows the paper's §3.4
/// selection and is deterministic.
pub fn advertised_slice(history: &PrivateHistory, config: BarterCastConfig) -> Vec<SliceRecord> {
    history
        .select_peers(config.nh, config.nr)
        .into_iter()
        .filter_map(|peer| history.get(peer).map(|totals| SliceRecord { peer, totals }))
        .collect()
}

/// Summarize a slice. XOR-folding per-record FNV hashes makes the
/// checksum independent of record order, so any deterministic slice
/// ordering yields the same frontier.
pub fn frontier_of(slice: &[SliceRecord]) -> Frontier {
    let mut f = Frontier {
        count: slice.len() as u32,
        ..Frontier::default()
    };
    for r in slice {
        f.max_ts = f.max_ts.max(r.totals.last_seen);
        f.checksum ^= record_hash(r);
    }
    f
}

/// Convert a slice into the exchange message it advertises.
pub fn message_from_slice(owner: PeerId, slice: &[SliceRecord]) -> BarterCastMessage {
    BarterCastMessage {
        sender: owner,
        records: slice
            .iter()
            .map(|r| TransferRecord {
                peer: r.peer,
                up: r.totals.up,
                down: r.totals.down,
            })
            .collect(),
    }
}

/// Decide what a digest claiming `claim` needs from a slice whose
/// current frontier is `ours`.
///
/// Decision table:
/// 1. `claim == ours` → [`SyncPlan::InSync`]: the remote copy is
///    current, nothing moves.
/// 2. Claim *ahead* of us (`count` or `max_ts` exceeds ours) → full
///    resync. The claim was stamped against a slice we no longer
///    advertise (restart, prune); the watermark is meaningless.
/// 3. Same `count` and `max_ts` but different checksum → full resync:
///    slice membership swapped without moving the watermark.
/// 4. Otherwise → partial delta of every record with
///    `last_seen >= claim.max_ts` (inclusive). If that delta would be
///    empty despite the claims differing, promote to full resync
///    rather than silently leaving the remote stale.
///
/// **Soundness** (no missing record, by induction): the empty claim
/// gets everything. Any later claim was stamped from a delta carrying
/// the frontier of the slice at stamp time; every mutation after that
/// stamp runs `last_seen = max(last_seen, now)` under a monotone
/// write clock, so a record that changed since carries
/// `last_seen >= stamp.max_ts` and case 4 includes it. Records that
/// *entered* the slice with older stamps (selection swaps at equal
/// totals, e.g. after a prune) are the one blind spot of the watermark
/// — they flip `count`/`checksum` and land in cases 2–3, and the
/// periodic full-sync fallback bounds any residual staleness.
pub fn plan_sync(slice: &[SliceRecord], ours: Frontier, claim: Frontier) -> SyncPlan {
    if claim == ours {
        return SyncPlan::InSync;
    }
    let full = || SyncPlan::Send {
        full: true,
        records: message_from_slice(PeerId(0), slice).records,
    };
    if claim.count > ours.count || claim.max_ts > ours.max_ts {
        return full();
    }
    if claim.count == ours.count && claim.max_ts == ours.max_ts {
        return full();
    }
    let records: Vec<TransferRecord> = slice
        .iter()
        .filter(|r| r.totals.last_seen >= claim.max_ts)
        .map(|r| TransferRecord {
            peer: r.peer,
            up: r.totals.up,
            down: r.totals.down,
        })
        .collect();
    if records.is_empty() {
        return full();
    }
    SyncPlan::Send {
        full: false,
        records,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bartercast_util::units::Bytes;

    fn p(i: u32) -> PeerId {
        PeerId(i)
    }

    fn history() -> PrivateHistory {
        let mut h = PrivateHistory::new(p(0));
        h.record_download(p(1), Bytes::from_mb(100), Seconds(10));
        h.record_download(p(2), Bytes::from_mb(50), Seconds(20));
        h.record_upload(p(3), Bytes::from_mb(10), Seconds(30));
        h
    }

    #[test]
    fn frontier_is_order_independent() {
        let slice = advertised_slice(&history(), BarterCastConfig::default());
        assert!(slice.len() >= 2);
        let mut reversed = slice.clone();
        reversed.reverse();
        assert_eq!(frontier_of(&slice), frontier_of(&reversed));
    }

    #[test]
    fn empty_slice_has_default_frontier() {
        assert_eq!(frontier_of(&[]), Frontier::default());
    }

    #[test]
    fn matching_claim_is_in_sync() {
        let slice = advertised_slice(&history(), BarterCastConfig::default());
        let ours = frontier_of(&slice);
        assert_eq!(plan_sync(&slice, ours, ours), SyncPlan::InSync);
    }

    #[test]
    fn empty_claim_gets_everything() {
        let slice = advertised_slice(&history(), BarterCastConfig::default());
        let ours = frontier_of(&slice);
        match plan_sync(&slice, ours, Frontier::default()) {
            SyncPlan::Send { records, .. } => assert_eq!(records.len(), slice.len()),
            other => panic!("expected a send, got {other:?}"),
        }
    }

    #[test]
    fn stale_claim_gets_only_newer_records() {
        let cfg = BarterCastConfig::default();
        let mut h = history();
        let claim = frontier_of(&advertised_slice(&h, cfg));
        // two writes after the claim was stamped: one brand-new peer,
        // one update to an existing entry
        h.record_download(p(4), Bytes::from_mb(5), Seconds(40));
        h.record_upload(p(1), Bytes::from_mb(1), Seconds(50));
        let slice = advertised_slice(&h, cfg);
        let ours = frontier_of(&slice);
        match plan_sync(&slice, ours, claim) {
            SyncPlan::Send { full, records } => {
                assert!(!full, "watermark delta expected");
                let peers: Vec<PeerId> = records.iter().map(|r| r.peer).collect();
                assert!(peers.contains(&p(4)), "new record included");
                assert!(peers.contains(&p(1)), "updated record included");
                // records untouched since the claim stay home
                assert!(!peers.contains(&p(2)));
                assert!(records.len() < slice.len());
            }
            other => panic!("expected a send, got {other:?}"),
        }
    }

    #[test]
    fn checksum_mismatch_at_same_shape_forces_full_resync() {
        let slice = advertised_slice(&history(), BarterCastConfig::default());
        let ours = frontier_of(&slice);
        let claim = Frontier {
            checksum: ours.checksum ^ 1,
            ..ours
        };
        match plan_sync(&slice, ours, claim) {
            SyncPlan::Send { full, records } => {
                assert!(full);
                assert_eq!(records.len(), slice.len());
            }
            other => panic!("expected a full resync, got {other:?}"),
        }
    }

    #[test]
    fn claim_ahead_of_us_forces_full_resync() {
        let slice = advertised_slice(&history(), BarterCastConfig::default());
        let ours = frontier_of(&slice);
        let claim = Frontier {
            max_ts: Seconds(ours.max_ts.0 + 1000),
            ..ours
        };
        assert!(matches!(
            plan_sync(&slice, ours, claim),
            SyncPlan::Send { full: true, .. }
        ));
    }

    #[test]
    fn delta_then_claim_reaches_in_sync() {
        // the protocol loop: digest with cached stamp, apply delta,
        // cache the fresh stamp, digest again -> in sync
        let cfg = BarterCastConfig::default();
        let mut h = history();
        let mut cached = Frontier::default();
        for round in 0..3 {
            let slice = advertised_slice(&h, cfg);
            let ours = frontier_of(&slice);
            match plan_sync(&slice, ours, cached) {
                SyncPlan::InSync => assert!(round > 0, "first round must send"),
                SyncPlan::Send { .. } => cached = ours,
            }
            if round == 1 {
                h.record_download(p(9), Bytes::from_mb(1), Seconds(100 + round));
            }
        }
        let slice = advertised_slice(&h, cfg);
        assert_eq!(
            plan_sync(&slice, frontier_of(&slice), cached),
            SyncPlan::InSync
        );
    }

    #[test]
    fn message_from_slice_matches_from_history() {
        let cfg = BarterCastConfig::default();
        let h = history();
        let slice = advertised_slice(&h, cfg);
        let via_slice = message_from_slice(h.owner(), &slice);
        let direct = BarterCastMessage::from_history(&h, cfg);
        assert_eq!(via_slice, direct);
    }
}

//! Ownership partitioning: which shard owns which peer.
//!
//! Every peer is **owned** by exactly one shard — the shard whose
//! replica graph is authoritative for the peer's incident edges and
//! whose engine answers the peer's reputation queries. The assignment
//! is a pure function of the peer id (and the partitioner's
//! configuration), so it is total and disjoint by construction: any
//! `PeerId`, including ones the service has never seen, maps to
//! exactly one shard.
//!
//! Two partitioners ship:
//!
//! * [`HashPartitioner`] — FxHash of the peer id modulo the shard
//!   count. Uniform, zero-configuration, oblivious to graph structure.
//! * [`CommunityPartitioner`] — an explicit `peer → community` label
//!   map with communities assigned round-robin to shards, falling back
//!   to the hash assignment for unlabeled peers. Stratification in P2P
//!   networks (PAPERS.md) observes that like-bandwidth peers cluster
//!   into communities with sparse cross-links; labelling those
//!   communities keeps intra-community edges shard-local, which is
//!   what bounds the boundary-replication overhead of the sharded
//!   service (see [`super::boundary`]).

use bartercast_util::units::PeerId;
use bartercast_util::{FxHashMap, FxHasher};
use std::hash::{Hash, Hasher};

/// A total assignment of peers to shards.
///
/// Implementations must be pure: `shard_of(peer, shards)` may depend
/// only on `peer`, `shards`, and the partitioner's own immutable
/// configuration, and must return a value in `0..shards`. The sharded
/// engine routes every mutation and query through this function, so a
/// non-deterministic implementation would scatter a peer's edges
/// across shards and break the replication invariant.
pub trait Partitioner: std::fmt::Debug + Send + Sync {
    /// The shard in `0..shards` that owns `peer`. Must be
    /// deterministic.
    fn shard_of(&self, peer: PeerId, shards: usize) -> usize;
}

/// The FxHash assignment of `peer` to one of `shards` buckets — shared
/// so that [`CommunityPartitioner`]'s fallback agrees with
/// [`HashPartitioner`] exactly.
fn hash_shard(peer: PeerId, shards: usize) -> usize {
    let mut h = FxHasher::default();
    peer.hash(&mut h);
    (h.finish() % shards as u64) as usize
}

/// Structure-oblivious default: FxHash of the peer id modulo the shard
/// count.
#[derive(Debug, Clone, Copy, Default)]
pub struct HashPartitioner;

impl Partitioner for HashPartitioner {
    fn shard_of(&self, peer: PeerId, shards: usize) -> usize {
        hash_shard(peer, shards)
    }
}

/// Community-label partitioning: labelled peers go to
/// `community % shards`, unlabelled peers fall back to the
/// [`HashPartitioner`] assignment.
///
/// Labels typically come from an offline clustering of the
/// contribution graph (or, in the synthetic scale study, from the
/// planted communities themselves). Peers of one community always land
/// on one shard, so every intra-community edge is shard-local.
#[derive(Debug, Clone, Default)]
pub struct CommunityPartitioner {
    labels: FxHashMap<PeerId, u32>,
}

impl CommunityPartitioner {
    /// A partitioner using `labels` (`peer → community`), hashing
    /// unlabelled peers.
    pub fn new(labels: FxHashMap<PeerId, u32>) -> Self {
        CommunityPartitioner { labels }
    }

    /// The community label of `peer`, if it has one.
    pub fn label(&self, peer: PeerId) -> Option<u32> {
        self.labels.get(&peer).copied()
    }

    /// Number of labelled peers.
    pub fn labelled(&self) -> usize {
        self.labels.len()
    }
}

impl Partitioner for CommunityPartitioner {
    fn shard_of(&self, peer: PeerId, shards: usize) -> usize {
        match self.labels.get(&peer) {
            Some(&community) => community as usize % shards,
            None => hash_shard(peer, shards),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> PeerId {
        PeerId(i)
    }

    #[test]
    fn hash_assignment_is_total_and_stable() {
        let part = HashPartitioner;
        for shards in [1usize, 2, 4, 8, 64] {
            for i in 0..1000u32 {
                let s = part.shard_of(p(i), shards);
                assert!(s < shards, "shard {s} out of range for {shards}");
                assert_eq!(s, part.shard_of(p(i), shards), "must be deterministic");
            }
        }
    }

    #[test]
    fn hash_assignment_spreads_peers() {
        let part = HashPartitioner;
        let shards = 8;
        let mut counts = vec![0usize; shards];
        for i in 0..8000u32 {
            counts[part.shard_of(p(i), shards)] += 1;
        }
        for (s, &c) in counts.iter().enumerate() {
            assert!(
                c > 8000 / shards / 4,
                "shard {s} starved: {c} of 8000 peers"
            );
        }
    }

    #[test]
    fn community_labels_override_hash() {
        let mut labels = FxHashMap::default();
        labels.insert(p(1), 0);
        labels.insert(p(2), 0);
        labels.insert(p(3), 5);
        let part = CommunityPartitioner::new(labels);
        assert_eq!(part.shard_of(p(1), 4), part.shard_of(p(2), 4));
        assert_eq!(part.shard_of(p(3), 4), 1); // 5 % 4
                                               // unlabelled falls back to the hash assignment
        assert_eq!(part.shard_of(p(99), 4), HashPartitioner.shard_of(p(99), 4));
        assert_eq!(part.labelled(), 3);
        assert_eq!(part.label(p(3)), Some(5));
        assert_eq!(part.label(p(99)), None);
    }

    #[test]
    fn single_shard_maps_everything_to_zero() {
        let part = HashPartitioner;
        for i in [0u32, 1, 77, u32::MAX] {
            assert_eq!(part.shard_of(p(i), 1), 0);
        }
    }
}

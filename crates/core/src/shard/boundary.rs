//! Cross-shard boundary-edge index: subscription masks that decide
//! which shards replicate which frontier edges.
//!
//! A shard's engine answers Equation-1 queries for the peers it owns.
//! With the service restricted to `Method::Bounded(k ≤ 2)`, the flow
//! sweep from evaluator `i` reads exactly four edge sets (see
//! `graph::ssat`): `in(i)`, `out(i)`, `in(m)` for every in-neighbour
//! `m` of `i`, and `out(m)` for every out-neighbour `m` of `i`. The
//! boundary index maintains per-node **subscriber masks** so that a
//! shard's replica graph always contains the closure of those sets for
//! its owned peers:
//!
//! * `in_subs[a]`  — bitmask of shards that replicate every edge
//!   *into* `a` (because some peer they own has `a` as an
//!   out-neighbour, making `a` a middle node of an out-sweep).
//! * `out_subs[b]` — bitmask of shards that replicate every edge
//!   *out of* `b` (because some peer they own has `b` as an
//!   in-neighbour).
//!
//! When edge `(f, t)` changes, the delivery mask is
//! `owner(f) | owner(t) | out_subs[f] | in_subs[t]`: the tail's owner
//! (authoritative, and `f`'s sweeps read `out(f)`), the head's owner
//! (`t`'s sweeps read `in(t)`), every shard whose owned peers reach
//! `f` as a middle, and every shard whose owned peers are reached
//! through `t` as a middle. After delivery the edge may create *new*
//! middle relationships — `t` becomes an out-middle for `f`'s owner,
//! `f` an in-middle for `t`'s owner — so the owners subscribe to
//! `in(f)` resp. `out(t)`; a subscription added after edges already
//! exist triggers a backfill copy from the authoritative owner so the
//! invariant "every shard in an edge's mask stores the owner's weight"
//! is restored before the next query.
//!
//! Masks are `u64`, which caps the service at [`MAX_SHARDS`] = 64
//! shards — plenty for a single machine, and it keeps mask updates a
//! single OR.

use bartercast_util::units::PeerId;
use bartercast_util::FxHashMap;

/// Maximum shard count supported by the `u64` subscription masks.
pub const MAX_SHARDS: usize = 64;

/// Per-node shard-subscription masks for boundary-edge replication.
///
/// Tracks, for every node, which shards replicate its in-edges and
/// which replicate its out-edges. See the module docs for how the
/// masks combine into a delivery mask per edge mutation.
#[derive(Debug, Default, Clone)]
pub struct BoundaryIndex {
    /// Shards replicating all edges into the node.
    in_subs: FxHashMap<PeerId, u64>,
    /// Shards replicating all edges out of the node.
    out_subs: FxHashMap<PeerId, u64>,
    /// Number of subscription backfills performed (diagnostics).
    backfills: u64,
}

impl BoundaryIndex {
    /// A fresh index with no subscriptions.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bitmask of shards (beyond the two owners) subscribed to edges
    /// into `head`.
    pub fn in_mask(&self, head: PeerId) -> u64 {
        self.in_subs.get(&head).copied().unwrap_or(0)
    }

    /// Bitmask of shards (beyond the two owners) subscribed to edges
    /// out of `tail`.
    pub fn out_mask(&self, tail: PeerId) -> u64 {
        self.out_subs.get(&tail).copied().unwrap_or(0)
    }

    /// The full delivery mask for a mutation of edge `(tail, head)`
    /// given the owner shards of its endpoints.
    pub fn delivery_mask(
        &self,
        tail: PeerId,
        head: PeerId,
        tail_shard: usize,
        head_shard: usize,
    ) -> u64 {
        (1u64 << tail_shard) | (1u64 << head_shard) | self.out_mask(tail) | self.in_mask(head)
    }

    /// Subscribe `shard` to the in-edges of `node`. Returns `true` if
    /// the subscription is new (caller must backfill existing in-edges
    /// from the authoritative replica).
    pub fn subscribe_in(&mut self, node: PeerId, shard: usize) -> bool {
        debug_assert!(shard < MAX_SHARDS);
        let mask = self.in_subs.entry(node).or_insert(0);
        let bit = 1u64 << shard;
        let fresh = *mask & bit == 0;
        *mask |= bit;
        if fresh {
            self.backfills += 1;
        }
        fresh
    }

    /// Subscribe `shard` to the out-edges of `node`. Returns `true` if
    /// the subscription is new (caller must backfill existing
    /// out-edges from the authoritative replica).
    pub fn subscribe_out(&mut self, node: PeerId, shard: usize) -> bool {
        debug_assert!(shard < MAX_SHARDS);
        let mask = self.out_subs.entry(node).or_insert(0);
        let bit = 1u64 << shard;
        let fresh = *mask & bit == 0;
        *mask |= bit;
        if fresh {
            self.backfills += 1;
        }
        fresh
    }

    /// Number of subscription backfills triggered so far.
    pub fn backfills(&self) -> u64 {
        self.backfills
    }

    /// Number of nodes carrying at least one subscription mask.
    pub fn tracked_nodes(&self) -> usize {
        let mut nodes: Vec<&PeerId> = self.in_subs.keys().chain(self.out_subs.keys()).collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes.len()
    }

    /// Drop all subscriptions (used when the service repartitions).
    pub fn clear(&mut self) {
        self.in_subs.clear();
        self.out_subs.clear();
    }
}

/// Iterate the shard indices set in `mask`, ascending.
pub fn shards_in_mask(mask: u64) -> impl Iterator<Item = usize> {
    let mut rest = mask;
    std::iter::from_fn(move || {
        if rest == 0 {
            None
        } else {
            let s = rest.trailing_zeros() as usize;
            rest &= rest - 1;
            Some(s)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> PeerId {
        PeerId(i)
    }

    #[test]
    fn delivery_mask_starts_with_owners() {
        let idx = BoundaryIndex::new();
        let mask = idx.delivery_mask(p(1), p(2), 0, 3);
        assert_eq!(mask, 0b1001);
        assert_eq!(shards_in_mask(mask).collect::<Vec<_>>(), vec![0, 3]);
    }

    #[test]
    fn subscriptions_extend_delivery() {
        let mut idx = BoundaryIndex::new();
        assert!(idx.subscribe_out(p(1), 5));
        assert!(!idx.subscribe_out(p(1), 5), "second subscribe is a no-op");
        assert!(idx.subscribe_in(p(2), 6));
        let mask = idx.delivery_mask(p(1), p(2), 0, 3);
        assert_eq!(shards_in_mask(mask).collect::<Vec<_>>(), vec![0, 3, 5, 6]);
        assert_eq!(idx.backfills(), 2);
        assert_eq!(idx.tracked_nodes(), 2);
    }

    #[test]
    fn same_shard_owners_collapse_to_one_bit() {
        let idx = BoundaryIndex::new();
        assert_eq!(idx.delivery_mask(p(1), p(2), 2, 2), 0b100);
    }

    #[test]
    fn clear_resets_masks_but_not_counters() {
        let mut idx = BoundaryIndex::new();
        idx.subscribe_in(p(7), 1);
        idx.clear();
        assert_eq!(idx.in_mask(p(7)), 0);
        assert_eq!(idx.tracked_nodes(), 0);
        assert_eq!(idx.backfills(), 1);
    }

    #[test]
    fn mask_iteration_covers_all_64_bits() {
        assert_eq!(shards_in_mask(u64::MAX).count(), MAX_SHARDS);
        assert_eq!(shards_in_mask(0).count(), 0);
        assert_eq!(shards_in_mask(1u64 << 63).collect::<Vec<_>>(), vec![63]);
    }
}

//! Sharded reputation service: `ContributionGraph` ownership
//! partitioned across N shards, each with its own engine (arena-backed
//! subgraph, change journal, memo cache), queryable shard-parallel
//! through epoch-consistent snapshots.
//!
//! ## Ownership and replication
//!
//! A [`Partitioner`] assigns every peer to exactly one **owner shard**
//! ([`partition`]). A shard's [`ReputationEngine`] holds a replica
//! graph containing (a) all edges incident to its owned peers and
//! (b) the boundary closure those peers' bounded sweeps read: with
//! the service restricted to `Method::Bounded(k ≤ 2)`, evaluator
//! `i`'s sweep touches only `in(i)`, `out(i)`, `in(m)` for
//! in-neighbours `m`, and `out(m)` for out-neighbours `m`
//! (`graph::ssat`). The [`BoundaryIndex`] tracks which shards need
//! which nodes' adjacency replicated ([`boundary`]) and every edge
//! mutation is delivered to exactly the subscribed shards, with the
//! **tail's owner authoritative** for the edge weight.
//!
//! ## Bit-identity
//!
//! Because a shard's replica contains the evaluator's full two-hop
//! ego subgraph, and the bounded-flow closed form is an
//! order-independent sum of `u64` minima, every sharded
//! `reputations_from` is **bitwise equal** to the monolithic engine
//! on the union graph — at any shard count, under any mutation
//! interleaving. `tests/shard_differential.rs` pins this.
//!
//! ## Epochs
//!
//! [`ShardedEngine::publish_all`] freezes each shard's replica into an
//! immutable [`EpochView`] ([`epoch`]); readers on other threads
//! evaluate against the views lock-free while owners keep writing.
//! The shard-aware sweep scheduler in `sim::sweep` drains each
//! shard's evaluators on that shard's live engine and steals tail
//! work across shards through the epochs.

pub mod boundary;
pub mod epoch;
pub mod partition;

use std::sync::Arc;

use crate::message::BarterCastMessage;
use crate::metric::ReputationMetric;
use crate::repcache::ReputationEngine;
use crate::PrivateHistory;
use bartercast_graph::{ContributionGraph, Method};
use bartercast_util::units::{Bytes, PeerId};

pub use boundary::{shards_in_mask, BoundaryIndex, MAX_SHARDS};
pub use epoch::EpochView;
pub use partition::{CommunityPartitioner, HashPartitioner, Partitioner};

/// One shard: a live engine plus its most recently published epoch.
#[derive(Debug)]
struct Shard {
    engine: ReputationEngine,
    epoch: Option<Arc<EpochView>>,
    epochs_published: u64,
}

/// Aggregate diagnostics for a sharded service (see
/// [`ShardedEngine::stats`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ShardStats {
    /// Number of shards.
    pub shards: usize,
    /// Authoritative (deduplicated) edge count across the service.
    pub authoritative_edges: usize,
    /// Total edges stored across all shard replicas (≥ authoritative;
    /// the ratio is the replication factor).
    pub replica_edges: usize,
    /// Fraction of authoritative edges whose endpoints share an owner
    /// shard.
    pub locality: f64,
    /// Boundary-subscription backfills performed so far.
    pub backfills: u64,
    /// Total epochs published across all shards.
    pub epochs_published: u64,
}

/// A reputation service whose contribution graph is partitioned across
/// shards, answering Equation-1 queries bit-identically to a single
/// monolithic [`ReputationEngine`] holding the union graph.
///
/// Restricted to `Method::Bounded(k ≤ 2)` — the deployed BarterCast
/// configuration — whose two-hop locality is what makes owner-shard
/// replicas sufficient (see the module docs).
#[derive(Debug)]
pub struct ShardedEngine {
    shards: Vec<Shard>,
    partitioner: Arc<dyn Partitioner>,
    boundary: BoundaryIndex,
    method: Method,
    metric: ReputationMetric,
}

impl ShardedEngine {
    /// A service with `shards` hash-partitioned shards and the
    /// deployed configuration. Panics unless `1 ≤ shards ≤ 64`.
    pub fn new(shards: usize) -> Self {
        assert!(
            (1..=MAX_SHARDS).contains(&shards),
            "shard count {shards} outside 1..={MAX_SHARDS}"
        );
        ShardedEngine {
            shards: (0..shards)
                .map(|_| Shard {
                    engine: ReputationEngine::new(),
                    epoch: None,
                    epochs_published: 0,
                })
                .collect(),
            partitioner: Arc::new(HashPartitioner),
            boundary: BoundaryIndex::new(),
            method: Method::DEPLOYED,
            metric: ReputationMetric::default(),
        }
    }

    /// Replace the peer→shard assignment. Call before ingesting any
    /// edges (use [`ShardedEngine::repartition`] afterwards).
    pub fn with_partitioner(mut self, partitioner: Arc<dyn Partitioner>) -> Self {
        assert_eq!(
            self.authoritative_edge_count(),
            0,
            "set the partitioner before ingesting edges, or repartition()"
        );
        self.partitioner = partitioner;
        self
    }

    /// Override the bounded maxflow method. Panics unless the method
    /// is `Bounded(k)` with `k ≤ 2`: deeper bounds and unbounded flow
    /// read beyond the replicated two-hop closure.
    pub fn with_method(mut self, method: Method) -> Self {
        assert!(
            matches!(method, Method::Bounded(k) if k <= 2),
            "sharded service requires Bounded(k <= 2), got {method:?}"
        );
        self.method = method;
        for shard in &mut self.shards {
            let engine = std::mem::take(&mut shard.engine);
            shard.engine = engine.with_method(method);
        }
        self
    }

    /// Override the reputation metric on every shard.
    pub fn with_metric(mut self, metric: ReputationMetric) -> Self {
        self.metric = metric;
        for shard in &mut self.shards {
            let engine = std::mem::take(&mut shard.engine);
            shard.engine = engine.with_metric(metric);
        }
        self
    }

    /// Cap each shard engine's memo cache at `budget` entries.
    pub fn with_cache_budget(mut self, budget: usize) -> Self {
        for shard in &mut self.shards {
            let engine = std::mem::take(&mut shard.engine);
            shard.engine = engine.with_cache_budget(budget);
        }
        self
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The bounded method the service evaluates with.
    pub fn method(&self) -> Method {
        self.method
    }

    /// The owner shard of `peer` under the current partitioner.
    pub fn shard_of(&self, peer: PeerId) -> usize {
        self.partitioner.shard_of(peer, self.shards.len())
    }

    /// Read-only access to shard `s`'s live engine.
    pub fn shard_engine(&self, s: usize) -> &ReputationEngine {
        &self.shards[s].engine
    }

    /// Mutable references to every shard's live engine, in shard
    /// order — the handle the shard-aware sweep scheduler distributes
    /// across worker threads.
    pub fn shard_engines_mut(&mut self) -> Vec<&mut ReputationEngine> {
        self.shards.iter_mut().map(|s| &mut s.engine).collect()
    }

    /// Record `amount` more bytes transferred `from → to` (delta), as
    /// [`ContributionGraph::add_transfer`] on the union graph.
    pub fn add_transfer(&mut self, from: PeerId, to: PeerId, amount: Bytes) {
        if from == to || amount.is_zero() {
            return;
        }
        self.route(from, to, |_, g| g.add_transfer(from, to, amount));
    }

    /// Max-merge a gossiped record `from → to` at `total` bytes, as
    /// [`ContributionGraph::merge_record`] on the union graph. Returns
    /// whether the authoritative (tail-owner) weight changed.
    pub fn merge_record(&mut self, from: PeerId, to: PeerId, total: Bytes) -> bool {
        if from == to || total.is_zero() {
            return false;
        }
        let tail_shard = self.shard_of(from);
        let mut changed = false;
        self.route(from, to, |s, g| {
            let c = g.merge_record(from, to, total);
            if s == tail_shard {
                changed = c;
            }
        });
        changed
    }

    /// Merge one gossiped BarterCast message, mirroring
    /// [`BarterCastMessage::apply`] on the union graph. Returns the
    /// number of authoritative edges changed.
    pub fn absorb_message(&mut self, msg: &BarterCastMessage) -> usize {
        let mut changed = 0;
        for r in &msg.records {
            if r.peer == msg.sender {
                continue; // malformed self-record, ignore
            }
            if self.merge_record(msg.sender, r.peer, r.up) {
                changed += 1;
            }
            if self.merge_record(r.peer, msg.sender, r.down) {
                changed += 1;
            }
        }
        changed
    }

    /// Re-absorb a peer's private history (max-merge both directions),
    /// mirroring [`ReputationEngine::absorb_private`].
    pub fn absorb_private(&mut self, history: &PrivateHistory) {
        let me = history.owner();
        for (peer, totals) in history.iter() {
            self.merge_record(me, peer, totals.up);
            self.merge_record(peer, me, totals.down);
        }
    }

    /// Subjective reputation `R_i(j)`, answered by `i`'s owner shard.
    /// Bit-identical to the monolithic engine on the union graph.
    pub fn reputation(&mut self, i: PeerId, j: PeerId) -> f64 {
        let s = self.shard_of(i);
        self.shards[s].engine.reputation(i, j)
    }

    /// `R_i(j)` for every `j` in `targets`, answered by `i`'s owner
    /// shard. Bit-identical to the monolithic engine.
    pub fn reputations_from(&mut self, i: PeerId, targets: &[PeerId]) -> Vec<f64> {
        let s = self.shard_of(i);
        self.shards[s].engine.reputations_from(i, targets)
    }

    /// Freeze shard `s`'s current replica into a fresh epoch and
    /// return it (also retained as the shard's current epoch).
    pub fn publish_epoch(&mut self, s: usize) -> Arc<EpochView> {
        let shard = &mut self.shards[s];
        shard.epochs_published += 1;
        let view = EpochView::new(
            s,
            shard.epochs_published,
            self.method,
            self.metric,
            shard.engine.graph().clone(),
        );
        shard.epoch = Some(Arc::clone(&view));
        view
    }

    /// Publish a fresh epoch for every shard, in shard order.
    pub fn publish_all(&mut self) -> Vec<Arc<EpochView>> {
        (0..self.shards.len())
            .map(|s| self.publish_epoch(s))
            .collect()
    }

    /// The most recently published epoch of shard `s`, if any.
    pub fn epoch(&self, s: usize) -> Option<Arc<EpochView>> {
        self.shards[s].epoch.clone()
    }

    /// Every authoritative edge `(from, to, weight)` exactly once:
    /// shard by shard, each shard contributing the edges whose tail it
    /// owns, in that shard's deterministic insertion order.
    pub fn authoritative_edges(&self) -> Vec<(PeerId, PeerId, Bytes)> {
        let mut out = Vec::new();
        for (s, shard) in self.shards.iter().enumerate() {
            for (f, t, w) in shard.engine.graph().edges() {
                if self.shard_of(f) == s {
                    out.push((f, t, w));
                }
            }
        }
        out
    }

    /// Authoritative edge count (each union-graph edge counted once).
    pub fn authoritative_edge_count(&self) -> usize {
        self.shards
            .iter()
            .enumerate()
            .map(|(s, shard)| {
                shard
                    .engine
                    .graph()
                    .edges()
                    .filter(|&(f, _, _)| self.shard_of(f) == s)
                    .count()
            })
            .sum()
    }

    /// Rebuild the service with a new shard count and partitioner,
    /// re-ingesting every authoritative edge. Reputations are
    /// preserved bit-for-bit (weights are re-merged exactly).
    pub fn repartition(&mut self, shards: usize, partitioner: Arc<dyn Partitioner>) {
        let edges = self.authoritative_edges();
        let mut fresh = ShardedEngine::new(shards)
            .with_method(self.method)
            .with_metric(self.metric);
        fresh.partitioner = partitioner;
        for (f, t, w) in edges {
            fresh.merge_record(f, t, w);
        }
        *self = fresh;
    }

    /// Fraction of authoritative edges with co-owned endpoints
    /// (shard-local edges). `1.0` on an empty service.
    pub fn locality(&self) -> f64 {
        let edges = self.authoritative_edges();
        if edges.is_empty() {
            return 1.0;
        }
        let local = edges
            .iter()
            .filter(|&&(f, t, _)| self.shard_of(f) == self.shard_of(t))
            .count();
        local as f64 / edges.len() as f64
    }

    /// Aggregate replication / locality / epoch diagnostics.
    pub fn stats(&self) -> ShardStats {
        let authoritative = self.authoritative_edge_count();
        let replica: usize = self
            .shards
            .iter()
            .map(|s| s.engine.graph().edge_count())
            .sum();
        ShardStats {
            shards: self.shards.len(),
            authoritative_edges: authoritative,
            replica_edges: replica,
            locality: self.locality(),
            backfills: self.boundary.backfills(),
            epochs_published: self.shards.iter().map(|s| s.epochs_published).sum(),
        }
    }

    /// Deliver an edge mutation of `(from, to)` to every subscribed
    /// shard, then extend subscriptions for the middle-node closure the
    /// new adjacency creates (backfilling fresh subscribers from the
    /// authoritative replicas).
    fn route(
        &mut self,
        from: PeerId,
        to: PeerId,
        mut apply: impl FnMut(usize, &mut ContributionGraph),
    ) {
        let tail_shard = self.shard_of(from);
        let head_shard = self.shard_of(to);
        let mask = self
            .boundary
            .delivery_mask(from, to, tail_shard, head_shard);
        for s in shards_in_mask(mask) {
            apply(s, self.shards[s].engine.graph_mut());
        }
        // `to` is now an out-neighbour of `from`: from's owner sweeps
        // read out(to). `from` is an in-neighbour of `to`: to's owner
        // sweeps read in(from). Same-shard cases are trivially covered
        // by ownership, so only cross-shard adjacency subscribes.
        if tail_shard != head_shard {
            if self.boundary.subscribe_out(to, tail_shard) {
                self.backfill_out(to, head_shard, tail_shard);
            }
            if self.boundary.subscribe_in(from, head_shard) {
                self.backfill_in(from, tail_shard, head_shard);
            }
        }
    }

    /// Copy all out-edges of `node` from the authoritative replica on
    /// `src` into `dst` (max-merge: idempotent, no-op on agreement).
    fn backfill_out(&mut self, node: PeerId, src: usize, dst: usize) {
        let edges: Vec<(PeerId, Bytes)> = self.shards[src].engine.graph().out_edges(node).collect();
        let dst_graph = self.shards[dst].engine.graph_mut();
        for (t, w) in edges {
            dst_graph.merge_record(node, t, w);
        }
    }

    /// Copy all in-edges of `node` from the authoritative replica on
    /// `src` into `dst`.
    fn backfill_in(&mut self, node: PeerId, src: usize, dst: usize) {
        let edges: Vec<(PeerId, Bytes)> = self.shards[src].engine.graph().in_edges(node).collect();
        let dst_graph = self.shards[dst].engine.graph_mut();
        for (f, w) in edges {
            dst_graph.merge_record(f, node, w);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> PeerId {
        PeerId(i)
    }

    fn monolith() -> ReputationEngine {
        ReputationEngine::new()
    }

    /// A small deterministic edge batch crossing every pair of shards
    /// at 4 shards under the hash partitioner.
    fn batch() -> Vec<(u32, u32, u64)> {
        let mut out = Vec::new();
        let mut x = 0x9e3779b97f4a7c15u64;
        for i in 0..40u32 {
            for j in 0..3u32 {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let f = i % 24;
                let t = (i + 1 + (x >> 33) as u32 % 7) % 24;
                out.push((f, t, 1 + (x >> 17) % 5000 + j as u64));
            }
        }
        out
    }

    #[test]
    fn sharded_matches_monolith_on_mixed_batch() {
        for shards in [1usize, 2, 4, 8] {
            let mut mono = monolith();
            let mut svc = ShardedEngine::new(shards);
            for (i, &(f, t, w)) in batch().iter().enumerate() {
                if i % 3 == 0 {
                    mono.graph_mut().add_transfer(p(f), p(t), Bytes(w));
                    svc.add_transfer(p(f), p(t), Bytes(w));
                } else {
                    mono.graph_mut().merge_record(p(f), p(t), Bytes(w));
                    svc.merge_record(p(f), p(t), Bytes(w));
                }
            }
            let targets: Vec<PeerId> = (0..24).map(p).collect();
            for i in 0..24 {
                let a = mono.reputations_from(p(i), &targets);
                let b = svc.reputations_from(p(i), &targets);
                assert_eq!(
                    a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    b.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "shards={shards} evaluator={i}"
                );
            }
        }
    }

    #[test]
    fn replicas_agree_with_owner_on_every_masked_edge() {
        let mut svc = ShardedEngine::new(4);
        for &(f, t, w) in &batch() {
            svc.add_transfer(p(f), p(t), Bytes(w));
        }
        for (f, t, w) in svc.authoritative_edges() {
            for s in 0..4 {
                let replica = svc.shard_engine(s).graph().edge(f, t);
                assert!(
                    replica == Bytes::ZERO || replica == w,
                    "shard {s} stores {f}->{t} at {replica:?}, owner says {w:?}"
                );
            }
        }
    }

    #[test]
    fn authoritative_edges_are_duplicate_free_and_complete() {
        let mut mono = monolith();
        let mut svc = ShardedEngine::new(8);
        for &(f, t, w) in &batch() {
            mono.graph_mut().add_transfer(p(f), p(t), Bytes(w));
            svc.add_transfer(p(f), p(t), Bytes(w));
        }
        let mut ours: Vec<_> = svc.authoritative_edges();
        let mut truth: Vec<_> = mono.graph().edges().collect();
        ours.sort();
        truth.sort();
        assert_eq!(ours, truth);
        assert_eq!(svc.authoritative_edge_count(), mono.graph().edge_count());
    }

    #[test]
    fn repartition_preserves_reputations_bitwise() {
        let mut svc = ShardedEngine::new(4);
        for &(f, t, w) in &batch() {
            svc.add_transfer(p(f), p(t), Bytes(w));
        }
        let targets: Vec<PeerId> = (0..24).map(p).collect();
        let before: Vec<Vec<u64>> = (0..24)
            .map(|i| {
                svc.reputations_from(p(i), &targets)
                    .iter()
                    .map(|v| v.to_bits())
                    .collect()
            })
            .collect();
        svc.repartition(7, Arc::new(HashPartitioner));
        for i in 0..24 {
            let after: Vec<u64> = svc
                .reputations_from(p(i), &targets)
                .iter()
                .map(|v| v.to_bits())
                .collect();
            assert_eq!(before[i as usize], after, "evaluator {i}");
        }
        assert_eq!(svc.shard_count(), 7);
    }

    #[test]
    fn epochs_freeze_and_survive_writes() {
        let mut svc = ShardedEngine::new(2);
        svc.add_transfer(p(1), p(0), Bytes::from_mb(100));
        let views = svc.publish_all();
        assert_eq!(views.len(), 2);
        let s = svc.shard_of(p(0));
        let before = views[s].reputation(p(0), p(1));
        svc.add_transfer(p(1), p(0), Bytes::from_gb(10));
        assert_eq!(views[s].reputation(p(0), p(1)).to_bits(), before.to_bits());
        assert!(svc.reputation(p(0), p(1)) > before);
        assert_eq!(svc.epoch(s).unwrap().epoch(), 1);
        svc.publish_epoch(s);
        assert_eq!(svc.epoch(s).unwrap().epoch(), 2);
    }

    #[test]
    fn message_and_private_absorption_match_monolith() {
        use crate::history::PrivateHistory;
        use crate::message::TransferRecord;
        let mut mono = monolith();
        let mut svc = ShardedEngine::new(4);
        let msg = BarterCastMessage {
            sender: p(3),
            records: vec![
                TransferRecord {
                    peer: p(5),
                    up: Bytes::from_mb(80),
                    down: Bytes::from_mb(20),
                },
                TransferRecord {
                    peer: p(3), // malformed self-record, must be skipped
                    up: Bytes::from_mb(999),
                    down: Bytes::ZERO,
                },
            ],
        };
        assert_eq!(svc.absorb_message(&msg), mono.absorb_message(&msg));
        let mut hist = PrivateHistory::new(p(7));
        hist.record_upload(p(2), Bytes::from_mb(40), Default::default());
        hist.record_download(p(5), Bytes::from_mb(15), Default::default());
        mono.absorb_private(&hist);
        svc.absorb_private(&hist);
        let targets: Vec<PeerId> = (0..8).map(p).collect();
        for i in 0..8 {
            assert_eq!(
                mono.reputations_from(p(i), &targets),
                svc.reputations_from(p(i), &targets),
                "evaluator {i}"
            );
        }
    }

    #[test]
    fn stats_report_replication_and_locality() {
        let mut svc = ShardedEngine::new(4);
        for &(f, t, w) in &batch() {
            svc.add_transfer(p(f), p(t), Bytes(w));
        }
        let stats = svc.stats();
        assert_eq!(stats.shards, 4);
        assert!(stats.replica_edges >= stats.authoritative_edges);
        assert!(stats.locality >= 0.0 && stats.locality <= 1.0);
        let single = ShardedEngine::new(1).stats();
        assert_eq!(single.locality, 1.0);
    }

    #[test]
    #[should_panic(expected = "Bounded(k <= 2)")]
    fn deep_bounds_are_rejected() {
        let _ = ShardedEngine::new(2).with_method(Method::Bounded(3));
    }

    #[test]
    #[should_panic(expected = "shard count")]
    fn zero_shards_rejected() {
        let _ = ShardedEngine::new(0);
    }
}

//! Epoch-consistent shard snapshots.
//!
//! A shard **publishes** an epoch by freezing its current replica
//! graph (owned subgraph + replicated boundary edges) into an
//! immutable, `Arc`-shared [`EpochView`]. Readers on other threads
//! evaluate Equation 1 against the view without taking any lock; the
//! writer keeps mutating its live graph and publishes a fresh epoch
//! when it wants the changes visible. Because the view is a frozen
//! value, a reader can never observe a torn cut: every query against
//! epoch `e` sees exactly the graph state at publication of `e`,
//! which equals replaying the shard's mutation journal up to the
//! recorded version and nothing after it (pinned by
//! `tests/epoch_snapshot.rs`).
//!
//! Evaluation is **pure** — no memo cache, no change journal — and
//! mirrors the monolithic engine's bounded sweep exactly: the flow
//! totals are order-independent `u64` sums over the evaluator's
//! two-hop neighbourhood (`graph::ssat`), and the metric maps the
//! same two `u64`s through the same `f64` expression, so epoch reads
//! are bit-identical to live-engine reads at the same graph state.

use std::sync::Arc;

use crate::metric::ReputationMetric;
use bartercast_graph::ssat;
use bartercast_graph::{ContributionGraph, Method};
use bartercast_util::units::{Bytes, PeerId};
use bartercast_util::FxHashMap;

/// An immutable snapshot of one shard's replica graph, safe to read
/// from any thread while the owning shard keeps writing.
#[derive(Debug)]
pub struct EpochView {
    shard: usize,
    epoch: u64,
    version: u64,
    method: Method,
    metric: ReputationMetric,
    graph: ContributionGraph,
}

impl EpochView {
    /// Freeze `graph` (a clone of the shard's replica at publication
    /// time) into epoch number `epoch` for `shard`.
    pub(crate) fn new(
        shard: usize,
        epoch: u64,
        method: Method,
        metric: ReputationMetric,
        graph: ContributionGraph,
    ) -> Arc<Self> {
        let version = graph.version();
        Arc::new(EpochView {
            shard,
            epoch,
            version,
            method,
            metric,
            graph,
        })
    }

    /// The shard this epoch belongs to.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Monotonically increasing publication counter for the shard.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The replica-graph version frozen into this epoch.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The bounded-flow method the snapshot evaluates with.
    pub fn method(&self) -> Method {
        self.method
    }

    /// The frozen replica graph.
    pub fn graph(&self) -> &ContributionGraph {
        &self.graph
    }

    /// The two directed bounded-flow maps of evaluator `i`:
    /// `(toward, away)` with `toward[j] = maxflow(j → i)` and
    /// `away[j] = maxflow(i → j)`, exactly as the live engine's
    /// bounded sweep computes them.
    fn flow_maps(&self, i: PeerId) -> (FxHashMap<PeerId, Bytes>, FxHashMap<PeerId, Bytes>) {
        match self.method {
            Method::Bounded(0) => (FxHashMap::default(), FxHashMap::default()),
            Method::Bounded(1) => (
                self.graph.in_edges(i).collect(),
                self.graph.out_edges(i).collect(),
            ),
            Method::Bounded(2) => (
                ssat::flows_into(&self.graph, i),
                ssat::flows_from(&self.graph, i),
            ),
            other => unreachable!("epoch views only serve Bounded(k ≤ 2), got {other:?}"),
        }
    }

    /// Subjective reputation `R_i(j)` (Equation 1) at this epoch.
    ///
    /// Bit-identical to `ReputationEngine::reputation(i, j)` on a live
    /// engine holding the same graph state.
    pub fn reputation(&self, i: PeerId, j: PeerId) -> f64 {
        if i == j {
            return 0.0;
        }
        let (toward, away) = self.flow_maps(i);
        self.metric.eval(
            toward.get(&j).copied().unwrap_or_default(),
            away.get(&j).copied().unwrap_or_default(),
        )
    }

    /// `R_i(j)` for every `j` in `targets`, in order — the epoch
    /// analogue of `ReputationEngine::reputations_from`, sharing one
    /// two-hop sweep across all targets.
    pub fn reputations_from(&self, i: PeerId, targets: &[PeerId]) -> Vec<f64> {
        let (toward, away) = self.flow_maps(i);
        targets
            .iter()
            .map(|&j| {
                if i == j {
                    0.0
                } else {
                    self.metric.eval(
                        toward.get(&j).copied().unwrap_or_default(),
                        away.get(&j).copied().unwrap_or_default(),
                    )
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repcache::ReputationEngine;

    fn p(i: u32) -> PeerId {
        PeerId(i)
    }

    fn chain_engine() -> ReputationEngine {
        let mut e = ReputationEngine::new();
        e.graph_mut().add_transfer(p(1), p(0), Bytes::from_mb(300));
        e.graph_mut().add_transfer(p(2), p(1), Bytes::from_mb(200));
        e.graph_mut().add_transfer(p(0), p(3), Bytes::from_mb(50));
        e
    }

    fn freeze(e: &ReputationEngine) -> Arc<EpochView> {
        EpochView::new(
            0,
            1,
            e.method(),
            ReputationMetric::default(),
            e.graph().clone(),
        )
    }

    #[test]
    fn epoch_matches_live_engine_bitwise() {
        let mut e = chain_engine();
        let view = freeze(&e);
        let targets: Vec<PeerId> = (0..5).map(p).collect();
        for i in 0..5 {
            let live = e.reputations_from(p(i), &targets);
            let snap = view.reputations_from(p(i), &targets);
            for (j, (a, b)) in live.iter().zip(&snap).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "R_{i}({j}) diverged: live {a} vs epoch {b}"
                );
                assert_eq!(e.reputation(p(i), p(j as u32)).to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn epoch_is_immune_to_later_writes() {
        let mut e = chain_engine();
        let before = e.reputations_from(p(0), &[p(1), p(2), p(3)]);
        let view = freeze(&e);
        e.graph_mut().add_transfer(p(2), p(1), Bytes::from_gb(50));
        assert_ne!(
            e.reputations_from(p(0), &[p(1), p(2), p(3)]),
            before,
            "the write must change live reads"
        );
        let snap = view.reputations_from(p(0), &[p(1), p(2), p(3)]);
        for (a, b) in before.iter().zip(&snap) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn bounded_one_and_zero_match_live() {
        for k in [0usize, 1] {
            let mut e = chain_engine().with_method(Method::Bounded(k));
            let view = EpochView::new(
                0,
                1,
                e.method(),
                ReputationMetric::default(),
                e.graph().clone(),
            );
            let targets: Vec<PeerId> = (0..4).map(p).collect();
            for i in 0..4 {
                let live = e.reputations_from(p(i), &targets);
                let snap = view.reputations_from(p(i), &targets);
                assert_eq!(
                    live.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    snap.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "k={k} i={i}"
                );
            }
        }
    }

    #[test]
    fn metadata_reflects_publication() {
        let e = chain_engine();
        let view = freeze(&e);
        assert_eq!(view.shard(), 0);
        assert_eq!(view.epoch(), 1);
        assert_eq!(view.version(), e.graph().version());
        assert_eq!(view.method(), Method::DEPLOYED);
        assert_eq!(view.graph().edge_count(), e.graph().edge_count());
    }

    #[test]
    fn self_reputation_is_zero_on_epoch() {
        let e = chain_engine();
        let view = freeze(&e);
        assert_eq!(view.reputation(p(0), p(0)), 0.0);
        assert_eq!(view.reputations_from(p(0), &[p(0)]), vec![0.0]);
    }
}

//! BarterCast messages (§3.4).
//!
//! A message carries a selection of the sender's private history: for
//! each selected peer `j`, the totals the sender claims to have
//! uploaded to and downloaded from `j`. The receiver max-merges these
//! claims into its subjective contribution graph.

use crate::history::PrivateHistory;
use bartercast_graph::ContributionGraph;
use bartercast_util::units::{Bytes, PeerId};
use serde::{Deserialize, Serialize};

/// Protocol parameters (§3.4; the paper's experiments use
/// `Nh = Nr = 10`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BarterCastConfig {
    /// Number of top-uploader records to include in a message.
    pub nh: usize,
    /// Number of most-recently-seen records to include.
    pub nr: usize,
}

impl Default for BarterCastConfig {
    fn default() -> Self {
        BarterCastConfig { nh: 10, nr: 10 }
    }
}

/// One record in a message: the sender's claimed totals with `peer`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransferRecord {
    /// The remote peer the record is about.
    pub peer: PeerId,
    /// Bytes the sender claims to have uploaded to `peer`.
    pub up: Bytes,
    /// Bytes the sender claims to have downloaded from `peer`.
    pub down: Bytes,
}

/// A BarterCast message: the sender plus its selected records.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BarterCastMessage {
    /// The peer whose history the records come from.
    pub sender: PeerId,
    /// Selected `(peer, up, down)` records.
    pub records: Vec<TransferRecord>,
}

impl BarterCastMessage {
    /// Build the message peer `history.owner()` would send, using the
    /// §3.4 selection rule with the given config.
    pub fn from_history(history: &PrivateHistory, config: BarterCastConfig) -> Self {
        let records = history
            .select_peers(config.nh, config.nr)
            .into_iter()
            .filter_map(|peer| {
                history.get(peer).map(|t| TransferRecord {
                    peer,
                    up: t.up,
                    down: t.down,
                })
            })
            .collect();
        BarterCastMessage {
            sender: history.owner(),
            records,
        }
    }

    /// Build the message a **selfish liar** sends (§5.4, manipulation
    /// (2)): it claims to have uploaded `huge` to each of the peers it
    /// knows and downloaded nothing.
    pub fn lying(history: &PrivateHistory, config: BarterCastConfig, huge: Bytes) -> Self {
        let records = history
            .select_peers(config.nh, config.nr)
            .into_iter()
            .map(|peer| TransferRecord {
                peer,
                up: huge,
                down: Bytes::ZERO,
            })
            .collect();
        BarterCastMessage {
            sender: history.owner(),
            records,
        }
    }

    /// Apply this message to a receiver's subjective graph: each record
    /// `(j, up, down)` asserts edges `sender → j` of weight `up` and
    /// `j → sender` of weight `down`, merged with max semantics.
    /// Returns the number of edges that actually changed.
    pub fn apply(&self, graph: &mut ContributionGraph) -> usize {
        let mut changed = 0;
        for r in &self.records {
            if r.peer == self.sender {
                continue; // malformed self-record, ignore
            }
            if graph.merge_record(self.sender, r.peer, r.up) {
                changed += 1;
            }
            if graph.merge_record(r.peer, self.sender, r.down) {
                changed += 1;
            }
        }
        changed
    }

    /// Number of records carried.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True iff the message carries no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bartercast_util::units::Seconds;

    fn p(i: u32) -> PeerId {
        PeerId(i)
    }

    fn sample_history() -> PrivateHistory {
        let mut h = PrivateHistory::new(p(0));
        h.record_download(p(1), Bytes::from_mb(500), Seconds(10));
        h.record_upload(p(1), Bytes::from_mb(50), Seconds(10));
        h.record_download(p(2), Bytes::from_mb(100), Seconds(20));
        h.touch(p(3), Seconds(30));
        h
    }

    #[test]
    fn message_from_history_carries_totals() {
        let h = sample_history();
        let m = BarterCastMessage::from_history(&h, BarterCastConfig::default());
        assert_eq!(m.sender, p(0));
        assert_eq!(m.len(), 3);
        let r1 = m.records.iter().find(|r| r.peer == p(1)).unwrap();
        assert_eq!(r1.up, Bytes::from_mb(50));
        assert_eq!(r1.down, Bytes::from_mb(500));
    }

    #[test]
    fn apply_builds_subjective_graph() {
        let h = sample_history();
        let m = BarterCastMessage::from_history(&h, BarterCastConfig::default());
        let mut g = ContributionGraph::new();
        let changed = m.apply(&mut g);
        assert!(changed >= 3);
        // record (1, up=50, down=500): 0 uploaded 50 to 1; 1 uploaded 500 to 0
        assert_eq!(g.edge(p(0), p(1)), Bytes::from_mb(50));
        assert_eq!(g.edge(p(1), p(0)), Bytes::from_mb(500));
        assert_eq!(g.edge(p(2), p(0)), Bytes::from_mb(100));
        g.check_invariants().unwrap();
    }

    #[test]
    fn apply_is_idempotent() {
        let h = sample_history();
        let m = BarterCastMessage::from_history(&h, BarterCastConfig::default());
        let mut g = ContributionGraph::new();
        m.apply(&mut g);
        let changed = m.apply(&mut g);
        assert_eq!(changed, 0);
    }

    #[test]
    fn stale_message_does_not_downgrade() {
        let mut old = sample_history();
        let m_old = BarterCastMessage::from_history(&old, BarterCastConfig::default());
        old.record_download(p(1), Bytes::from_mb(500), Seconds(99));
        let m_new = BarterCastMessage::from_history(&old, BarterCastConfig::default());
        let mut g = ContributionGraph::new();
        m_new.apply(&mut g);
        let before = g.edge(p(1), p(0));
        m_old.apply(&mut g); // replayed stale message
        assert_eq!(g.edge(p(1), p(0)), before);
    }

    #[test]
    fn lying_message_claims_huge_uploads() {
        let h = sample_history();
        let m = BarterCastMessage::lying(&h, BarterCastConfig::default(), Bytes::from_gb(100));
        assert!(m.records.iter().all(|r| r.up == Bytes::from_gb(100)));
        assert!(m.records.iter().all(|r| r.down == Bytes::ZERO));
        let mut g = ContributionGraph::new();
        m.apply(&mut g);
        assert_eq!(g.edge(p(0), p(1)), Bytes::from_gb(100));
        assert_eq!(g.edge(p(1), p(0)), Bytes::ZERO);
    }

    #[test]
    fn config_limits_record_count() {
        let mut h = PrivateHistory::new(p(0));
        for i in 1..=30 {
            h.record_download(p(i), Bytes::from_mb(i as u64), Seconds(i as u64));
        }
        let m = BarterCastMessage::from_history(&h, BarterCastConfig { nh: 10, nr: 10 });
        // top-10 uploaders are 21..=30 by amount, most recent are 21..=30
        // by time — overlap dedups, so between 10 and 20 records
        assert!(m.len() >= 10 && m.len() <= 20, "got {}", m.len());
    }

    #[test]
    fn malformed_self_record_ignored() {
        let m = BarterCastMessage {
            sender: p(0),
            records: vec![TransferRecord {
                peer: p(0),
                up: Bytes::from_gb(1),
                down: Bytes::ZERO,
            }],
        };
        let mut g = ContributionGraph::new();
        assert_eq!(m.apply(&mut g), 0);
        assert_eq!(g.edge_count(), 0);
    }
}

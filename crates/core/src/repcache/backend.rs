//! Backend dispatch: which flow kernel serves a query, and the
//! consolidated cache statistics the engine reports.
//!
//! The engine used to pick its evaluation path with per-call `match`es
//! on [`Method`] — one arm per kernel, with the fallback policy
//! (Gomory–Hu tree vs. exact per-pair flow) duplicated at each call
//! site. [`BackendSet`] centralizes that: it owns one instance of each
//! [`FlowBackend`] and answers "who serves this query?" by asking the
//! backends themselves, in a fixed priority order.

use bartercast_graph::backend::{GomoryHu, PairwiseDinic, Ssat};
use bartercast_graph::maxflow::Method;
use bartercast_graph::FlowBackend;

/// The engine's flow kernels, consulted in priority order:
///
/// 1. [`Ssat`] — single-source all-targets sweeps for **every**
///    finite bound `Bounded(k)` (closed form for the deployed
///    `k ≤ 2`, the layered-DAG kernel for `k ≥ 3`); exact.
/// 2. [`GomoryHu`] — `O(n)` tree sweeps for unbounded methods while
///    the graph's directed asymmetry stays within the tolerance.
/// 3. [`PairwiseDinic`] — exact per-pair evaluation; supports
///    everything, so selection never fails.
///
/// Point queries skip the tree (see [`BackendSet::select_point`]):
/// they are cheap enough to stay exact, and the old engine's contract
/// was that `reputation` never approximates.
#[derive(Debug, Clone)]
pub struct BackendSet {
    ssat: Ssat,
    gomoryhu: GomoryHu,
    pairwise: PairwiseDinic,
}

impl BackendSet {
    /// Backends for `method`, with the Gomory–Hu tree admissible up to
    /// `tolerance` directed asymmetry.
    pub fn new(method: Method, tolerance: f64) -> Self {
        BackendSet {
            ssat: Ssat::new(method),
            gomoryhu: GomoryHu::new(tolerance),
            pairwise: PairwiseDinic::new(method),
        }
    }

    /// The highest-priority backend that supports `method` at the
    /// graph's current `asymmetry`. Used for batch queries, where a
    /// sweep kernel pays off; falls through to [`PairwiseDinic`],
    /// which supports everything.
    pub fn select(&mut self, method: Method, asymmetry: f64) -> &mut dyn FlowBackend {
        let ordered: [&mut dyn FlowBackend; 3] =
            [&mut self.ssat, &mut self.gomoryhu, &mut self.pairwise];
        for backend in ordered {
            if backend.supports(method, asymmetry) {
                return backend;
            }
        }
        unreachable!("PairwiseDinic supports every method")
    }

    /// The backend for a single-pair query: the bounded SSAT kernel
    /// when the method admits it, else exact per-pair evaluation —
    /// never the Gomory–Hu tree, whose approximation is only accepted
    /// on batch sweeps where its `O(n)` amortization buys something.
    pub fn select_point(&mut self, method: Method) -> &mut dyn FlowBackend {
        if self.ssat.supports(method, 0.0) {
            &mut self.ssat
        } else {
            &mut self.pairwise
        }
    }

    /// Graph version of the Gomory–Hu backend's current tree, if one
    /// is built (diagnostics: rebuild-once-per-version tests).
    pub fn tree_version(&self) -> Option<u64> {
        self.gomoryhu.tree_version()
    }

    /// How the Gomory–Hu backend has kept its tree current:
    /// `(incremental patches, full rebuilds)` since construction.
    pub fn tree_maintenance(&self) -> (u64, u64) {
        (self.gomoryhu.tree_patches(), self.gomoryhu.tree_rebuilds())
    }
}

/// One snapshot of the engine's cache behaviour, consolidating what
/// used to be spread over `cache_stats()`, `cache_len()` and
/// `batch_backend_stats()`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Queries answered from the memo cache. Each queried pair counts
    /// exactly once per query, on every query path.
    pub hits: u64,
    /// Queries that computed flows. Entries prefilled by the same
    /// call's sweep still count as misses the first time they are
    /// requested, so totals stay comparable across query paths.
    pub misses: u64,
    /// Memoized `(evaluator, target)` entries currently held.
    pub entries: usize,
    /// Entries dropped by the LRU budget since construction.
    pub evictions: u64,
    /// Entries dropped because a graph change dirtied one of their
    /// endpoints (for `k ≥ 3`, their k-hop neighbourhood; for
    /// unbounded methods, any edge).
    pub invalidated: u64,
    /// Unbounded batch queries served by the Gomory–Hu tree.
    pub tree_sweeps: u64,
    /// Unbounded batch queries that fell back to exact per-pair flow
    /// because the graph's asymmetry exceeded the tolerance.
    pub fallback_sweeps: u64,
    /// Gomory–Hu version bumps absorbed by an incremental tree patch
    /// (only the Gusfield steps a dirty node's cut crosses re-run).
    pub tree_patches: u64,
    /// Gomory–Hu version bumps that required a from-scratch Gusfield
    /// rebuild (first build, node-set growth, or oversized dirty set).
    pub tree_rebuilds: u64,
}

impl CacheStats {
    /// The stats as a fragment of JSON object fields (no braces), for
    /// the bench binaries' `BENCH_*.json` rows.
    pub fn json_fields(&self) -> String {
        format!(
            "\"hits\": {}, \"misses\": {}, \"entries\": {}, \"evictions\": {}, \
             \"invalidated\": {}, \"tree_sweeps\": {}, \"fallback_sweeps\": {}, \
             \"tree_patches\": {}, \"tree_rebuilds\": {}",
            self.hits,
            self.misses,
            self.entries,
            self.evictions,
            self.invalidated,
            self.tree_sweeps,
            self.fallback_sweeps,
            self.tree_patches,
            self.tree_rebuilds
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_selection_priority() {
        let mut set = BackendSet::new(Method::DEPLOYED, 0.0);
        assert_eq!(set.select(Method::DEPLOYED, 1.0).name(), "ssat");
        assert_eq!(set.select(Method::Dinic, 0.0).name(), "gomory-hu");
        assert_eq!(set.select(Method::Dinic, 0.5).name(), "pairwise");
    }

    #[test]
    fn finite_bounds_no_longer_fall_back_to_pairwise() {
        // regression: before the layered-DAG kernel, Bounded(k) with
        // k ≥ 3 selected "pairwise" here — a silent degradation to
        // per-pair evaluation with no sweep and no incremental
        // eviction. Every finite bound now selects the SSAT kernel,
        // for batch and point queries alike.
        for k in [3usize, 4, 7, 100] {
            let method = Method::Bounded(k);
            let mut set = BackendSet::new(method, 0.0);
            assert_eq!(set.select(method, 0.0).name(), "ssat", "batch k = {k}");
            assert_eq!(set.select(method, 1.0).name(), "ssat", "asymmetry-blind");
            assert_eq!(set.select_point(method).name(), "ssat", "point k = {k}");
        }
        // unbounded methods are untouched by the widening
        let mut set = BackendSet::new(Method::Dinic, 0.0);
        assert_eq!(set.select_point(Method::Dinic).name(), "pairwise");
    }

    #[test]
    fn point_selection_never_approximates() {
        let mut set = BackendSet::new(Method::Dinic, 1.0);
        // tree would be admissible for a batch at this tolerance, but
        // point queries stay exact
        assert_eq!(set.select(Method::Dinic, 0.5).name(), "gomory-hu");
        assert_eq!(set.select_point(Method::Dinic).name(), "pairwise");
        assert_eq!(set.select_point(Method::DEPLOYED).name(), "ssat");
    }

    #[test]
    fn json_fields_are_well_formed() {
        let s = CacheStats {
            hits: 1,
            misses: 2,
            entries: 3,
            evictions: 4,
            invalidated: 5,
            tree_sweeps: 6,
            fallback_sweeps: 7,
            tree_patches: 8,
            tree_rebuilds: 9,
        };
        let json = format!("{{{}}}", s.json_fields());
        assert!(json.starts_with("{\"hits\": 1,"));
        assert!(json.ends_with("\"tree_patches\": 8, \"tree_rebuilds\": 9}"));
    }
}

//! The reputation engine: subjective graph + flow backends + metric +
//! memo cache.
//!
//! Each peer owns one [`ReputationEngine`]. It holds the peer's
//! subjective [`ContributionGraph`] (private history edges plus
//! gossiped records), evaluates Equation 1 with a configurable maxflow
//! method (the deployed default is two-hop-bounded), and memoizes
//! results until the graph changes.
//!
//! The engine is assembled from three submodules:
//!
//! * [`backend`] — [`BackendSet`], the dispatch policy over the
//!   [`FlowBackend`] kernels (SSAT sweep, Gomory–Hu tree, per-pair
//!   fallback), plus the consolidated [`CacheStats`].
//! * [`journal`] — the [`ChangeJournal`] dirty bitmap driving
//!   incremental cache invalidation across graph changes.
//! * [`memo`] — the [`MemoCache`] per-entry LRU bounding the memory
//!   the memoized reputations can take.

use crate::history::PrivateHistory;
use crate::message::BarterCastMessage;
use crate::metric::ReputationMetric;
use bartercast_graph::maxflow::{self, Method};
use bartercast_graph::{ContributionGraph, FlowPair};
use bartercast_util::units::{Bytes, PeerId};
use bartercast_util::{FxHashMap, FxHashSet};

pub mod backend;
pub mod journal;
pub mod memo;

pub use backend::{BackendSet, CacheStats};
pub use journal::{ChangeJournal, DEFAULT_JOURNAL_CAPACITY, JOURNAL_WORD_BITS};
pub use memo::{MemoCache, DEFAULT_CACHE_BUDGET};

/// Whether `method` evaluates unbounded maxflow (any path length), as
/// opposed to the deployed path-length-bounded variants.
fn is_unbounded(method: Method) -> bool {
    matches!(
        method,
        Method::FordFulkerson | Method::EdmondsKarp | Method::Dinic | Method::PushRelabel
    )
}

/// The k-hop dirty neighbourhood: every node that reaches a dirty
/// node within `k` hops (multi-source reverse BFS over the in-
/// adjacency, dirty nodes included at depth 0). Exactly the sources
/// whose `Bounded(k)` flow values a change since the last sync could
/// have altered — see [`ReputationEngine::sync`].
fn dirty_ball(graph: &ContributionGraph, journal: &ChangeJournal, k: usize) -> FxHashSet<PeerId> {
    let mut ball: FxHashSet<PeerId> = journal.dirty_nodes().collect();
    let mut frontier: Vec<PeerId> = ball.iter().copied().collect();
    for _ in 0..k {
        let mut next = Vec::new();
        for node in frontier {
            for (pred, _) in graph.in_edges(node) {
                if ball.insert(pred) {
                    next.push(pred);
                }
            }
        }
        if next.is_empty() {
            break;
        }
        frontier = next;
    }
    ball
}

/// Subjective reputation evaluation with memoization.
#[derive(Debug, Clone)]
pub struct ReputationEngine {
    graph: ContributionGraph,
    method: Method,
    metric: ReputationMetric,
    /// The flow kernels, dispatched per query by [`BackendSet`]; each
    /// backend invalidates its own per-version state lazily, so the
    /// engine never issues reset calls.
    backends: BackendSet,
    /// Memoized `(evaluator, target)` reputations under a per-entry
    /// LRU budget.
    memo: MemoCache,
    /// Dirty-node bitmap folded from the graph's change tracking on
    /// every [`ReputationEngine::sync`].
    journal: ChangeJournal,
    /// Graph version the memo cache was last synchronized to;
    /// [`ReputationEngine::sync`] is the single place that moves it.
    cached_version: u64,
    /// Maximum directed asymmetry ([`ContributionGraph::asymmetry`])
    /// at which the Gomory–Hu batch backend is trusted; beyond it,
    /// unbounded batch queries fall back to exact per-pair flow.
    flow_tolerance: f64,
    /// Memoized `(version, asymmetry)` so a burst of batch queries
    /// measures the graph once.
    asymmetry_at: Option<(u64, f64)>,
    hits: u64,
    misses: u64,
    /// Entries dropped by graph-change invalidation (diagnostics).
    invalidated: u64,
    /// Batch sweeps answered by the Gomory–Hu tree vs. per-pair
    /// fallback (diagnostics; see [`CacheStats`]).
    tree_sweeps: u64,
    fallback_sweeps: u64,
}

impl Default for ReputationEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl ReputationEngine {
    /// An engine with an empty graph and the deployed configuration
    /// (two-hop bounded maxflow, arctan metric with 1 GB unit).
    pub fn new() -> Self {
        ReputationEngine {
            graph: ContributionGraph::new(),
            method: Method::DEPLOYED,
            metric: ReputationMetric::default(),
            backends: BackendSet::new(Method::DEPLOYED, 0.0),
            memo: MemoCache::default(),
            journal: ChangeJournal::new(),
            cached_version: 0,
            flow_tolerance: 0.0,
            asymmetry_at: None,
            hits: 0,
            misses: 0,
            invalidated: 0,
            tree_sweeps: 0,
            fallback_sweeps: 0,
        }
    }

    /// Seed an engine from a peer's own private history: each entry
    /// `(j, up, down)` becomes the edges `owner → j` and `j → owner`.
    pub fn from_private(history: &PrivateHistory) -> Self {
        let mut engine = Self::new();
        engine.absorb_private(history);
        engine
    }

    /// Override the maxflow method (ablation: unbounded algorithms).
    /// Invalidates any memoized reputations and rebuilds the backends.
    pub fn with_method(mut self, method: Method) -> Self {
        self.method = method;
        self.backends = BackendSet::new(method, self.flow_tolerance);
        self.memo.clear();
        self
    }

    /// Override the reputation metric. Invalidates any memoized
    /// reputations.
    pub fn with_metric(mut self, metric: ReputationMetric) -> Self {
        self.metric = metric;
        self.memo.clear();
        self
    }

    /// Set the directed-asymmetry tolerance for the Gomory–Hu batch
    /// backend (unbounded methods only).
    ///
    /// The tree is built on the min-symmetrized graph, where the two
    /// directed flows of Equation 1 coincide — so batch reputations
    /// computed through it collapse to the *symmetric* part of the
    /// relationship, and the error against exact per-pair evaluation
    /// is bounded by the weight asymmetry the graph carries. At the
    /// default tolerance of `0.0` the tree is only used on exactly
    /// symmetric graphs, where it is bit-identical to per-pair Dinic;
    /// any positive tolerance trades that exactness for `O(n)` sweeps
    /// on nearly-symmetric graphs. Asymmetry beyond the tolerance
    /// always falls back to exact per-pair flow.
    pub fn with_flow_tolerance(mut self, tolerance: f64) -> Self {
        self.flow_tolerance = tolerance;
        self.backends = BackendSet::new(self.method, tolerance);
        // tree-filled entries are only as exact as the tolerance that
        // admitted them; changing it must not mix approximations
        self.memo.clear();
        self
    }

    /// Cap the memo cache at `budget` entries. Batch sweeps memoize
    /// their full single-source result set (every reachable peer, not
    /// just the requested targets); the per-entry LRU evicts the
    /// least-recently-used entries when that pushes the cache past the
    /// budget. Purely a memory/perf knob: eviction can never produce
    /// stale values.
    pub fn with_cache_budget(mut self, budget: usize) -> Self {
        self.memo.set_budget(budget);
        self
    }

    /// Pre-size the change journal for `nodes` node slots (an
    /// allocation hint — see [`journal::DEFAULT_JOURNAL_CAPACITY`];
    /// the journal grows past it without losing precision).
    pub fn with_journal_capacity(mut self, nodes: usize) -> Self {
        self.journal = ChangeJournal::with_capacity(nodes);
        self
    }

    /// Bring the memo cache up to the current graph version. The
    /// single synchronization point for all query paths.
    ///
    /// When the graph moved, the memo cache is evicted
    /// **incrementally** where the method permits: for path-length
    /// bounds ≤ 2, a changed edge `(a, b)` can only alter `flow(s, t)`
    /// when `s = a` or `t = b`, so the entry `(i, j)` — which combines
    /// `flow(j → i)` and `flow(i → j)` — is affected exactly when `i`
    /// or `j` is an endpoint of a changed edge. The journal folds the
    /// graph's per-node change versions (which never truncate) into a
    /// dirty bitmap, so entries whose pairs avoid every dirty endpoint
    /// are provably unchanged and survive — across arbitrarily long
    /// gaps between syncs.
    ///
    /// For finite bounds `k ≥ 3` the endpoint rule generalizes to the
    /// **k-hop dirty neighbourhood**: `flow(s, t)` under `Bounded(k)`
    /// depends only on arcs whose tail lies within `k − 1` hops of
    /// `s`, so a changed edge `(a, b)` can only affect sources that
    /// reach a dirty node within `k` hops (edge weights only grow, so
    /// distances only shrink — a source outside the ball in the *new*
    /// graph was outside it before the change too). The eviction set
    /// is a multi-source reverse BFS of depth `k` from the dirty
    /// nodes; entries whose pairs avoid it are provably unchanged.
    /// Unbounded methods, where a distant edge can reroute flow
    /// anywhere, must still clear everything; that is a semantic
    /// requirement of the method, not a capacity fallback.
    fn sync(&mut self) {
        let version = self.graph.version();
        if version == self.cached_version {
            return;
        }
        match self.method {
            Method::Bounded(k) if k <= 2 => {
                self.journal.absorb(&self.graph, self.cached_version);
                let journal = &self.journal;
                let removed = self
                    .memo
                    .retain(|&(i, j)| !journal.is_dirty(i) && !journal.is_dirty(j));
                self.invalidated += removed as u64;
                self.journal.clear();
            }
            Method::Bounded(k) => {
                self.journal.absorb(&self.graph, self.cached_version);
                let ball = dirty_ball(&self.graph, &self.journal, k);
                let removed = self
                    .memo
                    .retain(|&(i, j)| !ball.contains(&i) && !ball.contains(&j));
                self.invalidated += removed as u64;
                self.journal.clear();
            }
            _ => {
                self.invalidated += self.memo.len() as u64;
                self.memo.clear();
            }
        }
        self.cached_version = version;
    }

    /// Directed asymmetry of the current graph, measured at most once
    /// per graph version.
    fn asymmetry_cached(&mut self) -> f64 {
        let version = self.graph.version();
        if let Some((v, a)) = self.asymmetry_at {
            if v == version {
                return a;
            }
        }
        let a = self.graph.asymmetry();
        self.asymmetry_at = Some((version, a));
        a
    }

    /// Re-absorb the owner's private history (max-merge, so calling it
    /// repeatedly as the history grows is safe and cheap).
    pub fn absorb_private(&mut self, history: &PrivateHistory) {
        let me = history.owner();
        for (peer, totals) in history.iter() {
            self.graph.merge_record(me, peer, totals.up);
            self.graph.merge_record(peer, me, totals.down);
        }
    }

    /// Merge one gossiped message into the subjective graph. Returns
    /// the number of changed edges.
    pub fn absorb_message(&mut self, msg: &BarterCastMessage) -> usize {
        msg.apply(&mut self.graph)
    }

    /// The maxflow method this engine evaluates Equation 1 with
    /// (schedulers use it to cost sweeps by the method's actual
    /// traversal, e.g. layered-DAG size for bounded methods).
    pub fn method(&self) -> Method {
        self.method
    }

    /// The directed-asymmetry tolerance under which unbounded batch
    /// sweeps are served by the incrementally maintained Gomory–Hu
    /// tree (see [`ReputationEngine::with_flow_tolerance`]).
    /// Schedulers use it to predict whether an unbounded sweep will be
    /// tree-served (`O(n)` with patch maintenance) or fall back to
    /// per-pair evaluation (`O(edges)` per target).
    pub fn flow_tolerance(&self) -> f64 {
        self.flow_tolerance
    }

    /// Direct read-only access to the subjective graph.
    pub fn graph(&self) -> &ContributionGraph {
        &self.graph
    }

    /// Mutable access (used by tests and by the deployment model).
    pub fn graph_mut(&mut self) -> &mut ContributionGraph {
        &mut self.graph
    }

    /// The two directed maxflows of Equation 1:
    /// `(maxflow(j → i), maxflow(i → j))`, computed on throwaway
    /// networks (diagnostics; the query paths go through the shared
    /// backends instead).
    pub fn flows(&self, i: PeerId, j: PeerId) -> (Bytes, Bytes) {
        (
            maxflow::compute(&self.graph, j, i, self.method),
            maxflow::compute(&self.graph, i, j, self.method),
        )
    }

    /// Subjective reputation `R_i(j)` (§3.3, Equation 1), memoized
    /// until the graph changes.
    ///
    /// Point queries go through [`BackendSet::select_point`]: always
    /// an exact kernel, never the Gomory–Hu approximation.
    pub fn reputation(&mut self, i: PeerId, j: PeerId) -> f64 {
        if i == j {
            return 0.0;
        }
        self.sync();
        if let Some(r) = self.memo.get(&(i, j)) {
            self.hits += 1;
            return r;
        }
        self.misses += 1;
        let backend = self.backends.select_point(self.method);
        let toward = backend.flow(&self.graph, j, i);
        let away = backend.flow(&self.graph, i, j);
        let r = self.metric.eval(toward, away);
        self.memo.insert((i, j), r);
        r
    }

    /// Batch form of [`ReputationEngine::reputation`]: `R_i(j)` for
    /// every `j` in `targets`, in order.
    ///
    /// The backend is chosen once per call by [`BackendSet::select`]:
    /// the SSAT sweep for bounded methods `k ≤ 2`, the Gomory–Hu tree
    /// for unbounded methods within the asymmetry tolerance, and exact
    /// per-pair evaluation otherwise. When the backend offers a batch
    /// sweep, it runs lazily on the first cache miss and its **full**
    /// single-source result set (every reachable peer) is memoized, so
    /// consecutive sweeps over different target lists are pure cache
    /// hits; the cache budget bounds the memory this can take.
    pub fn reputations_from(&mut self, i: PeerId, targets: &[PeerId]) -> Vec<f64> {
        self.sync();
        let asymmetry = if is_unbounded(self.method) {
            self.asymmetry_cached()
        } else {
            0.0
        };
        let backend = self.backends.select(self.method, asymmetry);
        if is_unbounded(self.method) {
            // per-call dispatch diagnostics, counted even when every
            // target turns out to be a cache hit
            if backend.name() == "gomory-hu" {
                self.tree_sweeps += 1;
            } else {
                self.fallback_sweeps += 1;
            }
        }
        // the sweep (when the backend has one) runs lazily on the
        // first miss; `fresh` tracks the entries it inserted, which
        // still count as misses the first time they are requested so
        // hit/miss totals stay comparable with per-pair accounting
        let mut flows: Option<FxHashMap<PeerId, FlowPair>> = None;
        let mut no_sweep = false;
        let mut fresh: Option<FxHashSet<PeerId>> = None;
        let mut out = Vec::with_capacity(targets.len());
        for &j in targets {
            if j == i {
                out.push(0.0);
                continue;
            }
            if !fresh.as_ref().is_some_and(|f| f.contains(&j)) {
                if let Some(r) = self.memo.get(&(i, j)) {
                    self.hits += 1;
                    out.push(r);
                    continue;
                }
            }
            self.misses += 1;
            if flows.is_none() && !no_sweep {
                match backend.all_flows_from(&self.graph, i) {
                    Some(swept) => {
                        // memoize the entire single-source result set;
                        // entries already memoized are left alone (same
                        // graph version, hence identical values)
                        let mut inserted = FxHashSet::default();
                        for (&peer, pair) in &swept {
                            if peer != i && self.memo.peek(&(i, peer)).is_none() {
                                self.memo
                                    .insert((i, peer), self.metric.eval(pair.toward, pair.away));
                                inserted.insert(peer);
                            }
                        }
                        flows = Some(swept);
                        fresh = Some(inserted);
                    }
                    None => no_sweep = true,
                }
            }
            // compute the output value straight from the flows (never
            // read back through the memo, whose budget may already
            // have evicted this call's own insertions)
            let value = match &flows {
                Some(swept) => {
                    let pair = swept.get(&j).copied().unwrap_or_default();
                    self.metric.eval(pair.toward, pair.away)
                }
                None => {
                    let toward = backend.flow(&self.graph, j, i);
                    let away = backend.flow(&self.graph, i, j);
                    self.metric.eval(toward, away)
                }
            };
            // peers absent from the sweep have zero flow either way;
            // memoize them too so repeat queries hit
            if self.memo.peek(&(i, j)).is_none() {
                self.memo.insert((i, j), value);
            }
            if let Some(f) = fresh.as_mut() {
                f.remove(&j);
            }
            out.push(value);
        }
        out
    }

    /// One snapshot of the cache counters: hits, misses, live entries,
    /// LRU evictions, change invalidations, and the unbounded batch
    /// dispatch split (tree vs. per-pair fallback).
    pub fn stats(&self) -> CacheStats {
        let (tree_patches, tree_rebuilds) = self.backends.tree_maintenance();
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            entries: self.memo.len(),
            evictions: self.memo.evictions(),
            invalidated: self.invalidated,
            tree_sweeps: self.tree_sweeps,
            fallback_sweeps: self.fallback_sweeps,
            tree_patches,
            tree_rebuilds,
        }
    }

    /// Graph version of the Gomory–Hu backend's current tree, if one
    /// is built (diagnostics: lets tests assert the tree is rebuilt
    /// once per graph version, not once per sweep).
    pub fn tree_version(&self) -> Option<u64> {
        self.backends.tree_version()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bartercast_util::units::Seconds;

    fn p(i: u32) -> PeerId {
        PeerId(i)
    }

    fn engine_with_chain() -> ReputationEngine {
        // 2 -> 1 -> 0: peer 0 evaluates peer 2 through intermediary 1
        let mut e = ReputationEngine::new();
        e.graph_mut().add_transfer(p(2), p(1), Bytes::from_mb(300));
        e.graph_mut().add_transfer(p(1), p(0), Bytes::from_mb(200));
        e
    }

    fn hit_miss(e: &ReputationEngine) -> (u64, u64) {
        let s = e.stats();
        (s.hits, s.misses)
    }

    #[test]
    fn from_private_builds_both_directions() {
        let mut h = PrivateHistory::new(p(0));
        h.record_upload(p(1), Bytes::from_mb(100), Seconds(1));
        h.record_download(p(2), Bytes::from_mb(300), Seconds(2));
        let e = ReputationEngine::from_private(&h);
        assert_eq!(e.graph().edge(p(0), p(1)), Bytes::from_mb(100));
        assert_eq!(e.graph().edge(p(2), p(0)), Bytes::from_mb(300));
    }

    #[test]
    fn indirect_service_counts_but_is_limited() {
        let mut e = engine_with_chain();
        // maxflow(2 -> 0) = min(300, 200) = 200 MB through peer 1
        let (toward, away) = e.flows(p(0), p(2));
        assert_eq!(toward, Bytes::from_mb(200));
        assert_eq!(away, Bytes::ZERO);
        assert!(e.reputation(p(0), p(2)) > 0.0);
    }

    #[test]
    fn liar_constrained_by_receivers_incoming_edges() {
        // §3.4: maxflow(j, i) is bounded by i's incoming capacity,
        // which comes from i's own private history.
        let mut e = ReputationEngine::new();
        // I (peer 0) downloaded only 10 MB from peer 1 in total.
        e.graph_mut().add_transfer(p(1), p(0), Bytes::from_mb(10));
        // Liar (peer 9) claims it uploaded 100 GB to peer 1.
        e.graph_mut().merge_record(p(9), p(1), Bytes::from_gb(100));
        let (toward, _) = e.flows(p(0), p(9));
        assert!(
            toward <= Bytes::from_mb(10),
            "lie must be capped at {toward:?}"
        );
        let r = e.reputation(p(0), p(9));
        assert!(r < 0.02, "liar reputation barely moves: {r}");
    }

    #[test]
    fn self_reputation_is_zero() {
        let mut e = engine_with_chain();
        assert_eq!(e.reputation(p(0), p(0)), 0.0);
    }

    #[test]
    fn unknown_peer_is_neutral() {
        let mut e = engine_with_chain();
        assert_eq!(e.reputation(p(0), p(77)), 0.0);
    }

    #[test]
    fn cache_hits_until_graph_changes() {
        let mut e = engine_with_chain();
        let r1 = e.reputation(p(0), p(2));
        let r2 = e.reputation(p(0), p(2));
        assert_eq!(r1, r2);
        assert_eq!(hit_miss(&e), (1, 1));
        // mutate graph: cache must invalidate
        e.graph_mut().add_transfer(p(2), p(1), Bytes::from_gb(1));
        let r3 = e.reputation(p(0), p(2));
        assert_eq!(e.stats().misses, 2);
        assert!(r3 >= r1);
    }

    #[test]
    fn deployed_method_ignores_three_hop_paths() {
        let mut e = ReputationEngine::new();
        // 3 -> 2 -> 1 -> 0 (three hops)
        e.graph_mut().add_transfer(p(3), p(2), Bytes::from_gb(1));
        e.graph_mut().add_transfer(p(2), p(1), Bytes::from_gb(1));
        e.graph_mut().add_transfer(p(1), p(0), Bytes::from_gb(1));
        assert_eq!(e.reputation(p(0), p(3)), 0.0);
        let mut unbounded = e.clone().with_method(Method::Dinic);
        assert!(unbounded.reputation(p(0), p(3)) > 0.0);
    }

    #[test]
    fn batch_matches_per_pair_bitwise() {
        let mut batch = ReputationEngine::new();
        batch
            .graph_mut()
            .add_transfer(p(2), p(1), Bytes::from_mb(300));
        batch
            .graph_mut()
            .add_transfer(p(1), p(0), Bytes::from_mb(200));
        batch
            .graph_mut()
            .add_transfer(p(0), p(3), Bytes::from_gb(1));
        batch
            .graph_mut()
            .add_transfer(p(3), p(2), Bytes::from_mb(50));
        let mut per_pair = batch.clone();

        let targets = [p(0), p(1), p(2), p(3), p(77)];
        let rs = batch.reputations_from(p(0), &targets);
        for (&j, &r) in targets.iter().zip(&rs) {
            assert_eq!(
                r.to_bits(),
                per_pair.reputation(p(0), j).to_bits(),
                "R_0({j}) differs between batch and per-pair"
            );
        }
    }

    #[test]
    fn batch_falls_back_for_unbounded_methods() {
        let mut e = engine_with_chain().with_method(Method::Dinic);
        let mut per_pair = e.clone();
        let targets = [p(1), p(2)];
        let rs = e.reputations_from(p(0), &targets);
        for (&j, &r) in targets.iter().zip(&rs) {
            assert_eq!(r.to_bits(), per_pair.reputation(p(0), j).to_bits());
        }
    }

    #[test]
    fn batch_and_per_pair_share_cache_and_stats() {
        let mut e = engine_with_chain();
        // batch fills the cache: 2 misses (self-query is free)
        e.reputations_from(p(0), &[p(0), p(1), p(2)]);
        assert_eq!(hit_miss(&e), (0, 2));
        assert_eq!(e.stats().entries, 2);
        // per-pair queries now hit the batch-filled entries
        e.reputation(p(0), p(1));
        e.reputation(p(0), p(2));
        assert_eq!(hit_miss(&e), (2, 2));
        // and a second batch is pure hits
        e.reputations_from(p(0), &[p(1), p(2)]);
        assert_eq!(hit_miss(&e), (4, 2));
    }

    #[test]
    fn incremental_invalidation_keeps_untouched_entries() {
        let mut e = ReputationEngine::new();
        // two disjoint components: {0,1} and {5,6}
        e.graph_mut().add_transfer(p(1), p(0), Bytes::from_mb(100));
        e.graph_mut().add_transfer(p(6), p(5), Bytes::from_mb(100));
        e.reputation(p(0), p(1));
        e.reputation(p(5), p(6));
        assert_eq!(hit_miss(&e), (0, 2));
        // touching the {5,6} component must not evict the (0,1) entry
        e.graph_mut().add_transfer(p(6), p(5), Bytes::from_mb(1));
        e.reputation(p(0), p(1));
        assert_eq!(hit_miss(&e), (1, 2), "(0,1) must survive eviction");
        e.reputation(p(5), p(6));
        assert_eq!(hit_miss(&e), (1, 3), "(5,6) must be recomputed");
        assert_eq!(e.stats().invalidated, 1, "exactly the dirty entry dropped");
    }

    #[test]
    fn incremental_invalidation_never_serves_stale_values() {
        let mut e = engine_with_chain();
        let before = e.reputation(p(0), p(2));
        // strengthen the 2 -> 1 edge: flow(2 -> 0) rises from 200 MB
        // to min(1300, 200)... still 200 through 1 — so raise 1 -> 0 too
        e.graph_mut().add_transfer(p(2), p(1), Bytes::from_gb(1));
        e.graph_mut().add_transfer(p(1), p(0), Bytes::from_gb(1));
        let after = e.reputation(p(0), p(2));
        let mut fresh = ReputationEngine::new();
        fresh
            .graph_mut()
            .add_transfer(p(2), p(1), Bytes::from_mb(300));
        fresh
            .graph_mut()
            .add_transfer(p(1), p(0), Bytes::from_mb(200));
        fresh
            .graph_mut()
            .add_transfer(p(2), p(1), Bytes::from_gb(1));
        fresh
            .graph_mut()
            .add_transfer(p(1), p(0), Bytes::from_gb(1));
        assert_eq!(after.to_bits(), fresh.reputation(p(0), p(2)).to_bits());
        assert!(after > before);
    }

    #[test]
    fn long_sync_gaps_never_force_full_invalidation() {
        // the old flat change log truncated at 4096 entries and fell
        // back to clearing the whole cache; the journal reads per-node
        // change versions instead, so any gap length evicts precisely
        let mut e = ReputationEngine::new();
        e.graph_mut().add_transfer(p(1), p(0), Bytes::from_mb(100));
        e.graph_mut().add_transfer(p(6), p(5), Bytes::from_mb(100));
        e.reputation(p(0), p(1));
        for k in 0..(2 * DEFAULT_JOURNAL_CAPACITY as u64) {
            e.graph_mut().add_transfer(p(6), p(5), Bytes(k + 1));
        }
        e.reputation(p(0), p(1));
        assert_eq!(hit_miss(&e), (1, 1), "(0,1) must survive the distant churn");
    }

    #[test]
    fn k_hop_invalidation_is_scoped_to_the_ball() {
        // chain 5 -> 4 -> 3 -> 2 -> 1 -> 0 plus a disjoint pair 9 -> 8
        let mut e = ReputationEngine::new().with_method(Method::Bounded(3));
        for i in (1..=5).rev() {
            e.graph_mut()
                .add_transfer(p(i), p(i - 1), Bytes::from_mb(100));
        }
        e.graph_mut().add_transfer(p(9), p(8), Bytes::from_mb(100));
        e.reputation(p(0), p(3)); // within 3 hops: nonzero flow toward 0
        e.reputation(p(8), p(9));
        e.reputation(p(0), p(1));
        assert_eq!(e.stats().misses, 3);
        // touch the far end of the chain: dirty {4, 5}. The eviction
        // ball is every node *reaching* a dirty node within 3 hops —
        // along the chain's edge direction only 5 reaches 4, so the
        // ball is just {4, 5} and all three cached entries survive.
        e.graph_mut().add_transfer(p(5), p(4), Bytes::from_gb(1));
        e.reputation(p(8), p(9));
        e.reputation(p(0), p(1));
        assert_eq!(e.stats().hits, 2, "entries outside the ball survive");
        // neither 0 nor 3 reaches {4, 5}: the changed 5 -> 4 edge
        // cannot alter any flow from 0 or 3, and (0,3) survives
        e.reputation(p(0), p(3));
        assert_eq!(e.stats().hits, 3, "(0,3) outside the ball survives");
        assert_eq!(e.stats().invalidated, 0);
        // now touch 2 -> 1: dirty {1, 2}, ball = {1, 2, 3, 4, 5};
        // (0,3) must be evicted (3 in ball), (8,9) survives
        e.graph_mut().add_transfer(p(2), p(1), Bytes::from_gb(1));
        e.reputation(p(0), p(3));
        assert_eq!(e.stats().misses, 4, "(0,3) recomputed");
        e.reputation(p(8), p(9));
        assert_eq!(e.stats().hits, 4, "(8,9) still untouched");
        assert!(e.stats().invalidated >= 1);
    }

    #[test]
    fn k_hop_invalidation_never_serves_stale_values() {
        // deep chain where a distant-but-reachable change matters at
        // k = 4: 4 -> 3 -> 2 -> 1 -> 0 evaluated end to end
        let mut e = ReputationEngine::new().with_method(Method::Bounded(4));
        for i in (1..=4).rev() {
            e.graph_mut()
                .add_transfer(p(i), p(i - 1), Bytes::from_mb(50));
        }
        let before = e.reputation(p(0), p(4));
        // widen the bottleneck at the far end of the path
        e.graph_mut().add_transfer(p(4), p(3), Bytes::from_gb(1));
        e.graph_mut().add_transfer(p(3), p(2), Bytes::from_gb(1));
        e.graph_mut().add_transfer(p(2), p(1), Bytes::from_gb(1));
        e.graph_mut().add_transfer(p(1), p(0), Bytes::from_gb(1));
        let after = e.reputation(p(0), p(4));
        let mut fresh = ReputationEngine::new().with_method(Method::Bounded(4));
        *fresh.graph_mut() = e.graph().clone();
        assert_eq!(after.to_bits(), fresh.reputation(p(0), p(4)).to_bits());
        assert!(after > before);
    }

    #[test]
    fn unbounded_methods_clear_everything_on_change() {
        let mut e = ReputationEngine::new().with_method(Method::Dinic);
        e.graph_mut().add_transfer(p(1), p(0), Bytes::from_mb(100));
        e.graph_mut().add_transfer(p(6), p(5), Bytes::from_mb(100));
        e.reputation(p(0), p(1));
        // under Dinic a distant edge can matter, so any change clears
        e.graph_mut().add_transfer(p(6), p(5), Bytes::from_mb(1));
        e.reputation(p(0), p(1));
        assert_eq!(hit_miss(&e), (0, 2));
    }

    /// Symmetric diamond: every edge mirrored, so asymmetry is 0 and
    /// the Gomory–Hu batch backend is admissible at zero tolerance.
    fn engine_with_symmetric_diamond(method: Method) -> ReputationEngine {
        let mut e = ReputationEngine::new().with_method(method);
        for (a, b, mb) in [(0, 1, 100), (1, 2, 200), (0, 3, 50), (3, 2, 50)] {
            e.graph_mut().add_transfer(p(a), p(b), Bytes::from_mb(mb));
            e.graph_mut().add_transfer(p(b), p(a), Bytes::from_mb(mb));
        }
        e
    }

    fn sweep_split(e: &ReputationEngine) -> (u64, u64) {
        let s = e.stats();
        (s.tree_sweeps, s.fallback_sweeps)
    }

    #[test]
    fn tree_backend_matches_per_pair_on_symmetric_graphs() {
        let mut batch = engine_with_symmetric_diamond(Method::Dinic);
        let mut per_pair = batch.clone();
        let targets = [p(0), p(1), p(2), p(3), p(9)];
        let rs = batch.reputations_from(p(0), &targets);
        assert_eq!(sweep_split(&batch), (1, 0), "must use the tree");
        for (&j, &r) in targets.iter().zip(&rs) {
            assert_eq!(
                r.to_bits(),
                per_pair.reputation(p(0), j).to_bits(),
                "R_0({j}) differs between tree batch and per-pair Dinic"
            );
        }
    }

    #[test]
    fn asymmetric_graph_falls_back_to_per_pair() {
        // the chain is maximally asymmetric: zero tolerance rejects it
        let mut e = engine_with_chain().with_method(Method::Dinic);
        let mut per_pair = e.clone();
        let targets = [p(1), p(2)];
        let rs = e.reputations_from(p(0), &targets);
        assert_eq!(sweep_split(&e), (0, 1), "must fall back");
        for (&j, &r) in targets.iter().zip(&rs) {
            assert_eq!(r.to_bits(), per_pair.reputation(p(0), j).to_bits());
        }
    }

    #[test]
    fn tolerance_admits_near_symmetric_graphs() {
        let mut e = engine_with_symmetric_diamond(Method::Dinic).with_flow_tolerance(0.2);
        // one small one-way edge: asymmetric, but within tolerance
        e.graph_mut().add_transfer(p(1), p(3), Bytes::from_mb(10));
        assert!(e.graph().asymmetry() > 0.0);
        e.reputations_from(p(0), &[p(1), p(2)]);
        assert_eq!(sweep_split(&e), (1, 0));
        // but zero tolerance rejects the same graph
        let mut strict = e.clone().with_flow_tolerance(0.0);
        strict.reputations_from(p(0), &[p(1), p(2)]);
        assert_eq!(sweep_split(&strict), (1, 1));
    }

    #[test]
    fn full_sweep_memoization_makes_later_targets_hits() {
        // the sweep memoizes every reachable peer, not just requested
        // targets: asking for a *different* reachable target later must
        // be a pure cache hit
        let mut e = engine_with_chain();
        e.reputations_from(p(0), &[p(1)]);
        assert_eq!(hit_miss(&e), (0, 1));
        e.reputations_from(p(0), &[p(2)]);
        assert_eq!(
            hit_miss(&e),
            (1, 1),
            "peer 2 was memoized by the first sweep"
        );
        assert_eq!(
            e.reputation(p(0), p(2)).to_bits(),
            engine_with_chain().reputation(p(0), p(2)).to_bits()
        );
    }

    #[test]
    fn cache_budget_evicts_cold_entries_without_staleness() {
        let mut e = engine_with_chain().with_cache_budget(2);
        e.reputations_from(p(0), &[p(2)]); // sweep fills (0,1), (0,2)
        assert_eq!(e.stats().entries, 2);
        // evaluator 1's sweep fills (1,2), (1,0): both of evaluator 0's
        // now-coldest entries are evicted to hold the budget
        e.reputations_from(p(1), &[p(2)]);
        let s = e.stats();
        assert_eq!(s.entries, 2, "budget must hold");
        assert_eq!(s.evictions, 2);
        // re-querying recomputes the same value — eviction is never stale
        let misses_before = e.stats().misses;
        let r = e.reputation(p(0), p(2));
        assert_eq!(e.stats().misses, misses_before + 1, "entry was evicted");
        assert_eq!(
            r.to_bits(),
            engine_with_chain().reputation(p(0), p(2)).to_bits()
        );
    }

    #[test]
    fn per_entry_lru_keeps_hot_entries_alive() {
        // whole-evaluator eviction would drop (0,2) along with the rest
        // of evaluator 0's entries when evaluator 1 sweeps; per-entry
        // recency keeps the hot pair and sheds only the cold one
        let mut e = engine_with_chain().with_cache_budget(3);
        e.reputations_from(p(0), &[p(1)]); // fills (0,1), (0,2)
        e.reputation(p(0), p(2)); // hit: (0,2) is now the hottest entry
        let hits_before = e.stats().hits;
        e.reputations_from(p(1), &[p(0)]); // fills (1,*): one eviction
        assert_eq!(e.stats().evictions, 1);
        e.reputation(p(0), p(2));
        assert_eq!(
            e.stats().hits,
            hits_before + 1,
            "hot entry survived the churn"
        );
    }

    #[test]
    fn tree_rebuild_only_on_version_change() {
        let mut e = engine_with_symmetric_diamond(Method::Dinic);
        e.reputations_from(p(0), &[p(2)]);
        let v1 = e.tree_version().expect("tree built by sweep");
        // graph unchanged: a sweep from another evaluator reuses the
        // same tree instead of paying n − 1 Dinic runs again
        e.reputations_from(p(1), &[p(2)]);
        assert_eq!(e.tree_version(), Some(v1));
        assert_eq!(sweep_split(&e), (2, 0));
        // symmetric mutation: the version moves and the next sweep
        // rebuilds (PR 1's version-based invalidation, reused here)
        e.graph_mut().add_transfer(p(0), p(2), Bytes::from_gb(1));
        e.graph_mut().add_transfer(p(2), p(0), Bytes::from_gb(1));
        e.reputations_from(p(0), &[p(2)]);
        let v2 = e.tree_version().unwrap();
        assert!(v2 > v1, "tree must track the graph version: {v1} -> {v2}");
        assert_eq!(sweep_split(&e), (3, 0));
    }

    #[test]
    fn absorb_message_roundtrip() {
        let mut h = PrivateHistory::new(p(5));
        h.record_upload(p(6), Bytes::from_mb(42), Seconds(1));
        let msg = BarterCastMessage::from_history(&h, Default::default());
        let mut e = ReputationEngine::new();
        assert!(e.absorb_message(&msg) > 0);
        assert_eq!(e.graph().edge(p(5), p(6)), Bytes::from_mb(42));
    }
}

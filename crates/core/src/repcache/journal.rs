//! The change journal: a per-node dirty bitmap between `sync()` calls.
//!
//! The engine's memo cache is evicted incrementally: for path-length
//! bounds ≤ 2, a changed edge `(a, b)` can only alter the entry
//! `(i, j)` when `i` or `j` is an endpoint of the change, so eviction
//! needs exactly the set of *dirty nodes* since the last sync (for
//! finite bounds `k ≥ 3` the engine widens that seed set to the k-hop
//! dirty neighbourhood via [`ChangeJournal::dirty_nodes`]). The
//! first version of this machinery read that set from a flat change
//! log capped at 4096 entries, and a reader that fell further behind
//! had to clear its whole cache. The journal replaces that: it pulls
//! the graph's per-node last-changed versions (which never truncate)
//! and folds them into a dense bitmap, so arbitrarily long gaps
//! between syncs still evict precisely, and the per-entry dirty test
//! during eviction is two bit probes instead of two hash lookups.
//!
//! The same per-node dirty information (read straight off the graph's
//! `dirty_nodes_since`) now also drives incremental Gomory–Hu
//! maintenance: `GomoryHuTree::patch` reuses every stored min cut that
//! no dirty node crosses, by the same monotone-edge-growth argument
//! the k-hop widening leans on. `CacheStats::tree_patches` /
//! `tree_rebuilds` report how often the patch path wins.

use bartercast_graph::ContributionGraph;
use bartercast_util::units::PeerId;
use bartercast_util::FxHashMap;

/// Default number of node slots the journal pre-allocates bitmap
/// space for. Chosen to match the capacity of the flat change-log
/// deque this structure replaced; unlike that cap it is **not** a
/// correctness boundary — the journal grows past it without losing
/// precision (growth just reallocates the bitmap).
pub const DEFAULT_JOURNAL_CAPACITY: usize = 4096;

/// Bits per bitmap word (the journal packs one dirty bit per node
/// slot into `u64` words).
pub const JOURNAL_WORD_BITS: usize = 64;

/// A per-node dirty bitmap accumulated from the graph's change
/// tracking.
///
/// Node slots are assigned on first sighting and stable for the
/// journal's lifetime, so repeated sync cycles reuse the same bit
/// positions and [`ChangeJournal::clear`] is a word-fill, not a
/// rebuild.
#[derive(Debug, Clone)]
pub struct ChangeJournal {
    /// Stable dense bit index per node ever seen dirty.
    slots: FxHashMap<PeerId, u32>,
    /// The dirty bitmap, one bit per slot.
    words: Vec<u64>,
    /// Number of nodes currently marked dirty.
    dirty: usize,
}

impl Default for ChangeJournal {
    fn default() -> Self {
        Self::new()
    }
}

impl ChangeJournal {
    /// A journal pre-sized for [`DEFAULT_JOURNAL_CAPACITY`] nodes.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_JOURNAL_CAPACITY)
    }

    /// A journal pre-sized for `nodes` node slots. Purely an
    /// allocation hint: the journal grows beyond it as needed.
    pub fn with_capacity(nodes: usize) -> Self {
        ChangeJournal {
            slots: FxHashMap::default(),
            words: vec![0; nodes.div_ceil(JOURNAL_WORD_BITS)],
            dirty: 0,
        }
    }

    /// Mark `node` dirty.
    pub fn mark(&mut self, node: PeerId) {
        let next = self.slots.len() as u32;
        let slot = *self.slots.entry(node).or_insert(next) as usize;
        let word = slot / JOURNAL_WORD_BITS;
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        let bit = 1u64 << (slot % JOURNAL_WORD_BITS);
        if self.words[word] & bit == 0 {
            self.words[word] |= bit;
            self.dirty += 1;
        }
    }

    /// Fold every node the graph changed after version `since` into
    /// the bitmap.
    pub fn absorb(&mut self, graph: &ContributionGraph, since: u64) {
        for node in graph.dirty_nodes_since(since) {
            self.mark(node);
        }
    }

    /// Whether `node` is currently marked dirty.
    pub fn is_dirty(&self, node: PeerId) -> bool {
        match self.slots.get(&node) {
            Some(&slot) => {
                let slot = slot as usize;
                self.words[slot / JOURNAL_WORD_BITS] & (1 << (slot % JOURNAL_WORD_BITS)) != 0
            }
            None => false,
        }
    }

    /// Number of nodes currently marked dirty.
    pub fn dirty_count(&self) -> usize {
        self.dirty
    }

    /// Iterate the nodes currently marked dirty (the seed set for the
    /// k-hop neighbourhood eviction used by finite bounds `k ≥ 3`).
    pub fn dirty_nodes(&self) -> impl Iterator<Item = PeerId> + '_ {
        self.slots.iter().filter_map(|(&node, &slot)| {
            let slot = slot as usize;
            let set = self.words[slot / JOURNAL_WORD_BITS] & (1 << (slot % JOURNAL_WORD_BITS));
            (set != 0).then_some(node)
        })
    }

    /// Node slots the bitmap currently covers without reallocating.
    pub fn capacity(&self) -> usize {
        self.words.len() * JOURNAL_WORD_BITS
    }

    /// Reset every dirty bit (slot assignments are kept, so the next
    /// cycle reuses them).
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.dirty = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bartercast_util::units::Bytes;

    fn p(i: u32) -> PeerId {
        PeerId(i)
    }

    #[test]
    fn marks_and_clears() {
        let mut j = ChangeJournal::with_capacity(0);
        assert!(!j.is_dirty(p(3)));
        j.mark(p(3));
        j.mark(p(3));
        assert!(j.is_dirty(p(3)));
        assert_eq!(j.dirty_count(), 1);
        j.clear();
        assert!(!j.is_dirty(p(3)));
        assert_eq!(j.dirty_count(), 0);
        // slot survives the clear and is reused
        j.mark(p(3));
        assert_eq!(j.dirty_count(), 1);
    }

    #[test]
    fn grows_past_initial_capacity() {
        let mut j = ChangeJournal::with_capacity(JOURNAL_WORD_BITS);
        for i in 0..(JOURNAL_WORD_BITS as u32 * 3) {
            j.mark(p(i));
        }
        assert_eq!(j.dirty_count(), JOURNAL_WORD_BITS * 3);
        assert!(j.capacity() >= JOURNAL_WORD_BITS * 3);
    }

    #[test]
    fn absorb_tracks_graph_changes_exactly() {
        let mut g = ContributionGraph::new();
        g.add_transfer(p(5), p(6), Bytes(1));
        let since = g.version();
        // far beyond the old 4096-entry change-log cap
        for i in 0..10_000u64 {
            g.add_transfer(p(1), p(2), Bytes(i + 1));
        }
        let mut j = ChangeJournal::new();
        j.absorb(&g, since);
        assert!(j.is_dirty(p(1)) && j.is_dirty(p(2)));
        assert!(
            !j.is_dirty(p(5)) && !j.is_dirty(p(6)),
            "clean nodes stay clean"
        );
        assert_eq!(j.dirty_count(), 2);
    }

    #[test]
    fn dirty_nodes_iterates_exactly_the_marked_set() {
        let mut j = ChangeJournal::with_capacity(0);
        assert_eq!(j.dirty_nodes().count(), 0);
        j.mark(p(3));
        j.mark(p(9));
        j.mark(p(3));
        let mut dirty: Vec<u32> = j.dirty_nodes().map(|n| n.0).collect();
        dirty.sort_unstable();
        assert_eq!(dirty, vec![3, 9]);
        j.clear();
        assert_eq!(j.dirty_nodes().count(), 0, "clear empties the view");
        // slots persist across clear but stay invisible until re-marked
        j.mark(p(9));
        assert_eq!(j.dirty_nodes().collect::<Vec<_>>(), vec![p(9)]);
    }
}

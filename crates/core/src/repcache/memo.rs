//! The memo cache: per-entry LRU over `(evaluator, target)`
//! reputations.
//!
//! Replaces the previous whole-evaluator idle eviction (one recency
//! stamp per evaluator, evicting every entry an idle evaluator owned)
//! with a per-entry intrusive age list: each `get` moves the entry to
//! the front, each insert past the budget evicts from the back. Under
//! adversarial query mixes — one hot pair amid huge sweeps from other
//! evaluators — the hot entry now survives on its own recency instead
//! of drowning with its evaluator.
//!
//! Eviction is purely a memory/perf decision and can never produce a
//! stale value: entries are only ever valid at the engine's current
//! graph version (on `sync` the journal evicts entries whose pair
//! touches a dirty endpoint for `k ≤ 2`, or the k-hop dirty
//! neighbourhood for finite `k ≥ 3`), so dropping one merely forces a
//! recompute of the identical value.

use bartercast_util::units::PeerId;
use bartercast_util::FxHashMap;

/// Default ceiling on memoized `(evaluator, target)` entries before
/// LRU eviction kicks in (see `ReputationEngine::with_cache_budget`).
pub const DEFAULT_CACHE_BUDGET: usize = 1 << 20;

/// Sentinel link for the intrusive list ends.
const NIL: u32 = u32::MAX;

/// One cache entry: the memoized value plus its age-list links.
#[derive(Debug, Clone, Copy)]
struct Entry {
    key: (PeerId, PeerId),
    value: f64,
    /// Age-list neighbour toward the most-recently-used end.
    newer: u32,
    /// Age-list neighbour toward the least-recently-used end.
    older: u32,
}

/// A bounded memo map with an intrusive LRU age list.
///
/// Entries live in a slab (`entries` + `free`); the hash map holds
/// slab indices, and the doubly-linked age list threads through the
/// slab so touch/evict are O(1) with no per-operation allocation.
#[derive(Debug, Clone)]
pub struct MemoCache {
    map: FxHashMap<(PeerId, PeerId), u32>,
    entries: Vec<Entry>,
    free: Vec<u32>,
    /// Most recently used entry, or `NIL` when empty.
    head: u32,
    /// Least recently used entry, or `NIL` when empty.
    tail: u32,
    budget: usize,
    evictions: u64,
}

impl Default for MemoCache {
    fn default() -> Self {
        Self::new(DEFAULT_CACHE_BUDGET)
    }
}

impl MemoCache {
    /// An empty cache holding at most `budget` entries.
    pub fn new(budget: usize) -> Self {
        MemoCache {
            map: FxHashMap::default(),
            entries: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            budget,
            evictions: 0,
        }
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Entries evicted by the budget since construction.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Current entry budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Change the budget, evicting immediately if the cache is over
    /// the new ceiling.
    pub fn set_budget(&mut self, budget: usize) {
        self.budget = budget;
        while self.map.len() > self.budget {
            self.evict_tail();
        }
    }

    /// Look up without touching recency (used when deciding whether a
    /// sweep still needs to fill an entry).
    pub fn peek(&self, key: &(PeerId, PeerId)) -> Option<f64> {
        self.map.get(key).map(|&i| self.entries[i as usize].value)
    }

    /// Look up and mark the entry most recently used.
    pub fn get(&mut self, key: &(PeerId, PeerId)) -> Option<f64> {
        let &idx = self.map.get(key)?;
        self.unlink(idx);
        self.link_front(idx);
        Some(self.entries[idx as usize].value)
    }

    /// Insert (or refresh) an entry at the most-recently-used end,
    /// evicting from the least-recently-used end while over budget.
    /// With a zero budget the inserted entry itself is evicted — the
    /// caller must not rely on reading an entry back after insert.
    pub fn insert(&mut self, key: (PeerId, PeerId), value: f64) {
        if let Some(&idx) = self.map.get(&key) {
            self.entries[idx as usize].value = value;
            self.unlink(idx);
            self.link_front(idx);
            return;
        }
        let idx = match self.free.pop() {
            Some(i) => {
                self.entries[i as usize] = Entry {
                    key,
                    value,
                    newer: NIL,
                    older: NIL,
                };
                i
            }
            None => {
                self.entries.push(Entry {
                    key,
                    value,
                    newer: NIL,
                    older: NIL,
                });
                (self.entries.len() - 1) as u32
            }
        };
        self.map.insert(key, idx);
        self.link_front(idx);
        while self.map.len() > self.budget {
            self.evict_tail();
        }
    }

    /// Drop every entry failing the predicate (the journal's dirty
    /// eviction). Returns how many entries were removed.
    pub fn retain(&mut self, mut keep: impl FnMut(&(PeerId, PeerId)) -> bool) -> usize {
        let mut removed = 0;
        let mut idx = self.head;
        while idx != NIL {
            let next = self.entries[idx as usize].older;
            if !keep(&self.entries[idx as usize].key) {
                self.remove_index(idx);
                removed += 1;
            }
            idx = next;
        }
        removed
    }

    /// Drop everything.
    pub fn clear(&mut self) {
        self.map.clear();
        self.entries.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    fn evict_tail(&mut self) {
        let idx = self.tail;
        debug_assert_ne!(idx, NIL, "evict from empty cache");
        self.remove_index(idx);
        self.evictions += 1;
    }

    fn remove_index(&mut self, idx: u32) {
        self.unlink(idx);
        let key = self.entries[idx as usize].key;
        self.map.remove(&key);
        self.free.push(idx);
    }

    fn unlink(&mut self, idx: u32) {
        let Entry { newer, older, .. } = self.entries[idx as usize];
        match newer {
            NIL => {
                if self.head == idx {
                    self.head = older;
                }
            }
            n => self.entries[n as usize].older = older,
        }
        match older {
            NIL => {
                if self.tail == idx {
                    self.tail = newer;
                }
            }
            o => self.entries[o as usize].newer = newer,
        }
        self.entries[idx as usize].newer = NIL;
        self.entries[idx as usize].older = NIL;
    }

    fn link_front(&mut self, idx: u32) {
        self.entries[idx as usize].older = self.head;
        self.entries[idx as usize].newer = NIL;
        if self.head != NIL {
            self.entries[self.head as usize].newer = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(a: u32, b: u32) -> (PeerId, PeerId) {
        (PeerId(a), PeerId(b))
    }

    #[test]
    fn insert_get_peek() {
        let mut c = MemoCache::new(8);
        c.insert(k(0, 1), 0.5);
        assert_eq!(c.peek(&k(0, 1)), Some(0.5));
        assert_eq!(c.get(&k(0, 1)), Some(0.5));
        assert_eq!(c.get(&k(1, 0)), None);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn lru_evicts_oldest_first() {
        let mut c = MemoCache::new(2);
        c.insert(k(0, 1), 1.0);
        c.insert(k(0, 2), 2.0);
        c.insert(k(0, 3), 3.0); // evicts (0,1)
        assert_eq!(c.peek(&k(0, 1)), None);
        assert_eq!(c.peek(&k(0, 2)), Some(2.0));
        assert_eq!(c.evictions(), 1);
    }

    #[test]
    fn get_refreshes_recency() {
        let mut c = MemoCache::new(2);
        c.insert(k(0, 1), 1.0);
        c.insert(k(0, 2), 2.0);
        c.get(&k(0, 1)); // (0,2) is now the LRU entry
        c.insert(k(0, 3), 3.0);
        assert_eq!(c.peek(&k(0, 1)), Some(1.0), "touched entry survives");
        assert_eq!(c.peek(&k(0, 2)), None);
    }

    #[test]
    fn zero_budget_holds_nothing() {
        let mut c = MemoCache::new(0);
        c.insert(k(0, 1), 1.0);
        assert_eq!(c.len(), 0);
        assert_eq!(c.peek(&k(0, 1)), None);
    }

    #[test]
    fn retain_unlinks_cleanly() {
        let mut c = MemoCache::new(8);
        for t in 1..=5 {
            c.insert(k(0, t), t as f64);
        }
        let removed = c.retain(|&(_, t)| t.0 % 2 == 1);
        assert_eq!(removed, 2);
        assert_eq!(c.len(), 3);
        // the age list is still consistent: evict everything via budget
        c.set_budget(0);
        assert_eq!(c.len(), 0);
        // and reusable afterwards
        c.set_budget(4);
        c.insert(k(9, 9), 9.0);
        assert_eq!(c.get(&k(9, 9)), Some(9.0));
    }

    #[test]
    fn reinsert_updates_in_place() {
        let mut c = MemoCache::new(4);
        c.insert(k(0, 1), 1.0);
        c.insert(k(0, 1), 2.0);
        assert_eq!(c.len(), 1);
        assert_eq!(c.peek(&k(0, 1)), Some(2.0));
    }
}

//! Identities and whitewashing countermeasures (§3.5).
//!
//! BarterCast assumes the client can create a **machine-dependent
//! permanent identifier** that takes considerable skill to change (as
//! the Tribler client does). This module models that assumption and
//! the two §3.5 countermeasures for when it is violated:
//!
//! * a **static newcomer penalty** applied to peers never seen before,
//!   and
//! * an **adaptive stranger policy** that sets the newcomer penalty to
//!   the (smoothed) average reputation of recently observed newcomers —
//!   if newcomers historically behave badly (e.g. they are mostly
//!   whitewashers), strangers start with correspondingly low standing.

use bartercast_util::units::PeerId;
use bartercast_util::FxHashMap;

/// A machine-dependent permanent identifier (opaque 64-bit token in
/// the simulator; in Tribler this is derived from the installation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MachineId(pub u64);

/// Maps machine identifiers to peer identities and tracks how often a
/// machine re-registers (a whitewashing signal).
///
/// ```
/// use bartercast_core::identity::{IdentityRegistry, MachineId};
///
/// let mut reg = IdentityRegistry::new();
/// let id = reg.identity(MachineId(1234));
/// assert_eq!(reg.identity(MachineId(1234)), id); // permanent
/// let fresh = reg.whitewash(MachineId(1234), MachineId(9999));
/// assert_ne!(fresh, id); // but a wiped client starts over
/// ```
#[derive(Debug, Clone, Default)]
pub struct IdentityRegistry {
    by_machine: FxHashMap<MachineId, PeerId>,
    registrations: FxHashMap<MachineId, u32>,
    next_id: u32,
}

impl IdentityRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The permanent identity for `machine`, allocated on first sight.
    /// Repeated calls return the same [`PeerId`] — identities are
    /// permanent as long as the machine id is stable.
    pub fn identity(&mut self, machine: MachineId) -> PeerId {
        if let Some(&id) = self.by_machine.get(&machine) {
            return id;
        }
        let id = PeerId(self.next_id);
        self.next_id += 1;
        self.by_machine.insert(machine, id);
        *self.registrations.entry(machine).or_insert(0) += 1;
        id
    }

    /// Model a whitewash attempt: the user wipes the client so the
    /// machine presents a fresh identifier. Returns the new identity.
    pub fn whitewash(&mut self, old: MachineId, fresh: MachineId) -> PeerId {
        self.by_machine.remove(&old);
        self.identity(fresh)
    }

    /// Number of identities ever allocated.
    pub fn allocated(&self) -> u32 {
        self.next_id
    }

    /// True iff this machine currently has an identity.
    pub fn knows(&self, machine: MachineId) -> bool {
        self.by_machine.contains_key(&machine)
    }
}

/// Newcomer treatment (§3.5): what reputation a never-seen peer starts
/// with.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StrangerPolicy {
    /// Newcomers start neutral (the deployed BarterCast behaviour —
    /// strong identities make whitewashing expensive).
    Neutral,
    /// Newcomers start at a fixed penalty.
    StaticPenalty(f64),
    /// Newcomers start at the smoothed average reputation of past
    /// newcomers ("adaptive stranger policy").
    Adaptive {
        /// Exponential smoothing factor in `(0, 1]`.
        alpha: f64,
    },
}

/// Tracks the adaptive-stranger estimate.
#[derive(Debug, Clone)]
pub struct StrangerEstimator {
    policy: StrangerPolicy,
    estimate: f64,
    observations: u64,
}

impl StrangerEstimator {
    /// Create an estimator for the given policy.
    pub fn new(policy: StrangerPolicy) -> Self {
        StrangerEstimator {
            policy,
            estimate: 0.0,
            observations: 0,
        }
    }

    /// The reputation to assume for a brand-new peer right now.
    pub fn stranger_reputation(&self) -> f64 {
        match self.policy {
            StrangerPolicy::Neutral => 0.0,
            StrangerPolicy::StaticPenalty(p) => p,
            StrangerPolicy::Adaptive { .. } => self.estimate,
        }
    }

    /// Report the eventual observed reputation of a peer that joined
    /// as a stranger; feeds the adaptive estimate.
    pub fn observe_newcomer(&mut self, eventual_reputation: f64) {
        self.observations += 1;
        if let StrangerPolicy::Adaptive { alpha } = self.policy {
            if self.observations == 1 {
                self.estimate = eventual_reputation;
            } else {
                self.estimate = alpha * eventual_reputation + (1.0 - alpha) * self.estimate;
            }
        }
    }

    /// Newcomers observed so far.
    pub fn observations(&self) -> u64 {
        self.observations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_permanent() {
        let mut reg = IdentityRegistry::new();
        let a = reg.identity(MachineId(111));
        let b = reg.identity(MachineId(111));
        assert_eq!(a, b);
        assert_eq!(reg.allocated(), 1);
    }

    #[test]
    fn distinct_machines_distinct_identities() {
        let mut reg = IdentityRegistry::new();
        let a = reg.identity(MachineId(1));
        let b = reg.identity(MachineId(2));
        assert_ne!(a, b);
    }

    #[test]
    fn whitewash_allocates_fresh_identity() {
        let mut reg = IdentityRegistry::new();
        let old = reg.identity(MachineId(1));
        let fresh = reg.whitewash(MachineId(1), MachineId(999));
        assert_ne!(old, fresh);
        assert!(!reg.knows(MachineId(1)));
        assert!(reg.knows(MachineId(999)));
        assert_eq!(reg.allocated(), 2);
    }

    #[test]
    fn neutral_policy_gives_zero() {
        let mut e = StrangerEstimator::new(StrangerPolicy::Neutral);
        assert_eq!(e.stranger_reputation(), 0.0);
        e.observe_newcomer(-0.8);
        assert_eq!(e.stranger_reputation(), 0.0);
    }

    #[test]
    fn static_penalty_is_constant() {
        let e = StrangerEstimator::new(StrangerPolicy::StaticPenalty(-0.3));
        assert_eq!(e.stranger_reputation(), -0.3);
    }

    #[test]
    fn adaptive_tracks_newcomer_behaviour() {
        let mut e = StrangerEstimator::new(StrangerPolicy::Adaptive { alpha: 0.5 });
        assert_eq!(e.stranger_reputation(), 0.0);
        e.observe_newcomer(-0.8);
        assert_eq!(e.stranger_reputation(), -0.8);
        e.observe_newcomer(0.0);
        assert!((e.stranger_reputation() + 0.4).abs() < 1e-12);
        assert_eq!(e.observations(), 2);
        // a stream of well-behaved newcomers pulls the estimate back up
        for _ in 0..20 {
            e.observe_newcomer(0.5);
        }
        assert!(e.stranger_reputation() > 0.4);
    }
}

//! Binary wire codec for BarterCast messages.
//!
//! A compact hand-rolled format over the `bytes` crate (serde binary
//! formats like bincode are outside the allowed dependency set):
//!
//! ```text
//! [magic u8 = 0xBC] [version u8 = 1] [sender u32 LE]
//! [record count u16 LE]
//! repeated: [peer u32 LE] [up u64 LE] [down u64 LE]
//! ```
//!
//! Decoding is defensive — any truncation, bad magic, or unsupported
//! version yields a typed error instead of a panic, since messages
//! arrive from untrusted peers.
//!
//! For byte-stream transports (the node runtime's TCP sessions), the
//! message body above travels inside a length-delimited frame:
//!
//! ```text
//! [length u32 LE] [payload: length bytes]
//! ```
//!
//! [`FrameDecoder`] reassembles such frames incrementally from
//! arbitrarily fragmented reads — one byte at a time is fine — and
//! rejects any frame whose claimed length exceeds its cap *before*
//! buffering the payload, so a hostile length prefix can neither panic
//! nor force an unbounded allocation.

use crate::message::{BarterCastMessage, TransferRecord};
use bartercast_util::units::{Bytes, PeerId};
use bytes::{Buf, BufMut, BytesMut};
use std::fmt;

/// Magic byte opening every BarterCast frame.
pub const MAGIC: u8 = 0xBC;
/// Current wire version.
pub const VERSION: u8 = 1;
/// Upper bound on records per message (a frame claiming more is
/// rejected before any allocation).
pub const MAX_RECORDS: usize = 1024;

/// Upper bound on a stream frame's payload, in bytes. A full-size
/// message body is `8 + 20 ·`[`MAX_RECORDS`]` = 20488` bytes; the cap
/// leaves room for small envelope overheads layered on top (the node
/// runtime prepends a one-byte frame kind) while still rejecting
/// hostile length prefixes long before any large allocation.
pub const MAX_FRAME_BYTES: usize = 32 * 1024;

/// Decoding failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Frame shorter than its headers/payload claim.
    Truncated,
    /// First byte was not [`MAGIC`].
    BadMagic(u8),
    /// Unsupported version byte.
    BadVersion(u8),
    /// Record count exceeded [`MAX_RECORDS`].
    TooManyRecords(usize),
    /// A stream frame's length prefix exceeded the decoder's cap.
    FrameTooLarge(usize),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "truncated frame"),
            DecodeError::BadMagic(b) => write!(f, "bad magic byte 0x{b:02x}"),
            DecodeError::BadVersion(v) => write!(f, "unsupported version {v}"),
            DecodeError::TooManyRecords(n) => write!(f, "record count {n} exceeds maximum"),
            DecodeError::FrameTooLarge(n) => write!(f, "frame length {n} exceeds maximum"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Serialize a message into a fresh buffer.
///
/// ```
/// use bartercast_core::{codec, BarterCastConfig, BarterCastMessage, PrivateHistory};
/// use bartercast_util::units::{Bytes, PeerId, Seconds};
///
/// let mut h = PrivateHistory::new(PeerId(7));
/// h.record_upload(PeerId(1), Bytes::from_mb(5), Seconds(1));
/// let msg = BarterCastMessage::from_history(&h, BarterCastConfig::default());
/// let frame = codec::encode(&msg);
/// assert_eq!(codec::decode(&frame).unwrap(), msg);
/// ```
pub fn encode(msg: &BarterCastMessage) -> BytesMut {
    let mut buf = BytesMut::with_capacity(8 + msg.records.len() * 20);
    buf.put_u8(MAGIC);
    buf.put_u8(VERSION);
    buf.put_u32_le(msg.sender.0);
    debug_assert!(msg.records.len() <= MAX_RECORDS);
    buf.put_u16_le(msg.records.len() as u16);
    for r in &msg.records {
        buf.put_u32_le(r.peer.0);
        buf.put_u64_le(r.up.0);
        buf.put_u64_le(r.down.0);
    }
    buf
}

/// Parse a frame produced by [`encode`].
pub fn decode(mut buf: &[u8]) -> Result<BarterCastMessage, DecodeError> {
    if buf.remaining() < 8 {
        return Err(DecodeError::Truncated);
    }
    let magic = buf.get_u8();
    if magic != MAGIC {
        return Err(DecodeError::BadMagic(magic));
    }
    let version = buf.get_u8();
    if version != VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    let sender = PeerId(buf.get_u32_le());
    let count = buf.get_u16_le() as usize;
    if count > MAX_RECORDS {
        return Err(DecodeError::TooManyRecords(count));
    }
    if buf.remaining() < count * 20 {
        return Err(DecodeError::Truncated);
    }
    let mut records = Vec::with_capacity(count);
    for _ in 0..count {
        records.push(TransferRecord {
            peer: PeerId(buf.get_u32_le()),
            up: Bytes(buf.get_u64_le()),
            down: Bytes(buf.get_u64_le()),
        });
    }
    Ok(BarterCastMessage { sender, records })
}

/// Wrap an arbitrary payload in a stream frame: `[len u32 LE][payload]`.
///
/// Panics (debug assertion) if the payload exceeds
/// [`MAX_FRAME_BYTES`]; callers build payloads from bounded messages,
/// so this cannot happen for well-formed traffic.
pub fn frame(payload: &[u8]) -> BytesMut {
    debug_assert!(payload.len() <= MAX_FRAME_BYTES);
    let mut buf = BytesMut::with_capacity(4 + payload.len());
    buf.put_u32_le(payload.len() as u32);
    buf.put_slice(payload);
    buf
}

/// Encode a message and wrap it in a stream frame in one step.
pub fn encode_framed(msg: &BarterCastMessage) -> BytesMut {
    frame(&encode(msg))
}

/// Incremental decoder for length-delimited stream frames.
///
/// Feed it whatever fragments a byte-stream transport yields —
/// including single bytes — and pull complete frame payloads out as
/// they become available. A length prefix exceeding the cap is
/// rejected as soon as the four length bytes arrive, before the
/// payload is buffered, so a hostile prefix cannot force an unbounded
/// allocation. After any error the decoder is *poisoned* (the stream
/// position is no longer trustworthy) and every further call returns
/// the same error: the only safe recovery is dropping the connection.
///
/// ```
/// use bartercast_core::codec::{self, FrameDecoder};
/// use bartercast_core::BarterCastMessage;
/// use bartercast_util::units::PeerId;
///
/// let msg = BarterCastMessage { sender: PeerId(7), records: vec![] };
/// let wire = codec::encode_framed(&msg);
/// let mut dec = FrameDecoder::new();
/// // bytes arrive one at a time; the message pops out exactly once
/// let mut out = Vec::new();
/// for b in wire.iter() {
///     dec.feed(&[*b]);
///     while let Some(m) = dec.next_message().unwrap() {
///         out.push(m);
///     }
/// }
/// assert_eq!(out, vec![msg]);
/// ```
#[derive(Debug, Clone)]
pub struct FrameDecoder {
    /// Unconsumed stream bytes; `read` marks how far frames have been
    /// drained (compacted opportunistically to keep the buffer small).
    buf: Vec<u8>,
    read: usize,
    max_frame: usize,
    poisoned: Option<DecodeError>,
}

impl Default for FrameDecoder {
    fn default() -> Self {
        Self::new()
    }
}

impl FrameDecoder {
    /// A decoder capped at [`MAX_FRAME_BYTES`] per frame.
    pub fn new() -> Self {
        Self::with_max_frame(MAX_FRAME_BYTES)
    }

    /// A decoder with a custom per-frame payload cap (tests and
    /// transports with tighter budgets).
    pub fn with_max_frame(max_frame: usize) -> Self {
        FrameDecoder {
            buf: Vec::new(),
            read: 0,
            max_frame,
            poisoned: None,
        }
    }

    /// Append raw stream bytes. Fragmentation is arbitrary: frames may
    /// span many feeds, and one feed may carry many frames.
    pub fn feed(&mut self, bytes: &[u8]) {
        if self.poisoned.is_some() {
            // a poisoned stream is dead; don't let its remnants grow
            return;
        }
        // compact before growing: drained frames never need replaying
        if self.read > 0 && (self.read == self.buf.len() || self.read >= 4096) {
            self.buf.drain(..self.read);
            self.read = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet drained as frames.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.read
    }

    /// The next complete frame payload, `Ok(None)` while more bytes
    /// are needed, or the poisoning error.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, DecodeError> {
        if let Some(e) = &self.poisoned {
            return Err(e.clone());
        }
        let pending = &self.buf[self.read..];
        if pending.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes([pending[0], pending[1], pending[2], pending[3]]) as usize;
        if len > self.max_frame {
            let err = DecodeError::FrameTooLarge(len);
            self.poisoned = Some(err.clone());
            self.buf.clear();
            self.read = 0;
            return Err(err);
        }
        if pending.len() < 4 + len {
            return Ok(None);
        }
        let payload = pending[4..4 + len].to_vec();
        self.read += 4 + len;
        Ok(Some(payload))
    }

    /// The next complete frame decoded as a [`BarterCastMessage`].
    /// Malformed payloads poison the decoder like a bad length prefix:
    /// the framing may be intact, but the peer is speaking garbage.
    pub fn next_message(&mut self) -> Result<Option<BarterCastMessage>, DecodeError> {
        match self.next_frame()? {
            None => Ok(None),
            Some(payload) => match decode(&payload) {
                Ok(msg) => Ok(Some(msg)),
                Err(e) => {
                    self.poisoned = Some(e.clone());
                    self.buf.clear();
                    self.read = 0;
                    Err(e)
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BarterCastMessage {
        BarterCastMessage {
            sender: PeerId(42),
            records: vec![
                TransferRecord {
                    peer: PeerId(1),
                    up: Bytes::from_mb(100),
                    down: Bytes::from_mb(5),
                },
                TransferRecord {
                    peer: PeerId(7),
                    up: Bytes::ZERO,
                    down: Bytes::from_gb(2),
                },
            ],
        }
    }

    #[test]
    fn roundtrip() {
        let msg = sample();
        let buf = encode(&msg);
        let back = decode(&buf).unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    fn empty_message_roundtrip() {
        let msg = BarterCastMessage {
            sender: PeerId(3),
            records: vec![],
        };
        let buf = encode(&msg);
        assert_eq!(buf.len(), 8);
        assert_eq!(decode(&buf).unwrap(), msg);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut buf = encode(&sample());
        buf[0] = 0xFF;
        assert_eq!(decode(&buf), Err(DecodeError::BadMagic(0xFF)));
    }

    #[test]
    fn rejects_bad_version() {
        let mut buf = encode(&sample());
        buf[1] = 9;
        assert_eq!(decode(&buf), Err(DecodeError::BadVersion(9)));
    }

    #[test]
    fn rejects_truncation_everywhere() {
        let buf = encode(&sample());
        for cut in 0..buf.len() {
            let res = decode(&buf[..cut]);
            assert!(res.is_err(), "prefix of length {cut} decoded successfully");
        }
    }

    #[test]
    fn rejects_record_count_bomb() {
        let mut buf = encode(&BarterCastMessage {
            sender: PeerId(1),
            records: vec![],
        });
        // forge a huge record count with no payload
        let n = buf.len();
        buf[n - 2] = 0xFF;
        buf[n - 1] = 0xFF;
        let res = decode(&buf);
        assert!(matches!(
            res,
            Err(DecodeError::TooManyRecords(_)) | Err(DecodeError::Truncated)
        ));
    }

    #[test]
    fn error_display() {
        assert!(DecodeError::Truncated.to_string().contains("truncated"));
        assert!(DecodeError::BadMagic(1).to_string().contains("magic"));
        assert!(DecodeError::FrameTooLarge(99).to_string().contains("99"));
    }

    #[test]
    fn frame_decoder_reassembles_byte_at_a_time() {
        let msgs = [sample(), sample()];
        let mut wire = Vec::new();
        for m in &msgs {
            wire.extend_from_slice(&encode_framed(m));
        }
        let mut dec = FrameDecoder::new();
        let mut out = Vec::new();
        for b in wire {
            dec.feed(&[b]);
            while let Some(m) = dec.next_message().unwrap() {
                out.push(m);
            }
        }
        assert_eq!(out, msgs);
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn frame_decoder_handles_many_frames_per_feed() {
        let mut wire = Vec::new();
        for _ in 0..5 {
            wire.extend_from_slice(&encode_framed(&sample()));
        }
        let mut dec = FrameDecoder::new();
        dec.feed(&wire);
        let mut count = 0;
        while let Some(m) = dec.next_message().unwrap() {
            assert_eq!(m, sample());
            count += 1;
        }
        assert_eq!(count, 5);
    }

    #[test]
    fn frame_decoder_rejects_oversized_length_before_payload() {
        let mut dec = FrameDecoder::with_max_frame(64);
        // hostile prefix claiming 4 GiB: rejected from the length
        // bytes alone, with nothing buffered afterwards
        dec.feed(&u32::MAX.to_le_bytes());
        assert_eq!(
            dec.next_frame(),
            Err(DecodeError::FrameTooLarge(u32::MAX as usize))
        );
        // poisoned: same error forever, and feeds are discarded
        dec.feed(&[0u8; 128]);
        assert_eq!(dec.buffered(), 0);
        assert_eq!(
            dec.next_frame(),
            Err(DecodeError::FrameTooLarge(u32::MAX as usize))
        );
    }

    #[test]
    fn frame_decoder_poisons_on_garbage_payload() {
        let mut dec = FrameDecoder::new();
        dec.feed(&frame(&[0xFF, 1, 2, 3, 4, 5, 6, 7]));
        assert_eq!(dec.next_message(), Err(DecodeError::BadMagic(0xFF)));
        // a valid frame after the garbage is still refused
        dec.feed(&encode_framed(&sample()));
        assert!(dec.next_message().is_err());
    }

    #[test]
    fn frame_decoder_raw_frames_are_payload_agnostic() {
        let mut dec = FrameDecoder::new();
        dec.feed(&frame(b"hello"));
        dec.feed(&frame(b""));
        assert_eq!(dec.next_frame().unwrap().unwrap(), b"hello");
        assert_eq!(dec.next_frame().unwrap().unwrap(), b"");
        assert_eq!(dec.next_frame().unwrap(), None);
    }
}

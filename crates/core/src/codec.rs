//! Binary wire codec for BarterCast messages.
//!
//! A compact hand-rolled format over the `bytes` crate (serde binary
//! formats like bincode are outside the allowed dependency set):
//!
//! ```text
//! [magic u8 = 0xBC] [version u8 = 1] [sender u32 LE]
//! [record count u16 LE]
//! repeated: [peer u32 LE] [up u64 LE] [down u64 LE]
//! ```
//!
//! Decoding is defensive — any truncation, bad magic, or unsupported
//! version yields a typed error instead of a panic, since messages
//! arrive from untrusted peers.

use crate::message::{BarterCastMessage, TransferRecord};
use bartercast_util::units::{Bytes, PeerId};
use bytes::{Buf, BufMut, BytesMut};
use std::fmt;

/// Magic byte opening every BarterCast frame.
pub const MAGIC: u8 = 0xBC;
/// Current wire version.
pub const VERSION: u8 = 1;
/// Upper bound on records per message (a frame claiming more is
/// rejected before any allocation).
pub const MAX_RECORDS: usize = 1024;

/// Decoding failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Frame shorter than its headers/payload claim.
    Truncated,
    /// First byte was not [`MAGIC`].
    BadMagic(u8),
    /// Unsupported version byte.
    BadVersion(u8),
    /// Record count exceeded [`MAX_RECORDS`].
    TooManyRecords(usize),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "truncated frame"),
            DecodeError::BadMagic(b) => write!(f, "bad magic byte 0x{b:02x}"),
            DecodeError::BadVersion(v) => write!(f, "unsupported version {v}"),
            DecodeError::TooManyRecords(n) => write!(f, "record count {n} exceeds maximum"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Serialize a message into a fresh buffer.
///
/// ```
/// use bartercast_core::{codec, BarterCastConfig, BarterCastMessage, PrivateHistory};
/// use bartercast_util::units::{Bytes, PeerId, Seconds};
///
/// let mut h = PrivateHistory::new(PeerId(7));
/// h.record_upload(PeerId(1), Bytes::from_mb(5), Seconds(1));
/// let msg = BarterCastMessage::from_history(&h, BarterCastConfig::default());
/// let frame = codec::encode(&msg);
/// assert_eq!(codec::decode(&frame).unwrap(), msg);
/// ```
pub fn encode(msg: &BarterCastMessage) -> BytesMut {
    let mut buf = BytesMut::with_capacity(8 + msg.records.len() * 20);
    buf.put_u8(MAGIC);
    buf.put_u8(VERSION);
    buf.put_u32_le(msg.sender.0);
    debug_assert!(msg.records.len() <= MAX_RECORDS);
    buf.put_u16_le(msg.records.len() as u16);
    for r in &msg.records {
        buf.put_u32_le(r.peer.0);
        buf.put_u64_le(r.up.0);
        buf.put_u64_le(r.down.0);
    }
    buf
}

/// Parse a frame produced by [`encode`].
pub fn decode(mut buf: &[u8]) -> Result<BarterCastMessage, DecodeError> {
    if buf.remaining() < 8 {
        return Err(DecodeError::Truncated);
    }
    let magic = buf.get_u8();
    if magic != MAGIC {
        return Err(DecodeError::BadMagic(magic));
    }
    let version = buf.get_u8();
    if version != VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    let sender = PeerId(buf.get_u32_le());
    let count = buf.get_u16_le() as usize;
    if count > MAX_RECORDS {
        return Err(DecodeError::TooManyRecords(count));
    }
    if buf.remaining() < count * 20 {
        return Err(DecodeError::Truncated);
    }
    let mut records = Vec::with_capacity(count);
    for _ in 0..count {
        records.push(TransferRecord {
            peer: PeerId(buf.get_u32_le()),
            up: Bytes(buf.get_u64_le()),
            down: Bytes(buf.get_u64_le()),
        });
    }
    Ok(BarterCastMessage { sender, records })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BarterCastMessage {
        BarterCastMessage {
            sender: PeerId(42),
            records: vec![
                TransferRecord {
                    peer: PeerId(1),
                    up: Bytes::from_mb(100),
                    down: Bytes::from_mb(5),
                },
                TransferRecord {
                    peer: PeerId(7),
                    up: Bytes::ZERO,
                    down: Bytes::from_gb(2),
                },
            ],
        }
    }

    #[test]
    fn roundtrip() {
        let msg = sample();
        let buf = encode(&msg);
        let back = decode(&buf).unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    fn empty_message_roundtrip() {
        let msg = BarterCastMessage {
            sender: PeerId(3),
            records: vec![],
        };
        let buf = encode(&msg);
        assert_eq!(buf.len(), 8);
        assert_eq!(decode(&buf).unwrap(), msg);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut buf = encode(&sample());
        buf[0] = 0xFF;
        assert_eq!(decode(&buf), Err(DecodeError::BadMagic(0xFF)));
    }

    #[test]
    fn rejects_bad_version() {
        let mut buf = encode(&sample());
        buf[1] = 9;
        assert_eq!(decode(&buf), Err(DecodeError::BadVersion(9)));
    }

    #[test]
    fn rejects_truncation_everywhere() {
        let buf = encode(&sample());
        for cut in 0..buf.len() {
            let res = decode(&buf[..cut]);
            assert!(res.is_err(), "prefix of length {cut} decoded successfully");
        }
    }

    #[test]
    fn rejects_record_count_bomb() {
        let mut buf = encode(&BarterCastMessage {
            sender: PeerId(1),
            records: vec![],
        });
        // forge a huge record count with no payload
        let n = buf.len();
        buf[n - 2] = 0xFF;
        buf[n - 1] = 0xFF;
        let res = decode(&buf);
        assert!(matches!(
            res,
            Err(DecodeError::TooManyRecords(_)) | Err(DecodeError::Truncated)
        ));
    }

    #[test]
    fn error_display() {
        assert!(DecodeError::Truncated.to_string().contains("truncated"));
        assert!(DecodeError::BadMagic(1).to_string().contains("magic"));
    }
}

//! Binary wire codec for BarterCast messages.
//!
//! A compact hand-rolled format over the `bytes` crate (serde binary
//! formats like bincode are outside the allowed dependency set):
//!
//! ```text
//! [magic u8 = 0xBC] [version u8 = 1] [sender u32 LE]
//! [record count u16 LE]
//! repeated: [peer u32 LE] [up u64 LE] [down u64 LE]
//! ```
//!
//! Decoding is defensive — any truncation, bad magic, or unsupported
//! version yields a typed error instead of a panic, since messages
//! arrive from untrusted peers.
//!
//! For byte-stream transports (the node runtime's TCP sessions), the
//! message body above travels inside a length-delimited frame:
//!
//! ```text
//! [length u32 LE] [payload: length bytes]
//! ```
//!
//! [`FrameDecoder`] reassembles such frames incrementally from
//! arbitrarily fragmented reads — one byte at a time is fine — and
//! rejects any frame whose claimed length exceeds its cap *before*
//! buffering the payload, so a hostile length prefix can neither panic
//! nor force an unbounded allocation.

use crate::frontier::{DeltaMsg, Frontier};
use crate::message::{BarterCastMessage, TransferRecord};
use bartercast_util::units::{Bytes, PeerId, Seconds};
use bytes::{Buf, BufMut, BytesMut};
use std::fmt;

/// Magic byte opening every BarterCast frame.
pub const MAGIC: u8 = 0xBC;
/// Current wire version.
pub const VERSION: u8 = 1;
/// Upper bound on records per message (a frame claiming more is
/// rejected before any allocation).
pub const MAX_RECORDS: usize = 1024;
/// Fixed wire size of one v1 record (`peer u32 + up u64 + down u64`).
/// Bench reports use this to convert suppressed record counts into an
/// `exchange_bytes_saved` estimate.
pub const RECORD_WIRE_BYTES: usize = 20;
/// Version byte opening digest/delta bodies.
pub const FRONTIER_VERSION: u8 = 1;

/// Upper bound on a stream frame's payload, in bytes. A full-size
/// message body is `8 + 20 ·`[`MAX_RECORDS`]` = 20488` bytes; the cap
/// leaves room for small envelope overheads layered on top (the node
/// runtime prepends a one-byte frame kind) while still rejecting
/// hostile length prefixes long before any large allocation.
pub const MAX_FRAME_BYTES: usize = 32 * 1024;

/// Decoding failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Frame shorter than its headers/payload claim.
    Truncated,
    /// First byte was not [`MAGIC`].
    BadMagic(u8),
    /// Unsupported version byte.
    BadVersion(u8),
    /// Record count exceeded [`MAX_RECORDS`].
    TooManyRecords(usize),
    /// A stream frame's length prefix exceeded the decoder's cap.
    FrameTooLarge(usize),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "truncated frame"),
            DecodeError::BadMagic(b) => write!(f, "bad magic byte 0x{b:02x}"),
            DecodeError::BadVersion(v) => write!(f, "unsupported version {v}"),
            DecodeError::TooManyRecords(n) => write!(f, "record count {n} exceeds maximum"),
            DecodeError::FrameTooLarge(n) => write!(f, "frame length {n} exceeds maximum"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Serialize a message into a fresh buffer.
///
/// ```
/// use bartercast_core::{codec, BarterCastConfig, BarterCastMessage, PrivateHistory};
/// use bartercast_util::units::{Bytes, PeerId, Seconds};
///
/// let mut h = PrivateHistory::new(PeerId(7));
/// h.record_upload(PeerId(1), Bytes::from_mb(5), Seconds(1));
/// let msg = BarterCastMessage::from_history(&h, BarterCastConfig::default());
/// let frame = codec::encode(&msg);
/// assert_eq!(codec::decode(&frame).unwrap(), msg);
/// ```
pub fn encode(msg: &BarterCastMessage) -> BytesMut {
    let mut buf = BytesMut::with_capacity(8 + msg.records.len() * RECORD_WIRE_BYTES);
    encode_into(msg, &mut buf);
    buf
}

/// Serialize a message by *appending* to `out` — the allocation-free
/// sibling of [`encode`] for callers recycling buffers through a
/// [`BufPool`].
pub fn encode_into(msg: &BarterCastMessage, out: &mut BytesMut) {
    out.put_u8(MAGIC);
    out.put_u8(VERSION);
    out.put_u32_le(msg.sender.0);
    debug_assert!(msg.records.len() <= MAX_RECORDS);
    out.put_u16_le(msg.records.len() as u16);
    for r in &msg.records {
        out.put_u32_le(r.peer.0);
        out.put_u64_le(r.up.0);
        out.put_u64_le(r.down.0);
    }
}

/// Parse a frame produced by [`encode`].
pub fn decode(mut buf: &[u8]) -> Result<BarterCastMessage, DecodeError> {
    if buf.remaining() < 8 {
        return Err(DecodeError::Truncated);
    }
    let magic = buf.get_u8();
    if magic != MAGIC {
        return Err(DecodeError::BadMagic(magic));
    }
    let version = buf.get_u8();
    if version != VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    let sender = PeerId(buf.get_u32_le());
    let count = buf.get_u16_le() as usize;
    if count > MAX_RECORDS {
        return Err(DecodeError::TooManyRecords(count));
    }
    if buf.remaining() < count * 20 {
        return Err(DecodeError::Truncated);
    }
    let mut records = Vec::with_capacity(count);
    for _ in 0..count {
        records.push(TransferRecord {
            peer: PeerId(buf.get_u32_le()),
            up: Bytes(buf.get_u64_le()),
            down: Bytes(buf.get_u64_le()),
        });
    }
    Ok(BarterCastMessage { sender, records })
}

/// Wrap an arbitrary payload in a stream frame: `[len u32 LE][payload]`.
///
/// Panics (debug assertion) if the payload exceeds
/// [`MAX_FRAME_BYTES`]; callers build payloads from bounded messages,
/// so this cannot happen for well-formed traffic.
pub fn frame(payload: &[u8]) -> BytesMut {
    debug_assert!(payload.len() <= MAX_FRAME_BYTES);
    let mut buf = BytesMut::with_capacity(4 + payload.len());
    buf.put_u32_le(payload.len() as u32);
    buf.put_slice(payload);
    buf
}

/// Encode a message and wrap it in a stream frame in one step.
pub fn encode_framed(msg: &BarterCastMessage) -> BytesMut {
    frame(&encode(msg))
}

/// Append an LEB128 unsigned varint (7 data bits per byte, high bit =
/// continuation). Digest/delta bodies use varints because their fields
/// — peer ids, record counts, byte totals — are small in practice, and
/// the whole point of those envelopes is to be cheap on the wire.
pub fn put_uvarint<B: BufMut>(out: &mut B, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.put_u8(b);
            return;
        }
        out.put_u8(b | 0x80);
    }
}

/// Read an LEB128 unsigned varint, rejecting encodings that run past
/// 64 bits (a hostile stream of continuation bytes errors instead of
/// spinning or wrapping).
pub fn get_uvarint(buf: &mut &[u8]) -> Result<u64, DecodeError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    while shift < 64 {
        if buf.is_empty() {
            return Err(DecodeError::Truncated);
        }
        let b = buf.get_u8();
        let chunk = (b & 0x7f) as u64;
        if shift == 63 && chunk > 1 {
            return Err(DecodeError::Truncated);
        }
        v |= chunk << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
    Err(DecodeError::Truncated)
}

fn get_peer(buf: &mut &[u8]) -> Result<PeerId, DecodeError> {
    let raw = get_uvarint(buf)?;
    if raw > u32::MAX as u64 {
        return Err(DecodeError::Truncated);
    }
    Ok(PeerId(raw as u32))
}

fn put_frontier<B: BufMut>(out: &mut B, f: &Frontier) {
    put_uvarint(out, f.count as u64);
    put_uvarint(out, f.max_ts.0);
    out.put_u64_le(f.checksum);
}

fn get_frontier(buf: &mut &[u8]) -> Result<Frontier, DecodeError> {
    let count = get_uvarint(buf)?;
    if count > u32::MAX as u64 {
        return Err(DecodeError::Truncated);
    }
    let max_ts = Seconds(get_uvarint(buf)?);
    if buf.remaining() < 8 {
        return Err(DecodeError::Truncated);
    }
    Ok(Frontier {
        count: count as u32,
        max_ts,
        checksum: buf.get_u64_le(),
    })
}

/// Serialize a `Digest` body: the sender asks the receiver to compare
/// `claim` — the frontier the sender last saw from the receiver —
/// against the receiver's current advertised slice.
///
/// ```text
/// [frontier version u8 = 1] [sender uvarint]
/// [count uvarint] [max_ts uvarint] [checksum u64 LE]
/// ```
pub fn encode_digest_into(sender: PeerId, claim: &Frontier, out: &mut BytesMut) {
    out.put_u8(FRONTIER_VERSION);
    put_uvarint(out, sender.0 as u64);
    put_frontier(out, claim);
}

/// Parse a `Digest` body. Trailing bytes are rejected — a digest is a
/// fixed sequence of fields, so anything extra means a framing bug or
/// a hostile peer.
pub fn decode_digest(mut buf: &[u8]) -> Result<(PeerId, Frontier), DecodeError> {
    if buf.is_empty() {
        return Err(DecodeError::Truncated);
    }
    let version = buf.get_u8();
    if version != FRONTIER_VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    let sender = get_peer(&mut buf)?;
    let claim = get_frontier(&mut buf)?;
    if !buf.is_empty() {
        return Err(DecodeError::Truncated);
    }
    Ok((sender, claim))
}

/// Serialize a `Delta` body: the records the digest sender lacked plus
/// the responder's fresh frontier stamp.
///
/// ```text
/// [frontier version u8 = 1] [full u8 ∈ {0,1}] [sender uvarint]
/// [stamp: count uvarint, max_ts uvarint, checksum u64 LE]
/// [record count uvarint]
/// repeated: [peer uvarint] [up uvarint] [down uvarint]
/// ```
pub fn encode_delta_into(delta: &DeltaMsg, out: &mut BytesMut) {
    out.put_u8(FRONTIER_VERSION);
    out.put_u8(delta.full as u8);
    put_uvarint(out, delta.sender.0 as u64);
    put_frontier(out, &delta.stamp);
    debug_assert!(delta.records.len() <= MAX_RECORDS);
    put_uvarint(out, delta.records.len() as u64);
    for r in &delta.records {
        put_uvarint(out, r.peer.0 as u64);
        put_uvarint(out, r.up.0);
        put_uvarint(out, r.down.0);
    }
}

/// Parse a `Delta` body. Same defensive posture as [`decode`]: record
/// counts are bounded before any allocation, flags outside `{0,1}`
/// and trailing bytes are refused.
pub fn decode_delta(mut buf: &[u8]) -> Result<DeltaMsg, DecodeError> {
    if buf.remaining() < 2 {
        return Err(DecodeError::Truncated);
    }
    let version = buf.get_u8();
    if version != FRONTIER_VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    let full = match buf.get_u8() {
        0 => false,
        1 => true,
        _ => return Err(DecodeError::Truncated),
    };
    let sender = get_peer(&mut buf)?;
    let stamp = get_frontier(&mut buf)?;
    let count = get_uvarint(&mut buf)? as usize;
    if count > MAX_RECORDS {
        return Err(DecodeError::TooManyRecords(count));
    }
    let mut records = Vec::with_capacity(count);
    for _ in 0..count {
        let peer = get_peer(&mut buf)?;
        let up = Bytes(get_uvarint(&mut buf)?);
        let down = Bytes(get_uvarint(&mut buf)?);
        records.push(TransferRecord { peer, up, down });
    }
    if !buf.is_empty() {
        return Err(DecodeError::Truncated);
    }
    Ok(DeltaMsg {
        sender,
        full,
        stamp,
        records,
    })
}

/// A free-list of reusable output buffers.
///
/// Wire encoders append into a [`BytesMut`] taken from the pool; once
/// the frame is flushed the buffer returns, keeping its allocation.
/// Steady-state exchange — digests, deltas, control frames — therefore
/// allocates nothing once the pool is warm. The pool is deliberately
/// dumb: a bounded LIFO stack, no sizing classes, because every frame
/// here is small (≤ [`MAX_FRAME_BYTES`]).
#[derive(Debug, Default)]
pub struct BufPool {
    free: Vec<BytesMut>,
    /// Buffers handed out minus buffers returned, for leak assertions.
    outstanding: usize,
}

/// Upper bound on buffers the pool retains; beyond it, returned
/// buffers are simply dropped.
const POOL_CAP: usize = 64;

impl BufPool {
    /// An empty pool.
    pub fn new() -> Self {
        BufPool::default()
    }

    /// Take a cleared buffer, reusing a pooled allocation when one is
    /// available.
    pub fn take(&mut self) -> BytesMut {
        self.outstanding += 1;
        self.free.pop().unwrap_or_default()
    }

    /// Return a buffer to the pool. Contents are cleared; capacity is
    /// kept.
    pub fn put(&mut self, mut buf: BytesMut) {
        self.outstanding = self.outstanding.saturating_sub(1);
        if self.free.len() < POOL_CAP {
            buf.clear();
            self.free.push(buf);
        }
    }

    /// Buffers currently sitting in the free list.
    pub fn pooled(&self) -> usize {
        self.free.len()
    }

    /// Buffers taken and not yet returned.
    pub fn outstanding(&self) -> usize {
        self.outstanding
    }
}

/// Incremental decoder for length-delimited stream frames.
///
/// Feed it whatever fragments a byte-stream transport yields —
/// including single bytes — and pull complete frame payloads out as
/// they become available. A length prefix exceeding the cap is
/// rejected as soon as the four length bytes arrive, before the
/// payload is buffered, so a hostile prefix cannot force an unbounded
/// allocation. After any error the decoder is *poisoned* (the stream
/// position is no longer trustworthy) and every further call returns
/// the same error: the only safe recovery is dropping the connection.
///
/// ```
/// use bartercast_core::codec::{self, FrameDecoder};
/// use bartercast_core::BarterCastMessage;
/// use bartercast_util::units::PeerId;
///
/// let msg = BarterCastMessage { sender: PeerId(7), records: vec![] };
/// let wire = codec::encode_framed(&msg);
/// let mut dec = FrameDecoder::new();
/// // bytes arrive one at a time; the message pops out exactly once
/// let mut out = Vec::new();
/// for b in wire.iter() {
///     dec.feed(&[*b]);
///     while let Some(m) = dec.next_message().unwrap() {
///         out.push(m);
///     }
/// }
/// assert_eq!(out, vec![msg]);
/// ```
#[derive(Debug, Clone)]
pub struct FrameDecoder {
    /// Unconsumed stream bytes; `read` marks how far frames have been
    /// drained (compacted opportunistically to keep the buffer small).
    buf: Vec<u8>,
    read: usize,
    max_frame: usize,
    poisoned: Option<DecodeError>,
}

impl Default for FrameDecoder {
    fn default() -> Self {
        Self::new()
    }
}

impl FrameDecoder {
    /// A decoder capped at [`MAX_FRAME_BYTES`] per frame.
    pub fn new() -> Self {
        Self::with_max_frame(MAX_FRAME_BYTES)
    }

    /// A decoder with a custom per-frame payload cap (tests and
    /// transports with tighter budgets).
    pub fn with_max_frame(max_frame: usize) -> Self {
        FrameDecoder {
            buf: Vec::new(),
            read: 0,
            max_frame,
            poisoned: None,
        }
    }

    /// Append raw stream bytes. Fragmentation is arbitrary: frames may
    /// span many feeds, and one feed may carry many frames.
    pub fn feed(&mut self, bytes: &[u8]) {
        if self.poisoned.is_some() {
            // a poisoned stream is dead; don't let its remnants grow
            return;
        }
        // compact before growing: drained frames never need replaying
        if self.read > 0 && (self.read == self.buf.len() || self.read >= 4096) {
            self.buf.drain(..self.read);
            self.read = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet drained as frames.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.read
    }

    /// The next complete frame payload, `Ok(None)` while more bytes
    /// are needed, or the poisoning error.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, DecodeError> {
        if let Some(e) = &self.poisoned {
            return Err(e.clone());
        }
        let pending = &self.buf[self.read..];
        if pending.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes([pending[0], pending[1], pending[2], pending[3]]) as usize;
        if len > self.max_frame {
            let err = DecodeError::FrameTooLarge(len);
            self.poisoned = Some(err.clone());
            self.buf.clear();
            self.read = 0;
            return Err(err);
        }
        if pending.len() < 4 + len {
            return Ok(None);
        }
        let payload = pending[4..4 + len].to_vec();
        self.read += 4 + len;
        Ok(Some(payload))
    }

    /// The next complete frame decoded as a [`BarterCastMessage`].
    /// Malformed payloads poison the decoder like a bad length prefix:
    /// the framing may be intact, but the peer is speaking garbage.
    pub fn next_message(&mut self) -> Result<Option<BarterCastMessage>, DecodeError> {
        match self.next_frame()? {
            None => Ok(None),
            Some(payload) => match decode(&payload) {
                Ok(msg) => Ok(Some(msg)),
                Err(e) => {
                    self.poisoned = Some(e.clone());
                    self.buf.clear();
                    self.read = 0;
                    Err(e)
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BarterCastMessage {
        BarterCastMessage {
            sender: PeerId(42),
            records: vec![
                TransferRecord {
                    peer: PeerId(1),
                    up: Bytes::from_mb(100),
                    down: Bytes::from_mb(5),
                },
                TransferRecord {
                    peer: PeerId(7),
                    up: Bytes::ZERO,
                    down: Bytes::from_gb(2),
                },
            ],
        }
    }

    #[test]
    fn roundtrip() {
        let msg = sample();
        let buf = encode(&msg);
        let back = decode(&buf).unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    fn empty_message_roundtrip() {
        let msg = BarterCastMessage {
            sender: PeerId(3),
            records: vec![],
        };
        let buf = encode(&msg);
        assert_eq!(buf.len(), 8);
        assert_eq!(decode(&buf).unwrap(), msg);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut buf = encode(&sample());
        buf[0] = 0xFF;
        assert_eq!(decode(&buf), Err(DecodeError::BadMagic(0xFF)));
    }

    #[test]
    fn rejects_bad_version() {
        let mut buf = encode(&sample());
        buf[1] = 9;
        assert_eq!(decode(&buf), Err(DecodeError::BadVersion(9)));
    }

    #[test]
    fn rejects_truncation_everywhere() {
        let buf = encode(&sample());
        for cut in 0..buf.len() {
            let res = decode(&buf[..cut]);
            assert!(res.is_err(), "prefix of length {cut} decoded successfully");
        }
    }

    #[test]
    fn rejects_record_count_bomb() {
        let mut buf = encode(&BarterCastMessage {
            sender: PeerId(1),
            records: vec![],
        });
        // forge a huge record count with no payload
        let n = buf.len();
        buf[n - 2] = 0xFF;
        buf[n - 1] = 0xFF;
        let res = decode(&buf);
        assert!(matches!(
            res,
            Err(DecodeError::TooManyRecords(_)) | Err(DecodeError::Truncated)
        ));
    }

    #[test]
    fn error_display() {
        assert!(DecodeError::Truncated.to_string().contains("truncated"));
        assert!(DecodeError::BadMagic(1).to_string().contains("magic"));
        assert!(DecodeError::FrameTooLarge(99).to_string().contains("99"));
    }

    #[test]
    fn frame_decoder_reassembles_byte_at_a_time() {
        let msgs = [sample(), sample()];
        let mut wire = Vec::new();
        for m in &msgs {
            wire.extend_from_slice(&encode_framed(m));
        }
        let mut dec = FrameDecoder::new();
        let mut out = Vec::new();
        for b in wire {
            dec.feed(&[b]);
            while let Some(m) = dec.next_message().unwrap() {
                out.push(m);
            }
        }
        assert_eq!(out, msgs);
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn frame_decoder_handles_many_frames_per_feed() {
        let mut wire = Vec::new();
        for _ in 0..5 {
            wire.extend_from_slice(&encode_framed(&sample()));
        }
        let mut dec = FrameDecoder::new();
        dec.feed(&wire);
        let mut count = 0;
        while let Some(m) = dec.next_message().unwrap() {
            assert_eq!(m, sample());
            count += 1;
        }
        assert_eq!(count, 5);
    }

    #[test]
    fn frame_decoder_rejects_oversized_length_before_payload() {
        let mut dec = FrameDecoder::with_max_frame(64);
        // hostile prefix claiming 4 GiB: rejected from the length
        // bytes alone, with nothing buffered afterwards
        dec.feed(&u32::MAX.to_le_bytes());
        assert_eq!(
            dec.next_frame(),
            Err(DecodeError::FrameTooLarge(u32::MAX as usize))
        );
        // poisoned: same error forever, and feeds are discarded
        dec.feed(&[0u8; 128]);
        assert_eq!(dec.buffered(), 0);
        assert_eq!(
            dec.next_frame(),
            Err(DecodeError::FrameTooLarge(u32::MAX as usize))
        );
    }

    #[test]
    fn frame_decoder_poisons_on_garbage_payload() {
        let mut dec = FrameDecoder::new();
        dec.feed(&frame(&[0xFF, 1, 2, 3, 4, 5, 6, 7]));
        assert_eq!(dec.next_message(), Err(DecodeError::BadMagic(0xFF)));
        // a valid frame after the garbage is still refused
        dec.feed(&encode_framed(&sample()));
        assert!(dec.next_message().is_err());
    }

    #[test]
    fn uvarint_roundtrips_interesting_values() {
        for v in [
            0u64,
            1,
            127,
            128,
            300,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let mut buf = BytesMut::new();
            put_uvarint(&mut buf, v);
            assert!(buf.len() <= 10);
            let mut r: &[u8] = &buf;
            assert_eq!(get_uvarint(&mut r), Ok(v), "value {v}");
            assert!(r.is_empty());
        }
    }

    #[test]
    fn uvarint_rejects_overlong_and_truncated_input() {
        // eleven continuation bytes: past the 64-bit ceiling
        let mut r: &[u8] = &[0x80u8; 11];
        assert_eq!(get_uvarint(&mut r), Err(DecodeError::Truncated));
        // a 10th byte whose payload overflows bit 63
        let mut r: &[u8] = &[0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F];
        assert_eq!(get_uvarint(&mut r), Err(DecodeError::Truncated));
        // continuation bit set with nothing following
        let mut r: &[u8] = &[0x80];
        assert_eq!(get_uvarint(&mut r), Err(DecodeError::Truncated));
    }

    fn sample_delta() -> crate::frontier::DeltaMsg {
        crate::frontier::DeltaMsg {
            sender: PeerId(42),
            full: false,
            stamp: crate::frontier::Frontier {
                count: 3,
                max_ts: bartercast_util::units::Seconds(1234),
                checksum: 0xDEAD_BEEF_CAFE_F00D,
            },
            records: sample().records,
        }
    }

    #[test]
    fn digest_roundtrip_and_trailing_garbage_rejected() {
        let claim = sample_delta().stamp;
        let mut buf = BytesMut::new();
        encode_digest_into(PeerId(7), &claim, &mut buf);
        assert_eq!(decode_digest(&buf), Ok((PeerId(7), claim)));
        let mut long = buf.to_vec();
        long.push(0);
        assert_eq!(decode_digest(&long), Err(DecodeError::Truncated));
        for cut in 0..buf.len() {
            assert!(decode_digest(&buf[..cut]).is_err(), "prefix {cut}");
        }
    }

    #[test]
    fn delta_roundtrip_and_hostile_bodies_rejected() {
        let delta = sample_delta();
        let mut buf = BytesMut::new();
        encode_delta_into(&delta, &mut buf);
        assert_eq!(decode_delta(&buf), Ok(delta.clone()));
        for cut in 0..buf.len() {
            assert!(decode_delta(&buf[..cut]).is_err(), "prefix {cut}");
        }
        // bad frontier version
        let mut bad = buf.to_vec();
        bad[0] = 9;
        assert_eq!(decode_delta(&bad), Err(DecodeError::BadVersion(9)));
        // flag outside {0,1}
        let mut bad = buf.to_vec();
        bad[1] = 2;
        assert_eq!(decode_delta(&bad), Err(DecodeError::Truncated));
        // record-count bomb with no payload behind it
        let mut bomb = BytesMut::new();
        bomb.put_u8(FRONTIER_VERSION);
        bomb.put_u8(0);
        put_uvarint(&mut bomb, 42);
        put_frontier(&mut bomb, &delta.stamp);
        put_uvarint(&mut bomb, (MAX_RECORDS + 1) as u64);
        assert_eq!(
            decode_delta(&bomb),
            Err(DecodeError::TooManyRecords(MAX_RECORDS + 1))
        );
    }

    #[test]
    fn full_flag_survives_roundtrip() {
        let mut delta = sample_delta();
        delta.full = true;
        delta.records.clear();
        let mut buf = BytesMut::new();
        encode_delta_into(&delta, &mut buf);
        assert_eq!(decode_delta(&buf), Ok(delta));
    }

    #[test]
    fn buf_pool_recycles_allocations() {
        let mut pool = BufPool::new();
        let mut a = pool.take();
        a.put_slice(&[0u8; 256]);
        assert_eq!(pool.outstanding(), 1);
        pool.put(a);
        assert_eq!(pool.outstanding(), 0);
        assert_eq!(pool.pooled(), 1);
        let b = pool.take();
        assert!(b.is_empty(), "recycled buffer is cleared");
        assert!(b.capacity() >= 256, "recycled buffer keeps its allocation");
        pool.put(b);
    }

    #[test]
    fn encode_into_matches_encode() {
        let msg = sample();
        let mut buf = BytesMut::new();
        encode_into(&msg, &mut buf);
        assert_eq!(buf, encode(&msg));
    }

    #[test]
    fn frame_decoder_raw_frames_are_payload_agnostic() {
        let mut dec = FrameDecoder::new();
        dec.feed(&frame(b"hello"));
        dec.feed(&frame(b""));
        assert_eq!(dec.next_frame().unwrap().unwrap(), b"hello");
        assert_eq!(dec.next_frame().unwrap().unwrap(), b"");
        assert_eq!(dec.next_frame().unwrap(), None);
    }
}

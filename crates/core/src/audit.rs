//! Misreport auditing — a step toward the paper's future work of
//! "techniques to prevent die-hard cheating and malicious behaviour".
//!
//! Every directed edge `A → B` of the contribution graph has exactly
//! two first-hand witnesses: `A` reports it as an `up` total in its
//! records about `B`, and `B` reports it as a `down` total in its
//! records about `A`. Both totals are cumulative, so with honest
//! reporting the two claims can differ only by staleness — the lower
//! one lags the higher. The §5.4 selfish lie ("claimed they sent huge
//! amounts of data ... and received nothing") breaks this badly: the
//! liar's `up` claims vastly exceed what any counterparty confirms.
//!
//! [`Auditor`] cross-checks the pairs of claims it has seen. When the
//! uploader-side claim exceeds the downloader-side confirmation by
//! more than a tolerance factor plus slack, **both** witnesses get a
//! discrepancy mark (a single mismatch cannot be attributed). Honest
//! peers collect marks only from their lying counterparties; liars
//! collect marks from *every* honest counterparty, so repeated
//! independent discrepancies concentrate on them and a count threshold
//! separates the populations.

use bartercast_util::units::{Bytes, PeerId};
use bartercast_util::FxHashMap;

use crate::message::BarterCastMessage;

/// One edge's two first-hand claims.
#[derive(Debug, Clone, Copy, Default)]
struct EdgeClaims {
    /// Largest total claimed by the edge's source ("I uploaded this").
    by_source: Option<Bytes>,
    /// Largest total confirmed by the edge's target ("I downloaded this").
    by_target: Option<Bytes>,
}

/// Cross-checks first-hand claims about contribution edges.
///
/// ```
/// use bartercast_core::{Auditor, BarterCastConfig, BarterCastMessage, PrivateHistory};
/// use bartercast_util::units::{Bytes, PeerId, Seconds};
///
/// // the victim confirms a tiny download; the liar claims 100 GB
/// let mut victim = PrivateHistory::new(PeerId(1));
/// victim.record_download(PeerId(9), Bytes::from_mb(50), Seconds(1));
/// let mut liar = PrivateHistory::new(PeerId(9));
/// liar.record_upload(PeerId(1), Bytes::from_mb(50), Seconds(1));
///
/// let mut auditor = Auditor::default();
/// auditor.ingest(&BarterCastMessage::lying(
///     &liar, BarterCastConfig::default(), Bytes::from_gb(100)));
/// auditor.ingest(&BarterCastMessage::from_history(
///     &victim, BarterCastConfig::default()));
/// assert_eq!(auditor.flagged_edges(), 1);
/// assert!(auditor.marks(PeerId(9)) > 0);
/// ```
#[derive(Debug, Clone)]
pub struct Auditor {
    claims: FxHashMap<(PeerId, PeerId), EdgeClaims>,
    /// A source claim is suspicious when it exceeds
    /// `target_claim * factor + slack`.
    factor: f64,
    /// Absolute slack (staleness allowance).
    slack: Bytes,
    marks: FxHashMap<PeerId, u32>,
    /// Cross-checked incident-edge counts per peer.
    checked: FxHashMap<PeerId, u32>,
    /// Edges already counted as cross-checked.
    checked_edges: FxHashMap<(PeerId, PeerId), ()>,
    /// Edges already marked, so one bad edge is counted once.
    marked_edges: FxHashMap<(PeerId, PeerId), ()>,
}

impl Default for Auditor {
    fn default() -> Self {
        Self::new(8.0, Bytes::from_gb(1))
    }
}

impl Auditor {
    /// An auditor flagging source claims above
    /// `target_claim * factor + slack`.
    pub fn new(factor: f64, slack: Bytes) -> Self {
        assert!(factor >= 1.0, "tolerance factor must be >= 1");
        Auditor {
            claims: FxHashMap::default(),
            factor,
            slack,
            marks: FxHashMap::default(),
            checked: FxHashMap::default(),
            checked_edges: FxHashMap::default(),
            marked_edges: FxHashMap::default(),
        }
    }

    /// Ingest one BarterCast message: each record `(peer, up, down)`
    /// from `sender` carries a source-claim for `sender → peer` (the
    /// `up` total) and a target-claim for `peer → sender` (the `down`
    /// total).
    pub fn ingest(&mut self, msg: &BarterCastMessage) {
        for r in &msg.records {
            if r.peer == msg.sender {
                continue;
            }
            {
                let e = self.claims.entry((msg.sender, r.peer)).or_default();
                e.by_source = Some(e.by_source.map_or(r.up, |b| b.max(r.up)));
            }
            self.check((msg.sender, r.peer));
            {
                let e = self.claims.entry((r.peer, msg.sender)).or_default();
                e.by_target = Some(e.by_target.map_or(r.down, |b| b.max(r.down)));
            }
            self.check((r.peer, msg.sender));
        }
    }

    fn check(&mut self, edge: (PeerId, PeerId)) {
        let Some(c) = self.claims.get(&edge) else {
            return;
        };
        let (Some(src), Some(dst)) = (c.by_source, c.by_target) else {
            return;
        };
        if let std::collections::hash_map::Entry::Vacant(e) = self.checked_edges.entry(edge) {
            e.insert(());
            *self.checked.entry(edge.0).or_insert(0) += 1;
            *self.checked.entry(edge.1).or_insert(0) += 1;
        }
        if self.marked_edges.contains_key(&edge) {
            return;
        }
        let limit = dst.0 as f64 * self.factor + self.slack.0 as f64;
        if (src.0 as f64) > limit {
            self.marked_edges.insert(edge, ());
            *self.marks.entry(edge.0).or_insert(0) += 1;
            *self.marks.entry(edge.1).or_insert(0) += 1;
        }
    }

    /// Discrepancy marks accumulated by `peer`.
    pub fn marks(&self, peer: PeerId) -> u32 {
        self.marks.get(&peer).copied().unwrap_or(0)
    }

    /// Cross-checked incident edges of `peer`.
    pub fn checked(&self, peer: PeerId) -> u32 {
        self.checked.get(&peer).copied().unwrap_or(0)
    }

    /// Fraction of `peer`'s cross-checked incident edges that were
    /// flagged (0 when nothing was cross-checked).
    pub fn mark_ratio(&self, peer: PeerId) -> f64 {
        let checked = self.checked(peer);
        if checked == 0 {
            0.0
        } else {
            self.marks(peer) as f64 / checked as f64
        }
    }

    /// Peers with at least `min_marks` discrepancy marks **and** at
    /// least `min_ratio` of their cross-checked edges flagged — the
    /// suspected die-hard liars.
    pub fn suspects(&self, min_marks: u32) -> Vec<PeerId> {
        self.suspects_with_ratio(min_marks, 0.5)
    }

    /// [`Auditor::suspects`] with an explicit ratio threshold.
    pub fn suspects_with_ratio(&self, min_marks: u32, min_ratio: f64) -> Vec<PeerId> {
        let mut out: Vec<PeerId> = self
            .marks
            .iter()
            .filter(|(&p, &m)| m >= min_marks && self.mark_ratio(p) >= min_ratio)
            .map(|(&p, _)| p)
            .collect();
        out.sort();
        out
    }

    /// Number of edges for which both witnesses have been heard.
    pub fn cross_checked_edges(&self) -> usize {
        self.claims
            .values()
            .filter(|c| c.by_source.is_some() && c.by_target.is_some())
            .count()
    }

    /// Number of edges flagged as discrepant.
    pub fn flagged_edges(&self) -> usize {
        self.marked_edges.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::PrivateHistory;
    use crate::message::{BarterCastConfig, BarterCastMessage};
    use bartercast_util::units::Seconds;

    fn p(i: u32) -> PeerId {
        PeerId(i)
    }

    /// Two honest peers reporting the same transfer agree.
    #[test]
    fn honest_claims_do_not_flag() {
        let mut a = PrivateHistory::new(p(0));
        let mut b = PrivateHistory::new(p(1));
        a.record_upload(p(1), Bytes::from_gb(2), Seconds(5));
        b.record_download(p(0), Bytes::from_gb(2), Seconds(5));

        let mut auditor = Auditor::default();
        auditor.ingest(&BarterCastMessage::from_history(
            &a,
            BarterCastConfig::default(),
        ));
        auditor.ingest(&BarterCastMessage::from_history(
            &b,
            BarterCastConfig::default(),
        ));
        assert_eq!(auditor.cross_checked_edges(), 2);
        assert_eq!(auditor.flagged_edges(), 0);
        assert!(auditor.suspects(1).is_empty());
    }

    /// Staleness (one side lagging) stays within tolerance.
    #[test]
    fn stale_claims_tolerated() {
        let mut a = PrivateHistory::new(p(0));
        let mut b = PrivateHistory::new(p(1));
        a.record_upload(p(1), Bytes::from_gb(1), Seconds(5));
        // b's view lags: it has only seen 700 MB arrive so far
        b.record_download(p(0), Bytes::from_mb(700), Seconds(4));
        let mut auditor = Auditor::default();
        auditor.ingest(&BarterCastMessage::from_history(
            &a,
            BarterCastConfig::default(),
        ));
        auditor.ingest(&BarterCastMessage::from_history(
            &b,
            BarterCastConfig::default(),
        ));
        assert_eq!(auditor.flagged_edges(), 0);
    }

    /// The §5.4 lie pattern is flagged once both witnesses are heard.
    #[test]
    fn selfish_lie_is_flagged() {
        // honest peer 1 confirms only 100 MB downloaded from the liar
        let mut honest = PrivateHistory::new(p(1));
        honest.record_download(p(9), Bytes::from_mb(100), Seconds(5));
        // liar 9 claims 100 GB uploaded to peer 1
        let mut liar = PrivateHistory::new(p(9));
        liar.record_upload(p(1), Bytes::from_mb(100), Seconds(5));
        let lie = BarterCastMessage::lying(&liar, BarterCastConfig::default(), Bytes::from_gb(100));

        let mut auditor = Auditor::default();
        auditor.ingest(&BarterCastMessage::from_history(
            &honest,
            BarterCastConfig::default(),
        ));
        auditor.ingest(&lie);
        assert_eq!(auditor.flagged_edges(), 1);
        assert_eq!(auditor.marks(p(9)), 1);
        assert_eq!(auditor.marks(p(1)), 1);
    }

    /// Marks concentrate on the liar as more honest witnesses report.
    #[test]
    fn repeated_discrepancies_single_out_the_liar() {
        let mut auditor = Auditor::default();
        // liar 9 transferred trivially with honest peers 1..=5 and lies
        // about all of them
        let mut liar = PrivateHistory::new(p(9));
        for i in 1..=5 {
            liar.record_upload(p(i), Bytes::from_mb(10), Seconds(i as u64));
        }
        auditor.ingest(&BarterCastMessage::lying(
            &liar,
            BarterCastConfig::default(),
            Bytes::from_gb(100),
        ));
        for i in 1..=5u32 {
            let mut h = PrivateHistory::new(p(i));
            h.record_download(p(9), Bytes::from_mb(10), Seconds(i as u64));
            auditor.ingest(&BarterCastMessage::from_history(
                &h,
                BarterCastConfig::default(),
            ));
        }
        assert_eq!(auditor.marks(p(9)), 5);
        for i in 1..=5u32 {
            assert_eq!(auditor.marks(p(i)), 1);
        }
        // threshold 3 separates perfectly
        assert_eq!(auditor.suspects(3), vec![p(9)]);
    }

    /// Each bad edge is counted once even if re-reported.
    #[test]
    fn flags_are_per_edge_not_per_message() {
        let mut honest = PrivateHistory::new(p(1));
        honest.record_download(p(9), Bytes::from_mb(10), Seconds(1));
        let mut liar = PrivateHistory::new(p(9));
        liar.record_upload(p(1), Bytes::from_mb(10), Seconds(1));
        let lie = BarterCastMessage::lying(&liar, BarterCastConfig::default(), Bytes::from_gb(50));
        let honest_msg = BarterCastMessage::from_history(&honest, BarterCastConfig::default());
        let mut auditor = Auditor::default();
        for _ in 0..5 {
            auditor.ingest(&lie);
            auditor.ingest(&honest_msg);
        }
        assert_eq!(auditor.marks(p(9)), 1);
    }

    #[test]
    #[should_panic(expected = "tolerance factor")]
    fn rejects_sub_unit_factor() {
        let _ = Auditor::new(0.5, Bytes::ZERO);
    }
}

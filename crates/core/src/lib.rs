//! The BarterCast protocol core (paper §3–4).
//!
//! BarterCast gives every peer a *subjective* view of who contributes to
//! the network and who freerides, with no central component:
//!
//! 1. Each peer records its own transfers in a [`PrivateHistory`]
//!    (§3.4): a table of `(peer, uploaded, downloaded)` entries that
//!    nobody else can manipulate.
//! 2. Peers periodically exchange [`BarterCastMessage`]s carrying a
//!    selection of their private history — the `Nh` peers with the
//!    highest upload to the sender plus the `Nr` most recently seen
//!    (§3.4, the paper uses `Nh = Nr = 10`).
//! 3. Received records are max-merged into a subjective
//!    [`ContributionGraph`], over which the peer evaluates anyone via
//!    **maxflow** — bounded to two-hop paths in the deployed system.
//! 4. The [`metric`] maps the two directed maxflows through `arctan`
//!    into a reputation in `(-1, 1)` (§3.3, Equation 1).
//! 5. [`policy`] turns reputations into BitTorrent decisions: the
//!    **rank** policy orders optimistic unchokes by reputation and the
//!    **ban** policy refuses slots below a threshold δ (§4.2).
//! 6. [`audit`] cross-checks the two first-hand claims every edge has
//!    (uploader and downloader), flagging the §5.4 selfish-lie pattern
//!    — a concrete step toward the paper's die-hard-cheating future
//!    work.
//!
//! [`ContributionGraph`]: bartercast_graph::ContributionGraph

#![warn(missing_docs)]

pub mod audit;
pub mod codec;
pub mod frontier;
pub mod history;
pub mod identity;
pub mod message;
pub mod metric;
pub mod policy;
pub mod repcache;
pub mod shard;

pub use audit::Auditor;
pub use frontier::{DeltaMsg, Frontier, SliceRecord, SyncPlan};
pub use history::{PieceProvenance, PrivateHistory, TransferTotals};
pub use message::{BarterCastConfig, BarterCastMessage, TransferRecord};
pub use metric::{reputation_from_flows, ReputationMetric};
pub use policy::{PolicyDecision, ReputationPolicy};
pub use repcache::{CacheStats, ReputationEngine};
pub use shard::{
    CommunityPartitioner, EpochView, HashPartitioner, Partitioner, ShardStats, ShardedEngine,
};

//! The reputation metric (§3.3, Equation 1).
//!
//! ```text
//! R_i(j) = arctan(maxflow(j, i) − maxflow(i, j)) / (π/2)
//! ```
//!
//! The arctan scaling makes the difference between 0 and 100 MB far
//! more significant than between 1000 and 1100 MB, so a modest
//! contribution by a newcomer moves its reputation visibly instead of
//! being dwarfed by the most active peers.
//!
//! The paper leaves the arctan argument's unit implicit; Figure 1b
//! shows reputations saturating only at several GB of net
//! contribution, and the ban policy's thresholds (δ down to −0.7 ≈
//! −2 GB·tan) only discriminate if weekly flow differences of 1–8 GB
//! map onto the middle of the arctan, so [`ReputationMetric::default`]
//! uses a **2 GB** unit. The unit is configurable for the ablation
//! benches.

use std::f64::consts::FRAC_PI_2;

use bartercast_util::units::Bytes;

/// How raw maxflow differences map to a reputation value in `(-1, 1)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReputationMetric {
    /// The paper's Equation 1: `arctan(Δ/unit) / (π/2)` with `Δ` the
    /// maxflow difference in bytes and `unit` the byte amount mapping
    /// to `arctan(1)`.
    Arctan {
        /// Bytes corresponding to `x = 1` inside the arctan.
        unit: Bytes,
    },
    /// Ablation alternative: linear in `Δ`, clamped to `[-1, 1]` at
    /// `±unit`. Lacks the newcomer-friendly compression of arctan.
    LinearClamp {
        /// Bytes at which the value saturates.
        unit: Bytes,
    },
}

impl Default for ReputationMetric {
    fn default() -> Self {
        ReputationMetric::Arctan {
            unit: Bytes::from_gb(2),
        }
    }
}

impl ReputationMetric {
    /// Evaluate the metric given the two directed maxflows:
    /// `toward` = maxflow(j → i) (service peer *i* received, possibly
    /// indirectly, from *j*) and `away` = maxflow(i → j).
    pub fn eval(&self, toward: Bytes, away: Bytes) -> f64 {
        let delta = toward.0 as f64 - away.0 as f64;
        match *self {
            ReputationMetric::Arctan { unit } => (delta / unit.0 as f64).atan() / FRAC_PI_2,
            ReputationMetric::LinearClamp { unit } => (delta / unit.0 as f64).clamp(-1.0, 1.0),
        }
    }
}

/// Equation 1 with the default 2 GB unit.
///
/// ```
/// use bartercast_core::reputation_from_flows;
/// use bartercast_util::units::Bytes;
///
/// let r = reputation_from_flows(Bytes::from_gb(2), Bytes::ZERO);
/// assert!((r - 0.5).abs() < 1e-9); // arctan(1) / (pi/2)
/// assert!(reputation_from_flows(Bytes::ZERO, Bytes::from_gb(2)) < 0.0);
/// ```
pub fn reputation_from_flows(toward: Bytes, away: Bytes) -> f64 {
    ReputationMetric::default().eval(toward, away)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_flows_zero_reputation() {
        assert_eq!(reputation_from_flows(Bytes::ZERO, Bytes::ZERO), 0.0);
    }

    #[test]
    fn sign_follows_net_service() {
        assert!(reputation_from_flows(Bytes::from_mb(100), Bytes::ZERO) > 0.0);
        assert!(reputation_from_flows(Bytes::ZERO, Bytes::from_mb(100)) < 0.0);
    }

    #[test]
    fn antisymmetric() {
        let a = reputation_from_flows(Bytes::from_mb(700), Bytes::from_mb(100));
        let b = reputation_from_flows(Bytes::from_mb(100), Bytes::from_mb(700));
        assert!((a + b).abs() < 1e-12);
    }

    #[test]
    fn bounded_open_interval() {
        let r = reputation_from_flows(Bytes::from_gb(10_000), Bytes::ZERO);
        assert!(r > 0.99 && r < 1.0);
        let r = reputation_from_flows(Bytes::ZERO, Bytes::from_gb(10_000));
        assert!(r < -0.99 && r > -1.0);
    }

    #[test]
    fn newcomer_compression() {
        // §3.3: a first contribution moves reputation more than the
        // same increment on top of an already-large total (the paper's
        // 0→100 MB vs 1000→1100 MB example, scaled to the unit).
        let m = ReputationMetric::default();
        let step = Bytes::from_mb(500);
        let large = Bytes::from_gb(4);
        let step_small = m.eval(step, Bytes::ZERO) - m.eval(Bytes::ZERO, Bytes::ZERO);
        let step_large = m.eval(large + step, Bytes::ZERO) - m.eval(large, Bytes::ZERO);
        assert!(step_small > step_large * 2.0);
    }

    #[test]
    fn arctan_unit_scales_sensitivity() {
        let fine = ReputationMetric::Arctan {
            unit: Bytes::from_mb(100),
        };
        let coarse = ReputationMetric::Arctan {
            unit: Bytes::from_gb(10),
        };
        let toward = Bytes::from_mb(500);
        assert!(fine.eval(toward, Bytes::ZERO) > coarse.eval(toward, Bytes::ZERO));
    }

    #[test]
    fn linear_clamp_saturates_exactly() {
        let m = ReputationMetric::LinearClamp {
            unit: Bytes::from_gb(1),
        };
        assert_eq!(m.eval(Bytes::from_gb(5), Bytes::ZERO), 1.0);
        assert_eq!(m.eval(Bytes::ZERO, Bytes::from_gb(5)), -1.0);
        let half = m.eval(Bytes::from_mb(512), Bytes::ZERO);
        assert!((half - 0.5).abs() < 1e-9);
    }

    #[test]
    fn monotone_in_toward_flow() {
        let m = ReputationMetric::default();
        let mut prev = -2.0;
        for mb in (0..2000).step_by(100) {
            let r = m.eval(Bytes::from_mb(mb), Bytes::from_mb(500));
            assert!(r > prev);
            prev = r;
        }
    }
}

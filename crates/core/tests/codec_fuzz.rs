//! Round-trip fuzzing for the wire codec.
//!
//! Arbitrary `TransferRecord` batches must encode/decode bit-identically
//! (a second encode of the decoded message reproduces the exact frame),
//! and hostile inputs — truncations, single-byte corruption, random
//! garbage — must come back as typed [`DecodeError`]s, never panics:
//! frames arrive from untrusted peers.

#![recursion_limit = "256"]

use bartercast_core::codec::{self, DecodeError, MAGIC, MAX_RECORDS, VERSION};
use bartercast_core::{BarterCastMessage, TransferRecord};
use bartercast_util::units::{Bytes, PeerId};
use proptest::prelude::*;

/// An arbitrary message: any sender, up to a full batch of records with
/// unconstrained peer ids and byte counters (including `u64::MAX`).
fn message_strategy() -> impl Strategy<Value = (u32, Vec<(u32, u64, u64)>)> {
    (
        0u32..u32::MAX,
        prop::collection::vec((0u32..u32::MAX, 0u64..u64::MAX, 0u64..u64::MAX), 0..64),
    )
}

fn build(sender: u32, records: &[(u32, u64, u64)]) -> BarterCastMessage {
    BarterCastMessage {
        sender: PeerId(sender),
        records: records
            .iter()
            .map(|&(p, up, down)| TransferRecord {
                peer: PeerId(p),
                up: Bytes(up),
                down: Bytes(down),
            })
            .collect(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn roundtrip_is_bit_identical(msg_parts in message_strategy()) {
        let (sender, records) = &msg_parts;
        let msg = build(*sender, records);
        let frame = codec::encode(&msg);
        prop_assert_eq!(frame.len(), 8 + records.len() * 20);
        let back = codec::decode(&frame).expect("own frame must decode");
        prop_assert_eq!(&back, &msg);
        // re-encoding the decoded message reproduces the exact bytes
        let frame2 = codec::encode(&back);
        prop_assert_eq!(&frame[..], &frame2[..]);
    }

    #[test]
    fn every_truncation_errors_not_panics(msg_parts in message_strategy()) {
        let (sender, records) = &msg_parts;
        let msg = build(*sender, records);
        let frame = codec::encode(&msg);
        for cut in 0..frame.len() {
            match codec::decode(&frame[..cut]) {
                Err(_) => {}
                Ok(m) => {
                    // a shorter prefix can only decode if it is itself a
                    // complete frame — impossible, since record payloads
                    // are fixed-width and the count is in the header
                    prop_assert!(
                        false,
                        "prefix {cut}/{} decoded to {} records",
                        frame.len(),
                        m.records.len()
                    );
                }
            }
        }
    }

    #[test]
    fn single_byte_corruption_never_panics(
        msg_parts in message_strategy(),
        pos_seed in 0usize..4096,
        byte in 0u8..=255,
    ) {
        let (sender, records) = &msg_parts;
        let msg = build(*sender, records);
        let mut frame = codec::encode(&msg);
        let pos = pos_seed % frame.len();
        frame[pos] = byte;
        // corrupted frames either fail with a typed error or decode to
        // some (different) message; both are fine — panicking is not
        let _ = codec::decode(&frame);
    }

    #[test]
    fn random_garbage_never_panics(garbage in prop::collection::vec(0u8..=255, 0..256)) {
        match codec::decode(&garbage) {
            Ok(m) => {
                // lucky garbage must at least be self-consistent
                prop_assert!(m.records.len() <= MAX_RECORDS);
                prop_assert_eq!(garbage[0], MAGIC);
                prop_assert_eq!(garbage[1], VERSION);
            }
            Err(
                DecodeError::Truncated
                | DecodeError::BadMagic(_)
                | DecodeError::BadVersion(_)
                | DecodeError::TooManyRecords(_),
            ) => {}
            Err(e @ DecodeError::FrameTooLarge(_)) => {
                // only the stream decoder's length prefix produces this
                prop_assert!(false, "bare decode returned {e}");
            }
        }
    }

    #[test]
    fn frame_decoder_survives_arbitrary_fragmentation(
        batches in prop::collection::vec(message_strategy(), 1..4),
        chunk_seed in 1u64..u64::MAX,
    ) {
        // a stream of well-formed frames, delivered in chunks whose
        // sizes are derived from the seed (1..=13 bytes, so frames
        // always span several feeds), must reproduce the exact message
        // sequence no matter where the cuts fall
        let msgs: Vec<_> = batches
            .iter()
            .map(|(s, rs)| build(*s, rs))
            .collect();
        let mut wire = Vec::new();
        for m in &msgs {
            wire.extend_from_slice(&codec::encode_framed(m));
        }
        let mut dec = codec::FrameDecoder::new();
        let mut out = Vec::new();
        let mut state = chunk_seed;
        let mut pos = 0usize;
        while pos < wire.len() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let step = 1 + (state >> 33) as usize % 13;
            let end = (pos + step).min(wire.len());
            dec.feed(&wire[pos..end]);
            pos = end;
            while let Some(m) = dec.next_message().expect("clean stream") {
                out.push(m);
            }
        }
        prop_assert_eq!(out, msgs);
        prop_assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn frame_decoder_corrupted_length_never_panics_never_overallocates(
        msg_parts in message_strategy(),
        corrupt in 0u8..=255,
        which in 0usize..4,
    ) {
        let (sender, records) = &msg_parts;
        let mut wire = codec::encode_framed(&build(*sender, records)).to_vec();
        wire[which] = corrupt; // corrupt one length-prefix byte
        let mut dec = codec::FrameDecoder::new();
        dec.feed(&wire);
        // drain until quiescent: typed errors and silence are both
        // acceptable; panics and unbounded buffering are not
        loop {
            match dec.next_message() {
                Ok(Some(_)) => continue,
                Ok(None) => break,
                Err(e) => {
                    // once poisoned, the error is sticky and feeds are
                    // dropped rather than accumulated
                    prop_assert_eq!(dec.next_message(), Err(e));
                    dec.feed(&wire);
                    prop_assert_eq!(dec.buffered(), 0);
                    break;
                }
            }
        }
        prop_assert!(dec.buffered() <= wire.len());
    }

    #[test]
    fn decoded_garbage_roundtrips(msg_parts in message_strategy(), flips in 0u8..8) {
        let (sender, records) = &msg_parts;
        // whatever decode accepts, encode must reproduce: the codec is
        // a bijection between valid frames and messages
        let mut frame = codec::encode(&build(*sender, records));
        let len = frame.len();
        for k in 0..flips {
            let pos = (k as usize * 7919) % len;
            frame[pos] ^= 1 << (k % 8);
        }
        if let Ok(m) = codec::decode(&frame) {
            let reencoded = codec::encode(&m);
            prop_assert_eq!(
                &frame[..reencoded.len()],
                &reencoded[..],
                "decode/encode must agree with the consumed prefix"
            );
        }
    }
}

//! Round-trip fuzzing for the digest/delta sync codec.
//!
//! Mirrors `codec_fuzz.rs` for the protocol-v3 bodies: arbitrary
//! `Digest` and `Delta` payloads must encode/decode bit-identically,
//! and hostile inputs — truncations, single-byte corruption, random
//! garbage — must come back as typed [`DecodeError`]s, never panics.
//! Digest/delta frames arrive from untrusted peers just like record
//! batches do.

#![recursion_limit = "256"]

use bartercast_core::codec::{self, BufPool, DecodeError, MAX_RECORDS};
use bartercast_core::{DeltaMsg, Frontier, TransferRecord};
use bartercast_util::units::{Bytes, PeerId, Seconds};
use proptest::prelude::*;

/// An arbitrary frontier: unconstrained count, timestamp, checksum.
fn frontier_strategy() -> impl Strategy<Value = Frontier> {
    (0u32..u32::MAX, 0u64..u64::MAX, 0u64..u64::MAX).prop_map(|(count, ts, sum)| Frontier {
        count,
        max_ts: Seconds(ts),
        checksum: sum,
    })
}

/// An arbitrary delta: any sender/flag/stamp, up to a full batch of
/// records with unconstrained counters (varint encoding must handle
/// `u64::MAX` as readily as zero).
fn delta_strategy() -> impl Strategy<Value = DeltaMsg> {
    (
        0u32..u32::MAX,
        any::<bool>(),
        frontier_strategy(),
        prop::collection::vec((0u32..u32::MAX, 0u64..u64::MAX, 0u64..u64::MAX), 0..64),
    )
        .prop_map(|(sender, full, stamp, records)| DeltaMsg {
            sender: PeerId(sender),
            full,
            stamp,
            records: records
                .into_iter()
                .map(|(p, up, down)| TransferRecord {
                    peer: PeerId(p),
                    up: Bytes(up),
                    down: Bytes(down),
                })
                .collect(),
        })
}

fn encode_digest(sender: PeerId, claim: &Frontier) -> Vec<u8> {
    let mut pool = BufPool::new();
    let mut buf = pool.take();
    codec::encode_digest_into(sender, claim, &mut buf);
    let bytes = buf.to_vec();
    pool.put(buf);
    bytes
}

fn encode_delta(delta: &DeltaMsg) -> Vec<u8> {
    let mut pool = BufPool::new();
    let mut buf = pool.take();
    codec::encode_delta_into(delta, &mut buf);
    let bytes = buf.to_vec();
    pool.put(buf);
    bytes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn digest_roundtrip_is_bit_identical(
        sender in 0u32..u32::MAX,
        claim in frontier_strategy(),
    ) {
        let frame = encode_digest(PeerId(sender), &claim);
        let (back_sender, back_claim) =
            codec::decode_digest(&frame).expect("own digest must decode");
        prop_assert_eq!(back_sender, PeerId(sender));
        prop_assert_eq!(back_claim, claim);
        // re-encoding the decoded digest reproduces the exact bytes
        let frame2 = encode_digest(back_sender, &back_claim);
        prop_assert_eq!(&frame[..], &frame2[..]);
    }

    #[test]
    fn delta_roundtrip_is_bit_identical(delta in delta_strategy()) {
        let frame = encode_delta(&delta);
        let back = codec::decode_delta(&frame).expect("own delta must decode");
        prop_assert_eq!(&back, &delta);
        let frame2 = encode_delta(&back);
        prop_assert_eq!(&frame[..], &frame2[..]);
    }

    #[test]
    fn pooled_buffers_do_not_leak_prior_frames(
        delta in delta_strategy(),
        sender in 0u32..u32::MAX,
        claim in frontier_strategy(),
    ) {
        // a buffer recycled through the pool must produce the same
        // bytes as a fresh one — stale contents from the previous
        // frame never bleed into the next encode
        let mut pool = BufPool::new();
        let mut buf = pool.take();
        codec::encode_delta_into(&delta, &mut buf);
        pool.put(buf);
        let mut reused = pool.take();
        codec::encode_digest_into(PeerId(sender), &claim, &mut reused);
        prop_assert_eq!(&reused[..], &encode_digest(PeerId(sender), &claim)[..]);
        pool.put(reused);
    }

    #[test]
    fn every_digest_truncation_errors_not_panics(
        sender in 0u32..u32::MAX,
        claim in frontier_strategy(),
    ) {
        let frame = encode_digest(PeerId(sender), &claim);
        for cut in 0..frame.len() {
            // fields parse left-to-right and the full frame consumes
            // every byte, so no strict prefix can also be complete
            prop_assert!(
                codec::decode_digest(&frame[..cut]).is_err(),
                "prefix {cut}/{} decoded",
                frame.len()
            );
        }
    }

    #[test]
    fn every_delta_truncation_errors_not_panics(delta in delta_strategy()) {
        let frame = encode_delta(&delta);
        for cut in 0..frame.len() {
            prop_assert!(
                codec::decode_delta(&frame[..cut]).is_err(),
                "prefix {cut}/{} decoded",
                frame.len()
            );
        }
    }

    #[test]
    fn single_byte_corruption_never_panics(
        delta in delta_strategy(),
        pos_seed in 0usize..4096,
        byte in 0u8..=255,
    ) {
        let mut frame = encode_delta(&delta);
        let pos = pos_seed % frame.len();
        frame[pos] = byte;
        // corrupted frames either fail with a typed error or decode to
        // some (different) delta; both are fine — panicking is not
        let _ = codec::decode_delta(&frame);
        let _ = codec::decode_digest(&frame);
    }

    #[test]
    fn random_garbage_never_panics(garbage in prop::collection::vec(0u8..=255, 0..256)) {
        match codec::decode_delta(&garbage) {
            Ok(d) => {
                // lucky garbage must at least be self-consistent
                prop_assert!(d.records.len() <= MAX_RECORDS);
                prop_assert_eq!(garbage[0], codec::FRONTIER_VERSION);
            }
            Err(
                DecodeError::Truncated
                | DecodeError::BadVersion(_)
                | DecodeError::TooManyRecords(_),
            ) => {}
            Err(e @ (DecodeError::BadMagic(_) | DecodeError::FrameTooLarge(_))) => {
                // digest/delta bodies have no magic byte and no inner
                // length prefix; those variants belong to the records
                // codec and the stream decoder respectively
                prop_assert!(false, "delta decode returned {e}");
            }
        }
        let _ = codec::decode_digest(&garbage);
    }

    #[test]
    fn uvarint_roundtrips_and_rejects_overlong_runs(
        v in 0u64..u64::MAX,
        pad in 1usize..12,
    ) {
        let mut wire = bytes::BytesMut::new();
        codec::put_uvarint(&mut wire, v);
        prop_assert!(wire.len() <= 10);
        let mut cursor = &wire[..];
        prop_assert_eq!(codec::get_uvarint(&mut cursor), Ok(v));
        prop_assert!(cursor.is_empty());
        // a hostile run of continuation bytes must error, not spin
        let hostile = vec![0x80u8; pad.max(10)];
        let mut cursor = &hostile[..];
        prop_assert_eq!(codec::get_uvarint(&mut cursor), Err(DecodeError::Truncated));
    }

    #[test]
    fn stream_decoder_poisoned_by_delta_body_stays_poisoned(delta in delta_strategy()) {
        // a digest/delta body mis-fed to the records stream decoder
        // (framing bug, hostile peer) must poison it exactly like any
        // other corrupt frame: the error is sticky and later feeds are
        // dropped rather than buffered
        let body = encode_delta(&delta);
        let framed = codec::frame(&body);
        let mut dec = codec::FrameDecoder::new();
        dec.feed(&framed);
        let first = dec.next_message();
        prop_assert!(
            first.is_err(),
            "delta body decoded as a records frame: {:?}",
            first
        );
        let err = first.unwrap_err();
        prop_assert_eq!(dec.next_message(), Err(err));
        dec.feed(&framed);
        prop_assert_eq!(dec.buffered(), 0);
    }
}

//! Property tests for incremental cache invalidation: after any
//! interleaving of `add_transfer` / `merge_record` mutations and
//! reputation queries, a `ReputationEngine` must return exactly what a
//! cold engine computes on the same graph — the dirty-endpoint
//! eviction may never serve a stale memoized value.

use bartercast_core::ReputationEngine;
use bartercast_graph::maxflow::Method;
use bartercast_util::units::{Bytes, PeerId};
use proptest::prelude::*;

/// Interleaved mutations and queries over a small peer universe:
/// `(from, to, amount, merge)` per step, with a query sweep after
/// every step.
fn ops_strategy() -> impl Strategy<Value = Vec<(u32, u32, u64, bool)>> {
    prop::collection::vec((0u32..6, 0u32..6, 1u64..1000, prop::bool::ANY), 1..30)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn warm_cache_always_matches_cold_engine(ops in ops_strategy(), qs in 0u32..6, qt in 0u32..6) {
        let mut warm = ReputationEngine::new();
        for &(f, t, c, merge) in &ops {
            if merge {
                warm.graph_mut().merge_record(PeerId(f), PeerId(t), Bytes(c));
            } else {
                warm.graph_mut().add_transfer(PeerId(f), PeerId(t), Bytes(c));
            }
            // query after every mutation so the cache holds entries
            // spanning many graph versions
            let got = warm.reputation(PeerId(qs), PeerId(qt));
            let mut cold = ReputationEngine::new();
            *cold.graph_mut() = warm.graph().clone();
            let want = cold.reputation(PeerId(qs), PeerId(qt));
            prop_assert_eq!(
                got.to_bits(),
                want.to_bits(),
                "stale reputation after {} ops: warm {got} vs cold {want}",
                ops.len()
            );
        }
    }

    #[test]
    fn warm_batch_always_matches_cold_engine(ops in ops_strategy(), source in 0u32..6) {
        let targets: Vec<PeerId> = (0..6).map(PeerId).collect();
        let mut warm = ReputationEngine::new();
        for &(f, t, c, merge) in &ops {
            if merge {
                warm.graph_mut().merge_record(PeerId(f), PeerId(t), Bytes(c));
            } else {
                warm.graph_mut().add_transfer(PeerId(f), PeerId(t), Bytes(c));
            }
            let got = warm.reputations_from(PeerId(source), &targets);
            let mut cold = ReputationEngine::new();
            *cold.graph_mut() = warm.graph().clone();
            for (&j, &g) in targets.iter().zip(&got) {
                let want = cold.reputation(PeerId(source), j);
                prop_assert_eq!(g.to_bits(), want.to_bits(), "R_{source}({j})");
            }
        }
    }

    #[test]
    fn full_sweep_memo_with_tiny_budget_is_never_stale(
        ops in ops_strategy(),
        budget in 0usize..8,
    ) {
        // the Bounded(2) batch path memoizes each evaluator's *entire*
        // single-source result set under a per-entry LRU budget;
        // neither the full-sweep fill nor the eviction may ever
        // surface a stale value, at any budget (including 0, where
        // every insertion is immediately evicted)
        let targets: Vec<PeerId> = (0..6).map(PeerId).collect();
        let mut warm = ReputationEngine::new().with_cache_budget(budget);
        for (step, &(f, t, c, merge)) in ops.iter().enumerate() {
            if merge {
                warm.graph_mut().merge_record(PeerId(f), PeerId(t), Bytes(c));
            } else {
                warm.graph_mut().add_transfer(PeerId(f), PeerId(t), Bytes(c));
            }
            // rotate the evaluator so sweeps from many sources compete
            // for the budget and eviction actually fires
            let source = PeerId((step % 6) as u32);
            let got = warm.reputations_from(source, &targets);
            let mut cold = ReputationEngine::new();
            *cold.graph_mut() = warm.graph().clone();
            for (&j, &g) in targets.iter().zip(&got) {
                let want = cold.reputation(source, j);
                prop_assert_eq!(
                    g.to_bits(),
                    want.to_bits(),
                    "R_{source:?}({j}) stale at budget {budget}"
                );
            }
        }
    }

    #[test]
    fn unbounded_batch_always_matches_cold_engine(ops in ops_strategy(), source in 0u32..6) {
        // the unbounded batch path routes through the Gomory–Hu tree
        // whenever the graph happens to be exactly symmetric (zero
        // tolerance) and per-pair Dinic otherwise; both branches must
        // agree bitwise with a cold per-pair engine at every version
        let targets: Vec<PeerId> = (0..6).map(PeerId).collect();
        let mut warm = ReputationEngine::new().with_method(Method::Dinic);
        for &(f, t, c, merge) in &ops {
            if merge {
                warm.graph_mut().merge_record(PeerId(f), PeerId(t), Bytes(c));
            } else {
                warm.graph_mut().add_transfer(PeerId(f), PeerId(t), Bytes(c));
            }
            // mirror every mutation with probability ~1/2 via the merge
            // flag so symmetric graphs (tree branch) actually occur
            if merge {
                warm.graph_mut().merge_record(PeerId(t), PeerId(f), Bytes(c));
            }
            let got = warm.reputations_from(PeerId(source), &targets);
            let mut cold = ReputationEngine::new().with_method(Method::Dinic);
            *cold.graph_mut() = warm.graph().clone();
            for (&j, &g) in targets.iter().zip(&got) {
                let want = cold.reputation(PeerId(source), j);
                prop_assert_eq!(g.to_bits(), want.to_bits(), "R_{source}({j})");
            }
        }
    }

    #[test]
    fn patched_tree_reputations_match_cold_engine(ops in ops_strategy(), source in 0u32..6) {
        // the unbounded sweep path keeps its Gomory–Hu tree current by
        // incremental patching (small dirty sets never trigger a full
        // rebuild); reputation brackets served off a patched tree must
        // agree bitwise with a cold engine whose tree is built from
        // scratch, at every version
        let targets: Vec<PeerId> = (0..6).map(PeerId).collect();
        let mut warm = ReputationEngine::new().with_method(Method::Dinic);
        // symmetric base so the tree backend is admissible throughout
        for i in 0..6u32 {
            warm.graph_mut().add_transfer(PeerId(i), PeerId((i + 1) % 6), Bytes(10));
            warm.graph_mut().add_transfer(PeerId((i + 1) % 6), PeerId(i), Bytes(10));
        }
        warm.reputations_from(PeerId(source), &targets);
        let rebuilds_after_base = warm.stats().tree_rebuilds;
        for &(f, t, c, _) in &ops {
            if f == t {
                continue;
            }
            // mirrored mutation: two dirty nodes, zero asymmetry
            warm.graph_mut().add_transfer(PeerId(f), PeerId(t), Bytes(c));
            warm.graph_mut().add_transfer(PeerId(t), PeerId(f), Bytes(c));
            let got = warm.reputations_from(PeerId(source), &targets);
            let mut cold = ReputationEngine::new().with_method(Method::Dinic);
            *cold.graph_mut() = warm.graph().clone();
            for (&j, &g) in targets.iter().zip(&got) {
                let want = cold.reputation(PeerId(source), j);
                prop_assert_eq!(g.to_bits(), want.to_bits(), "R_{source}({j})");
            }
        }
        let stats = warm.stats();
        prop_assert_eq!(
            stats.tree_rebuilds, rebuilds_after_base,
            "every post-base version bump must patch, not rebuild"
        );
        if ops.iter().any(|&(f, t, _, _)| f != t) {
            prop_assert!(stats.tree_patches > 0, "patch path never exercised");
        }
    }

    #[test]
    fn journal_survives_long_sync_gaps(
        ops in ops_strategy(),
        gap in 1usize..3,
        qs in 0u32..6,
        qt in 0u32..6,
    ) {
        // the journal reads per-node change versions instead of a
        // capped change log, so a warm cache that falls arbitrarily
        // far behind (here: multiples of the old 4096-entry cap
        // between syncs) must still evict precisely and never go stale
        let mut warm = ReputationEngine::new();
        let churn = gap * bartercast_core::repcache::DEFAULT_JOURNAL_CAPACITY;
        for &(f, t, c, merge) in &ops {
            if merge {
                warm.graph_mut().merge_record(PeerId(f), PeerId(t), Bytes(c));
            } else {
                warm.graph_mut().add_transfer(PeerId(f), PeerId(t), Bytes(c));
            }
            // long burst of mutations with no query in between
            for k in 0..churn as u64 {
                warm.graph_mut().add_transfer(
                    PeerId((k % 6) as u32),
                    PeerId(((k + 1) % 6) as u32),
                    Bytes(1 + k % 97),
                );
            }
            let got = warm.reputation(PeerId(qs), PeerId(qt));
            let mut cold = ReputationEngine::new();
            *cold.graph_mut() = warm.graph().clone();
            let want = cold.reputation(PeerId(qs), PeerId(qt));
            prop_assert_eq!(got.to_bits(), want.to_bits(), "stale after {}-mutation gap", churn);
        }
    }

    #[test]
    fn adversarial_query_mix_never_stale_under_lru(
        ops in ops_strategy(),
        budget in 1usize..6,
        hot_s in 0u32..6,
        hot_t in 0u32..6,
    ) {
        // adversarial mix for the per-entry LRU: one hot pair queried
        // between sweeps from every other evaluator, with a budget
        // small enough that eviction fires constantly; hits and misses
        // may vary, values may not
        let targets: Vec<PeerId> = (0..6).map(PeerId).collect();
        let mut warm = ReputationEngine::new().with_cache_budget(budget);
        for (step, &(f, t, c, merge)) in ops.iter().enumerate() {
            if merge {
                warm.graph_mut().merge_record(PeerId(f), PeerId(t), Bytes(c));
            } else {
                warm.graph_mut().add_transfer(PeerId(f), PeerId(t), Bytes(c));
            }
            let hot = warm.reputation(PeerId(hot_s), PeerId(hot_t));
            let sweeper = PeerId((step % 6) as u32);
            let swept = warm.reputations_from(sweeper, &targets);
            let hot_again = warm.reputation(PeerId(hot_s), PeerId(hot_t));
            prop_assert_eq!(hot.to_bits(), hot_again.to_bits(), "hot pair value drifted");
            let mut cold = ReputationEngine::new();
            *cold.graph_mut() = warm.graph().clone();
            prop_assert_eq!(
                hot.to_bits(),
                cold.reputation(PeerId(hot_s), PeerId(hot_t)).to_bits(),
                "hot pair stale at budget {budget}"
            );
            for (&j, &g) in targets.iter().zip(&swept) {
                prop_assert_eq!(g.to_bits(), cold.reputation(sweeper, j).to_bits());
            }
        }
    }

    #[test]
    fn k_hop_eviction_never_stale_across_sync_gaps(
        ops in ops_strategy(),
        k in 3usize..6,
        gap in 1usize..3,
        qs in 0u32..6,
        qt in 0u32..6,
    ) {
        // finite bounds k ≥ 3 evict the k-hop dirty neighbourhood
        // instead of bare endpoints; like `journal_survives_long_sync_gaps`
        // this interleaves mutation bursts far past the old change-log
        // cap with queries, and demands bitwise agreement with a cold
        // engine at every step — the widened rule may never under-evict
        let mut warm = ReputationEngine::new().with_method(Method::Bounded(k));
        let churn = gap * bartercast_core::repcache::DEFAULT_JOURNAL_CAPACITY;
        for &(f, t, c, merge) in &ops {
            if merge {
                warm.graph_mut().merge_record(PeerId(f), PeerId(t), Bytes(c));
            } else {
                warm.graph_mut().add_transfer(PeerId(f), PeerId(t), Bytes(c));
            }
            for m in 0..churn as u64 {
                warm.graph_mut().add_transfer(
                    PeerId((m % 6) as u32),
                    PeerId(((m + 1) % 6) as u32),
                    Bytes(1 + m % 97),
                );
            }
            let got = warm.reputation(PeerId(qs), PeerId(qt));
            let mut cold = ReputationEngine::new().with_method(Method::Bounded(k));
            *cold.graph_mut() = warm.graph().clone();
            let want = cold.reputation(PeerId(qs), PeerId(qt));
            prop_assert_eq!(
                got.to_bits(),
                want.to_bits(),
                "stale at k={} after {}-mutation gap", k, churn
            );
        }
    }

    #[test]
    fn k_hop_eviction_spares_entries_outside_the_ball(
        ops in ops_strategy(),
        k in 3usize..6,
    ) {
        // exactness of the k-hop rule: after a mutation, entries whose
        // endpoints both lie outside the reverse-BFS k-ball of the
        // dirty nodes must still be served from the memo cache. The
        // expected ball is recomputed independently here with a plain
        // reverse BFS over `in_edges`.
        let mut warm = ReputationEngine::new().with_method(Method::Bounded(k));
        // two far-apart cliques: mutations from ops land in 0..6, the
        // sentinel pair lives in 100..102 and is never within k hops
        warm.graph_mut().add_transfer(PeerId(100), PeerId(101), Bytes(7));
        warm.graph_mut().add_transfer(PeerId(101), PeerId(102), Bytes(7));
        for &(f, t, c, merge) in &ops {
            if merge {
                warm.graph_mut().merge_record(PeerId(f), PeerId(t), Bytes(c));
            } else {
                warm.graph_mut().add_transfer(PeerId(f), PeerId(t), Bytes(c));
            }
            // warm the sentinel entry, then mutate inside the far
            // clique and re-query: the second query must be a hit
            let first = warm.reputation(PeerId(100), PeerId(102));
            warm.graph_mut().add_transfer(PeerId(f), PeerId(t), Bytes(c));
            // independent ball recomputation: reverse BFS depth k from
            // the dirty endpoints
            let mut ball: std::collections::BTreeSet<u32> = [f, t].into_iter().collect();
            let mut frontier: Vec<u32> = ball.iter().copied().collect();
            for _ in 0..k {
                let mut next = Vec::new();
                for node in frontier {
                    for (pred, _) in warm.graph().in_edges(PeerId(node)) {
                        if ball.insert(pred.0) {
                            next.push(pred.0);
                        }
                    }
                }
                frontier = next;
            }
            prop_assert!(!ball.contains(&100) && !ball.contains(&102), "cliques stayed disjoint");
            let hits_before = warm.stats().hits;
            let second = warm.reputation(PeerId(100), PeerId(102));
            prop_assert_eq!(first.to_bits(), second.to_bits());
            prop_assert_eq!(
                warm.stats().hits,
                hits_before + 1,
                "out-of-ball entry (100, 102) was evicted at k={}", k
            );
        }
    }

    #[test]
    fn bounded_one_eviction_is_safe(ops in ops_strategy(), qs in 0u32..6, qt in 0u32..6) {
        // Bounded(1) uses the same incremental eviction rule as
        // Bounded(2); the dirty set is a superset of what it needs.
        let mut warm = ReputationEngine::new().with_method(Method::Bounded(1));
        for &(f, t, c, merge) in &ops {
            if merge {
                warm.graph_mut().merge_record(PeerId(f), PeerId(t), Bytes(c));
            } else {
                warm.graph_mut().add_transfer(PeerId(f), PeerId(t), Bytes(c));
            }
            let got = warm.reputation(PeerId(qs), PeerId(qt));
            let mut cold = ReputationEngine::new().with_method(Method::Bounded(1));
            *cold.graph_mut() = warm.graph().clone();
            prop_assert_eq!(got.to_bits(), cold.reputation(PeerId(qs), PeerId(qt)).to_bits());
        }
    }
}

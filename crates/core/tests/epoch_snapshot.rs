//! Epoch-snapshot consistency under concurrent writes.
//!
//! A published [`EpochView`] is an immutable value: while the owning
//! shard's writer keeps mutating the live graph, concurrent readers
//! of the epoch must never observe a torn cut — every read equals the
//! **pure epoch-version replay**, i.e. the answer of a fresh
//! monolithic engine that applied exactly the mutations up to the
//! publication point and nothing after it. The property here runs a
//! real writer thread against real reader threads and compares every
//! concurrent read bitwise against the replay; the deterministic
//! tests cover the empty-shard and single-peer-shard edge cases the
//! proptest's random populations may not isolate.

use std::sync::Arc;

use bartercast_core::{CommunityPartitioner, ReputationEngine, ShardedEngine};
use bartercast_util::units::{Bytes, PeerId};
use bartercast_util::FxHashMap;
use proptest::prelude::*;

fn p(i: u32) -> PeerId {
    PeerId(i)
}

#[derive(Debug, Clone, Copy)]
struct Op {
    merge: bool,
    from: u32,
    to: u32,
    amount: u64,
}

fn op_strategy(max_node: u32) -> impl Strategy<Value = Op> {
    (any::<bool>(), 0..max_node, 0..max_node, 0u64..2_000_000_000).prop_map(
        |(merge, from, to, amount)| Op {
            merge,
            from,
            to,
            amount,
        },
    )
}

fn apply_sharded(svc: &mut ShardedEngine, op: Op) {
    if op.merge {
        svc.merge_record(p(op.from), p(op.to), Bytes(op.amount));
    } else {
        svc.add_transfer(p(op.from), p(op.to), Bytes(op.amount));
    }
}

fn apply_mono(mono: &mut ReputationEngine, op: Op) {
    if op.merge {
        mono.graph_mut()
            .merge_record(p(op.from), p(op.to), Bytes(op.amount));
    } else {
        mono.graph_mut()
            .add_transfer(p(op.from), p(op.to), Bytes(op.amount));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Readers racing a live writer always see exactly the published
    /// cut: every concurrent epoch read is bitwise equal to replaying
    /// the pre-publication prefix into a fresh monolithic engine.
    #[test]
    fn concurrent_reads_equal_prefix_replay(
        prefix in prop::collection::vec(op_strategy(20), 5..60),
        suffix in prop::collection::vec(op_strategy(20), 20..120),
    ) {
        const NODES: u32 = 20;
        const SHARDS: usize = 4;
        let mut svc = ShardedEngine::new(SHARDS);
        for &op in &prefix {
            apply_sharded(&mut svc, op);
        }
        let views = svc.publish_all();

        // the pure replay of the publication prefix
        let mut replay = ReputationEngine::new();
        for &op in &prefix {
            apply_mono(&mut replay, op);
        }
        let targets: Vec<PeerId> = (0..NODES).map(p).collect();
        let mut expected: FxHashMap<u32, Vec<u64>> = FxHashMap::default();
        let owner_of: Vec<usize> = (0..NODES).map(|i| svc.shard_of(p(i))).collect();
        for i in 0..NODES {
            expected.insert(
                i,
                replay
                    .reputations_from(p(i), &targets)
                    .iter()
                    .map(|v| v.to_bits())
                    .collect(),
            );
        }

        std::thread::scope(|scope| {
            // writer: keeps mutating the live shards after publication
            let writer = scope.spawn(|| {
                for &op in &suffix {
                    apply_sharded(&mut svc, op);
                }
            });
            // readers: hammer the frozen epochs while the writer runs
            let mut readers = Vec::new();
            for r in 0..2usize {
                let views = &views;
                let targets = &targets;
                let expected = &expected;
                let owner_of = &owner_of;
                readers.push(scope.spawn(move || {
                    for pass in 0..4 {
                        for i in 0..NODES {
                            let view = &views[owner_of[i as usize]];
                            let got: Vec<u64> = view
                                .reputations_from(p(i), targets)
                                .iter()
                                .map(|v| v.to_bits())
                                .collect();
                            assert_eq!(
                                &got, &expected[&i],
                                "reader {r} pass {pass}: evaluator {i} saw a torn cut"
                            );
                        }
                    }
                }));
            }
            writer.join().unwrap();
            for reader in readers {
                reader.join().unwrap();
            }
        });

        // after the writer finishes the epochs still serve the old cut
        for i in 0..NODES {
            let view = &views[owner_of[i as usize]];
            let got: Vec<u64> = view
                .reputations_from(p(i), &targets)
                .iter()
                .map(|v| v.to_bits())
                .collect();
            prop_assert_eq!(&got, &expected[&i], "evaluator {} drifted post-join", i);
        }
    }
}

/// An epoch published by a shard that owns no peers (and stores no
/// edges) answers every query with the neutral reputation.
#[test]
fn empty_shard_epoch_serves_neutral_answers() {
    let mut svc = ShardedEngine::new(8);
    // two peers, one edge: at most a handful of the 8 shards are
    // populated, the rest publish empty epochs
    svc.add_transfer(p(1), p(0), Bytes::from_mb(100));
    let views = svc.publish_all();
    let populated: Vec<usize> = vec![svc.shard_of(p(0)), svc.shard_of(p(1))];
    let mut saw_empty = false;
    for (s, view) in views.iter().enumerate() {
        if populated.contains(&s) {
            continue;
        }
        saw_empty = true;
        assert_eq!(view.graph().node_count(), 0, "shard {s} should be empty");
        assert_eq!(view.reputation(p(0), p(1)), 0.0);
        assert_eq!(
            view.reputations_from(p(5), &[p(0), p(1), p(5)]),
            vec![0.0, 0.0, 0.0]
        );
    }
    assert!(saw_empty, "fixture must leave at least one shard empty");
}

/// A shard owning exactly one peer still replicates that peer's
/// two-hop neighbourhood: its epoch answers the owned evaluator
/// bit-identically to the monolith, while a concurrent writer mutates
/// other shards.
#[test]
fn single_peer_shard_epoch_matches_monolith() {
    // community partition: peer 9 alone in community 1 → shard 1;
    // everyone else in community 0 → shard 0 (of 2 shards)
    let mut labels = FxHashMap::default();
    for i in 0..12u32 {
        labels.insert(p(i), u32::from(i == 9));
    }
    let mut svc =
        ShardedEngine::new(2).with_partitioner(Arc::new(CommunityPartitioner::new(labels)));
    let mut mono = ReputationEngine::new();
    let ops = [
        (0u32, 9u32, 700u64),
        (9, 2, 350),
        (2, 9, 125),
        (3, 4, 900),
        (4, 9, 60),
        (9, 0, 40),
        (5, 6, 800),
    ];
    for &(f, t, mb) in &ops {
        svc.add_transfer(p(f), p(t), Bytes::from_mb(mb));
        mono.graph_mut()
            .add_transfer(p(f), p(t), Bytes::from_mb(mb));
    }
    assert_eq!(svc.shard_of(p(9)), 1);
    let lone = svc.publish_epoch(1);
    let targets: Vec<PeerId> = (0..12).map(p).collect();
    let expected: Vec<u64> = mono
        .reputations_from(p(9), &targets)
        .iter()
        .map(|v| v.to_bits())
        .collect();
    std::thread::scope(|scope| {
        let writer = scope.spawn(|| {
            for round in 1..50u64 {
                svc.add_transfer(p(3), p(4), Bytes::from_mb(round));
                svc.merge_record(p(5), p(6), Bytes::from_gb(round));
            }
        });
        let lone = &lone;
        let targets = &targets;
        let expected = &expected;
        let reader = scope.spawn(move || {
            for _ in 0..20 {
                let got: Vec<u64> = lone
                    .reputations_from(p(9), targets)
                    .iter()
                    .map(|v| v.to_bits())
                    .collect();
                assert_eq!(&got, expected, "lone-peer epoch diverged from monolith");
            }
        });
        writer.join().unwrap();
        reader.join().unwrap();
    });
}

//! Lifting the Gomory–Hu flow bound to the reputation level.
//!
//! `tree_flow_lower_bounds_directed_flow` (in `bartercast-graph`) pins
//! the *flow-level* guarantee: on a directed graph, the tree flow
//! `t = tree(i, j)` lower-bounds the exact directed maxflow in both
//! directions, `t ≤ fwd` and `t ≤ bwd`. Equation 1 is monotone —
//! `m(toward, away) = atan((toward − away)/u)/(π/2)` increases in
//! `toward` and decreases in `away` — so the flow bound lifts directly
//! to a *reputation bracket*:
//!
//! ```text
//! m(t, bwd)  ≤  m(fwd, bwd) = rep_exact  ≤  m(fwd, t)
//! m(t, bwd)  ≤  m(t, t) = 0 = rep_tree   ≤  m(fwd, t)
//! ```
//!
//! Both the exact reputation and the tree-served reputation (which sees
//! the symmetric pair `(t, t)`) lie in the same interval, so
//!
//! ```text
//! |rep_tree − rep_exact| ≤ m(fwd, t) − m(t, bwd)
//!                        ≤ ((fwd − t) + (bwd − t)) / (u · π/2)
//! ```
//!
//! with the last step by the Lipschitz constant of `x ↦ atan(x/u)/(π/2)`
//! (derivative at most `1/(u·π/2)`). This suite asserts every
//! inequality on random directed graphs, including end-to-end through
//! `ReputationEngine` batch sweeps forced onto the tree backend —
//! closing the ROADMAP item that only the flow-level half was proven.

use bartercast_core::repcache::ReputationEngine;
use bartercast_core::ReputationMetric;
use bartercast_graph::contribution::ContributionGraph;
use bartercast_graph::gomoryhu::GomoryHuTree;
use bartercast_graph::maxflow::{self, Method};
use bartercast_util::units::{Bytes, PeerId};
use proptest::prelude::*;
use std::f64::consts::FRAC_PI_2;

const N: u32 = 10;
const TOL: f64 = 1e-12;

fn build_directed(edges: &[(u32, u32, u64)]) -> ContributionGraph {
    let mut g = ContributionGraph::new();
    for &(f, t, c) in edges {
        if f != t {
            g.add_transfer(PeerId(f), PeerId(t), Bytes(c));
        }
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn tree_flow_bound_lifts_to_a_reputation_bracket(
        edges in prop::collection::vec((0u32..N, 0u32..N, 1u64..1000), 1..36),
        unit_mb in 1u64..64,
    ) {
        let g = build_directed(&edges);
        let tree = GomoryHuTree::build(&g);
        let unit = Bytes::from_mb(unit_mb);
        let metric = ReputationMetric::Arctan { unit };
        let lipschitz = 1.0 / (unit.0 as f64 * FRAC_PI_2);
        for i in 0..N {
            for j in 0..N {
                if i == j {
                    continue;
                }
                let t = tree.flow(PeerId(i), PeerId(j));
                // Equation 1 for R_i(j): toward = maxflow(j → i)
                let fwd = maxflow::compute(&g, PeerId(j), PeerId(i), Method::Dinic);
                let bwd = maxflow::compute(&g, PeerId(i), PeerId(j), Method::Dinic);
                prop_assert!(t <= fwd && t <= bwd, "flow-level bound broken at ({i}, {j})");

                let rep_exact = metric.eval(fwd, bwd);
                let lower = metric.eval(t, bwd);
                let upper = metric.eval(fwd, t);
                // the monotone lift itself
                prop_assert!(lower <= rep_exact + TOL, "lower lift at ({i}, {j})");
                prop_assert!(rep_exact <= upper + TOL, "upper lift at ({i}, {j})");
                // the tree-served value m(t, t) = 0 shares the bracket,
                // so the engine's tree error is bounded by its width
                prop_assert!(lower <= TOL && -TOL <= upper, "0 outside bracket at ({i}, {j})");
                let width = upper - lower;
                prop_assert!(
                    rep_exact.abs() <= width + TOL,
                    "tree error {} exceeds bracket width {width} at ({i}, {j})",
                    rep_exact.abs()
                );
                // and the width itself obeys the Lipschitz bound
                let slack = ((fwd.0 - t.0) + (bwd.0 - t.0)) as f64 * lipschitz;
                prop_assert!(
                    width <= slack + TOL,
                    "bracket {width} exceeds Lipschitz slack {slack} at ({i}, {j})"
                );
            }
        }
    }

    #[test]
    fn engine_tree_sweeps_stay_within_the_lifted_bound(
        edges in prop::collection::vec((0u32..N, 0u32..N, 1u64..1000), 1..30),
        unit_mb in 1u64..64,
    ) {
        // end to end: a batch sweep forced onto the Gomory–Hu backend
        // (tolerance 1.0 admits any asymmetry) must return reputations
        // within the bracket derived from the exact directed flows
        let g = build_directed(&edges);
        let unit = Bytes::from_mb(unit_mb);
        let metric = ReputationMetric::Arctan { unit };
        let mut engine = ReputationEngine::new()
            .with_method(Method::Dinic)
            .with_metric(metric)
            .with_flow_tolerance(1.0);
        for (f, t, c) in g.edges() {
            engine.graph_mut().add_transfer(f, t, c);
        }
        let tree = GomoryHuTree::build(&g);
        let targets: Vec<PeerId> = (0..N).map(PeerId).collect();
        for i in 0..N {
            let reps = engine.reputations_from(PeerId(i), &targets);
            for (j, rep) in targets.iter().zip(&reps) {
                if *j == PeerId(i) {
                    continue;
                }
                let t = tree.flow(PeerId(i), *j);
                let fwd = maxflow::compute(&g, *j, PeerId(i), Method::Dinic);
                let bwd = maxflow::compute(&g, PeerId(i), *j, Method::Dinic);
                let lower = metric.eval(t, bwd);
                let upper = metric.eval(fwd, t);
                prop_assert!(
                    lower - TOL <= *rep && *rep <= upper + TOL,
                    "engine rep {rep} outside [{lower}, {upper}] at ({i}, {:?})",
                    j
                );
            }
        }
        prop_assert!(engine.stats().tree_sweeps > 0, "sweep never hit the tree backend");
    }
}

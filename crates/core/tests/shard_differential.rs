//! Shard-vs-monolith differential suite.
//!
//! The sharded service's whole correctness claim is *bit-identity*:
//! for any mutation history and any shard count, every subjective
//! reputation equals the monolithic [`ReputationEngine`]'s answer on
//! the union graph, bit for bit. The properties here drive both
//! engines with random mutation batches — delta transfers and
//! max-merged gossip records, node populations that grow mid-run,
//! queries interleaved densely or withheld across long sync gaps —
//! and compare `reputations_from` / `reputation` via `f64::to_bits`
//! at shard counts {1, 2, 4, 8}.
//!
//! A 64-node pinned fixture closes the loop against history: its
//! all-pairs checksum is a hard-coded constant, so a regression that
//! changes sharded *and* monolithic results in lockstep (which the
//! differential property cannot see) still fails.

use std::sync::Arc;

use bartercast_core::{CommunityPartitioner, HashPartitioner, ReputationEngine, ShardedEngine};
use bartercast_util::units::{Bytes, PeerId};
use bartercast_util::FxHashMap;
use proptest::prelude::*;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn p(i: u32) -> PeerId {
    PeerId(i)
}

/// One graph mutation: `merge == false` is a delta `add_transfer`,
/// `merge == true` a max-merged gossip record.
#[derive(Debug, Clone, Copy)]
struct Op {
    merge: bool,
    from: u32,
    to: u32,
    amount: u64,
}

fn op_strategy(max_node: u32) -> impl Strategy<Value = Op> {
    (any::<bool>(), 0..max_node, 0..max_node, 0u64..2_000_000_000).prop_map(
        |(merge, from, to, amount)| Op {
            merge,
            from,
            to,
            amount,
        },
    )
}

fn apply_mono(mono: &mut ReputationEngine, op: Op) {
    if op.merge {
        mono.graph_mut()
            .merge_record(p(op.from), p(op.to), Bytes(op.amount));
    } else {
        mono.graph_mut()
            .add_transfer(p(op.from), p(op.to), Bytes(op.amount));
    }
}

fn apply_sharded(svc: &mut ShardedEngine, op: Op) {
    if op.merge {
        svc.merge_record(p(op.from), p(op.to), Bytes(op.amount));
    } else {
        svc.add_transfer(p(op.from), p(op.to), Bytes(op.amount));
    }
}

/// Assert every evaluator's full sweep and a point query agree bitwise.
fn assert_identical(
    mono: &mut ReputationEngine,
    svc: &mut ShardedEngine,
    nodes: u32,
    context: &str,
) {
    let targets: Vec<PeerId> = (0..nodes).map(p).collect();
    for i in 0..nodes {
        let a = mono.reputations_from(p(i), &targets);
        let b = svc.reputations_from(p(i), &targets);
        let a_bits: Vec<u64> = a.iter().map(|v| v.to_bits()).collect();
        let b_bits: Vec<u64> = b.iter().map(|v| v.to_bits()).collect();
        assert_eq!(a_bits, b_bits, "{context}: sweep of evaluator {i} diverged");
        let j = (i * 7 + 3) % nodes;
        assert_eq!(
            mono.reputation(p(i), p(j)).to_bits(),
            svc.reputation(p(i), p(j)).to_bits(),
            "{context}: point query R_{i}({j}) diverged"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Dense interleaving: query every evaluator after every small
    /// mutation batch, at every shard count.
    #[test]
    fn sharded_sweeps_match_monolith_interleaved(
        batches in prop::collection::vec(
            prop::collection::vec(op_strategy(24), 1..12), 1..5),
    ) {
        for shards in SHARD_COUNTS {
            let mut mono = ReputationEngine::new();
            let mut svc = ShardedEngine::new(shards);
            for (n, batch) in batches.iter().enumerate() {
                for &op in batch {
                    apply_mono(&mut mono, op);
                    apply_sharded(&mut svc, op);
                }
                assert_identical(&mut mono, &mut svc, 24,
                    &format!("shards={shards} batch={n}"));
            }
        }
    }

    /// Long sync gap: hundreds of mutations (touching a population
    /// that grows mid-run: ids 0..16, then 0..40, then 0..64) land
    /// before the first query, so the engines' incremental
    /// invalidation digests the whole backlog at once.
    #[test]
    fn sharded_sweeps_match_monolith_after_long_gap(
        early in prop::collection::vec(op_strategy(16), 20..80),
        mid in prop::collection::vec(op_strategy(40), 20..80),
        late in prop::collection::vec(op_strategy(64), 20..80),
    ) {
        for shards in SHARD_COUNTS {
            let mut mono = ReputationEngine::new();
            let mut svc = ShardedEngine::new(shards);
            for &op in early.iter().chain(&mid).chain(&late) {
                apply_mono(&mut mono, op);
                apply_sharded(&mut svc, op);
            }
            assert_identical(&mut mono, &mut svc, 64,
                &format!("shards={shards} after gap"));
        }
    }

    /// The community partitioner is just another total assignment:
    /// bit-identity must hold under it too, including for unlabeled
    /// (hash-fallback) peers.
    #[test]
    fn community_partitioner_preserves_bit_identity(
        ops in prop::collection::vec(op_strategy(32), 10..120),
        communities in prop::collection::vec(0u32..6, 20..21),
    ) {
        let mut labels = FxHashMap::default();
        for (i, &c) in communities.iter().enumerate() {
            labels.insert(p(i as u32), c); // peers 20..32 stay unlabeled
        }
        for shards in SHARD_COUNTS {
            let mut mono = ReputationEngine::new();
            let mut svc = ShardedEngine::new(shards)
                .with_partitioner(Arc::new(CommunityPartitioner::new(labels.clone())));
            for &op in &ops {
                apply_mono(&mut mono, op);
                apply_sharded(&mut svc, op);
            }
            assert_identical(&mut mono, &mut svc, 32,
                &format!("shards={shards} community partition"));
        }
    }

    /// Repartitioning a live service (new shard count, new
    /// partitioner) preserves every reputation bit-for-bit.
    #[test]
    fn repartition_is_invisible_to_queries(
        ops in prop::collection::vec(op_strategy(24), 10..80),
        new_shards in 1usize..9,
    ) {
        let mut mono = ReputationEngine::new();
        let mut svc = ShardedEngine::new(4);
        for &op in &ops {
            apply_mono(&mut mono, op);
            apply_sharded(&mut svc, op);
        }
        svc.repartition(new_shards, Arc::new(HashPartitioner));
        assert_identical(&mut mono, &mut svc, 24,
            &format!("after repartition to {new_shards}"));
    }
}

/// Deterministic 64-node, 512-edge fixture from a fixed LCG stream.
fn pinned_ops() -> Vec<Op> {
    let mut x = 0x243f6a8885a308d3u64; // pi digits, nothing up the sleeve
    let mut step = move || {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        x
    };
    (0..512)
        .map(|_| {
            let a = step();
            let b = step();
            Op {
                merge: a & 1 == 1,
                from: ((a >> 33) % 64) as u32,
                to: ((b >> 33) % 64) as u32,
                amount: b % 4_000_000_000,
            }
        })
        .collect()
}

/// Wrapping sum of `to_bits` over the all-pairs reputation matrix.
fn all_pairs_checksum(values: impl Iterator<Item = f64>) -> u64 {
    values.fold(0u64, |acc, v| acc.wrapping_add(v.to_bits()))
}

/// The checksum of the pinned fixture, computed once and frozen.
/// Changing the flow kernel, the metric, or the merge semantics —
/// even in a way that keeps sharded and monolithic engines in
/// lockstep — moves this constant and must be a conscious decision.
const PINNED_CHECKSUM: u64 = 0xc18154679b29fd84;

/// On a planted-partition graph the community partitioner keeps every
/// intra-community edge shard-local, while the structure-oblivious
/// hash partitioner scatters them — the gap is the replication
/// overhead the community assignment exists to avoid.
#[test]
fn community_partitioner_is_local_on_planted_graph() {
    const COMMUNITIES: u32 = 8;
    const SIZE: u32 = 16;
    const SHARDS: usize = 4;
    let mut labels = FxHashMap::default();
    for i in 0..COMMUNITIES * SIZE {
        labels.insert(p(i), i / SIZE);
    }
    let build = |svc: &mut ShardedEngine| {
        for c in 0..COMMUNITIES {
            let base = c * SIZE;
            // intra-community ring plus chords: all local under the
            // community assignment
            for k in 0..SIZE {
                svc.add_transfer(p(base + k), p(base + (k + 1) % SIZE), Bytes(1000));
                svc.add_transfer(p(base + k), p(base + (k + 5) % SIZE), Bytes(500));
            }
            // one sparse cross-link per community
            svc.add_transfer(p(base), p(((c + 1) % COMMUNITIES) * SIZE), Bytes(10));
        }
    };
    let mut community =
        ShardedEngine::new(SHARDS).with_partitioner(Arc::new(CommunityPartitioner::new(labels)));
    build(&mut community);
    let mut hashed = ShardedEngine::new(SHARDS);
    build(&mut hashed);

    // 256 intra edges vs 8 cross links: only cross links may be remote
    let intra = (COMMUNITIES * SIZE * 2) as f64;
    let total = intra + COMMUNITIES as f64;
    assert!(
        community.locality() >= intra / total,
        "community locality {} below the intra-community fraction",
        community.locality()
    );
    assert!(
        hashed.locality() < 0.5,
        "hash partitioner should scatter the planted graph, locality {}",
        hashed.locality()
    );
    assert!(
        community.stats().replica_edges <= hashed.stats().replica_edges,
        "community partition must not replicate more than hash"
    );
}

#[test]
fn pinned_64_node_fixture_checksum() {
    let targets: Vec<PeerId> = (0..64).map(p).collect();
    let mut mono = ReputationEngine::new();
    for &op in &pinned_ops() {
        apply_mono(&mut mono, op);
    }
    let mono_sum =
        all_pairs_checksum((0..64).flat_map(|i| mono.reputations_from(p(i), &targets).into_iter()));
    assert_eq!(
        mono_sum, PINNED_CHECKSUM,
        "monolithic all-pairs checksum moved: got {mono_sum:#018x}"
    );
    for shards in SHARD_COUNTS {
        let mut svc = ShardedEngine::new(shards);
        for &op in &pinned_ops() {
            apply_sharded(&mut svc, op);
        }
        let sum = all_pairs_checksum(
            (0..64).flat_map(|i| svc.reputations_from(p(i), &targets).into_iter()),
        );
        assert_eq!(
            sum, PINNED_CHECKSUM,
            "sharded ({shards}) all-pairs checksum moved: got {sum:#018x}"
        );
    }
}

//! PSS health diagnostics.
//!
//! A peer sampling service is only as good as the randomness of its
//! views: BarterCast's meeting process assumes samples approximate
//! uniform draws from the live population. This module measures the
//! standard PSS health indicators on a set of nodes:
//!
//! * **in-degree distribution** — how often each peer appears in other
//!   peers' views; a healthy PSS is concentrated around the mean with
//!   no starved or celebrity nodes;
//! * **clustering** — the probability that two of a node's view
//!   entries also know each other; random views have clustering near
//!   `view_size / n`;
//! * **freshness** — mean descriptor age.

use crate::pss::PssNode;
use bartercast_util::stats::Running;
use bartercast_util::units::PeerId;
use bartercast_util::FxHashMap;

/// PSS health indicators over a node population.
#[derive(Debug, Clone)]
pub struct PssHealth {
    /// Mean in-degree (appearances in others' views).
    pub indegree_mean: f64,
    /// Standard deviation of the in-degree.
    pub indegree_stddev: f64,
    /// Number of nodes never referenced by anyone (starved).
    pub starved: usize,
    /// Mean clustering coefficient of the view overlay.
    pub clustering: f64,
    /// Mean descriptor age across all views.
    pub mean_age: f64,
}

/// Measure the health of a PSS overlay.
pub fn health(nodes: &[PssNode]) -> PssHealth {
    let mut indegree: FxHashMap<PeerId, u32> = FxHashMap::default();
    let mut ages = Running::new();
    for node in nodes {
        for d in node.view().entries() {
            *indegree.entry(d.peer).or_insert(0) += 1;
            ages.push(d.age as f64);
        }
    }
    let mut deg = Running::new();
    let mut starved = 0usize;
    for node in nodes {
        let d = indegree.get(&node.owner()).copied().unwrap_or(0);
        if d == 0 {
            starved += 1;
        }
        deg.push(d as f64);
    }
    // clustering: for each node, fraction of view-pairs (a, b) where
    // a's view (if a is in the population) contains b
    let by_id: FxHashMap<PeerId, &PssNode> = nodes.iter().map(|n| (n.owner(), n)).collect();
    let mut clustering = Running::new();
    for node in nodes {
        let entries: Vec<PeerId> = node.view().entries().iter().map(|d| d.peer).collect();
        if entries.len() < 2 {
            continue;
        }
        let mut linked = 0usize;
        let mut pairs = 0usize;
        for (i, &a) in entries.iter().enumerate() {
            for &b in &entries[i + 1..] {
                pairs += 1;
                let ab = by_id.get(&a).is_some_and(|n| n.view().contains(b));
                let ba = by_id.get(&b).is_some_and(|n| n.view().contains(a));
                if ab || ba {
                    linked += 1;
                }
            }
        }
        clustering.push(linked as f64 / pairs as f64);
    }
    PssHealth {
        indegree_mean: deg.mean(),
        indegree_stddev: deg.stddev(),
        starved,
        clustering: clustering.mean(),
        mean_age: ages.mean(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pss::{shuffle, PssConfig};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn mixed_overlay(n: usize, cycles: usize, seed: u64) -> Vec<PssNode> {
        let cfg = PssConfig {
            view_size: 12,
            shuffle_len: 6,
        };
        let mut nodes: Vec<PssNode> = (0..n)
            .map(|i| PssNode::new(PeerId(i as u32), cfg))
            .collect();
        for i in 0..n {
            let next = PeerId(((i + 1) % n) as u32);
            nodes[i].bootstrap([next]);
        }
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..cycles {
            for i in 0..n {
                if let Some(partner) = nodes[i].start_cycle() {
                    let j = partner.index();
                    if i != j && j < n {
                        let (lo, hi) = if i < j { (i, j) } else { (j, i) };
                        let (l, r) = nodes.split_at_mut(hi);
                        shuffle(&mut l[lo], &mut r[0], &mut rng);
                    }
                }
            }
        }
        // a few extra random shuffles to decluster the ring bootstrap
        for _ in 0..cycles {
            let i = rng.gen_range(0..n);
            let j = rng.gen_range(0..n);
            if i != j {
                let (lo, hi) = if i < j { (i, j) } else { (j, i) };
                let (l, r) = nodes.split_at_mut(hi);
                shuffle(&mut l[lo], &mut r[0], &mut rng);
            }
        }
        nodes
    }

    #[test]
    fn converged_overlay_is_healthy() {
        let nodes = mixed_overlay(60, 40, 1);
        let h = health(&nodes);
        // every node's view is full, so total references = 60 * 12
        assert!(
            (h.indegree_mean - 12.0).abs() < 1.0,
            "mean {}",
            h.indegree_mean
        );
        assert_eq!(h.starved, 0, "no node may be starved");
        // balanced in-degrees: stddev well below the mean
        assert!(
            h.indegree_stddev < h.indegree_mean,
            "stddev {}",
            h.indegree_stddev
        );
        // random-ish views: clustering far below 1
        assert!(h.clustering < 0.5, "clustering {}", h.clustering);
    }

    #[test]
    fn fresh_bootstrap_has_zero_age() {
        let cfg = PssConfig::default();
        let mut a = PssNode::new(PeerId(0), cfg);
        a.bootstrap([PeerId(1), PeerId(2)]);
        let h = health(&[a]);
        assert_eq!(h.mean_age, 0.0);
    }

    #[test]
    fn isolated_nodes_are_starved() {
        let cfg = PssConfig::default();
        let nodes = vec![PssNode::new(PeerId(0), cfg), PssNode::new(PeerId(1), cfg)];
        let h = health(&nodes);
        assert_eq!(h.starved, 2);
        assert_eq!(h.indegree_mean, 0.0);
    }
}

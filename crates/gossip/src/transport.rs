//! A simulated message transport with latency and loss.
//!
//! The trace-driven simulator treats message exchange as instantaneous
//! and reliable; real gossip crosses a WAN. This module provides a
//! deterministic in-memory transport — per-message delivery delay
//! drawn from a configurable range and an i.i.d. drop probability — so
//! experiments can measure how BarterCast's dissemination degrades
//! under realistic network conditions.
//!
//! The transport is payload-agnostic: it schedules opaque `T`s between
//! [`PeerId`]s on a virtual clock, delivering them in timestamp order.

use bartercast_util::units::{PeerId, Seconds};
use rand::Rng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Transport characteristics.
#[derive(Debug, Clone, Copy)]
pub struct TransportConfig {
    /// Minimum one-way delay.
    pub min_delay: Seconds,
    /// Maximum one-way delay (inclusive).
    pub max_delay: Seconds,
    /// Probability a message is silently dropped.
    pub loss: f64,
}

impl Default for TransportConfig {
    fn default() -> Self {
        TransportConfig {
            min_delay: Seconds(0),
            max_delay: Seconds(2),
            loss: 0.0,
        }
    }
}

/// One in-flight message.
#[derive(Debug)]
struct InFlight<T> {
    deliver_at: Seconds,
    /// Tie-breaker preserving send order among equal timestamps.
    sequence: u64,
    from: PeerId,
    to: PeerId,
    payload: T,
}

impl<T> PartialEq for InFlight<T> {
    fn eq(&self, other: &Self) -> bool {
        self.deliver_at == other.deliver_at && self.sequence == other.sequence
    }
}
impl<T> Eq for InFlight<T> {}
impl<T> PartialOrd for InFlight<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for InFlight<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deliver_at, self.sequence).cmp(&(other.deliver_at, other.sequence))
    }
}

/// A delivered message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery<T> {
    /// Delivery time.
    pub at: Seconds,
    /// Sender.
    pub from: PeerId,
    /// Recipient.
    pub to: PeerId,
    /// The message.
    pub payload: T,
}

/// The simulated transport.
///
/// ```
/// use bartercast_gossip::{Transport, TransportConfig};
/// use bartercast_util::units::{PeerId, Seconds};
/// use rand::SeedableRng;
///
/// let mut t: Transport<&str> = Transport::new(TransportConfig {
///     min_delay: Seconds(1),
///     max_delay: Seconds(1),
///     loss: 0.0,
/// });
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// t.send(&mut rng, Seconds(10), PeerId(0), PeerId(1), "hello");
/// assert!(t.deliver_due(Seconds(10)).is_empty()); // still in flight
/// let due = t.deliver_due(Seconds(11));
/// assert_eq!(due[0].payload, "hello");
/// ```
#[derive(Debug)]
pub struct Transport<T> {
    config: TransportConfig,
    queue: BinaryHeap<Reverse<InFlight<T>>>,
    sequence: u64,
    sent: u64,
    dropped: u64,
}

impl<T> Transport<T> {
    /// An empty transport.
    pub fn new(config: TransportConfig) -> Self {
        assert!(config.min_delay <= config.max_delay);
        assert!((0.0..=1.0).contains(&config.loss));
        Transport {
            config,
            queue: BinaryHeap::new(),
            sequence: 0,
            sent: 0,
            dropped: 0,
        }
    }

    /// Send `payload` from `from` to `to` at time `now`. Returns
    /// `true` if the message was accepted (not dropped).
    pub fn send<R: Rng>(
        &mut self,
        rng: &mut R,
        now: Seconds,
        from: PeerId,
        to: PeerId,
        payload: T,
    ) -> bool {
        self.sent += 1;
        if self.config.loss > 0.0 && rng.gen_bool(self.config.loss) {
            self.dropped += 1;
            return false;
        }
        let span = self.config.max_delay.0 - self.config.min_delay.0;
        let delay = Seconds(
            self.config.min_delay.0
                + if span == 0 {
                    0
                } else {
                    rng.gen_range(0..=span)
                },
        );
        self.queue.push(Reverse(InFlight {
            deliver_at: now + delay,
            sequence: self.sequence,
            from,
            to,
            payload,
        }));
        self.sequence += 1;
        true
    }

    /// Pop every message due at or before `now`, in delivery order.
    pub fn deliver_due(&mut self, now: Seconds) -> Vec<Delivery<T>> {
        let mut out = Vec::new();
        while let Some(Reverse(head)) = self.queue.peek() {
            if head.deliver_at > now {
                break;
            }
            let Reverse(m) = self.queue.pop().expect("peeked");
            out.push(Delivery {
                at: m.deliver_at,
                from: m.from,
                to: m.to,
                payload: m.payload,
            });
        }
        out
    }

    /// Run the transport as an event loop until `until`: deliver every
    /// due message in timestamp order, handing each to `on_delivery`,
    /// which may return replies `(from, to, payload)` to send *at the
    /// delivery time* — so a reply with a small enough delay is itself
    /// delivered within the same drive. Returns the number of messages
    /// delivered.
    ///
    /// Ties at equal timestamps keep global send order (the heap
    /// tie-breaks on the send sequence number), so a reply scheduled at
    /// time `t` is always delivered after every message that was
    /// already in flight for time `t`. An empty heap is a no-op.
    pub fn drive_until<R, F>(&mut self, rng: &mut R, until: Seconds, mut on_delivery: F) -> usize
    where
        R: Rng,
        F: FnMut(&Delivery<T>) -> Vec<(PeerId, PeerId, T)>,
    {
        let mut delivered = 0;
        loop {
            match self.queue.peek() {
                Some(Reverse(head)) if head.deliver_at <= until => {}
                _ => return delivered,
            }
            let Reverse(m) = self.queue.pop().expect("peeked");
            let delivery = Delivery {
                at: m.deliver_at,
                from: m.from,
                to: m.to,
                payload: m.payload,
            };
            delivered += 1;
            for (from, to, payload) in on_delivery(&delivery) {
                self.send(rng, delivery.at, from, to, payload);
            }
        }
    }

    /// Messages still in flight.
    pub fn in_flight(&self) -> usize {
        self.queue.len()
    }

    /// `(sent, dropped)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.sent, self.dropped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn p(i: u32) -> PeerId {
        PeerId(i)
    }

    #[test]
    fn delivers_in_time_order() {
        let mut t: Transport<&str> = Transport::new(TransportConfig {
            min_delay: Seconds(1),
            max_delay: Seconds(5),
            loss: 0.0,
        });
        let mut rng = StdRng::seed_from_u64(3);
        for i in 0..20 {
            t.send(&mut rng, Seconds(i), p(0), p(1), "m");
        }
        assert_eq!(t.in_flight(), 20);
        let mut last = Seconds(0);
        let mut received = 0;
        for now in 0..30 {
            for d in t.deliver_due(Seconds(now)) {
                assert!(d.at >= last, "out-of-order delivery");
                assert!(d.at <= Seconds(now));
                last = d.at;
                received += 1;
            }
        }
        assert_eq!(received, 20);
        assert_eq!(t.in_flight(), 0);
    }

    #[test]
    fn zero_delay_is_same_round() {
        let mut t: Transport<u32> = Transport::new(TransportConfig {
            min_delay: Seconds(0),
            max_delay: Seconds(0),
            loss: 0.0,
        });
        let mut rng = StdRng::seed_from_u64(1);
        t.send(&mut rng, Seconds(7), p(0), p(1), 42);
        let due = t.deliver_due(Seconds(7));
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].payload, 42);
        assert_eq!(due[0].at, Seconds(7));
    }

    #[test]
    fn loss_drops_expected_fraction() {
        let mut t: Transport<()> = Transport::new(TransportConfig {
            loss: 0.3,
            ..Default::default()
        });
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            t.send(&mut rng, Seconds(0), p(0), p(1), ());
        }
        let (sent, dropped) = t.stats();
        assert_eq!(sent, 10_000);
        let rate = dropped as f64 / sent as f64;
        assert!((rate - 0.3).abs() < 0.03, "drop rate {rate}");
        assert_eq!(t.in_flight() as u64, sent - dropped);
    }

    #[test]
    fn fifo_among_equal_timestamps() {
        let mut t: Transport<u32> = Transport::new(TransportConfig {
            min_delay: Seconds(1),
            max_delay: Seconds(1),
            loss: 0.0,
        });
        let mut rng = StdRng::seed_from_u64(2);
        for i in 0..10 {
            t.send(&mut rng, Seconds(0), p(0), p(1), i);
        }
        let got: Vec<u32> = t
            .deliver_due(Seconds(1))
            .into_iter()
            .map(|d| d.payload)
            .collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn drive_until_on_empty_heap_is_a_noop() {
        let mut t: Transport<()> = Transport::new(TransportConfig::default());
        let mut rng = StdRng::seed_from_u64(4);
        let delivered = t.drive_until(&mut rng, Seconds(1_000), |_| Vec::new());
        assert_eq!(delivered, 0);
        assert_eq!(t.in_flight(), 0);
        assert_eq!(t.stats(), (0, 0));
    }

    #[test]
    fn drive_until_delivers_replies_within_the_same_drive() {
        let mut t: Transport<&str> = Transport::new(TransportConfig {
            min_delay: Seconds(1),
            max_delay: Seconds(1),
            loss: 0.0,
        });
        let mut rng = StdRng::seed_from_u64(5);
        t.send(&mut rng, Seconds(0), p(0), p(1), "ping");
        let mut log = Vec::new();
        let delivered = t.drive_until(&mut rng, Seconds(10), |d| {
            log.push((d.at, d.payload));
            if d.payload == "ping" {
                vec![(d.to, d.from, "pong")]
            } else {
                Vec::new()
            }
        });
        // ping lands at 1, the pong it triggers lands at 2 — one drive
        assert_eq!(delivered, 2);
        assert_eq!(log, vec![(Seconds(1), "ping"), (Seconds(2), "pong")]);
        assert_eq!(t.in_flight(), 0);
    }

    #[test]
    fn drive_until_ties_at_equal_timestamps_keep_send_order() {
        let mut t: Transport<u32> = Transport::new(TransportConfig {
            min_delay: Seconds(0),
            max_delay: Seconds(0),
            loss: 0.0,
        });
        let mut rng = StdRng::seed_from_u64(6);
        // three messages all due at time 3, sent in order 10, 11, 12;
        // delivery of 10 injects a zero-delay reply (13), also at 3 —
        // which must come after the already-in-flight 11 and 12
        for payload in [10, 11, 12] {
            t.send(&mut rng, Seconds(3), p(0), p(1), payload);
        }
        let mut order = Vec::new();
        t.drive_until(&mut rng, Seconds(3), |d| {
            order.push(d.payload);
            if d.payload == 10 {
                vec![(d.to, d.from, 13)]
            } else {
                Vec::new()
            }
        });
        assert_eq!(order, vec![10, 11, 12, 13]);
    }

    #[test]
    fn drive_until_respects_the_horizon() {
        let mut t: Transport<u32> = Transport::new(TransportConfig {
            min_delay: Seconds(5),
            max_delay: Seconds(5),
            loss: 0.0,
        });
        let mut rng = StdRng::seed_from_u64(8);
        t.send(&mut rng, Seconds(0), p(0), p(1), 1);
        assert_eq!(t.drive_until(&mut rng, Seconds(4), |_| Vec::new()), 0);
        assert_eq!(t.in_flight(), 1, "not due yet, must stay queued");
        assert_eq!(t.drive_until(&mut rng, Seconds(5), |_| Vec::new()), 1);
    }

    #[test]
    fn total_loss_never_delivers_but_still_counts() {
        let mut t: Transport<u32> = Transport::new(TransportConfig {
            loss: 1.0,
            ..Default::default()
        });
        let mut rng = StdRng::seed_from_u64(11);
        for i in 0..50 {
            assert!(!t.send(&mut rng, Seconds(i), p(0), p(1), i as u32));
        }
        assert_eq!(
            t.stats(),
            (50, 50),
            "every send counted, every send dropped"
        );
        assert_eq!(t.in_flight(), 0);
        let delivered = t.drive_until(&mut rng, Seconds(1_000_000), |_| Vec::new());
        assert_eq!(delivered, 0);
        // replies generated inside a drive are subject to loss too:
        // nothing can ever enter the queue at loss = 1.0
        assert_eq!(t.deliver_due(Seconds(1_000_000)), Vec::new());
    }

    #[test]
    #[should_panic]
    fn rejects_inverted_delays() {
        let _: Transport<()> = Transport::new(TransportConfig {
            min_delay: Seconds(5),
            max_delay: Seconds(1),
            loss: 0.0,
        });
    }
}

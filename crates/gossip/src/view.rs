//! Bounded partial views of node descriptors.

use bartercast_util::units::PeerId;
use rand::seq::SliceRandom;
use rand::Rng;

/// One entry in a partial view: a peer plus the age of the information.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Descriptor {
    /// The described peer.
    pub peer: PeerId,
    /// Gossip cycles since this descriptor was created at its subject.
    pub age: u32,
}

/// A bounded set of descriptors, at most one per peer.
#[derive(Debug, Clone)]
pub struct PartialView {
    owner: PeerId,
    capacity: usize,
    entries: Vec<Descriptor>,
}

impl PartialView {
    /// An empty view owned by `owner` holding at most `capacity`
    /// descriptors.
    pub fn new(owner: PeerId, capacity: usize) -> Self {
        assert!(capacity > 0, "view capacity must be positive");
        PartialView {
            owner,
            capacity,
            entries: Vec::with_capacity(capacity),
        }
    }

    /// The view's owner (never contained in the view itself).
    pub fn owner(&self) -> PeerId {
        self.owner
    }

    /// Maximum number of descriptors.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current descriptors.
    pub fn entries(&self) -> &[Descriptor] {
        &self.entries
    }

    /// Number of descriptors currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True iff the view holds no descriptors.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True iff `peer` is in the view.
    pub fn contains(&self, peer: PeerId) -> bool {
        self.entries.iter().any(|d| d.peer == peer)
    }

    /// Increment every descriptor's age by one cycle.
    pub fn age_all(&mut self) {
        for d in &mut self.entries {
            d.age = d.age.saturating_add(1);
        }
    }

    /// Insert or refresh a descriptor: an existing entry for the same
    /// peer keeps the **younger** age; the owner is never inserted;
    /// when full, the oldest descriptor is evicted to make room.
    pub fn insert(&mut self, d: Descriptor) {
        if d.peer == self.owner {
            return;
        }
        if let Some(existing) = self.entries.iter_mut().find(|e| e.peer == d.peer) {
            existing.age = existing.age.min(d.age);
            return;
        }
        if self.entries.len() == self.capacity {
            // evict the oldest entry iff the newcomer is younger
            if let Some((idx, oldest)) = self.entries.iter().enumerate().max_by_key(|(_, e)| e.age)
            {
                if d.age < oldest.age {
                    self.entries[idx] = d;
                }
            }
            return;
        }
        self.entries.push(d);
    }

    /// Remove `peer` from the view (e.g. after a failed contact).
    pub fn remove(&mut self, peer: PeerId) {
        self.entries.retain(|d| d.peer != peer);
    }

    /// The descriptor with the highest age, the classic Cyclon
    /// exchange-partner choice.
    pub fn oldest(&self) -> Option<Descriptor> {
        self.entries.iter().copied().max_by_key(|d| d.age)
    }

    /// A uniformly random descriptor.
    pub fn random<R: Rng>(&self, rng: &mut R) -> Option<Descriptor> {
        self.entries.choose(rng).copied()
    }

    /// Up to `n` distinct random descriptors.
    pub fn sample<R: Rng>(&self, rng: &mut R, n: usize) -> Vec<Descriptor> {
        let mut pool: Vec<Descriptor> = self.entries.clone();
        pool.shuffle(rng);
        pool.truncate(n);
        pool
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn p(i: u32) -> PeerId {
        PeerId(i)
    }

    fn d(i: u32, age: u32) -> Descriptor {
        Descriptor { peer: p(i), age }
    }

    #[test]
    fn insert_and_contains() {
        let mut v = PartialView::new(p(0), 3);
        v.insert(d(1, 0));
        v.insert(d(2, 5));
        assert!(v.contains(p(1)));
        assert!(!v.contains(p(9)));
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn never_contains_owner() {
        let mut v = PartialView::new(p(0), 3);
        v.insert(d(0, 0));
        assert!(v.is_empty());
    }

    #[test]
    fn duplicate_keeps_younger_age() {
        let mut v = PartialView::new(p(0), 3);
        v.insert(d(1, 7));
        v.insert(d(1, 2));
        assert_eq!(v.entries()[0].age, 2);
        v.insert(d(1, 9));
        assert_eq!(v.entries()[0].age, 2);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn eviction_replaces_oldest_with_younger() {
        let mut v = PartialView::new(p(0), 2);
        v.insert(d(1, 9));
        v.insert(d(2, 1));
        v.insert(d(3, 0)); // younger than oldest (age 9): evicts peer 1
        assert!(!v.contains(p(1)));
        assert!(v.contains(p(3)));
        // an older newcomer is dropped instead
        v.insert(d(4, 99));
        assert!(!v.contains(p(4)));
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn aging_and_oldest() {
        let mut v = PartialView::new(p(0), 4);
        v.insert(d(1, 0));
        v.insert(d(2, 3));
        v.age_all();
        assert_eq!(v.oldest().unwrap().peer, p(2));
        assert_eq!(v.oldest().unwrap().age, 4);
    }

    #[test]
    fn remove_peer() {
        let mut v = PartialView::new(p(0), 4);
        v.insert(d(1, 0));
        v.remove(p(1));
        assert!(v.is_empty());
        assert_eq!(v.oldest(), None);
    }

    #[test]
    fn sampling_is_bounded_and_distinct() {
        let mut v = PartialView::new(p(0), 8);
        for i in 1..=8 {
            v.insert(d(i, 0));
        }
        let mut rng = StdRng::seed_from_u64(7);
        let s = v.sample(&mut rng, 3);
        assert_eq!(s.len(), 3);
        let mut peers: Vec<u32> = s.iter().map(|x| x.peer.0).collect();
        peers.dedup();
        assert_eq!(peers.len(), 3);
        assert!(v.sample(&mut rng, 20).len() == 8);
        assert!(v.random(&mut rng).is_some());
    }
}

//! An epidemic Peer Sampling Service (PSS).
//!
//! BarterCast assumes "that peers can discover other peers by using a
//! Peer Sampling Service" whose implementation is transparent to the
//! protocol (§3.4); Tribler uses the BuddyCast epidemic protocol. This
//! crate provides a faithful random-view PSS in the Cyclon/Newscast
//! family:
//!
//! * every peer keeps a bounded [`PartialView`] of node descriptors
//!   with ages;
//! * on each gossip cycle a peer picks its **oldest** descriptor as
//!   exchange partner, and the two peers swap random halves of their
//!   views ([`shuffle`]);
//! * descriptor ages ensure dead peers eventually wash out of views.
//!
//! The simulator drives one [`PssNode`] per peer and uses
//! [`PssNode::sample`] both for BarterCast meeting partners and for
//! BitTorrent peer discovery.

#![warn(missing_docs)]

pub mod diagnostics;
pub mod pss;
pub mod transport;
pub mod view;

pub use diagnostics::{health, PssHealth};
pub use pss::{shuffle, PssConfig, PssNode};
pub use transport::{Delivery, Transport, TransportConfig};
pub use view::{Descriptor, PartialView};

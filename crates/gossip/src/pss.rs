//! The Cyclon-style shuffle protocol over partial views.

use crate::view::{Descriptor, PartialView};
use bartercast_util::units::PeerId;
use rand::Rng;

/// PSS parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PssConfig {
    /// View capacity per node.
    pub view_size: usize,
    /// Descriptors exchanged per shuffle.
    pub shuffle_len: usize,
}

impl Default for PssConfig {
    fn default() -> Self {
        PssConfig {
            view_size: 20,
            shuffle_len: 8,
        }
    }
}

/// One node's PSS state.
///
/// ```
/// use bartercast_gossip::{shuffle, PssConfig, PssNode};
/// use bartercast_util::units::PeerId;
/// use rand::SeedableRng;
///
/// let cfg = PssConfig::default();
/// let mut a = PssNode::new(PeerId(0), cfg);
/// let mut b = PssNode::new(PeerId(1), cfg);
/// a.bootstrap([PeerId(2)]);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// shuffle(&mut a, &mut b, &mut rng);
/// // after one shuffle each node knows the other
/// assert!(b.view().contains(PeerId(0)));
/// assert!(a.view().contains(PeerId(1)));
/// ```
#[derive(Debug, Clone)]
pub struct PssNode {
    view: PartialView,
    config: PssConfig,
}

impl PssNode {
    /// A node with an empty view.
    pub fn new(owner: PeerId, config: PssConfig) -> Self {
        PssNode {
            view: PartialView::new(owner, config.view_size),
            config,
        }
    }

    /// The owning peer.
    pub fn owner(&self) -> PeerId {
        self.view.owner()
    }

    /// Read access to the view.
    pub fn view(&self) -> &PartialView {
        &self.view
    }

    /// Bootstrap the view with known peers (e.g. from a tracker).
    pub fn bootstrap<I: IntoIterator<Item = PeerId>>(&mut self, peers: I) {
        for p in peers {
            self.view.insert(Descriptor { peer: p, age: 0 });
        }
    }

    /// Pick the exchange partner for this cycle (oldest descriptor)
    /// and age the view.
    pub fn start_cycle(&mut self) -> Option<PeerId> {
        self.view.age_all();
        self.view.oldest().map(|d| d.peer)
    }

    /// Age every descriptor by one cycle without selecting a partner.
    /// Drivers that pick gossip partners by other means (e.g. the
    /// simulator's meeting process) must still age the view, or
    /// age-based eviction never fires and views freeze at bootstrap.
    pub fn tick(&mut self) {
        self.view.age_all();
    }

    /// A uniformly random known peer — the sampling interface used by
    /// BarterCast for meetings and by BitTorrent for peer discovery.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> Option<PeerId> {
        self.view.random(rng).map(|d| d.peer)
    }

    /// Up to `n` distinct random known peers.
    pub fn sample_many<R: Rng>(&self, rng: &mut R, n: usize) -> Vec<PeerId> {
        self.view
            .sample(rng, n)
            .into_iter()
            .map(|d| d.peer)
            .collect()
    }

    /// Drop a peer that could not be contacted.
    pub fn evict(&mut self, peer: PeerId) {
        self.view.remove(peer);
    }
}

/// Perform one Cyclon shuffle between `a` (initiator) and `b`
/// (responder): each sends a random subset of its view (plus a fresh
/// descriptor of itself) and merges what it receives.
pub fn shuffle<R: Rng>(a: &mut PssNode, b: &mut PssNode, rng: &mut R) {
    let a_id = a.owner();
    let b_id = b.owner();
    let mut from_a = a.view.sample(rng, a.config.shuffle_len.saturating_sub(1));
    from_a.push(Descriptor { peer: a_id, age: 0 });
    let mut from_b = b.view.sample(rng, b.config.shuffle_len.saturating_sub(1));
    from_b.push(Descriptor { peer: b_id, age: 0 });
    for d in from_b {
        a.view.insert(d);
    }
    for d in from_a {
        b.view.insert(d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn p(i: u32) -> PeerId {
        PeerId(i)
    }

    #[test]
    fn bootstrap_fills_view() {
        let mut n = PssNode::new(p(0), PssConfig::default());
        n.bootstrap((1..=5).map(p));
        assert_eq!(n.view().len(), 5);
    }

    #[test]
    fn start_cycle_returns_oldest_and_ages() {
        let mut n = PssNode::new(p(0), PssConfig::default());
        n.bootstrap([p(1), p(2)]);
        let partner = n.start_cycle();
        assert!(partner.is_some());
        assert!(n.view().entries().iter().all(|d| d.age == 1));
    }

    #[test]
    fn shuffle_spreads_descriptors() {
        let cfg = PssConfig::default();
        let mut a = PssNode::new(p(0), cfg);
        let mut b = PssNode::new(p(1), cfg);
        a.bootstrap([p(2), p(3)]);
        b.bootstrap([p(4), p(5)]);
        let mut rng = StdRng::seed_from_u64(1);
        shuffle(&mut a, &mut b, &mut rng);
        // each learns about the other
        assert!(a.view().contains(p(1)));
        assert!(b.view().contains(p(0)));
        // and (with full exchange of such small views) their contacts
        assert!(a.view().contains(p(4)) || a.view().contains(p(5)));
        assert!(b.view().contains(p(2)) || b.view().contains(p(3)));
    }

    #[test]
    fn convergence_full_connectivity() {
        // A ring of 20 nodes becomes well-mixed after a few cycles:
        // every node's view fills up to capacity.
        let cfg = PssConfig {
            view_size: 10,
            shuffle_len: 5,
        };
        let n = 20usize;
        let mut nodes: Vec<PssNode> = (0..n).map(|i| PssNode::new(p(i as u32), cfg)).collect();
        for i in 0..n {
            let next = p(((i + 1) % n) as u32);
            nodes[i].bootstrap([next]);
        }
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..30 {
            for i in 0..n {
                if let Some(partner) = nodes[i].start_cycle() {
                    let j = partner.0 as usize;
                    if i != j {
                        let (a, b) = if i < j {
                            let (l, r) = nodes.split_at_mut(j);
                            (&mut l[i], &mut r[0])
                        } else {
                            let (l, r) = nodes.split_at_mut(i);
                            (&mut r[0], &mut l[j])
                        };
                        shuffle(a, b, &mut rng);
                    }
                }
            }
        }
        for node in &nodes {
            assert_eq!(
                node.view().len(),
                cfg.view_size,
                "view not full at {}",
                node.owner()
            );
        }
    }

    #[test]
    fn eviction_removes_dead_peer() {
        let mut n = PssNode::new(p(0), PssConfig::default());
        n.bootstrap([p(1)]);
        n.evict(p(1));
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(n.sample(&mut rng), None);
    }

    #[test]
    fn sample_many_distinct() {
        let mut n = PssNode::new(p(0), PssConfig::default());
        n.bootstrap((1..=10).map(p));
        let mut rng = StdRng::seed_from_u64(9);
        let s = n.sample_many(&mut rng, 4);
        assert_eq!(s.len(), 4);
        let mut sorted = s.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 4);
    }
}

//! Per-node operational counters.
//!
//! The reactor and its helpers bump plain relaxed atomics at the point
//! of truth and snapshot them into an immutable [`NodeStats`] on
//! demand. The JSON surface mirrors `CacheStats::json_fields` from
//! `bartercast-core` so bench output stays one consistent dialect.
//!
//! Shedding is split by *where* the overload bit: `shed_accept` counts
//! inbound connections dropped at the door because the session table
//! was at `max_sessions`, while `shed_session` counts outbound
//! messages dropped because one session's bounded queue was full. The
//! distinction matters for capacity planning — the first says "raise
//! the session cap or add nodes", the second says "this peer is slow
//! or the exchange rate outruns the wire". `sessions_live` /
//! `sessions_peak` give the matching occupancy view.

use std::sync::atomic::{AtomicU64, Ordering};

/// Live counters shared between a node's threads.
#[derive(Debug, Default)]
pub struct NodeCounters {
    /// Sessions fully established (handshake completed), either side.
    pub sessions_opened: AtomicU64,
    /// Dial or handshake attempts that never reached `Established`.
    pub sessions_failed: AtomicU64,
    /// Sessions that ended, cleanly or not.
    pub sessions_closed: AtomicU64,
    /// Sessions currently alive (gauge: incremented on adoption,
    /// decremented on reap).
    pub sessions_live: AtomicU64,
    /// High-water mark of `sessions_live`.
    pub sessions_peak: AtomicU64,
    /// Dials to a peer we had already had a session with — the
    /// reconnect path the backoff machinery exists for.
    pub reconnects: AtomicU64,
    /// Transfer records sent inside `Records` envelopes.
    pub records_sent: AtomicU64,
    /// Transfer records received (before dedup).
    pub records_received: AtomicU64,
    /// Received records whose max-merge changed nothing.
    pub records_duplicate: AtomicU64,
    /// Framed bytes handed to the transport.
    pub bytes_sent: AtomicU64,
    /// Stream bytes read from the transport.
    pub bytes_received: AtomicU64,
    /// Inbound connections dropped at accept because the session table
    /// was full (`max_sessions`).
    pub shed_accept: AtomicU64,
    /// Outbound messages dropped because a session's bounded queue was
    /// full.
    pub shed_session: AtomicU64,
    /// Envelopes rejected by the wire layer (bad kind, bad handshake,
    /// codec failure) plus decoder poisonings.
    pub protocol_errors: AtomicU64,
    /// Swarm pieces sent inside `Piece` frames.
    pub pieces_sent: AtomicU64,
    /// Swarm pieces received inside `Piece` frames.
    pub pieces_received: AtomicU64,
    /// `Digest` envelopes sent (delta anti-entropy requests).
    pub digests_sent: AtomicU64,
    /// `Delta` envelopes sent (anti-entropy replies).
    pub deltas_sent: AtomicU64,
    /// Full-slice syncs decided: scheduled fallback ticks, v2-peer
    /// pushes, and checksum-mismatch resyncs.
    pub full_syncs: AtomicU64,
    /// Records a digest proved the peer already held, so they never
    /// touched the wire.
    pub records_suppressed: AtomicU64,
}

impl NodeCounters {
    /// Bump a counter by one.
    pub fn inc(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Bump a counter by `n`.
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Record a session entering the table: bumps the live gauge and
    /// folds it into the peak high-water mark.
    pub fn session_adopted(&self) {
        let live = self.sessions_live.fetch_add(1, Ordering::Relaxed) + 1;
        self.sessions_peak.fetch_max(live, Ordering::Relaxed);
    }

    /// Record a session leaving the table.
    pub fn session_reaped(&self) {
        self.sessions_live.fetch_sub(1, Ordering::Relaxed);
    }

    /// An immutable snapshot of every counter.
    pub fn snapshot(&self) -> NodeStats {
        NodeStats {
            sessions_opened: self.sessions_opened.load(Ordering::Relaxed),
            sessions_failed: self.sessions_failed.load(Ordering::Relaxed),
            sessions_closed: self.sessions_closed.load(Ordering::Relaxed),
            sessions_live: self.sessions_live.load(Ordering::Relaxed),
            sessions_peak: self.sessions_peak.load(Ordering::Relaxed),
            reconnects: self.reconnects.load(Ordering::Relaxed),
            records_sent: self.records_sent.load(Ordering::Relaxed),
            records_received: self.records_received.load(Ordering::Relaxed),
            records_duplicate: self.records_duplicate.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            bytes_received: self.bytes_received.load(Ordering::Relaxed),
            shed_accept: self.shed_accept.load(Ordering::Relaxed),
            shed_session: self.shed_session.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            pieces_sent: self.pieces_sent.load(Ordering::Relaxed),
            pieces_received: self.pieces_received.load(Ordering::Relaxed),
            digests_sent: self.digests_sent.load(Ordering::Relaxed),
            deltas_sent: self.deltas_sent.load(Ordering::Relaxed),
            full_syncs: self.full_syncs.load(Ordering::Relaxed),
            records_suppressed: self.records_suppressed.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time view of a node's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NodeStats {
    /// Sessions fully established.
    pub sessions_opened: u64,
    /// Dial/handshake attempts that failed.
    pub sessions_failed: u64,
    /// Sessions ended.
    pub sessions_closed: u64,
    /// Sessions alive at snapshot time.
    pub sessions_live: u64,
    /// High-water mark of live sessions.
    pub sessions_peak: u64,
    /// Dials to previously-seen peers.
    pub reconnects: u64,
    /// Records sent.
    pub records_sent: u64,
    /// Records received.
    pub records_received: u64,
    /// Received records that changed nothing.
    pub records_duplicate: u64,
    /// Bytes written to the wire.
    pub bytes_sent: u64,
    /// Bytes read from the wire.
    pub bytes_received: u64,
    /// Inbound connections shed at accept (session table full).
    pub shed_accept: u64,
    /// Outbound messages shed at a full per-session queue.
    pub shed_session: u64,
    /// Wire-layer rejections.
    pub protocol_errors: u64,
    /// Swarm pieces sent.
    pub pieces_sent: u64,
    /// Swarm pieces received.
    pub pieces_received: u64,
    /// Digest envelopes sent.
    pub digests_sent: u64,
    /// Delta envelopes sent.
    pub deltas_sent: u64,
    /// Full-slice sync decisions (fallback ticks, v2 pushes,
    /// checksum-mismatch resyncs).
    pub full_syncs: u64,
    /// Records suppressed by digest matching (never sent).
    pub records_suppressed: u64,
}

impl NodeStats {
    /// The stats as JSON object fields (no surrounding braces), in the
    /// same style as `CacheStats::json_fields`.
    pub fn json_fields(&self) -> String {
        format!(
            "\"sessions_opened\": {}, \"sessions_failed\": {}, \"sessions_closed\": {}, \
             \"sessions_live\": {}, \"sessions_peak\": {}, \"reconnects\": {}, \
             \"records_sent\": {}, \"records_received\": {}, \"records_duplicate\": {}, \
             \"bytes_sent\": {}, \"bytes_received\": {}, \"shed_accept\": {}, \
             \"shed_session\": {}, \"protocol_errors\": {}, \
             \"pieces_sent\": {}, \"pieces_received\": {}, \
             \"digests_sent\": {}, \"deltas_sent\": {}, \
             \"full_syncs\": {}, \"records_suppressed\": {}",
            self.sessions_opened,
            self.sessions_failed,
            self.sessions_closed,
            self.sessions_live,
            self.sessions_peak,
            self.reconnects,
            self.records_sent,
            self.records_received,
            self.records_duplicate,
            self.bytes_sent,
            self.bytes_received,
            self.shed_accept,
            self.shed_session,
            self.protocol_errors,
            self.pieces_sent,
            self.pieces_received,
            self.digests_sent,
            self.deltas_sent,
            self.full_syncs,
            self.records_suppressed,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_bumps() {
        let c = NodeCounters::default();
        NodeCounters::inc(&c.sessions_opened);
        NodeCounters::add(&c.records_sent, 10);
        let s = c.snapshot();
        assert_eq!(s.sessions_opened, 1);
        assert_eq!(s.records_sent, 10);
        assert_eq!(s.records_received, 0);
    }

    #[test]
    fn live_gauge_and_peak_track_adoption_and_reaping() {
        let c = NodeCounters::default();
        c.session_adopted();
        c.session_adopted();
        c.session_adopted();
        c.session_reaped();
        let s = c.snapshot();
        assert_eq!(s.sessions_live, 2);
        assert_eq!(s.sessions_peak, 3, "peak must survive the reap");
    }

    #[test]
    fn json_fields_form_a_valid_object_body() {
        let s = NodeCounters::default().snapshot();
        let obj = format!("{{{}}}", s.json_fields());
        assert!(obj.starts_with('{') && obj.ends_with('}'));
        assert_eq!(obj.matches(':').count(), 20);
        assert!(obj.contains("\"digests_sent\": 0"));
        assert!(obj.contains("\"records_suppressed\": 0"));
        assert!(obj.contains("\"shed_accept\": 0"));
        assert!(obj.contains("\"shed_session\": 0"));
        assert!(obj.contains("\"sessions_peak\": 0"));
    }
}

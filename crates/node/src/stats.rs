//! Per-node operational counters.
//!
//! Sessions run on their own threads, so counters are plain relaxed
//! atomics bumped at the point of truth (the session loop) and
//! snapshotted into an immutable [`NodeStats`] on demand. The JSON
//! surface mirrors `CacheStats::json_fields` from `bartercast-core` so
//! bench output stays one consistent dialect.

use std::sync::atomic::{AtomicU64, Ordering};

/// Live counters shared between a node's threads.
#[derive(Debug, Default)]
pub struct NodeCounters {
    /// Sessions fully established (handshake completed), either side.
    pub sessions_opened: AtomicU64,
    /// Dial or handshake attempts that never reached `Established`.
    pub sessions_failed: AtomicU64,
    /// Sessions that ended, cleanly or not.
    pub sessions_closed: AtomicU64,
    /// Dials to a peer we had already had a session with — the
    /// reconnect path the backoff machinery exists for.
    pub reconnects: AtomicU64,
    /// Transfer records sent inside `Records` envelopes.
    pub records_sent: AtomicU64,
    /// Transfer records received (before dedup).
    pub records_received: AtomicU64,
    /// Received records whose max-merge changed nothing.
    pub records_duplicate: AtomicU64,
    /// Framed bytes handed to the transport.
    pub bytes_sent: AtomicU64,
    /// Stream bytes read from the transport.
    pub bytes_received: AtomicU64,
    /// Outbound messages shed because a bounded queue was full.
    pub queue_shed: AtomicU64,
    /// Envelopes rejected by the wire layer (bad kind, bad handshake,
    /// codec failure) plus decoder poisonings.
    pub protocol_errors: AtomicU64,
}

impl NodeCounters {
    /// Bump a counter by one.
    pub fn inc(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Bump a counter by `n`.
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// An immutable snapshot of every counter.
    pub fn snapshot(&self) -> NodeStats {
        NodeStats {
            sessions_opened: self.sessions_opened.load(Ordering::Relaxed),
            sessions_failed: self.sessions_failed.load(Ordering::Relaxed),
            sessions_closed: self.sessions_closed.load(Ordering::Relaxed),
            reconnects: self.reconnects.load(Ordering::Relaxed),
            records_sent: self.records_sent.load(Ordering::Relaxed),
            records_received: self.records_received.load(Ordering::Relaxed),
            records_duplicate: self.records_duplicate.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            bytes_received: self.bytes_received.load(Ordering::Relaxed),
            queue_shed: self.queue_shed.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time view of a node's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NodeStats {
    /// Sessions fully established.
    pub sessions_opened: u64,
    /// Dial/handshake attempts that failed.
    pub sessions_failed: u64,
    /// Sessions ended.
    pub sessions_closed: u64,
    /// Dials to previously-seen peers.
    pub reconnects: u64,
    /// Records sent.
    pub records_sent: u64,
    /// Records received.
    pub records_received: u64,
    /// Received records that changed nothing.
    pub records_duplicate: u64,
    /// Bytes written to the wire.
    pub bytes_sent: u64,
    /// Bytes read from the wire.
    pub bytes_received: u64,
    /// Messages shed at full queues.
    pub queue_shed: u64,
    /// Wire-layer rejections.
    pub protocol_errors: u64,
}

impl NodeStats {
    /// The stats as JSON object fields (no surrounding braces), in the
    /// same style as `CacheStats::json_fields`.
    pub fn json_fields(&self) -> String {
        format!(
            "\"sessions_opened\": {}, \"sessions_failed\": {}, \"sessions_closed\": {}, \
             \"reconnects\": {}, \"records_sent\": {}, \"records_received\": {}, \
             \"records_duplicate\": {}, \"bytes_sent\": {}, \"bytes_received\": {}, \
             \"queue_shed\": {}, \"protocol_errors\": {}",
            self.sessions_opened,
            self.sessions_failed,
            self.sessions_closed,
            self.reconnects,
            self.records_sent,
            self.records_received,
            self.records_duplicate,
            self.bytes_sent,
            self.bytes_received,
            self.queue_shed,
            self.protocol_errors,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_bumps() {
        let c = NodeCounters::default();
        NodeCounters::inc(&c.sessions_opened);
        NodeCounters::add(&c.records_sent, 10);
        let s = c.snapshot();
        assert_eq!(s.sessions_opened, 1);
        assert_eq!(s.records_sent, 10);
        assert_eq!(s.records_received, 0);
    }

    #[test]
    fn json_fields_form_a_valid_object_body() {
        let s = NodeCounters::default().snapshot();
        let obj = format!("{{{}}}", s.json_fields());
        assert!(obj.starts_with('{') && obj.ends_with('}'));
        assert_eq!(obj.matches(':').count(), 11);
        assert!(obj.contains("\"queue_shed\": 0"));
    }
}

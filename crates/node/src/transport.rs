//! The transport abstraction the reactor speaks through, plus the
//! real-socket implementation.
//!
//! A [`Transport`] hands out **non-blocking** connections addressed by
//! [`PeerId`] — the runtime never sees socket addresses, and no call on
//! a [`Conn`] or [`Listener`] ever parks the calling thread. The
//! contract is frame-out / readiness-in:
//!
//! * the write side is **frame-oriented**: [`Conn::try_send`] takes one
//!   whole frame and either accepts it (possibly into an internal
//!   buffer drained by [`Conn::flush`]) or reports backpressure by
//!   returning `Ok(false)` *without consuming the frame*. The frame is
//!   the unit of simulated loss on lossy transports — dropping a
//!   partial frame would desynchronize the stream, dropping a whole
//!   frame models a lost message;
//! * the read side is a **byte stream**: [`Conn::try_recv`] returns
//!   whatever fragment is ready right now (`Ok(None)` is the
//!   `WouldBlock` case), which is exactly what the incremental
//!   [`FrameDecoder`](bartercast_core::codec::FrameDecoder) exists to
//!   absorb.
//!
//! Readiness reaches the reactor one of two ways, reported by
//! [`Conn::ready_source`]:
//!
//! * [`ReadySource::Fd`] — a real file descriptor; the reactor sleeps
//!   in `poll(2)` over every registered fd ([`wait_readiness`]);
//! * [`ReadySource::Waker`] — the endpoint pushes its token onto the
//!   reactor's [`WakeQueue`] whenever bytes, EOF, or an inbound
//!   connection appear, and the reactor sleeps on that queue. This is
//!   the [`MemTransport`](crate::mem::MemTransport) path, and because
//!   wake tokens are drained in sorted order it is also what keeps the
//!   deterministic cluster driver's poll order reproducible.

use bartercast_util::units::PeerId;
use std::collections::{BTreeSet, HashMap};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// How a reactor should wait for this endpoint to make progress.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadySource {
    /// Poll this file descriptor (`poll(2)`).
    Fd(i32),
    /// The endpoint notifies the registered [`WakeQueue`] itself.
    Waker,
}

/// The token a [`Listener`] registers on its reactor's wake queue.
pub const LISTENER_TOKEN: u64 = u64::MAX;

#[derive(Default)]
struct WakeInner {
    ready: BTreeSet<u64>,
    kicked: bool,
}

/// A set of woken tokens plus a condvar to sleep on.
///
/// Transport endpoints registered via `register_waker` push their token
/// here when they become readable; the reactor drains the set (in
/// ascending token order, so pump order is deterministic) and sleeps on
/// it when idle. [`WakeQueue::kick`] wakes a sleeper without marking
/// any token ready — the shutdown path.
#[derive(Default)]
pub struct WakeQueue {
    inner: Mutex<WakeInner>,
    cv: Condvar,
}

impl WakeQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mark `token` ready and wake any sleeper.
    pub fn notify(&self, token: u64) {
        let mut inner = self.inner.lock().expect("wake lock");
        inner.ready.insert(token);
        self.cv.notify_all();
    }

    /// Wake any sleeper without marking a token ready.
    pub fn kick(&self) {
        let mut inner = self.inner.lock().expect("wake lock");
        inner.kicked = true;
        self.cv.notify_all();
    }

    /// Take the currently ready tokens without blocking.
    pub fn drain(&self) -> BTreeSet<u64> {
        let mut inner = self.inner.lock().expect("wake lock");
        inner.kicked = false;
        std::mem::take(&mut inner.ready)
    }

    /// Sleep until a token is ready, a kick arrives, or `timeout`
    /// elapses; returns the ready tokens (possibly empty).
    pub fn wait(&self, timeout: Duration) -> BTreeSet<u64> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.inner.lock().expect("wake lock");
        while inner.ready.is_empty() && !inner.kicked {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (guard, _) = self
                .cv
                .wait_timeout(inner, deadline - now)
                .expect("wake lock");
            inner = guard;
        }
        inner.kicked = false;
        std::mem::take(&mut inner.ready)
    }
}

/// One end of an established session. All methods are non-blocking.
pub trait Conn: Send {
    /// Queue one whole frame for transmission. `Ok(true)` means the
    /// frame was accepted (it may still sit in an internal buffer —
    /// call [`Conn::flush`] when the connection is writable);
    /// `Ok(false)` means backpressure: the frame was **not** consumed,
    /// retry after a flush makes progress. An error means the
    /// connection is unusable.
    fn try_send(&mut self, frame: &[u8]) -> io::Result<bool>;

    /// Push previously-buffered output toward the peer. Returns
    /// `Ok(true)` when nothing remains buffered.
    fn flush(&mut self) -> io::Result<bool>;

    /// Read up to `buf.len()` stream bytes without blocking. Returns
    /// `Ok(None)` when no data is ready (`WouldBlock`), `Ok(Some(0))`
    /// on clean end-of-stream, and `Ok(Some(n))` for `n` bytes read
    /// (any fragmentation is legal).
    fn try_recv(&mut self, buf: &mut [u8]) -> io::Result<Option<usize>>;

    /// Whether buffered output is waiting for writability (drives the
    /// `POLLOUT` interest on fd transports).
    fn wants_write(&self) -> bool {
        false
    }

    /// When in-flight data becomes readable, for transports that delay
    /// delivery ([`MemTransport`](crate::mem::MemTransport)); `None`
    /// when nothing is in flight or the transport has no delays.
    fn next_ready_at(&self) -> Option<Instant> {
        None
    }

    /// Hook this connection to a reactor wake queue under `token`
    /// (no-op for fd transports, which are waited on via `poll(2)`).
    fn register_waker(&mut self, _queue: &Arc<WakeQueue>, _token: u64) {}

    /// How a reactor should wait on this connection.
    fn ready_source(&self) -> ReadySource;
}

/// An accept queue bound to one local peer. Non-blocking.
pub trait Listener: Send {
    /// The next pending inbound connection, or `Ok(None)` when none is
    /// queued right now.
    fn try_accept(&mut self) -> io::Result<Option<Box<dyn Conn>>>;

    /// Hook this listener to a reactor wake queue (it should notify
    /// with [`LISTENER_TOKEN`]-style tokens when connections arrive).
    fn register_waker(&mut self, _queue: &Arc<WakeQueue>, _token: u64) {}

    /// How a reactor should wait on this listener.
    fn ready_source(&self) -> ReadySource;
}

/// A connection factory addressed by peer id.
pub trait Transport: Send + Sync {
    /// Bind an accept queue for `local`. Must be called before other
    /// peers can [`Transport::connect`] to it.
    fn listen(&self, local: PeerId) -> io::Result<Box<dyn Listener>>;

    /// Open a connection from `from` to `to`.
    fn connect(&self, from: PeerId, to: PeerId) -> io::Result<Box<dyn Conn>>;

    /// Forcibly sever every live connection touching `peer`, returning
    /// how many were killed. The listener survives, so the peer can be
    /// reconnected to — this is the harness's connection-churn
    /// injection point. Transports that cannot target individual
    /// connections (TCP) return `0`.
    fn disconnect(&self, _peer: PeerId) -> usize {
        0
    }
}

/// One entry in a [`wait_readiness`] poll set.
#[derive(Debug, Clone, Copy)]
pub struct FdInterest {
    /// The descriptor to watch.
    pub fd: i32,
    /// Watch for writability as well as readability.
    pub write: bool,
}

#[cfg(unix)]
mod sys {
    //! Minimal `poll(2)` FFI — enough to sleep on a set of fds without
    //! pulling in an external crate. Layout matches glibc/musl on
    //! every Linux target this repo builds for.
    #[repr(C)]
    pub struct PollFd {
        pub fd: i32,
        pub events: i16,
        pub revents: i16,
    }
    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    extern "C" {
        pub fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
    }
}

/// Sleep until any fd in `set` is readable (or writable, where
/// requested), or `timeout` elapses. With an empty set this is a plain
/// bounded sleep. On non-unix targets it degrades to a short sleep —
/// correctness is unaffected because the reactor re-polls every
/// connection after waking.
#[cfg(unix)]
pub fn wait_readiness(set: &[FdInterest], timeout: Duration) {
    let mut fds: Vec<sys::PollFd> = set
        .iter()
        .map(|e| sys::PollFd {
            fd: e.fd,
            events: sys::POLLIN | if e.write { sys::POLLOUT } else { 0 },
            revents: 0,
        })
        .collect();
    let ms = timeout.as_millis().min(i32::MAX as u128) as i32;
    // SAFETY: fds points at len valid pollfd structs for the call's
    // duration; poll does not retain the pointer.
    unsafe {
        sys::poll(fds.as_mut_ptr(), fds.len() as u64, ms.max(0));
    }
}

/// Non-unix fallback: bounded sleep (the reactor re-polls after).
#[cfg(not(unix))]
pub fn wait_readiness(_set: &[FdInterest], timeout: Duration) {
    std::thread::sleep(timeout.min(Duration::from_millis(2)));
}

/// Soft cap on buffered unsent bytes per TCP connection; `try_send`
/// reports backpressure once the buffer is at least this full.
const TCP_OUT_BUFFER_CAP: usize = 256 * 1024;

/// Loopback TCP transport: a shared `PeerId → SocketAddr` registry and
/// one non-blocking OS socket per session.
///
/// ```no_run
/// use bartercast_node::transport::{TcpTransport, Transport};
/// use bartercast_util::units::PeerId;
///
/// let t = TcpTransport::new();
/// let mut listener = t.listen(PeerId(1)).unwrap();
/// let mut conn = t.connect(PeerId(0), PeerId(1)).unwrap();
/// conn.try_send(b"\x02\x00\x00\x00hi").unwrap();
/// let _inbound = listener.try_accept().unwrap();
/// ```
#[derive(Debug, Clone, Default)]
pub struct TcpTransport {
    registry: Arc<Mutex<HashMap<PeerId, SocketAddr>>>,
}

impl TcpTransport {
    /// A transport with an empty peer registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether this host can bind a loopback socket at all — lets
    /// callers (benches, tests) skip the TCP path gracefully inside
    /// sandboxes without network namespaces.
    pub fn loopback_available() -> bool {
        TcpListener::bind("127.0.0.1:0").is_ok()
    }
}

impl Transport for TcpTransport {
    fn listen(&self, local: PeerId) -> io::Result<Box<dyn Listener>> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        self.registry
            .lock()
            .expect("registry lock")
            .insert(local, addr);
        Ok(Box::new(TcpAccept { listener }))
    }

    fn connect(&self, _from: PeerId, to: PeerId) -> io::Result<Box<dyn Conn>> {
        let addr = self
            .registry
            .lock()
            .expect("registry lock")
            .get(&to)
            .copied()
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::NotFound,
                    format!("peer {to} is not listening"),
                )
            })?;
        let stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5))?;
        stream.set_nodelay(true)?;
        stream.set_nonblocking(true)?;
        Ok(Box::new(TcpConn {
            stream,
            out: Vec::new(),
            out_pos: 0,
        }))
    }
}

struct TcpAccept {
    listener: TcpListener,
}

impl Listener for TcpAccept {
    fn try_accept(&mut self) -> io::Result<Option<Box<dyn Conn>>> {
        match self.listener.accept() {
            Ok((stream, _)) => {
                stream.set_nodelay(true)?;
                stream.set_nonblocking(true)?;
                Ok(Some(Box::new(TcpConn {
                    stream,
                    out: Vec::new(),
                    out_pos: 0,
                })))
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(e),
        }
    }

    fn ready_source(&self) -> ReadySource {
        #[cfg(unix)]
        {
            use std::os::unix::io::AsRawFd;
            ReadySource::Fd(self.listener.as_raw_fd())
        }
        #[cfg(not(unix))]
        {
            ReadySource::Waker
        }
    }
}

struct TcpConn {
    stream: TcpStream,
    /// Unsent bytes; `out[out_pos..]` is pending.
    out: Vec<u8>,
    out_pos: usize,
}

impl TcpConn {
    fn flush_some(&mut self) -> io::Result<()> {
        while self.out_pos < self.out.len() {
            match self.stream.write(&self.out[self.out_pos..]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "peer stopped reading",
                    ))
                }
                Ok(n) => self.out_pos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        if self.out_pos == self.out.len() {
            self.out.clear();
            self.out_pos = 0;
        } else if self.out_pos > TCP_OUT_BUFFER_CAP {
            // reclaim drained prefix so the buffer doesn't creep
            self.out.drain(..self.out_pos);
            self.out_pos = 0;
        }
        Ok(())
    }
}

impl Conn for TcpConn {
    fn try_send(&mut self, frame: &[u8]) -> io::Result<bool> {
        self.flush_some()?;
        if self.out.len() - self.out_pos >= TCP_OUT_BUFFER_CAP {
            return Ok(false); // backpressure: frame not consumed
        }
        self.out.extend_from_slice(frame);
        self.flush_some()?;
        Ok(true)
    }

    fn flush(&mut self) -> io::Result<bool> {
        self.flush_some()?;
        Ok(self.out_pos == self.out.len())
    }

    fn try_recv(&mut self, buf: &mut [u8]) -> io::Result<Option<usize>> {
        match self.stream.read(buf) {
            Ok(n) => Ok(Some(n)),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::Interrupted =>
            {
                Ok(None)
            }
            Err(e) => Err(e),
        }
    }

    fn wants_write(&self) -> bool {
        self.out_pos < self.out.len()
    }

    fn ready_source(&self) -> ReadySource {
        #[cfg(unix)]
        {
            use std::os::unix::io::AsRawFd;
            ReadySource::Fd(self.stream.as_raw_fd())
        }
        #[cfg(not(unix))]
        {
            ReadySource::Waker
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> PeerId {
        PeerId(i)
    }

    /// Poll-loop a try_recv until data (or EOF) arrives.
    fn recv_blocking(conn: &mut dyn Conn, buf: &mut [u8], timeout: Duration) -> Option<usize> {
        let deadline = Instant::now() + timeout;
        loop {
            match conn.try_recv(buf).unwrap() {
                Some(n) => return Some(n),
                None if Instant::now() >= deadline => return None,
                None => std::thread::sleep(Duration::from_millis(1)),
            }
        }
    }

    fn accept_blocking(l: &mut dyn Listener, timeout: Duration) -> Option<Box<dyn Conn>> {
        let deadline = Instant::now() + timeout;
        loop {
            match l.try_accept().unwrap() {
                Some(c) => return Some(c),
                None if Instant::now() >= deadline => return None,
                None => std::thread::sleep(Duration::from_millis(1)),
            }
        }
    }

    #[test]
    fn connect_to_unknown_peer_is_refused() {
        if !TcpTransport::loopback_available() {
            eprintln!("skipping: no loopback in this sandbox");
            return;
        }
        let t = TcpTransport::new();
        assert!(t.connect(p(0), p(9)).is_err());
    }

    #[test]
    fn tcp_roundtrip_with_fragmented_reads() {
        if !TcpTransport::loopback_available() {
            eprintln!("skipping: no loopback in this sandbox");
            return;
        }
        let t = TcpTransport::new();
        let mut listener = t.listen(p(1)).unwrap();
        let mut a = t.connect(p(0), p(1)).unwrap();
        assert!(a.try_send(b"hello frame").unwrap());
        let mut b = accept_blocking(listener.as_mut(), Duration::from_secs(2)).expect("inbound");
        let mut got = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(2);
        while got.len() < 11 && Instant::now() < deadline {
            let mut chunk = [0u8; 4]; // force fragmentation
            if let Some(n) = recv_blocking(b.as_mut(), &mut chunk, Duration::from_millis(50)) {
                if n == 0 {
                    break;
                }
                got.extend_from_slice(&chunk[..n]);
            }
        }
        assert_eq!(&got, b"hello frame");
    }

    #[test]
    fn try_recv_would_block_without_data() {
        if !TcpTransport::loopback_available() {
            eprintln!("skipping: no loopback in this sandbox");
            return;
        }
        let t = TcpTransport::new();
        let mut listener = t.listen(p(1)).unwrap();
        let _a = t.connect(p(0), p(1)).unwrap();
        let mut b = accept_blocking(listener.as_mut(), Duration::from_secs(2)).expect("inbound");
        let mut buf = [0u8; 8];
        assert_eq!(b.try_recv(&mut buf).unwrap(), None, "no data was sent");
        assert!(!b.wants_write());
    }

    #[test]
    fn wake_queue_drains_tokens_in_sorted_order() {
        let q = WakeQueue::new();
        q.notify(9);
        q.notify(1);
        q.notify(5);
        let drained: Vec<u64> = q.drain().into_iter().collect();
        assert_eq!(drained, vec![1, 5, 9]);
        assert!(q.drain().is_empty());
    }

    #[test]
    fn wake_queue_kick_wakes_without_tokens() {
        let q = Arc::new(WakeQueue::new());
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || q2.wait(Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(20));
        q.kick();
        let woken = h.join().unwrap();
        assert!(woken.is_empty(), "kick must not fabricate tokens");
    }
}

//! The transport abstraction the node runtime speaks through, plus the
//! real-socket implementation.
//!
//! A [`Transport`] hands out blocking, thread-owned connections
//! addressed by [`PeerId`] — the runtime never sees socket addresses.
//! Two implementations exist:
//!
//! * [`TcpTransport`] (here): `std::net` loopback sockets with an
//!   internal `PeerId → SocketAddr` registry populated as nodes bind.
//!   Every session owns its stream on a dedicated thread, so all I/O
//!   is plain blocking reads/writes with per-call timeouts.
//! * [`MemTransport`](crate::mem::MemTransport): deterministic
//!   in-process duplex pipes with seeded delay/loss, so every test and
//!   the tier-1 cluster convergence gate run socket-free.
//!
//! The read side is a **byte stream** — [`Conn::recv`] may return any
//! fragment of what was sent, which is exactly what the incremental
//! [`FrameDecoder`](bartercast_core::codec::FrameDecoder) exists to
//! absorb. The write side is **frame-oriented**: [`Conn::send`] takes
//! one whole frame, which is the unit of simulated loss on lossy
//! transports (dropping a partial frame would desynchronize the
//! stream; dropping a whole frame models a lost message).

use bartercast_util::units::PeerId;
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// One end of an established session.
pub trait Conn: Send {
    /// Write one whole frame. Blocks until the bytes are handed to the
    /// transport; an error means the connection is unusable.
    fn send(&mut self, frame: &[u8]) -> io::Result<()>;

    /// Read up to `buf.len()` stream bytes, blocking at most
    /// `timeout`. Returns `Ok(None)` when the timeout elapsed with no
    /// data, `Ok(Some(0))` on clean end-of-stream, and `Ok(Some(n))`
    /// for `n` bytes read (any fragmentation is legal).
    fn recv(&mut self, buf: &mut [u8], timeout: Duration) -> io::Result<Option<usize>>;
}

/// An accept queue bound to one local peer.
pub trait Listener: Send {
    /// The next inbound connection, or `None` when `timeout` elapsed
    /// without one.
    fn accept(&mut self, timeout: Duration) -> io::Result<Option<Box<dyn Conn>>>;
}

/// A connection factory addressed by peer id.
pub trait Transport: Send + Sync {
    /// Bind an accept queue for `local`. Must be called before other
    /// peers can [`Transport::connect`] to it.
    fn listen(&self, local: PeerId) -> io::Result<Box<dyn Listener>>;

    /// Open a connection from `from` to `to`.
    fn connect(&self, from: PeerId, to: PeerId) -> io::Result<Box<dyn Conn>>;

    /// Forcibly sever every live connection touching `peer`, returning
    /// how many were killed. The listener survives, so the peer can be
    /// reconnected to — this is the harness's connection-churn
    /// injection point. Transports that cannot target individual
    /// connections (TCP) return `0`.
    fn disconnect(&self, _peer: PeerId) -> usize {
        0
    }
}

/// Loopback TCP transport: a shared `PeerId → SocketAddr` registry and
/// one OS socket per session.
///
/// ```no_run
/// use bartercast_node::transport::{TcpTransport, Transport};
/// use bartercast_util::units::PeerId;
/// use std::time::Duration;
///
/// let t = TcpTransport::new();
/// let mut listener = t.listen(PeerId(1)).unwrap();
/// let mut conn = t.connect(PeerId(0), PeerId(1)).unwrap();
/// conn.send(b"\x02\x00\x00\x00hi").unwrap();
/// let _inbound = listener.accept(Duration::from_secs(1)).unwrap();
/// ```
#[derive(Debug, Clone, Default)]
pub struct TcpTransport {
    registry: Arc<Mutex<HashMap<PeerId, SocketAddr>>>,
}

impl TcpTransport {
    /// A transport with an empty peer registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether this host can bind a loopback socket at all — lets
    /// callers (benches, tests) skip the TCP path gracefully inside
    /// sandboxes without network namespaces.
    pub fn loopback_available() -> bool {
        TcpListener::bind("127.0.0.1:0").is_ok()
    }
}

impl Transport for TcpTransport {
    fn listen(&self, local: PeerId) -> io::Result<Box<dyn Listener>> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        self.registry
            .lock()
            .expect("registry lock")
            .insert(local, addr);
        Ok(Box::new(TcpAccept { listener }))
    }

    fn connect(&self, _from: PeerId, to: PeerId) -> io::Result<Box<dyn Conn>> {
        let addr = self
            .registry
            .lock()
            .expect("registry lock")
            .get(&to)
            .copied()
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::NotFound,
                    format!("peer {to} is not listening"),
                )
            })?;
        let stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5))?;
        stream.set_nodelay(true)?;
        Ok(Box::new(TcpConn { stream }))
    }
}

struct TcpAccept {
    listener: TcpListener,
}

impl Listener for TcpAccept {
    fn accept(&mut self, timeout: Duration) -> io::Result<Option<Box<dyn Conn>>> {
        let deadline = Instant::now() + timeout;
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    stream.set_nodelay(true)?;
                    return Ok(Some(Box::new(TcpConn { stream })));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if Instant::now() >= deadline {
                        return Ok(None);
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) => return Err(e),
            }
        }
    }
}

struct TcpConn {
    stream: TcpStream,
}

impl Conn for TcpConn {
    fn send(&mut self, frame: &[u8]) -> io::Result<()> {
        // sessions own their stream, so a blocking write with the OS
        // default buffer is the backpressure: a peer that stops
        // reading eventually stalls this session thread, and the
        // node-side bounded queue sheds further traffic
        self.stream
            .set_write_timeout(Some(Duration::from_secs(10)))?;
        self.stream.write_all(frame)?;
        self.stream.flush()
    }

    fn recv(&mut self, buf: &mut [u8], timeout: Duration) -> io::Result<Option<usize>> {
        // std rejects a zero read timeout; clamp to 1 ms
        self.stream
            .set_read_timeout(Some(timeout.max(Duration::from_millis(1))))?;
        match self.stream.read(buf) {
            Ok(n) => Ok(Some(n)),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                Ok(None)
            }
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> PeerId {
        PeerId(i)
    }

    #[test]
    fn connect_to_unknown_peer_is_refused() {
        if !TcpTransport::loopback_available() {
            eprintln!("skipping: no loopback in this sandbox");
            return;
        }
        let t = TcpTransport::new();
        assert!(t.connect(p(0), p(9)).is_err());
    }

    #[test]
    fn tcp_roundtrip_with_fragmented_reads() {
        if !TcpTransport::loopback_available() {
            eprintln!("skipping: no loopback in this sandbox");
            return;
        }
        let t = TcpTransport::new();
        let mut listener = t.listen(p(1)).unwrap();
        let mut a = t.connect(p(0), p(1)).unwrap();
        a.send(b"hello frame").unwrap();
        let mut b = listener
            .accept(Duration::from_secs(2))
            .unwrap()
            .expect("inbound conn");
        let mut got = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(2);
        while got.len() < 11 && Instant::now() < deadline {
            let mut chunk = [0u8; 4]; // force fragmentation
            if let Some(n) = b.recv(&mut chunk, Duration::from_millis(50)).unwrap() {
                if n == 0 {
                    break;
                }
                got.extend_from_slice(&chunk[..n]);
            }
        }
        assert_eq!(&got, b"hello frame");
    }

    #[test]
    fn recv_times_out_without_data() {
        if !TcpTransport::loopback_available() {
            eprintln!("skipping: no loopback in this sandbox");
            return;
        }
        let t = TcpTransport::new();
        let mut listener = t.listen(p(1)).unwrap();
        let _a = t.connect(p(0), p(1)).unwrap();
        let mut b = listener
            .accept(Duration::from_secs(2))
            .unwrap()
            .expect("inbound conn");
        let mut buf = [0u8; 8];
        let got = b.recv(&mut buf, Duration::from_millis(20)).unwrap();
        assert_eq!(got, None, "no data was sent");
    }
}

//! The in-process transport: duplex byte pipes with seeded delay,
//! frame loss, and fragmented delivery.
//!
//! [`MemTransport`] gives the node runtime a socket-free network:
//! connections are pairs of FIFO byte pipes guarded by mutex/condvar,
//! so the *same* session code that drives TCP runs deterministically
//! inside one process. Three adversities are injected, all from a
//! seeded per-connection RNG:
//!
//! * **loss** — each sent frame is dropped whole with probability
//!   `loss` (frame-aligned, so the stream never desynchronizes; a
//!   dropped frame models a lost message, which the periodic exchange
//!   protocol must absorb);
//! * **delay** — each accepted frame becomes readable only after a
//!   delay drawn from `[min_delay, max_delay]`, monotone per pipe so
//!   FIFO order is preserved;
//! * **fragmentation** — reads return random small chunks
//!   (`1..=max_read_chunk` bytes), so the incremental frame decoder is
//!   exercised on every message, not just in fuzz tests.
//!
//! [`MemTransport::disconnect`] severs every live pipe touching a
//! peer — the forced-disconnect injection the cluster harness uses to
//! prove the reconnect machinery works.

use crate::transport::{Conn, Listener, Transport};
use bartercast_util::units::PeerId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, VecDeque};
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Adversity knobs for the in-process network.
#[derive(Debug, Clone, Copy)]
pub struct MemConfig {
    /// Probability an individual sent frame is dropped whole.
    pub loss: f64,
    /// Minimum one-way frame delay.
    pub min_delay: Duration,
    /// Maximum one-way frame delay (inclusive).
    pub max_delay: Duration,
    /// Largest fragment a single [`Conn::recv`] returns.
    pub max_read_chunk: usize,
    /// Seed for every per-connection RNG (combined with the endpoint
    /// pair and a connection counter, so distinct connections see
    /// distinct but reproducible streams).
    pub seed: u64,
}

impl Default for MemConfig {
    fn default() -> Self {
        MemConfig {
            loss: 0.0,
            min_delay: Duration::ZERO,
            max_delay: Duration::from_micros(200),
            max_read_chunk: 64,
            seed: 0xBC,
        }
    }
}

/// One direction of a connection: a FIFO of delayed byte chunks.
#[derive(Debug, Default)]
struct PipeBuf {
    /// `(readable_at, bytes, read_offset)` in FIFO order.
    chunks: VecDeque<(Instant, Vec<u8>, usize)>,
    /// Monotone floor for the next chunk's `readable_at`.
    last_ready: Option<Instant>,
    closed: bool,
}

#[derive(Debug, Default)]
struct Pipe {
    buf: Mutex<PipeBuf>,
    cv: Condvar,
}

impl Pipe {
    fn close(&self) {
        self.buf.lock().expect("pipe lock").closed = true;
        self.cv.notify_all();
    }
}

/// Accept queue for one listening peer.
#[derive(Default)]
struct AcceptQueue {
    queue: Mutex<VecDeque<MemConn>>,
    cv: Condvar,
}

/// Book-keeping for [`MemTransport::disconnect`].
struct LiveConn {
    a: PeerId,
    b: PeerId,
    a_to_b: Arc<Pipe>,
    b_to_a: Arc<Pipe>,
}

#[derive(Default)]
struct Registry {
    listeners: HashMap<PeerId, Arc<AcceptQueue>>,
    live: Vec<LiveConn>,
    connects: u64,
}

/// The deterministic in-process transport. Cheap to clone; clones
/// share the same network.
#[derive(Clone)]
pub struct MemTransport {
    config: MemConfig,
    registry: Arc<Mutex<Registry>>,
    frames_dropped: Arc<AtomicU64>,
}

impl MemTransport {
    /// An empty in-process network with the given adversity knobs.
    pub fn new(config: MemConfig) -> Self {
        assert!((0.0..=1.0).contains(&config.loss));
        assert!(config.min_delay <= config.max_delay);
        assert!(config.max_read_chunk >= 1);
        MemTransport {
            config,
            registry: Arc::new(Mutex::new(Registry::default())),
            frames_dropped: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Frames silently dropped by loss injection so far.
    pub fn frames_dropped(&self) -> u64 {
        self.frames_dropped.load(Ordering::Relaxed)
    }
}

impl Transport for MemTransport {
    fn listen(&self, local: PeerId) -> io::Result<Box<dyn Listener>> {
        let queue = Arc::new(AcceptQueue::default());
        self.registry
            .lock()
            .expect("registry lock")
            .listeners
            .insert(local, Arc::clone(&queue));
        Ok(Box::new(MemListener { queue }))
    }

    fn connect(&self, from: PeerId, to: PeerId) -> io::Result<Box<dyn Conn>> {
        let mut reg = self.registry.lock().expect("registry lock");
        let queue = reg.listeners.get(&to).cloned().ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::ConnectionRefused,
                format!("peer {to} is not listening"),
            )
        })?;
        reg.connects += 1;
        let nonce = reg.connects;
        let a_to_b = Arc::new(Pipe::default());
        let b_to_a = Arc::new(Pipe::default());
        // drop vanished connections so the live list stays bounded
        reg.live.retain(|c| {
            !c.a_to_b.buf.lock().expect("pipe lock").closed
                || !c.b_to_a.buf.lock().expect("pipe lock").closed
        });
        reg.live.push(LiveConn {
            a: from,
            b: to,
            a_to_b: Arc::clone(&a_to_b),
            b_to_a: Arc::clone(&b_to_a),
        });
        drop(reg);
        let seed_for = |side: u64| {
            self.config
                .seed
                .wrapping_mul(0x9E3779B97F4A7C15)
                .wrapping_add((from.0 as u64) << 40)
                .wrapping_add((to.0 as u64) << 8)
                .wrapping_add(nonce.wrapping_mul(0xD1B54A32D192ED03))
                .wrapping_add(side)
        };
        let initiator = MemConn {
            tx: Arc::clone(&a_to_b),
            rx: Arc::clone(&b_to_a),
            config: self.config,
            rng: StdRng::seed_from_u64(seed_for(1)),
            frames_dropped: Arc::clone(&self.frames_dropped),
        };
        let acceptor = MemConn {
            tx: b_to_a,
            rx: a_to_b,
            config: self.config,
            rng: StdRng::seed_from_u64(seed_for(2)),
            frames_dropped: Arc::clone(&self.frames_dropped),
        };
        queue.queue.lock().expect("accept lock").push_back(acceptor);
        queue.cv.notify_one();
        Ok(Box::new(initiator))
    }

    fn disconnect(&self, peer: PeerId) -> usize {
        let mut reg = self.registry.lock().expect("registry lock");
        let mut killed = 0;
        reg.live.retain(|c| {
            if c.a == peer || c.b == peer {
                c.a_to_b.close();
                c.b_to_a.close();
                killed += 1;
                false
            } else {
                true
            }
        });
        killed
    }
}

struct MemListener {
    queue: Arc<AcceptQueue>,
}

impl Listener for MemListener {
    fn accept(&mut self, timeout: Duration) -> io::Result<Option<Box<dyn Conn>>> {
        let deadline = Instant::now() + timeout;
        let mut q = self.queue.queue.lock().expect("accept lock");
        loop {
            if let Some(conn) = q.pop_front() {
                return Ok(Some(Box::new(conn)));
            }
            let now = Instant::now();
            if now >= deadline {
                return Ok(None);
            }
            let (guard, _) = self
                .queue
                .cv
                .wait_timeout(q, deadline - now)
                .expect("accept lock");
            q = guard;
        }
    }
}

struct MemConn {
    tx: Arc<Pipe>,
    rx: Arc<Pipe>,
    config: MemConfig,
    rng: StdRng,
    frames_dropped: Arc<AtomicU64>,
}

impl Drop for MemConn {
    fn drop(&mut self) {
        // closing our write side is the EOF the remote reader sees;
        // closing our read side unblocks the remote writer with an
        // error instead of letting it fill an orphaned buffer
        self.tx.close();
        self.rx.close();
    }
}

impl Conn for MemConn {
    fn send(&mut self, frame: &[u8]) -> io::Result<()> {
        if self.config.loss > 0.0 && self.rng.gen_bool(self.config.loss) {
            self.frames_dropped.fetch_add(1, Ordering::Relaxed);
            return Ok(()); // dropped in flight; the sender cannot tell
        }
        let span = self
            .config
            .max_delay
            .saturating_sub(self.config.min_delay)
            .as_micros() as u64;
        let delay = self.config.min_delay
            + Duration::from_micros(if span == 0 {
                0
            } else {
                self.rng.gen_range(0..=span)
            });
        let mut buf = self.tx.buf.lock().expect("pipe lock");
        if buf.closed {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "connection severed",
            ));
        }
        // FIFO: a fast frame never overtakes a slow one
        let mut ready = Instant::now() + delay;
        if let Some(floor) = buf.last_ready {
            ready = ready.max(floor);
        }
        buf.last_ready = Some(ready);
        buf.chunks.push_back((ready, frame.to_vec(), 0));
        self.tx.cv.notify_all();
        Ok(())
    }

    fn recv(&mut self, buf: &mut [u8], timeout: Duration) -> io::Result<Option<usize>> {
        if buf.is_empty() {
            return Ok(Some(0));
        }
        let cap = self
            .rng
            .gen_range(1..=self.config.max_read_chunk)
            .min(buf.len());
        let deadline = Instant::now() + timeout;
        let mut pipe = self.rx.buf.lock().expect("pipe lock");
        loop {
            let now = Instant::now();
            if let Some((ready, bytes, offset)) = pipe.chunks.front_mut() {
                if *ready <= now {
                    let n = cap.min(bytes.len() - *offset);
                    buf[..n].copy_from_slice(&bytes[*offset..*offset + n]);
                    *offset += n;
                    if *offset == bytes.len() {
                        pipe.chunks.pop_front();
                    }
                    return Ok(Some(n));
                }
                if now >= deadline {
                    return Ok(None);
                }
                // data exists but is still "in flight": wait for the
                // earlier of its readiness and the caller's deadline
                let wait = (*ready - now).min(deadline - now);
                let (guard, _) = self.rx.cv.wait_timeout(pipe, wait).expect("pipe lock");
                pipe = guard;
                continue;
            }
            if pipe.closed {
                return Ok(Some(0)); // EOF
            }
            if now >= deadline {
                return Ok(None);
            }
            let (guard, _) = self
                .rx
                .cv
                .wait_timeout(pipe, deadline - now)
                .expect("pipe lock");
            pipe = guard;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> PeerId {
        PeerId(i)
    }

    fn lossless() -> MemTransport {
        MemTransport::new(MemConfig::default())
    }

    fn drain(conn: &mut Box<dyn Conn>, want: usize) -> Vec<u8> {
        let mut got = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(2);
        while got.len() < want && Instant::now() < deadline {
            let mut chunk = [0u8; 256];
            match conn.recv(&mut chunk, Duration::from_millis(20)).unwrap() {
                Some(0) => break,
                Some(n) => got.extend_from_slice(&chunk[..n]),
                None => {}
            }
        }
        got
    }

    #[test]
    fn roundtrip_preserves_order_across_frames() {
        let t = lossless();
        let mut listener = t.listen(p(1)).unwrap();
        let mut a = t.connect(p(0), p(1)).unwrap();
        let mut b = listener
            .accept(Duration::from_secs(1))
            .unwrap()
            .expect("inbound");
        a.send(b"first-frame|").unwrap();
        a.send(b"second-frame").unwrap();
        let got = drain(&mut b, 24);
        assert_eq!(&got, b"first-frame|second-frame");
    }

    #[test]
    fn reads_are_fragmented() {
        let t = MemTransport::new(MemConfig {
            max_read_chunk: 3,
            ..MemConfig::default()
        });
        let mut listener = t.listen(p(1)).unwrap();
        let mut a = t.connect(p(0), p(1)).unwrap();
        let mut b = listener.accept(Duration::from_secs(1)).unwrap().unwrap();
        a.send(&[7u8; 32]).unwrap();
        let mut chunk = [0u8; 32];
        let deadline = Instant::now() + Duration::from_secs(2);
        loop {
            if let Some(n) = b.recv(&mut chunk, Duration::from_millis(20)).unwrap() {
                assert!(n <= 3, "fragment of {n} bytes exceeds the cap");
                break;
            }
            assert!(Instant::now() < deadline, "no data arrived");
        }
    }

    #[test]
    fn total_loss_delivers_nothing_but_counts() {
        let t = MemTransport::new(MemConfig {
            loss: 1.0,
            ..MemConfig::default()
        });
        let mut listener = t.listen(p(1)).unwrap();
        let mut a = t.connect(p(0), p(1)).unwrap();
        let mut b = listener.accept(Duration::from_secs(1)).unwrap().unwrap();
        for _ in 0..10 {
            a.send(b"doomed").unwrap();
        }
        assert_eq!(t.frames_dropped(), 10);
        let mut buf = [0u8; 8];
        assert_eq!(b.recv(&mut buf, Duration::from_millis(30)).unwrap(), None);
    }

    #[test]
    fn connect_without_listener_is_refused() {
        let t = lossless();
        let err = match t.connect(p(0), p(5)) {
            Err(e) => e,
            Ok(_) => panic!("nobody is listening on peer 5"),
        };
        assert_eq!(err.kind(), io::ErrorKind::ConnectionRefused);
    }

    #[test]
    fn disconnect_severs_both_directions_but_not_the_listener() {
        let t = lossless();
        let mut listener = t.listen(p(1)).unwrap();
        let mut a = t.connect(p(0), p(1)).unwrap();
        let mut b = listener.accept(Duration::from_secs(1)).unwrap().unwrap();
        assert_eq!(t.disconnect(p(1)), 1);
        assert!(a.send(b"x").is_err(), "writer must observe the cut");
        let mut buf = [0u8; 4];
        assert_eq!(
            b.recv(&mut buf, Duration::from_millis(20)).unwrap(),
            Some(0),
            "reader must observe EOF"
        );
        // the listener survives: reconnection is possible
        let mut a2 = t.connect(p(0), p(1)).unwrap();
        a2.send(b"back").unwrap();
        let mut b2 = listener.accept(Duration::from_secs(1)).unwrap().unwrap();
        assert_eq!(drain(&mut b2, 4), b"back");
    }

    #[test]
    fn dropping_a_conn_signals_eof_to_the_peer() {
        let t = lossless();
        let mut listener = t.listen(p(1)).unwrap();
        let a = t.connect(p(0), p(1)).unwrap();
        let mut b = listener.accept(Duration::from_secs(1)).unwrap().unwrap();
        drop(a);
        let mut buf = [0u8; 4];
        let deadline = Instant::now() + Duration::from_secs(1);
        loop {
            match b.recv(&mut buf, Duration::from_millis(20)).unwrap() {
                Some(0) => break,
                Some(_) => panic!("no data was ever sent"),
                None => assert!(Instant::now() < deadline, "EOF never arrived"),
            }
        }
    }

    #[test]
    fn same_seed_same_loss_pattern() {
        let observe = |seed| {
            let t = MemTransport::new(MemConfig {
                loss: 0.5,
                seed,
                ..MemConfig::default()
            });
            let _listener = t.listen(p(1)).unwrap();
            let mut a = t.connect(p(0), p(1)).unwrap();
            let mut dropped = Vec::new();
            for k in 0..64 {
                let before = t.frames_dropped();
                a.send(&[k]).unwrap();
                dropped.push(t.frames_dropped() > before);
            }
            dropped
        };
        assert_eq!(observe(7), observe(7));
        assert_ne!(observe(7), observe(8), "different seeds should differ");
    }
}

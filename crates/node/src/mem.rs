//! The in-process transport: duplex byte pipes with seeded delay,
//! frame loss, and fragmented delivery — now non-blocking and
//! waker-driven for the reactor.
//!
//! [`MemTransport`] gives the node runtime a socket-free network:
//! connections are pairs of FIFO byte pipes guarded by a mutex, so the
//! *same* session code that drives TCP runs deterministically inside
//! one process. Three adversities are injected, all from seeded
//! per-connection RNGs:
//!
//! * **loss** — each sent frame is dropped whole with probability
//!   `loss` (frame-aligned, so the stream never desynchronizes; a
//!   dropped frame models a lost message, which the periodic exchange
//!   protocol must absorb);
//! * **delay** — each accepted frame becomes readable only after a
//!   delay drawn from `[min_delay, max_delay]`, monotone per pipe so
//!   FIFO order is preserved;
//! * **fragmentation** — reads return random small chunks
//!   (`1..=max_read_chunk` bytes), so the incremental frame decoder is
//!   exercised on every message, not just in fuzz tests.
//!
//! **Determinism contract.** The adversity schedule is independent of
//! *when* and *how often* the reactor polls:
//!
//! * each direction of each connection owns **two** RNG streams — one
//!   consumed only on sends (loss + delay draws) and one consumed only
//!   on successful reads (fragment caps) — so interleaving polls with
//!   sends cannot shift either stream, and a `try_recv` that would
//!   block consumes nothing;
//! * RNG seeds derive from `(seed, from, to, per-pair connection
//!   ordinal)`, not from a transport-global connection counter, so the
//!   k-th `A → B` connection sees the same streams regardless of how
//!   dials of *other* pairs interleave with it;
//! * delays are computed against the transport's [`Clock`], so under a
//!   [`VirtualClock`](crate::clock::VirtualClock) the whole frame
//!   schedule is an exact function of the seeds — which is what the
//!   lockstep cluster driver's bitwise-equality regression test pins.
//!
//! [`MemTransport::disconnect`] severs every live pipe touching a
//! peer — the forced-disconnect injection the cluster harness uses to
//! prove the reconnect machinery works.

use crate::clock::{Clock, SystemClock};
use crate::transport::{Conn, Listener, ReadySource, Transport, WakeQueue};
use bartercast_util::units::PeerId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, VecDeque};
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Adversity knobs for the in-process network.
#[derive(Debug, Clone, Copy)]
pub struct MemConfig {
    /// Probability an individual sent frame is dropped whole.
    pub loss: f64,
    /// Minimum one-way frame delay.
    pub min_delay: Duration,
    /// Maximum one-way frame delay (inclusive).
    pub max_delay: Duration,
    /// Largest fragment a single [`Conn::try_recv`] returns.
    pub max_read_chunk: usize,
    /// Seed for every per-connection RNG (combined with the endpoint
    /// pair and a per-pair connection ordinal, so distinct connections
    /// see distinct but reproducible streams regardless of global
    /// connect order).
    pub seed: u64,
}

impl Default for MemConfig {
    fn default() -> Self {
        MemConfig {
            loss: 0.0,
            min_delay: Duration::ZERO,
            max_delay: Duration::from_micros(200),
            max_read_chunk: 64,
            seed: 0xBC,
        }
    }
}

type Watcher = (Arc<WakeQueue>, u64);

/// One direction of a connection: a FIFO of delayed byte chunks.
#[derive(Default)]
struct PipeBuf {
    /// `(readable_at, bytes, read_offset)` in FIFO order.
    chunks: VecDeque<(Instant, Vec<u8>, usize)>,
    /// Monotone floor for the next chunk's `readable_at`.
    last_ready: Option<Instant>,
    closed: bool,
    /// The reader's reactor wake hook, if registered.
    watcher: Option<Watcher>,
}

impl PipeBuf {
    fn wake_reader(&self) {
        if let Some((queue, token)) = &self.watcher {
            queue.notify(*token);
        }
    }
}

#[derive(Default)]
struct Pipe {
    buf: Mutex<PipeBuf>,
}

impl Pipe {
    fn close(&self) {
        let mut buf = self.buf.lock().expect("pipe lock");
        buf.closed = true;
        buf.wake_reader();
    }
}

/// Accept queue for one listening peer.
#[derive(Default)]
struct AcceptQueue {
    inner: Mutex<(VecDeque<MemConn>, Option<Watcher>)>,
}

impl AcceptQueue {
    fn push(&self, conn: MemConn) {
        let mut inner = self.inner.lock().expect("accept lock");
        inner.0.push_back(conn);
        if let Some((queue, token)) = &inner.1 {
            queue.notify(*token);
        }
    }
}

/// Book-keeping for [`MemTransport::disconnect`].
struct LiveConn {
    a: PeerId,
    b: PeerId,
    a_to_b: Arc<Pipe>,
    b_to_a: Arc<Pipe>,
}

#[derive(Default)]
struct Registry {
    listeners: HashMap<PeerId, Arc<AcceptQueue>>,
    live: Vec<LiveConn>,
    /// Per ordered pair `(from, to)`: how many connections have been
    /// opened. Seeds the per-connection RNGs, so the k-th `A → B`
    /// connection is reproducible regardless of other pairs' dials.
    pair_connects: HashMap<(PeerId, PeerId), u64>,
}

/// The deterministic in-process transport. Cheap to clone; clones
/// share the same network.
#[derive(Clone)]
pub struct MemTransport {
    config: MemConfig,
    registry: Arc<Mutex<Registry>>,
    frames_dropped: Arc<AtomicU64>,
    clock: Arc<dyn Clock>,
}

impl MemTransport {
    /// An empty in-process network with the given adversity knobs,
    /// running on wall-clock time.
    pub fn new(config: MemConfig) -> Self {
        Self::with_clock(config, Arc::new(SystemClock))
    }

    /// An empty in-process network whose delay schedule is computed
    /// against `clock` — install a
    /// [`VirtualClock`](crate::clock::VirtualClock) for fully
    /// deterministic lockstep runs.
    pub fn with_clock(config: MemConfig, clock: Arc<dyn Clock>) -> Self {
        assert!((0.0..=1.0).contains(&config.loss));
        assert!(config.min_delay <= config.max_delay);
        assert!(config.max_read_chunk >= 1);
        MemTransport {
            config,
            registry: Arc::new(Mutex::new(Registry::default())),
            frames_dropped: Arc::new(AtomicU64::new(0)),
            clock,
        }
    }

    /// Frames silently dropped by loss injection so far.
    pub fn frames_dropped(&self) -> u64 {
        self.frames_dropped.load(Ordering::Relaxed)
    }
}

impl Transport for MemTransport {
    fn listen(&self, local: PeerId) -> io::Result<Box<dyn Listener>> {
        let queue = Arc::new(AcceptQueue::default());
        self.registry
            .lock()
            .expect("registry lock")
            .listeners
            .insert(local, Arc::clone(&queue));
        Ok(Box::new(MemListener { queue }))
    }

    fn connect(&self, from: PeerId, to: PeerId) -> io::Result<Box<dyn Conn>> {
        let mut reg = self.registry.lock().expect("registry lock");
        let queue = reg.listeners.get(&to).cloned().ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::ConnectionRefused,
                format!("peer {to} is not listening"),
            )
        })?;
        let ordinal = {
            let k = reg.pair_connects.entry((from, to)).or_insert(0);
            *k += 1;
            *k
        };
        let a_to_b = Arc::new(Pipe::default());
        let b_to_a = Arc::new(Pipe::default());
        // drop vanished connections so the live list stays bounded
        reg.live.retain(|c| {
            !c.a_to_b.buf.lock().expect("pipe lock").closed
                || !c.b_to_a.buf.lock().expect("pipe lock").closed
        });
        reg.live.push(LiveConn {
            a: from,
            b: to,
            a_to_b: Arc::clone(&a_to_b),
            b_to_a: Arc::clone(&b_to_a),
        });
        drop(reg);
        // four independent streams per connection: {initiator,
        // acceptor} × {send-side loss/delay, read-side fragmentation}
        let seed_for = |stream: u64| {
            self.config
                .seed
                .wrapping_mul(0x9E3779B97F4A7C15)
                .wrapping_add((from.0 as u64) << 40)
                .wrapping_add((to.0 as u64) << 8)
                .wrapping_add(ordinal.wrapping_mul(0xD1B54A32D192ED03))
                .wrapping_add(stream)
        };
        let initiator = MemConn {
            tx: Arc::clone(&a_to_b),
            rx: Arc::clone(&b_to_a),
            config: self.config,
            tx_rng: StdRng::seed_from_u64(seed_for(1)),
            rx_rng: StdRng::seed_from_u64(seed_for(2)),
            frames_dropped: Arc::clone(&self.frames_dropped),
            clock: Arc::clone(&self.clock),
        };
        let acceptor = MemConn {
            tx: b_to_a,
            rx: a_to_b,
            config: self.config,
            tx_rng: StdRng::seed_from_u64(seed_for(3)),
            rx_rng: StdRng::seed_from_u64(seed_for(4)),
            frames_dropped: Arc::clone(&self.frames_dropped),
            clock: Arc::clone(&self.clock),
        };
        queue.push(acceptor);
        Ok(Box::new(initiator))
    }

    fn disconnect(&self, peer: PeerId) -> usize {
        let mut reg = self.registry.lock().expect("registry lock");
        let mut killed = 0;
        reg.live.retain(|c| {
            if c.a == peer || c.b == peer {
                c.a_to_b.close();
                c.b_to_a.close();
                killed += 1;
                false
            } else {
                true
            }
        });
        killed
    }
}

struct MemListener {
    queue: Arc<AcceptQueue>,
}

impl Listener for MemListener {
    fn try_accept(&mut self) -> io::Result<Option<Box<dyn Conn>>> {
        let mut inner = self.queue.inner.lock().expect("accept lock");
        Ok(inner.0.pop_front().map(|c| Box::new(c) as Box<dyn Conn>))
    }

    fn register_waker(&mut self, queue: &Arc<WakeQueue>, token: u64) {
        let mut inner = self.queue.inner.lock().expect("accept lock");
        let pending = !inner.0.is_empty();
        inner.1 = Some((Arc::clone(queue), token));
        if pending {
            queue.notify(token);
        }
    }

    fn ready_source(&self) -> ReadySource {
        ReadySource::Waker
    }
}

struct MemConn {
    tx: Arc<Pipe>,
    rx: Arc<Pipe>,
    config: MemConfig,
    /// Consumed only on sends: one loss draw, then (if kept and the
    /// delay span is nonzero) one delay draw per frame.
    tx_rng: StdRng,
    /// Consumed only on successful reads: one fragment-cap draw each.
    rx_rng: StdRng,
    frames_dropped: Arc<AtomicU64>,
    clock: Arc<dyn Clock>,
}

impl Drop for MemConn {
    fn drop(&mut self) {
        // closing our write side is the EOF the remote reader sees;
        // closing our read side unblocks the remote writer with an
        // error instead of letting it fill an orphaned buffer
        self.tx.close();
        self.rx.close();
    }
}

impl Conn for MemConn {
    fn try_send(&mut self, frame: &[u8]) -> io::Result<bool> {
        if self.config.loss > 0.0 && self.tx_rng.gen_bool(self.config.loss) {
            self.frames_dropped.fetch_add(1, Ordering::Relaxed);
            return Ok(true); // dropped in flight; the sender cannot tell
        }
        let span = self
            .config
            .max_delay
            .saturating_sub(self.config.min_delay)
            .as_micros() as u64;
        let delay = self.config.min_delay
            + Duration::from_micros(if span == 0 {
                0
            } else {
                self.tx_rng.gen_range(0..=span)
            });
        let mut buf = self.tx.buf.lock().expect("pipe lock");
        if buf.closed {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "connection severed",
            ));
        }
        // FIFO: a fast frame never overtakes a slow one
        let mut ready = self.clock.now() + delay;
        if let Some(floor) = buf.last_ready {
            ready = ready.max(floor);
        }
        buf.last_ready = Some(ready);
        buf.chunks.push_back((ready, frame.to_vec(), 0));
        buf.wake_reader();
        Ok(true)
    }

    fn flush(&mut self) -> io::Result<bool> {
        Ok(true) // sends land in the pipe immediately; nothing buffers
    }

    fn try_recv(&mut self, buf: &mut [u8]) -> io::Result<Option<usize>> {
        if buf.is_empty() {
            return Ok(Some(0));
        }
        let now = self.clock.now();
        let mut pipe = self.rx.buf.lock().expect("pipe lock");
        if let Some((ready, bytes, offset)) = pipe.chunks.front_mut() {
            if *ready <= now {
                // the cap draw happens only on an actual read, so the
                // fragmentation schedule is poll-count independent
                let cap = self
                    .rx_rng
                    .gen_range(1..=self.config.max_read_chunk)
                    .min(buf.len());
                let n = cap.min(bytes.len() - *offset);
                buf[..n].copy_from_slice(&bytes[*offset..*offset + n]);
                *offset += n;
                if *offset == bytes.len() {
                    pipe.chunks.pop_front();
                }
                return Ok(Some(n));
            }
            return Ok(None); // in flight, not readable yet
        }
        if pipe.closed {
            return Ok(Some(0)); // EOF
        }
        Ok(None)
    }

    fn next_ready_at(&self) -> Option<Instant> {
        let pipe = self.rx.buf.lock().expect("pipe lock");
        pipe.chunks.front().map(|(ready, _, _)| *ready)
    }

    fn register_waker(&mut self, queue: &Arc<WakeQueue>, token: u64) {
        let mut pipe = self.rx.buf.lock().expect("pipe lock");
        let pending = !pipe.chunks.is_empty() || pipe.closed;
        pipe.watcher = Some((Arc::clone(queue), token));
        if pending {
            queue.notify(token);
        }
    }

    fn ready_source(&self) -> ReadySource {
        ReadySource::Waker
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> PeerId {
        PeerId(i)
    }

    fn lossless() -> MemTransport {
        MemTransport::new(MemConfig::default())
    }

    fn accept_now(l: &mut Box<dyn Listener>) -> Box<dyn Conn> {
        l.try_accept().unwrap().expect("inbound conn queued")
    }

    fn drain(conn: &mut Box<dyn Conn>, want: usize) -> Vec<u8> {
        let mut got = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(2);
        while got.len() < want && Instant::now() < deadline {
            let mut chunk = [0u8; 256];
            match conn.try_recv(&mut chunk).unwrap() {
                Some(0) => break,
                Some(n) => got.extend_from_slice(&chunk[..n]),
                None => std::thread::sleep(Duration::from_micros(100)),
            }
        }
        got
    }

    #[test]
    fn roundtrip_preserves_order_across_frames() {
        let t = lossless();
        let mut listener = t.listen(p(1)).unwrap();
        let mut a = t.connect(p(0), p(1)).unwrap();
        let mut b = accept_now(&mut listener);
        a.try_send(b"first-frame|").unwrap();
        a.try_send(b"second-frame").unwrap();
        let got = drain(&mut b, 24);
        assert_eq!(&got, b"first-frame|second-frame");
    }

    #[test]
    fn reads_are_fragmented() {
        let t = MemTransport::new(MemConfig {
            max_read_chunk: 3,
            ..MemConfig::default()
        });
        let mut listener = t.listen(p(1)).unwrap();
        let mut a = t.connect(p(0), p(1)).unwrap();
        let mut b = accept_now(&mut listener);
        a.try_send(&[7u8; 32]).unwrap();
        let deadline = Instant::now() + Duration::from_secs(2);
        loop {
            let mut chunk = [0u8; 32];
            if let Some(n) = b.try_recv(&mut chunk).unwrap() {
                assert!(n <= 3, "fragment of {n} bytes exceeds the cap");
                break;
            }
            assert!(Instant::now() < deadline, "no data arrived");
        }
    }

    #[test]
    fn total_loss_delivers_nothing_but_counts() {
        let t = MemTransport::new(MemConfig {
            loss: 1.0,
            ..MemConfig::default()
        });
        let mut listener = t.listen(p(1)).unwrap();
        let mut a = t.connect(p(0), p(1)).unwrap();
        let mut b = accept_now(&mut listener);
        for _ in 0..10 {
            a.try_send(b"doomed").unwrap();
        }
        assert_eq!(t.frames_dropped(), 10);
        std::thread::sleep(Duration::from_millis(2));
        let mut buf = [0u8; 8];
        assert_eq!(b.try_recv(&mut buf).unwrap(), None);
    }

    #[test]
    fn connect_without_listener_is_refused() {
        let t = lossless();
        let err = match t.connect(p(0), p(5)) {
            Err(e) => e,
            Ok(_) => panic!("nobody is listening on peer 5"),
        };
        assert_eq!(err.kind(), io::ErrorKind::ConnectionRefused);
    }

    #[test]
    fn disconnect_severs_both_directions_but_not_the_listener() {
        let t = lossless();
        let mut listener = t.listen(p(1)).unwrap();
        let mut a = t.connect(p(0), p(1)).unwrap();
        let mut b = accept_now(&mut listener);
        assert_eq!(t.disconnect(p(1)), 1);
        assert!(a.try_send(b"x").is_err(), "writer must observe the cut");
        let mut buf = [0u8; 4];
        assert_eq!(
            b.try_recv(&mut buf).unwrap(),
            Some(0),
            "reader must observe EOF"
        );
        // the listener survives: reconnection is possible
        let mut a2 = t.connect(p(0), p(1)).unwrap();
        a2.try_send(b"back").unwrap();
        let mut b2 = accept_now(&mut listener);
        assert_eq!(drain(&mut b2, 4), b"back");
    }

    #[test]
    fn dropping_a_conn_signals_eof_to_the_peer() {
        let t = lossless();
        let mut listener = t.listen(p(1)).unwrap();
        let a = t.connect(p(0), p(1)).unwrap();
        let mut b = accept_now(&mut listener);
        drop(a);
        let mut buf = [0u8; 4];
        let deadline = Instant::now() + Duration::from_secs(1);
        loop {
            match b.try_recv(&mut buf).unwrap() {
                Some(0) => break,
                Some(_) => panic!("no data was ever sent"),
                None => assert!(Instant::now() < deadline, "EOF never arrived"),
            }
        }
    }

    #[test]
    fn same_seed_same_loss_pattern() {
        let observe = |seed| {
            let t = MemTransport::new(MemConfig {
                loss: 0.5,
                seed,
                ..MemConfig::default()
            });
            let _listener = t.listen(p(1)).unwrap();
            let mut a = t.connect(p(0), p(1)).unwrap();
            let mut dropped = Vec::new();
            for k in 0..64 {
                let before = t.frames_dropped();
                a.try_send(&[k]).unwrap();
                dropped.push(t.frames_dropped() > before);
            }
            dropped
        };
        assert_eq!(observe(7), observe(7));
        assert_ne!(observe(7), observe(8), "different seeds should differ");
    }

    /// Idle polls must not consume RNG state: the byte-fragment
    /// schedule is identical whether or not the reader poll-spins on an
    /// empty pipe first.
    #[test]
    fn empty_polls_do_not_shift_the_fragment_schedule() {
        let observe = |idle_polls: usize| {
            let clock = Arc::new(crate::clock::VirtualClock::new());
            let t = MemTransport::with_clock(
                MemConfig {
                    max_read_chunk: 5,
                    max_delay: Duration::ZERO,
                    ..MemConfig::default()
                },
                clock,
            );
            let mut listener = t.listen(p(1)).unwrap();
            let mut a = t.connect(p(0), p(1)).unwrap();
            let mut b = accept_now(&mut listener);
            let mut buf = [0u8; 64];
            for _ in 0..idle_polls {
                assert_eq!(b.try_recv(&mut buf).unwrap(), None);
            }
            a.try_send(&[9u8; 40]).unwrap();
            let mut sizes = Vec::new();
            loop {
                match b.try_recv(&mut buf).unwrap() {
                    Some(n) if n > 0 => sizes.push(n),
                    _ => break,
                }
            }
            sizes
        };
        assert_eq!(observe(0), observe(17));
    }

    /// The k-th connection of a pair sees the same loss pattern no
    /// matter how many *other* pairs connected in between.
    #[test]
    fn pair_ordinal_seeding_ignores_other_pairs() {
        let observe = |noise_dials: usize| {
            let t = MemTransport::new(MemConfig {
                loss: 0.5,
                seed: 42,
                ..MemConfig::default()
            });
            let _l1 = t.listen(p(1)).unwrap();
            let _l9 = t.listen(p(9)).unwrap();
            for _ in 0..noise_dials {
                let _ = t.connect(p(8), p(9)).unwrap();
            }
            let mut a = t.connect(p(0), p(1)).unwrap();
            let mut dropped = Vec::new();
            for k in 0..64 {
                let before = t.frames_dropped();
                a.try_send(&[k]).unwrap();
                dropped.push(t.frames_dropped() > before);
            }
            dropped
        };
        assert_eq!(observe(0), observe(5));
    }
}

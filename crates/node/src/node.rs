//! The node handle: one running BarterCast peer.
//!
//! A [`Node`] owns its private history and subjective
//! [`ReputationEngine`](bartercast_core::repcache::ReputationEngine)
//! behind a single [`Reactor`](crate::reactor::Reactor) thread. Where
//! the previous runtime spent a thread per live connection (plus an
//! acceptor and a core loop), the reactor multiplexes *every* session
//! of this node — accepts, handshakes, exchanges, timeouts, dial
//! retries — through one readiness-polled loop, so a node's thread
//! count is 1 regardless of fan-out.
//!
//! The handle itself only holds the shared pieces the outside world
//! needs: the counters (for [`Node::stats`]), the node state (for
//! [`Node::subjective_edges`] / [`Node::reputation_of`]), the shutdown
//! flag, and the reactor's wake queue so [`Node::shutdown`] can
//! interrupt a parked reactor immediately instead of waiting out its
//! poll timeout.

use crate::clock::SystemClock;
use crate::reactor::Reactor;
use crate::stats::{NodeCounters, NodeStats};
use crate::transport::{Transport, WakeQueue};
use bartercast_core::PrivateHistory;
use bartercast_util::units::{Bytes, PeerId};
use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

pub use crate::reactor::NodeConfig;

/// One running peer. Dropping the handle without calling
/// [`Node::shutdown`] still drains gracefully; call `shutdown` to get
/// the final counter snapshot back.
pub struct Node {
    id: PeerId,
    counters: Arc<NodeCounters>,
    state: Arc<Mutex<crate::reactor::NodeState>>,
    shutdown: Arc<AtomicBool>,
    wake: Arc<WakeQueue>,
    reactor: Option<JoinHandle<()>>,
}

impl Node {
    /// Boot a node: bind its listener (synchronously, so the peer is
    /// dialable as soon as `spawn` returns), start the reactor thread,
    /// and begin exchanging on `config.exchange_interval`. `bootstrap`
    /// seeds the peer-sampling view.
    pub fn spawn(
        id: PeerId,
        transport: Arc<dyn Transport>,
        bootstrap: Vec<PeerId>,
        history: PrivateHistory,
        config: NodeConfig,
    ) -> io::Result<Node> {
        let mut reactor = Reactor::new(
            id,
            transport,
            bootstrap,
            history,
            config,
            Arc::new(SystemClock),
        )?;
        let counters = reactor.counters();
        let state = reactor.state();
        let wake = reactor.wake_handle();
        let shutdown = Arc::new(AtomicBool::new(false));
        let thread = {
            let shutdown = Arc::clone(&shutdown);
            std::thread::Builder::new()
                .name(format!("node-{}", id.0))
                .spawn(move || reactor.run(&shutdown))
                .expect("spawn reactor")
        };
        Ok(Node {
            id,
            counters,
            state,
            shutdown,
            wake,
            reactor: Some(thread),
        })
    }

    /// This node's peer id.
    pub fn id(&self) -> PeerId {
        self.id
    }

    /// Snapshot of the operational counters.
    pub fn stats(&self) -> NodeStats {
        self.counters.snapshot()
    }

    /// The node's subjective contribution graph as a sorted edge list
    /// `(from, to, bytes)` — the convergence check compares these
    /// across nodes.
    pub fn subjective_edges(&self) -> Vec<(PeerId, PeerId, Bytes)> {
        self.state.lock().expect("state lock").subjective_edges()
    }

    /// This node's subjective reputation of `peer` (Equation 1 over the
    /// merged graph).
    pub fn reputation_of(&self, peer: PeerId) -> f64 {
        let me = self.id;
        self.state.lock().expect("state lock").reputation(me, peer)
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        self.wake.kick(); // interrupt a parked reactor immediately
        if let Some(h) = self.reactor.take() {
            let _ = h.join();
        }
    }

    /// Stop gracefully: drain and `Bye` every session, join the reactor
    /// thread, and return the final counter snapshot.
    pub fn shutdown(mut self) -> NodeStats {
        self.stop();
        self.counters.snapshot()
    }
}

impl Drop for Node {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::{MemConfig, MemTransport};
    use bartercast_util::units::Seconds;
    use std::time::{Duration, Instant};

    fn fast_config(seed: u64) -> NodeConfig {
        NodeConfig {
            exchange_interval: Duration::from_millis(20),
            backoff_base: Duration::from_millis(10),
            backoff_max: Duration::from_millis(200),
            seed,
            ..NodeConfig::default()
        }
    }

    fn history_with_upload(owner: u32, peer: u32, mb: u64) -> PrivateHistory {
        let mut h = PrivateHistory::new(PeerId(owner));
        h.record_upload(PeerId(peer), Bytes::from_mb(mb), Seconds(1));
        h
    }

    #[test]
    fn two_nodes_converge_to_each_others_records() {
        let transport = Arc::new(MemTransport::new(MemConfig::default()));
        let a = Node::spawn(
            PeerId(0),
            Arc::clone(&transport) as Arc<dyn Transport>,
            vec![PeerId(1)],
            history_with_upload(0, 1, 64),
            fast_config(1),
        )
        .unwrap();
        let b = Node::spawn(
            PeerId(1),
            Arc::clone(&transport) as Arc<dyn Transport>,
            vec![PeerId(0)],
            history_with_upload(1, 2, 32),
            fast_config(2),
        )
        .unwrap();

        // each node must learn the edge only the other one knew
        let deadline = Instant::now() + Duration::from_secs(10);
        let want = 2; // 0→1 (a's upload) and 1→2 (b's upload)
        loop {
            let ea = a.subjective_edges();
            let eb = b.subjective_edges();
            if ea.len() >= want && ea == eb {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "no convergence: a={ea:?} b={eb:?}, a_stats={:?}, b_stats={:?}",
                a.stats(),
                b.stats()
            );
            std::thread::sleep(Duration::from_millis(10));
        }

        let sa = a.shutdown();
        let sb = b.shutdown();
        assert!(sa.sessions_opened + sb.sessions_opened >= 1);
        assert!(sa.records_received + sb.records_received >= 2);
        assert_eq!(sa.sessions_live, 0, "shutdown must reap every session");
        assert_eq!(sb.sessions_live, 0);
    }

    #[test]
    fn shutdown_is_prompt_and_joins_everything() {
        let transport = Arc::new(MemTransport::new(MemConfig::default()));
        let node = Node::spawn(
            PeerId(7),
            transport as Arc<dyn Transport>,
            vec![],
            history_with_upload(7, 8, 1),
            fast_config(7),
        )
        .unwrap();
        let started = Instant::now();
        let stats = node.shutdown();
        assert!(started.elapsed() < Duration::from_secs(5));
        assert_eq!(stats.protocol_errors, 0);
    }
}

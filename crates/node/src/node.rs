//! The node core: one running BarterCast peer.
//!
//! A [`Node`] owns its private history and subjective
//! [`ReputationEngine`], listens for inbound sessions, and periodically
//! pushes its top-`Nh`/`Nr` history slice to gossip-sampled neighbors.
//! Three kinds of threads cooperate:
//!
//! * the **acceptor** polls the transport listener and spawns a
//!   responder session per inbound connection;
//! * one **session thread** per live connection runs the
//!   [`session`](crate::session) state machine, isolated from node
//!   state behind bounded channels;
//! * the **core loop** drains session events (absorbing `Records` into
//!   the engine), fires exchange ticks, dials neighbors with
//!   exponential backoff plus jitter, and reaps finished sessions.
//!
//! Backpressure is explicit everywhere: outbound per-session queues and
//! the inbound event channel are bounded `sync_channel`s, and anything
//! shed on a full queue is counted in
//! [`NodeStats::queue_shed`](crate::stats::NodeStats::queue_shed)
//! rather than silently buffered without limit.

use crate::session::{self, Direction, SessionConfig, SessionEvent};
use crate::stats::{NodeCounters, NodeStats};
use crate::transport::Transport;
use bartercast_core::message::BarterCastConfig;
use bartercast_core::repcache::ReputationEngine;
use bartercast_core::{BarterCastMessage, PrivateHistory};
use bartercast_gossip::{PssConfig, PssNode};
use bartercast_util::units::{Bytes, PeerId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet};
use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tunables for one node. The defaults are production-flavored
/// (seconds-scale exchanges); tests and the cluster harness shrink the
/// intervals to milliseconds.
#[derive(Debug, Clone, Copy)]
pub struct NodeConfig {
    /// How often the node pushes its history to sampled neighbors.
    pub exchange_interval: Duration,
    /// Neighbors addressed per exchange tick.
    pub fanout: usize,
    /// First reconnect delay after a failure; doubles per consecutive
    /// failure.
    pub backoff_base: Duration,
    /// Ceiling on the exponential backoff.
    pub backoff_max: Duration,
    /// Random extra fraction (`0.0..=1.0`) added to each backoff delay
    /// so a rebooted cluster doesn't thunder back in lockstep.
    pub backoff_jitter: f64,
    /// Capacity of each session's outbound message queue.
    pub outbound_queue: usize,
    /// Capacity of the session-event channel into the core loop.
    pub event_queue: usize,
    /// Accept-poll granularity for the acceptor thread.
    pub accept_poll: Duration,
    /// Per-session protocol timeouts.
    pub session: SessionConfig,
    /// Top-`Nh`/`Nr` selection for outgoing BarterCast messages.
    pub bartercast: BarterCastConfig,
    /// Peer-sampling view parameters.
    pub pss: PssConfig,
    /// Seed for the node's own RNG (sampling + jitter). Combined with
    /// the node id, so a cluster built from one seed still gives every
    /// node a distinct stream.
    pub seed: u64,
}

impl Default for NodeConfig {
    fn default() -> Self {
        NodeConfig {
            exchange_interval: Duration::from_secs(10),
            fanout: 3,
            backoff_base: Duration::from_millis(100),
            backoff_max: Duration::from_secs(30),
            backoff_jitter: 0.5,
            outbound_queue: 16,
            event_queue: 256,
            accept_poll: Duration::from_millis(20),
            session: SessionConfig::default(),
            bartercast: BarterCastConfig::default(),
            pss: PssConfig::default(),
            seed: 0xBC,
        }
    }
}

/// Per-peer reconnect state.
#[derive(Debug, Clone, Copy, Default)]
struct Backoff {
    consecutive_failures: u32,
    not_before: Option<Instant>,
}

/// A live session as the core loop sees it.
struct SessionHandle {
    outbound: SyncSender<BarterCastMessage>,
    remote: Option<PeerId>,
    join: JoinHandle<()>,
}

#[derive(Default)]
struct SessionTable {
    by_token: HashMap<u64, SessionHandle>,
    next_token: u64,
}

/// Node state the core loop owns exclusively (behind a mutex only so
/// snapshots can be taken from the outside).
struct NodeState {
    history: PrivateHistory,
    engine: ReputationEngine,
}

/// One running peer. Dropping the handle without calling
/// [`Node::shutdown`] aborts ungracefully; call `shutdown` to drain
/// sessions and join every thread.
pub struct Node {
    id: PeerId,
    counters: Arc<NodeCounters>,
    state: Arc<Mutex<NodeState>>,
    shutdown: Arc<AtomicBool>,
    core: Option<JoinHandle<()>>,
    acceptor: Option<JoinHandle<()>>,
}

impl Node {
    /// Boot a node: bind its listener, start the acceptor and core
    /// threads, and begin exchanging on `config.exchange_interval`.
    /// `bootstrap` seeds the peer-sampling view.
    pub fn spawn(
        id: PeerId,
        transport: Arc<dyn Transport>,
        bootstrap: Vec<PeerId>,
        history: PrivateHistory,
        config: NodeConfig,
    ) -> io::Result<Node> {
        let mut listener = transport.listen(id)?;
        let counters = Arc::new(NodeCounters::default());
        let shutdown = Arc::new(AtomicBool::new(false));
        let sessions = Arc::new(Mutex::new(SessionTable::default()));
        let (event_tx, event_rx) = sync_channel::<SessionEvent>(config.event_queue);
        let engine = ReputationEngine::from_private(&history);
        let state = Arc::new(Mutex::new(NodeState { history, engine }));

        let mut pss = PssNode::new(id, config.pss);
        pss.bootstrap(bootstrap);

        let acceptor = {
            let shutdown = Arc::clone(&shutdown);
            let counters = Arc::clone(&counters);
            let sessions = Arc::clone(&sessions);
            let event_tx = event_tx.clone();
            std::thread::Builder::new()
                .name(format!("node-{}-accept", id.0))
                .spawn(move || {
                    while !shutdown.load(Ordering::Relaxed) {
                        match listener.accept(config.accept_poll) {
                            Ok(Some(conn)) => spawn_session(
                                conn,
                                id,
                                Direction::Responder,
                                None,
                                &sessions,
                                &event_tx,
                                &shutdown,
                                &counters,
                                &config,
                            ),
                            Ok(None) => {}
                            Err(_) => break, // listener died; core still drains
                        }
                    }
                })
                .expect("spawn acceptor")
        };

        let core = {
            let shutdown = Arc::clone(&shutdown);
            let counters = Arc::clone(&counters);
            let sessions = Arc::clone(&sessions);
            let state = Arc::clone(&state);
            std::thread::Builder::new()
                .name(format!("node-{}-core", id.0))
                .spawn(move || {
                    core_loop(
                        id, transport, pss, state, sessions, event_rx, event_tx, shutdown,
                        counters, config,
                    )
                })
                .expect("spawn core")
        };

        Ok(Node {
            id,
            counters,
            state,
            shutdown,
            core: Some(core),
            acceptor: Some(acceptor),
        })
    }

    /// This node's peer id.
    pub fn id(&self) -> PeerId {
        self.id
    }

    /// Snapshot of the operational counters.
    pub fn stats(&self) -> NodeStats {
        self.counters.snapshot()
    }

    /// The node's subjective contribution graph as a sorted edge list
    /// `(from, to, bytes)` — the convergence check compares these
    /// across nodes.
    pub fn subjective_edges(&self) -> Vec<(PeerId, PeerId, Bytes)> {
        let state = self.state.lock().expect("state lock");
        let mut edges: Vec<_> = state.engine.graph().edges().collect();
        edges.sort_unstable();
        edges
    }

    /// This node's subjective reputation of `peer` (Equation 1 over the
    /// merged graph).
    pub fn reputation_of(&self, peer: PeerId) -> f64 {
        let mut state = self.state.lock().expect("state lock");
        let me = self.id;
        state.engine.reputation(me, peer)
    }

    /// Stop gracefully: drain and `Bye` every session, join all
    /// threads, and return the final counter snapshot.
    pub fn shutdown(mut self) -> NodeStats {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(h) = self.core.take() {
            let _ = h.join();
        }
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        self.counters.snapshot()
    }
}

impl Drop for Node {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(h) = self.core.take() {
            let _ = h.join();
        }
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
    }
}

/// Register and start one session thread. `preload` (initiator dials
/// only) is queued before the thread starts so the first exchange rides
/// the same path as every later one.
#[allow(clippy::too_many_arguments)]
fn spawn_session(
    conn: Box<dyn crate::transport::Conn>,
    local: PeerId,
    direction: Direction,
    preload: Option<BarterCastMessage>,
    sessions: &Arc<Mutex<SessionTable>>,
    event_tx: &SyncSender<SessionEvent>,
    shutdown: &Arc<AtomicBool>,
    counters: &Arc<NodeCounters>,
    config: &NodeConfig,
) {
    let (out_tx, out_rx) = sync_channel::<BarterCastMessage>(config.outbound_queue.max(1));
    if let Some(msg) = preload {
        let _ = out_tx.try_send(msg);
    }
    let mut table = sessions.lock().expect("session table");
    let token = table.next_token;
    table.next_token += 1;
    let join = {
        let event_tx = event_tx.clone();
        let shutdown = Arc::clone(shutdown);
        let counters = Arc::clone(counters);
        let session_config = config.session;
        std::thread::Builder::new()
            .name(format!("node-{}-s{token}", local.0))
            .spawn(move || {
                session::run_session(
                    conn,
                    token,
                    local,
                    direction,
                    out_rx,
                    event_tx,
                    &shutdown,
                    &counters,
                    session_config,
                )
            })
            .expect("spawn session")
    };
    table.by_token.insert(
        token,
        SessionHandle {
            outbound: out_tx,
            remote: None,
            join,
        },
    );
}

/// The node's main loop: events in, exchanges out.
#[allow(clippy::too_many_arguments)]
fn core_loop(
    id: PeerId,
    transport: Arc<dyn Transport>,
    mut pss: PssNode,
    state: Arc<Mutex<NodeState>>,
    sessions: Arc<Mutex<SessionTable>>,
    event_rx: Receiver<SessionEvent>,
    event_tx: SyncSender<SessionEvent>,
    shutdown: Arc<AtomicBool>,
    counters: Arc<NodeCounters>,
    config: NodeConfig,
) {
    let mut rng = StdRng::seed_from_u64(config.seed ^ (((id.0 as u64) << 32) | 0xA5A5));
    let mut backoff: HashMap<PeerId, Backoff> = HashMap::new();
    let mut ever_connected: HashSet<PeerId> = HashSet::new();
    let mut next_tick = Instant::now(); // first exchange fires immediately

    while !shutdown.load(Ordering::Relaxed) {
        // 1. drain session events (bounded wait doubles as the tick timer)
        let wait = next_tick
            .saturating_duration_since(Instant::now())
            .min(Duration::from_millis(10));
        // a timeout here is just the tick timer firing; hangup cannot
        // happen while this loop holds its own event_tx clone
        if let Ok(event) = event_rx.recv_timeout(wait) {
            handle_event(
                event,
                &state,
                &sessions,
                &mut backoff,
                &mut ever_connected,
                &mut pss,
                &counters,
            );
            // drain whatever else is ready before considering a tick
            while let Ok(event) = event_rx.try_recv() {
                handle_event(
                    event,
                    &state,
                    &sessions,
                    &mut backoff,
                    &mut ever_connected,
                    &mut pss,
                    &counters,
                );
            }
        }

        // 2. exchange tick
        if Instant::now() >= next_tick {
            next_tick = Instant::now() + config.exchange_interval;
            pss.tick();
            exchange_tick(
                id,
                &transport,
                &pss,
                &state,
                &sessions,
                &event_tx,
                &shutdown,
                &counters,
                &config,
                &mut rng,
                &mut backoff,
                &mut ever_connected,
            );
        }
    }

    // 3. graceful shutdown: close every outbound queue (sessions drain
    // and send Bye), then join the threads
    let handles: Vec<SessionHandle> = {
        let mut table = sessions.lock().expect("session table");
        table.by_token.drain().map(|(_, h)| h).collect()
    };
    let joins: Vec<JoinHandle<()>> = handles
        .into_iter()
        .map(|h| {
            drop(h.outbound); // closing the queue is the drain+Bye signal
            h.join
        })
        .collect();
    for join in joins {
        let _ = join.join();
    }
    // drain stragglers so session threads blocked in emit() are freed
    while event_rx.try_recv().is_ok() {}
}

/// Apply one session event to node state.
fn handle_event(
    event: SessionEvent,
    state: &Arc<Mutex<NodeState>>,
    sessions: &Arc<Mutex<SessionTable>>,
    backoff: &mut HashMap<PeerId, Backoff>,
    ever_connected: &mut HashSet<PeerId>,
    pss: &mut PssNode,
    counters: &Arc<NodeCounters>,
) {
    match event {
        SessionEvent::Established { token, remote, .. } => {
            if let Some(h) = sessions
                .lock()
                .expect("session table")
                .by_token
                .get_mut(&token)
            {
                h.remote = Some(remote);
            }
            backoff.remove(&remote);
            if !ever_connected.insert(remote) {
                NodeCounters::inc(&counters.reconnects);
            }
            pss.bootstrap([remote]);
        }
        SessionEvent::Records { from, msg, .. } => {
            let mut st = state.lock().expect("state lock");
            let changed = st.engine.absorb_message(&msg);
            if changed == 0 {
                NodeCounters::add(&counters.records_duplicate, msg.len() as u64);
            }
            let _ = from; // history stays private: only direct transfers enter it
        }
        SessionEvent::Closed { token, clean } => {
            let handle = sessions
                .lock()
                .expect("session table")
                .by_token
                .remove(&token);
            if let Some(h) = handle {
                if let (false, Some(remote)) = (clean, h.remote) {
                    bump_backoff_entry(backoff, remote);
                }
                drop(h.outbound);
                // the thread emitted Closed as its last act; join is
                // immediate
                let _ = h.join.join();
            }
        }
    }
}

fn bump_backoff_entry(backoff: &mut HashMap<PeerId, Backoff>, peer: PeerId) {
    let entry = backoff.entry(peer).or_default();
    entry.consecutive_failures = entry.consecutive_failures.saturating_add(1);
    // the actual delay (with jitter) is computed at dial time
}

/// One exchange: build the BarterCast message once, then deliver it to
/// each sampled neighbor — over a live session when one exists,
/// otherwise by dialing (subject to backoff).
#[allow(clippy::too_many_arguments)]
fn exchange_tick(
    id: PeerId,
    transport: &Arc<dyn Transport>,
    pss: &PssNode,
    state: &Arc<Mutex<NodeState>>,
    sessions: &Arc<Mutex<SessionTable>>,
    event_tx: &SyncSender<SessionEvent>,
    shutdown: &Arc<AtomicBool>,
    counters: &Arc<NodeCounters>,
    config: &NodeConfig,
    rng: &mut StdRng,
    backoff: &mut HashMap<PeerId, Backoff>,
    ever_connected: &mut HashSet<PeerId>,
) {
    let msg = {
        let st = state.lock().expect("state lock");
        BarterCastMessage::from_history(&st.history, config.bartercast)
    };
    if msg.is_empty() {
        return; // nothing to gossip yet
    }
    let targets = pss.sample_many(rng, config.fanout);
    for target in targets {
        if target == id {
            continue;
        }
        // reuse a live session when one exists
        let sent_live = {
            let table = sessions.lock().expect("session table");
            match table.by_token.values().find(|h| h.remote == Some(target)) {
                Some(h) => match h.outbound.try_send(msg.clone()) {
                    Ok(()) => Some(true),
                    Err(TrySendError::Full(_)) => {
                        NodeCounters::inc(&counters.queue_shed);
                        Some(false)
                    }
                    Err(TrySendError::Disconnected(_)) => None, // reap pending
                },
                None => None,
            }
        };
        if sent_live.is_some() {
            continue;
        }
        // no live session: dial, respecting backoff
        let now = Instant::now();
        let entry = backoff.entry(target).or_default();
        if let Some(not_before) = entry.not_before {
            if now < not_before {
                continue;
            }
        }
        if ever_connected.contains(&target) {
            NodeCounters::inc(&counters.reconnects);
        }
        match transport.connect(id, target) {
            Ok(conn) => {
                // success of the *dial*; the handshake may still fail,
                // in which case Closed{clean: false} re-arms backoff
                entry.not_before = None;
                spawn_session(
                    conn,
                    id,
                    Direction::Initiator,
                    Some(msg.clone()),
                    sessions,
                    event_tx,
                    shutdown,
                    counters,
                    config,
                );
            }
            Err(_) => {
                NodeCounters::inc(&counters.sessions_failed);
                entry.consecutive_failures = entry.consecutive_failures.saturating_add(1);
                let exp = entry.consecutive_failures.min(16);
                let base = config.backoff_base.as_secs_f64() * f64::from(1u32 << exp) / 2.0;
                let capped = base.min(config.backoff_max.as_secs_f64());
                let jittered = capped * (1.0 + rng.gen::<f64>() * config.backoff_jitter);
                entry.not_before = Some(now + Duration::from_secs_f64(jittered));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::{MemConfig, MemTransport};
    use bartercast_util::units::Seconds;

    fn fast_config(seed: u64) -> NodeConfig {
        NodeConfig {
            exchange_interval: Duration::from_millis(20),
            backoff_base: Duration::from_millis(10),
            backoff_max: Duration::from_millis(200),
            seed,
            ..NodeConfig::default()
        }
    }

    fn history_with_upload(owner: u32, peer: u32, mb: u64) -> PrivateHistory {
        let mut h = PrivateHistory::new(PeerId(owner));
        h.record_upload(PeerId(peer), Bytes::from_mb(mb), Seconds(1));
        h
    }

    #[test]
    fn two_nodes_converge_to_each_others_records() {
        let transport = Arc::new(MemTransport::new(MemConfig::default()));
        let a = Node::spawn(
            PeerId(0),
            Arc::clone(&transport) as Arc<dyn Transport>,
            vec![PeerId(1)],
            history_with_upload(0, 1, 64),
            fast_config(1),
        )
        .unwrap();
        let b = Node::spawn(
            PeerId(1),
            Arc::clone(&transport) as Arc<dyn Transport>,
            vec![PeerId(0)],
            history_with_upload(1, 2, 32),
            fast_config(2),
        )
        .unwrap();

        // each node must learn the edge only the other one knew
        let deadline = Instant::now() + Duration::from_secs(10);
        let want = 2; // 0→1 (a's upload) and 1→2 (b's upload)
        loop {
            let ea = a.subjective_edges();
            let eb = b.subjective_edges();
            if ea.len() >= want && ea == eb {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "no convergence: a={ea:?} b={eb:?}, a_stats={:?}, b_stats={:?}",
                a.stats(),
                b.stats()
            );
            std::thread::sleep(Duration::from_millis(10));
        }

        let sa = a.shutdown();
        let sb = b.shutdown();
        assert!(sa.sessions_opened + sb.sessions_opened >= 1);
        assert!(sa.records_received + sb.records_received >= 2);
    }

    #[test]
    fn shutdown_is_prompt_and_joins_everything() {
        let transport = Arc::new(MemTransport::new(MemConfig::default()));
        let node = Node::spawn(
            PeerId(7),
            transport as Arc<dyn Transport>,
            vec![],
            history_with_upload(7, 8, 1),
            fast_config(7),
        )
        .unwrap();
        let started = Instant::now();
        let stats = node.shutdown();
        assert!(started.elapsed() < Duration::from_secs(5));
        assert_eq!(stats.protocol_errors, 0);
    }
}

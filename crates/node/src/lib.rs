//! `bartercast-node`: the peer runtime.
//!
//! Everything below `crates/node` turns the passive BarterCast
//! libraries (history, codec, reputation engine, gossip sampling) into
//! a *running peer*: threads, sockets, queues, retries. The layering:
//!
//! * [`transport`] — the [`Transport`](transport::Transport)
//!   abstraction (peer-addressed, blocking, frame-out/stream-in) and
//!   the loopback TCP implementation;
//! * [`mem`] — the deterministic in-process transport with seeded
//!   delay, frame loss, and fragmented reads;
//! * [`wire`] — session envelopes (versioned `Hello`, `Records`,
//!   `Bye`) framed with the `bartercast-core` stream codec;
//! * [`session`] — the per-connection state machine, one thread per
//!   live connection;
//! * [`node`] — the node core: event loop, dial scheduler with
//!   exponential backoff, bounded queues, graceful shutdown;
//! * [`cluster`] — the in-process cluster harness that boots N nodes
//!   on one transport and checks subjective-graph convergence;
//! * [`stats`] — relaxed-atomic counters snapshotted as
//!   [`NodeStats`](stats::NodeStats).

#![warn(missing_docs)]

pub mod cluster;
pub mod mem;
pub mod node;
pub mod session;
pub mod stats;
pub mod transport;
pub mod wire;

pub use cluster::{Cluster, ClusterConfig};
pub use mem::{MemConfig, MemTransport};
pub use node::{Node, NodeConfig};
pub use stats::{NodeCounters, NodeStats};
pub use transport::{Conn, Listener, TcpTransport, Transport};

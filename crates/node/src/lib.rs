//! `bartercast-node`: the peer runtime.
//!
//! Everything below `crates/node` turns the passive BarterCast
//! libraries (history, codec, reputation engine, gossip sampling) into
//! a *running peer* — now as an event-driven reactor rather than
//! thread-per-session. The layering:
//!
//! * [`transport`] — the non-blocking [`Transport`](transport::Transport)
//!   abstraction (frame-out/readiness-in), the [`WakeQueue`] readiness
//!   mechanism, the `poll(2)` shim, and the loopback TCP
//!   implementation;
//! * [`mem`] — the deterministic in-process transport with seeded
//!   delay, frame loss, fragmented reads, and a waker-based readiness
//!   model whose adversity schedule is poll-order independent;
//! * [`clock`] — the [`Clock`](clock::Clock) abstraction:
//!   [`SystemClock`](clock::SystemClock) for production,
//!   [`VirtualClock`](clock::VirtualClock) for lockstep determinism;
//! * [`timer`] — the hashed [`TimerWheel`](timer::TimerWheel) carrying
//!   exchange ticks, session deadlines, and dial-backoff retries;
//! * [`wire`] — session envelopes (versioned `Hello`, `Records`,
//!   `Bye`, and the BitTorrent-style swarm frames) framed with the
//!   `bartercast-core` stream codec;
//! * [`workload`] — the [`Workload`](workload::Workload) hook a
//!   transfer workload (e.g. `bartercast-swarm`) implements to ride
//!   the reactor's sessions, frames, and choke-round timer;
//! * [`session`] — the per-connection state machine, pumped by the
//!   reactor on readiness instead of owning a thread;
//! * [`reactor`] — the coordinator: one poll loop driving every
//!   session, timer, accept, and dial of a node;
//! * [`node`] — the thin public handle over one reactor thread;
//! * [`cluster`] — the in-process cluster harnesses: threaded
//!   [`Cluster`](cluster::Cluster) for wall-clock integration tests and
//!   [`DeterministicCluster`](cluster::DeterministicCluster) for
//!   bitwise-reproducible lockstep runs;
//! * [`loadgen`] — the overload load-generator: thousands of scripted
//!   dialers hammering one node to measure shed rates and latency
//!   tails;
//! * [`stats`] — relaxed-atomic counters snapshotted as
//!   [`NodeStats`](stats::NodeStats), including the split
//!   `shed_accept`/`shed_session` overload accounting.

#![warn(missing_docs)]

pub mod clock;
pub mod cluster;
pub mod loadgen;
pub mod mem;
pub mod node;
pub mod reactor;
pub mod session;
pub mod stats;
pub mod timer;
pub mod transport;
pub mod wire;
pub mod workload;

pub use clock::{Clock, SystemClock, VirtualClock};
pub use cluster::{Cluster, ClusterConfig, DeterministicCluster};
pub use loadgen::{LoadGenConfig, LoadGenReport};
pub use mem::{MemConfig, MemTransport};
pub use node::{Node, NodeConfig};
pub use reactor::{backoff_delay, NodeState, Reactor};
pub use stats::{NodeCounters, NodeStats};
pub use transport::{Conn, Listener, TcpTransport, Transport, WakeQueue};
pub use wire::SwarmFrame;
pub use workload::{Workload, WorkloadIo};

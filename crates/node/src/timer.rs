//! The reactor's timer wheel.
//!
//! Every delayed action in the runtime — the periodic exchange tick,
//! per-session handshake/idle deadlines, and dial-backoff retries —
//! lives on one hashed [`TimerWheel`] instead of a sleeping thread.
//! The wheel is a ring of slots, each `granularity` wide; a timer due
//! at absolute tick `t` sits in slot `t % slots`, carrying `t` so
//! entries from later wheel revolutions can share the slot without
//! firing early. [`TimerWheel::pop_due`] walks the cursor forward to
//! the current tick and drains exactly the entries whose tick has
//! passed, preserving (tick, insertion) order — which keeps the
//! deterministic cluster driver's timer schedule reproducible.
//!
//! Everything is O(1) per insert and O(slots walked) per poll; there
//! is no allocation-heavy heap and no per-timer thread. With the
//! default 1 ms granularity and 512 slots one revolution covers half a
//! second, comfortably above the runtime's poll cadence, so far-future
//! timers (30 s backoff caps) simply ride around the ring a few times.

use bartercast_util::units::PeerId;
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// What to do when a timer fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimerKind {
    /// Periodic gossip exchange: build a message, sample targets, dial.
    Exchange,
    /// Re-check one session's handshake/idle deadline.
    SessionCheck {
        /// The session's reactor token.
        token: u64,
    },
    /// A dial to `peer` backed off earlier; try again now.
    DialRetry {
        /// The peer to redial.
        peer: PeerId,
    },
    /// Periodic choke-round tick for the attached swarm workload:
    /// recompute unchoke sets and serve queued piece requests.
    ChokeRound,
}

#[derive(Debug)]
struct Entry {
    tick: u64,
    kind: TimerKind,
}

/// A hashed timer wheel over [`Instant`]s.
#[derive(Debug)]
pub struct TimerWheel {
    start: Instant,
    granularity: Duration,
    slots: Vec<VecDeque<Entry>>,
    /// Next tick to process; every queued entry has `tick >= current`.
    current: u64,
    len: usize,
}

impl TimerWheel {
    /// A wheel anchored at `start` with `slots` slots of `granularity`
    /// each. `start` should be the clock's current instant at boot.
    pub fn new(start: Instant, granularity: Duration, slots: usize) -> Self {
        assert!(granularity > Duration::ZERO);
        assert!(slots >= 2);
        TimerWheel {
            start,
            granularity,
            slots: (0..slots).map(|_| VecDeque::new()).collect(),
            current: 0,
            len: 0,
        }
    }

    /// Number of queued timers.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no timers are queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn tick_of(&self, t: Instant) -> u64 {
        let nanos = t.saturating_duration_since(self.start).as_nanos();
        let g = self.granularity.as_nanos();
        nanos.div_ceil(g) as u64
    }

    /// Queue `kind` to fire at (or just after) `deadline`. Deadlines in
    /// the past fire on the next [`TimerWheel::pop_due`].
    pub fn schedule(&mut self, deadline: Instant, kind: TimerKind) {
        let tick = self.tick_of(deadline).max(self.current);
        let slot = (tick % self.slots.len() as u64) as usize;
        self.slots[slot].push_back(Entry { tick, kind });
        self.len += 1;
    }

    /// Advance the cursor to `now` and return every timer that came
    /// due, in (tick, insertion) order. The cursor stops *at* the
    /// current tick (not past it), so an entry scheduled for "now"
    /// right after a poll still fires on the next poll at the same
    /// instant rather than waiting out a granularity step.
    pub fn pop_due(&mut self, now: Instant) -> Vec<TimerKind> {
        let elapsed = now.saturating_duration_since(self.start).as_nanos();
        let target = (elapsed / self.granularity.as_nanos()) as u64;
        let mut due = Vec::new();
        while self.current <= target {
            let slot = (self.current % self.slots.len() as u64) as usize;
            if !self.slots[slot].is_empty() {
                let entries = std::mem::take(&mut self.slots[slot]);
                for e in entries {
                    if e.tick <= self.current {
                        due.push(e.kind);
                        self.len -= 1;
                    } else {
                        self.slots[slot].push_back(e); // a later revolution
                    }
                }
            }
            if self.current == target {
                break;
            }
            self.current += 1;
        }
        due
    }

    /// The earliest queued deadline, if any — what the reactor sleeps
    /// until.
    pub fn next_deadline(&self) -> Option<Instant> {
        if self.len == 0 {
            return None;
        }
        let min_tick = self
            .slots
            .iter()
            .flat_map(|s| s.iter().map(|e| e.tick))
            .min()?;
        let nanos = self.granularity.as_nanos() as u64 * min_tick.max(1);
        Some(self.start + Duration::from_nanos(nanos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wheel(granularity_ms: u64, slots: usize) -> (TimerWheel, Instant) {
        let start = Instant::now();
        (
            TimerWheel::new(start, Duration::from_millis(granularity_ms), slots),
            start,
        )
    }

    #[test]
    fn fires_in_deadline_then_insertion_order() {
        let (mut w, t0) = wheel(1, 8);
        w.schedule(
            t0 + Duration::from_millis(5),
            TimerKind::SessionCheck { token: 5 },
        );
        w.schedule(
            t0 + Duration::from_millis(2),
            TimerKind::SessionCheck { token: 2 },
        );
        w.schedule(
            t0 + Duration::from_millis(2),
            TimerKind::SessionCheck { token: 3 },
        );
        assert_eq!(w.pop_due(t0 + Duration::from_millis(1)), vec![]);
        assert_eq!(
            w.pop_due(t0 + Duration::from_millis(10)),
            vec![
                TimerKind::SessionCheck { token: 2 },
                TimerKind::SessionCheck { token: 3 },
                TimerKind::SessionCheck { token: 5 },
            ]
        );
        assert!(w.is_empty());
    }

    #[test]
    fn far_future_timers_survive_wheel_revolutions() {
        let (mut w, t0) = wheel(1, 4); // one revolution = 4 ms
        w.schedule(t0 + Duration::from_millis(11), TimerKind::Exchange);
        w.schedule(
            t0 + Duration::from_millis(3),
            TimerKind::SessionCheck { token: 1 },
        );
        assert_eq!(
            w.pop_due(t0 + Duration::from_millis(4)),
            vec![TimerKind::SessionCheck { token: 1 }]
        );
        assert_eq!(w.pop_due(t0 + Duration::from_millis(10)), vec![]);
        assert_eq!(
            w.pop_due(t0 + Duration::from_millis(12)),
            vec![TimerKind::Exchange]
        );
    }

    #[test]
    fn past_deadlines_fire_on_next_poll() {
        let (mut w, t0) = wheel(1, 8);
        let now = t0 + Duration::from_millis(20);
        w.pop_due(now); // move the cursor forward first
        w.schedule(t0 + Duration::from_millis(1), TimerKind::Exchange); // already past
        assert_eq!(w.pop_due(now), vec![TimerKind::Exchange]);
    }

    #[test]
    fn next_deadline_tracks_the_minimum() {
        let (mut w, t0) = wheel(2, 8);
        assert_eq!(w.next_deadline(), None);
        w.schedule(t0 + Duration::from_millis(9), TimerKind::Exchange);
        w.schedule(
            t0 + Duration::from_millis(3),
            TimerKind::SessionCheck { token: 1 },
        );
        let next = w.next_deadline().unwrap();
        assert!(next <= t0 + Duration::from_millis(4));
        assert!(next > t0);
    }
}

//! The readiness-polled reactor: one thread, every session.
//!
//! The old runtime spent a thread per connection; the [`Reactor`]
//! replaces all of them with a single poll loop over non-blocking
//! connections:
//!
//! ```text
//!                ┌──────────────────────────────────────────┐
//!                │                 Reactor                  │
//!                │                                          │
//!   WakeQueue ──▶│ drain wakes ─▶ fire timers ─▶ accept ─▶  │
//!   (or poll(2)) │                                          │
//!                │  pump ready sessions ─▶ apply events ─▶  │
//!                │                                          │
//!                │  reap closed ─▶ sleep until next wake    │
//!                └──────────────────────────────────────────┘
//!                      ▲               │
//!            TimerWheel┘               ▼
//!          Exchange / SessionCheck   Session state machines
//!          / DialRetry               (crate::session)
//! ```
//!
//! Readiness arrives one of two ways, chosen by the transport's
//! [`ReadySource`]:
//!
//! * **Waker mode** ([`MemTransport`](crate::mem::MemTransport)) —
//!   each connection is registered with the reactor's [`WakeQueue`]
//!   under its session token; a peer's send notifies the token and the
//!   reactor pumps exactly the woken sessions, in sorted-token order.
//!   Together with the transport's split send/receive RNG streams this
//!   makes the frame schedule a pure function of the seeds.
//! * **Fd mode** ([`TcpTransport`](crate::transport::TcpTransport)) —
//!   the reactor collects raw fds and blocks in `poll(2)` via
//!   [`wait_readiness`](crate::transport::wait_readiness), then pumps
//!   every session (readiness fan-in without per-fd dispatch keeps the
//!   loop simple; sessions that have nothing report no progress
//!   cheaply).
//!
//! All time-driven behaviour — the periodic exchange, handshake/idle
//! deadlines, dial-backoff retries — lives on the [`TimerWheel`]; the
//! reactor never sleeps except in its single wait point, and never
//! blocks on I/O at all. Overload is shed at two distinct points:
//! inbound connections beyond `max_sessions` are accepted and
//! immediately dropped (`shed_accept` — the peer sees a reset rather
//! than a SYN backlog), and exchange messages to a slow peer are
//! dropped at its bounded queue (`shed_session`).

use crate::clock::Clock;
use crate::session::{Direction, Session, SessionConfig, SessionEvent};
use crate::stats::NodeCounters;
use crate::timer::{TimerKind, TimerWheel};
use crate::transport::{
    wait_readiness, Conn, FdInterest, Listener, ReadySource, Transport, WakeQueue, LISTENER_TOKEN,
};
use crate::workload::{Workload, WorkloadIo};
use bartercast_core::message::BarterCastConfig;
use bartercast_core::repcache::ReputationEngine;
use bartercast_core::{BarterCastMessage, PrivateHistory};
use bartercast_gossip::{PssConfig, PssNode};
use bartercast_util::units::{Bytes, PeerId, Seconds};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Tunables for one node. The defaults are production-flavored
/// (seconds-scale exchanges); tests and the cluster harness shrink the
/// intervals to milliseconds.
#[derive(Debug, Clone, Copy)]
pub struct NodeConfig {
    /// How often the node pushes its history to sampled neighbors.
    pub exchange_interval: Duration,
    /// Neighbors addressed per exchange tick.
    pub fanout: usize,
    /// First reconnect delay after a failure; doubles per consecutive
    /// failure.
    pub backoff_base: Duration,
    /// Ceiling on the exponential backoff.
    pub backoff_max: Duration,
    /// Random extra fraction (`0.0..=1.0`) added to each backoff delay
    /// so a rebooted cluster doesn't thunder back in lockstep.
    pub backoff_jitter: f64,
    /// Capacity of each session's outbound message queue; overflow is
    /// shed and counted in `shed_session`.
    pub outbound_queue: usize,
    /// Hard cap on concurrent sessions; inbound connections beyond it
    /// are accepted-then-dropped and counted in `shed_accept`.
    pub max_sessions: usize,
    /// Inbound connections adopted per poll cycle; bounds how long one
    /// accept storm can starve established sessions.
    pub accept_burst: usize,
    /// Timer-wheel granularity (deadline resolution).
    pub tick_granularity: Duration,
    /// How long a graceful shutdown waits for sessions to drain and
    /// `Bye` before force-closing the stragglers.
    pub drain_timeout: Duration,
    /// Per-session protocol timeouts.
    pub session: SessionConfig,
    /// Top-`Nh`/`Nr` selection for outgoing BarterCast messages.
    pub bartercast: BarterCastConfig,
    /// Peer-sampling view parameters.
    pub pss: PssConfig,
    /// Seed for the node's own RNG (sampling + jitter). Combined with
    /// the node id, so a cluster built from one seed still gives every
    /// node a distinct stream.
    pub seed: u64,
}

impl Default for NodeConfig {
    fn default() -> Self {
        NodeConfig {
            exchange_interval: Duration::from_secs(10),
            fanout: 3,
            backoff_base: Duration::from_millis(100),
            backoff_max: Duration::from_secs(30),
            backoff_jitter: 0.5,
            outbound_queue: 16,
            max_sessions: 4096,
            accept_burst: 128,
            tick_granularity: Duration::from_millis(1),
            drain_timeout: Duration::from_secs(1),
            session: SessionConfig::default(),
            bartercast: BarterCastConfig::default(),
            pss: PssConfig::default(),
            seed: 0xBC,
        }
    }
}

/// The exponential-backoff delay before retry number
/// `consecutive_failures`: `base · 2^f / 2`, capped at `max`, with a
/// multiplicative jitter in `[1, 1 + jitter]` drawn from `rng`. Public
/// so the lifecycle tests can pin the cap and the jitter bounds.
pub fn backoff_delay(
    consecutive_failures: u32,
    base: Duration,
    max: Duration,
    jitter: f64,
    rng: &mut StdRng,
) -> Duration {
    let exp = consecutive_failures.min(16);
    let raw = base.as_secs_f64() * f64::from(1u32 << exp) / 2.0;
    let capped = raw.min(max.as_secs_f64());
    let jittered = capped * (1.0 + rng.gen::<f64>() * jitter);
    Duration::from_secs_f64(jittered)
}

/// Per-peer reconnect state.
#[derive(Debug, Clone, Copy, Default)]
struct Backoff {
    consecutive_failures: u32,
    not_before: Option<Instant>,
}

/// Node state the reactor owns exclusively (behind a mutex only so
/// snapshots can be taken from the outside).
pub struct NodeState {
    pub(crate) history: PrivateHistory,
    pub(crate) engine: ReputationEngine,
}

impl NodeState {
    /// Build a state directly from its parts — for driving a
    /// [`Workload`] without a reactor (unit tests, tools).
    pub fn new(history: PrivateHistory, engine: ReputationEngine) -> NodeState {
        NodeState { history, engine }
    }

    /// The subjective contribution graph as a sorted edge list
    /// `(from, to, bytes)` — the convergence check compares these
    /// across nodes.
    pub fn subjective_edges(&self) -> Vec<(PeerId, PeerId, Bytes)> {
        let mut edges: Vec<_> = self.engine.graph().edges().collect();
        edges.sort_unstable();
        edges
    }

    /// Subjective reputation of `peer` as seen from `me` (Equation 1
    /// over the merged graph).
    pub fn reputation(&mut self, me: PeerId, peer: PeerId) -> f64 {
        self.engine.reputation(me, peer)
    }

    /// Read access to the node's private transfer history.
    pub fn history(&self) -> &PrivateHistory {
        &self.history
    }

    /// Read access to the reputation engine (graph queries; use
    /// [`NodeState::reputation`] for Equation-1 evaluations).
    pub fn engine(&self) -> &ReputationEngine {
        &self.engine
    }

    /// Account one completed piece *upload* of `amount` bytes to
    /// `peer`: the private history gains the bytes (with piece
    /// provenance), and the subjective graph's `me → peer` edge is
    /// max-merged to the new private total so the next choke round
    /// sees it immediately.
    pub fn record_piece_upload(&mut self, peer: PeerId, amount: Bytes, now: Seconds) {
        self.history.record_piece_upload(peer, amount, now);
        let me = self.history.owner();
        if let Some(totals) = self.history.get(peer) {
            self.engine.graph_mut().merge_record(me, peer, totals.up);
        }
    }

    /// Account one completed piece *download* of `amount` bytes from
    /// `peer` — the mirror of [`NodeState::record_piece_upload`].
    pub fn record_piece_download(&mut self, peer: PeerId, amount: Bytes, now: Seconds) {
        self.history.record_piece_download(peer, amount, now);
        let me = self.history.owner();
        if let Some(totals) = self.history.get(peer) {
            self.engine.graph_mut().merge_record(peer, me, totals.down);
        }
    }
}

/// One node's entire runtime, as pollable state. [`Node`](crate::Node)
/// runs it on a dedicated thread; the deterministic cluster driver
/// pumps several of them in lockstep on one thread.
pub struct Reactor {
    id: PeerId,
    transport: Arc<dyn Transport>,
    listener: Box<dyn Listener>,
    clock: Arc<dyn Clock>,
    wake: Arc<WakeQueue>,
    /// Sorted so waker-mode pump order is deterministic.
    sessions: BTreeMap<u64, Session>,
    next_token: u64,
    /// Established sessions by remote peer — the exchange tick's
    /// "reuse a live session" lookup.
    by_peer: HashMap<PeerId, u64>,
    wheel: TimerWheel,
    /// Tokens whose connection holds a frame that becomes readable at a
    /// future instant (mem-transport delay injection): the reactor must
    /// wake itself then, because no external notify will.
    delayed: BTreeMap<u64, Instant>,
    /// Tokens to pump on the next cycle.
    ready: BTreeSet<u64>,
    pss: PssNode,
    rng: StdRng,
    backoff: HashMap<PeerId, Backoff>,
    ever_connected: HashSet<PeerId>,
    state: Arc<Mutex<NodeState>>,
    counters: Arc<NodeCounters>,
    config: NodeConfig,
    /// Waker mode: pump exactly the woken tokens. Fd mode: pump all.
    targeted: bool,
    draining: bool,
    drain_deadline: Option<Instant>,
    /// The attached transfer workload, if any (see [`Workload`]).
    workload: Option<Box<dyn Workload>>,
    /// Choke-round period for the attached workload.
    choke_interval: Duration,
    /// Clock instant at construction; workload callbacks see time as
    /// whole seconds since this.
    boot: Instant,
}

impl Reactor {
    /// Bind the listener and assemble a reactor. Nothing runs until
    /// [`Reactor::poll_once`] (or [`Reactor::run`]) is called; the
    /// first exchange tick is scheduled for "now", matching the old
    /// runtime's fire-immediately behaviour.
    pub fn new(
        id: PeerId,
        transport: Arc<dyn Transport>,
        bootstrap: Vec<PeerId>,
        history: PrivateHistory,
        config: NodeConfig,
        clock: Arc<dyn Clock>,
    ) -> io::Result<Reactor> {
        let mut listener = transport.listen(id)?;
        let wake = Arc::new(WakeQueue::new());
        let targeted = matches!(listener.ready_source(), ReadySource::Waker);
        if targeted {
            listener.register_waker(&wake, LISTENER_TOKEN);
        }
        let now = clock.now();
        let mut wheel = TimerWheel::new(now, config.tick_granularity, 512);
        wheel.schedule(now, TimerKind::Exchange);
        let engine = ReputationEngine::from_private(&history);
        let mut pss = PssNode::new(id, config.pss);
        pss.bootstrap(bootstrap);
        Ok(Reactor {
            id,
            transport,
            listener,
            clock,
            wake,
            sessions: BTreeMap::new(),
            next_token: 0,
            by_peer: HashMap::new(),
            wheel,
            delayed: BTreeMap::new(),
            ready: BTreeSet::new(),
            pss,
            rng: StdRng::seed_from_u64(config.seed ^ (((id.0 as u64) << 32) | 0xA5A5)),
            backoff: HashMap::new(),
            ever_connected: HashSet::new(),
            state: Arc::new(Mutex::new(NodeState { history, engine })),
            counters: Arc::new(NodeCounters::default()),
            config,
            targeted,
            draining: false,
            drain_deadline: None,
            workload: None,
            choke_interval: Duration::from_secs(10),
            boot: now,
        })
    }

    /// Attach a transfer workload: its choke round fires every
    /// `choke_interval` starting one interval from now, and its
    /// `on_start` hook runs immediately (dialing initial targets).
    /// Call before the first [`Reactor::poll_once`].
    pub fn attach_workload(&mut self, workload: Box<dyn Workload>, choke_interval: Duration) {
        assert!(choke_interval > Duration::ZERO);
        self.workload = Some(workload);
        self.choke_interval = choke_interval;
        let now = self.clock.now();
        self.wheel
            .schedule(now + choke_interval, TimerKind::ChokeRound);
        self.with_workload(now, |w, secs, state, io| w.on_start(secs, state, io));
    }

    /// Run `f` against the attached workload (if any) with the node
    /// state locked, then apply the batched [`WorkloadIo`].
    fn with_workload<F>(&mut self, now: Instant, f: F)
    where
        F: FnOnce(&mut dyn Workload, Seconds, &mut NodeState, &mut WorkloadIo),
    {
        let Some(mut workload) = self.workload.take() else {
            return;
        };
        let mut io = WorkloadIo::default();
        let secs = Seconds(now.saturating_duration_since(self.boot).as_secs());
        {
            let mut state = self.state.lock().expect("state lock");
            f(workload.as_mut(), secs, &mut state, &mut io);
        }
        self.workload = Some(workload);
        self.deliver_io(io, now);
    }

    /// Apply a workload's batched output: frames onto live sessions
    /// (dropped, not queued, for peers without one), dials for missing
    /// peers through the normal backoff machinery.
    fn deliver_io(&mut self, io: WorkloadIo, now: Instant) {
        for (peer, frame) in io.frames {
            if let Some(&token) = self.by_peer.get(&peer) {
                if let Some(session) = self.sessions.get_mut(&token) {
                    session.enqueue_frame(frame, self.config.outbound_queue, &self.counters);
                    self.ready.insert(token);
                }
            }
        }
        for peer in io.dials {
            if peer != self.id && !self.by_peer.contains_key(&peer) && !self.draining {
                self.dial(peer, now, None);
            }
        }
    }

    /// This reactor's peer id.
    pub fn id(&self) -> PeerId {
        self.id
    }

    /// Shared handle to the operational counters.
    pub fn counters(&self) -> Arc<NodeCounters> {
        Arc::clone(&self.counters)
    }

    /// Shared handle to the node state (history + reputation engine).
    pub fn state(&self) -> Arc<Mutex<NodeState>> {
        Arc::clone(&self.state)
    }

    /// The wake queue — external threads kick it to interrupt
    /// [`Reactor::wait`] (e.g. for shutdown).
    pub fn wake_handle(&self) -> Arc<WakeQueue> {
        Arc::clone(&self.wake)
    }

    /// Live session count (pending + established).
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// Whether a graceful drain has been requested and every session
    /// has finished.
    pub fn drained(&self) -> bool {
        self.draining && self.sessions.is_empty()
    }

    /// One full cycle: wakes → timers → delayed frames → accepts →
    /// pumps → events → reaping. Returns whether any progress was made,
    /// so callers know when to park in [`Reactor::wait`]. Time is read
    /// from the clock exactly once, at entry — under a virtual clock
    /// the whole cycle is a pure function of (state, seeds, now).
    pub fn poll_once(&mut self) -> bool {
        let now = self.clock.now();
        let mut events: Vec<SessionEvent> = Vec::new();
        let mut progress = false;

        // 1. external readiness
        for token in self.wake.drain() {
            self.ready.insert(token);
        }

        // 2. due timers
        for kind in self.wheel.pop_due(now) {
            match kind {
                TimerKind::Exchange => {
                    if !self.draining {
                        self.wheel
                            .schedule(now + self.config.exchange_interval, TimerKind::Exchange);
                        self.exchange_tick(now);
                        progress = true;
                    }
                }
                TimerKind::SessionCheck { token } => {
                    if let Some(session) = self.sessions.get_mut(&token) {
                        match session.check_deadlines(
                            now,
                            &self.config.session,
                            &self.counters,
                            &mut events,
                        ) {
                            Some(next) => {
                                self.wheel.schedule(next, TimerKind::SessionCheck { token })
                            }
                            None => progress = true, // expired
                        }
                    }
                }
                TimerKind::DialRetry { peer } => {
                    if !self.draining && !self.by_peer.contains_key(&peer) {
                        self.dial(peer, now, None);
                        progress = true;
                    }
                }
                TimerKind::ChokeRound => {
                    if !self.draining && self.workload.is_some() {
                        self.wheel
                            .schedule(now + self.choke_interval, TimerKind::ChokeRound);
                        self.with_workload(now, |w, secs, state, io| {
                            w.on_choke_round(secs, state, io)
                        });
                        progress = true;
                    }
                }
            }
        }

        // 3. in-flight frames that became readable
        let due: Vec<u64> = self
            .delayed
            .iter()
            .filter(|(_, at)| **at <= now)
            .map(|(t, _)| *t)
            .collect();
        for token in due {
            self.delayed.remove(&token);
            self.ready.insert(token);
        }

        // 4. inbound connections, up to the accept burst
        let mut accepted = 0;
        while accepted < self.config.accept_burst {
            match self.listener.try_accept() {
                Ok(Some(conn)) => {
                    accepted += 1;
                    if self.draining || self.sessions.len() >= self.config.max_sessions {
                        // accepted-then-dropped: the peer sees an
                        // immediate close, not a hanging backlog
                        NodeCounters::inc(&self.counters.shed_accept);
                        drop(conn);
                    } else {
                        self.adopt(conn, Direction::Responder, None, now);
                    }
                    progress = true;
                }
                Ok(None) => break,
                Err(_) => break, // listener died; keep serving sessions
            }
        }
        if accepted == self.config.accept_burst {
            // burst limit hit with possibly more queued: make sure the
            // next cycle services the listener even without a new wake
            self.ready.insert(LISTENER_TOKEN);
        } else {
            self.ready.remove(&LISTENER_TOKEN);
        }

        // 5. pump sessions
        let tokens: Vec<u64> = if self.targeted {
            self.ready
                .iter()
                .copied()
                .filter(|t| *t != LISTENER_TOKEN)
                .collect()
        } else {
            self.sessions.keys().copied().collect()
        };
        self.ready.retain(|t| *t == LISTENER_TOKEN);
        for token in tokens {
            if let Some(session) = self.sessions.get_mut(&token) {
                if session.pump(self.id, now, &self.counters, &mut events) {
                    progress = true;
                }
                // a frame still in simulated flight needs a self-wake
                match session.conn_mut().next_ready_at() {
                    Some(at) if at > now => {
                        self.delayed.insert(token, at);
                    }
                    _ => {
                        self.delayed.remove(&token);
                    }
                }
            }
        }

        // 6. apply events, then reap the dead
        if !events.is_empty() {
            progress = true;
            self.apply_events(events, now);
        }
        let closed: Vec<u64> = self
            .sessions
            .iter()
            .filter(|(_, s)| s.is_closed())
            .map(|(t, _)| *t)
            .collect();
        for token in closed {
            self.reap(token);
        }

        progress
    }

    /// The earliest instant at which the reactor has scheduled work:
    /// the nearest timer or the nearest delayed in-flight frame.
    pub fn next_wake(&self) -> Option<Instant> {
        let timer = self.wheel.next_deadline();
        let frame = self.delayed.values().min().copied();
        match (timer, frame) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, None) => a,
            (None, b) => b,
        }
    }

    /// Park until something happens: a wake notification (waker mode),
    /// fd readiness (fd mode), or the next scheduled deadline.
    pub fn wait(&mut self) {
        let now = self.clock.now();
        let until = self
            .next_wake()
            .map(|t| t.saturating_duration_since(now))
            .unwrap_or(Duration::from_millis(50))
            .min(Duration::from_millis(50));
        if self.targeted {
            for token in self.wake.wait(until) {
                self.ready.insert(token);
            }
        } else {
            let mut set = Vec::with_capacity(self.sessions.len() + 1);
            if let ReadySource::Fd(fd) = self.listener.ready_source() {
                set.push(FdInterest { fd, write: false });
            }
            for session in self.sessions.values_mut() {
                let write = session.wants_write();
                if let ReadySource::Fd(fd) = session.conn_mut().ready_source() {
                    set.push(FdInterest { fd, write });
                }
            }
            wait_readiness(&set, until.min(Duration::from_millis(10)));
        }
    }

    /// Drive the reactor until `shutdown` is flagged, then drain
    /// gracefully: every session gets a `Bye` and up to
    /// `config.drain_timeout` to flush before being force-closed.
    pub fn run(&mut self, shutdown: &AtomicBool) {
        loop {
            if shutdown.load(Ordering::Relaxed) && !self.draining {
                self.begin_shutdown();
            }
            let progress = self.poll_once();
            if self.draining {
                if self.sessions.is_empty() {
                    return;
                }
                if let Some(deadline) = self.drain_deadline {
                    if self.clock.now() >= deadline {
                        self.force_close_all();
                        return;
                    }
                }
            }
            if !progress {
                self.wait();
            }
        }
    }

    /// Flip into draining mode: ask every session for a graceful
    /// teardown and arm the force-close deadline.
    pub fn begin_shutdown(&mut self) {
        self.draining = true;
        self.drain_deadline = Some(self.clock.now() + self.config.drain_timeout);
        let tokens: Vec<u64> = self.sessions.keys().copied().collect();
        for token in tokens {
            if let Some(session) = self.sessions.get_mut(&token) {
                session.begin_drain();
            }
            self.ready.insert(token);
        }
    }

    fn force_close_all(&mut self) {
        let mut events = Vec::new();
        let tokens: Vec<u64> = self.sessions.keys().copied().collect();
        for token in tokens {
            if let Some(session) = self.sessions.get_mut(&token) {
                session.force_close(&self.counters, &mut events);
            }
            self.reap(token);
        }
        // events are only Closed notifications for sessions already
        // reaped; nothing else to apply
    }

    /// Take ownership of a connection as a new session: assign a token,
    /// register its waker, count it live, and schedule its handshake
    /// deadline.
    fn adopt(
        &mut self,
        mut conn: Box<dyn Conn>,
        direction: Direction,
        preload: Option<BarterCastMessage>,
        now: Instant,
    ) {
        let token = self.next_token;
        self.next_token += 1;
        if self.targeted {
            conn.register_waker(&self.wake, token);
        }
        let mut session = Session::new(token, conn, direction, now);
        if let Some(msg) = preload {
            session.preload(msg);
        }
        if self.draining {
            session.begin_drain();
        }
        self.sessions.insert(token, session);
        self.counters.session_adopted();
        self.wheel.schedule(
            now + self.config.session.handshake_timeout,
            TimerKind::SessionCheck { token },
        );
        self.ready.insert(token);
    }

    fn reap(&mut self, token: u64) {
        if self.sessions.remove(&token).is_some() {
            self.counters.session_reaped();
        }
        self.delayed.remove(&token);
        self.ready.remove(&token);
        if let Some(peer) = self
            .by_peer
            .iter()
            .find(|(_, t)| **t == token)
            .map(|(p, _)| *p)
        {
            self.by_peer.remove(&peer);
        }
    }

    /// Dial `target` (respecting backoff); on success the new session
    /// carries `preload` out with its first established pump.
    fn dial(&mut self, target: PeerId, now: Instant, preload: Option<BarterCastMessage>) {
        let entry = self.backoff.entry(target).or_default();
        if let Some(not_before) = entry.not_before {
            if now < not_before {
                return;
            }
        }
        if self.ever_connected.contains(&target) {
            NodeCounters::inc(&self.counters.reconnects);
        }
        match self.transport.connect(self.id, target) {
            Ok(conn) => {
                // success of the *dial*; the handshake may still fail,
                // in which case Closed{clean: false} re-arms backoff
                self.backoff.entry(target).or_default().not_before = None;
                self.adopt(conn, Direction::Initiator, preload, now);
            }
            Err(_) => {
                NodeCounters::inc(&self.counters.sessions_failed);
                self.arm_backoff(target, now);
            }
        }
    }

    /// Bump the failure count, compute the next delay, and schedule the
    /// retry timer.
    fn arm_backoff(&mut self, peer: PeerId, now: Instant) {
        let entry = self.backoff.entry(peer).or_default();
        entry.consecutive_failures = entry.consecutive_failures.saturating_add(1);
        let delay = backoff_delay(
            entry.consecutive_failures,
            self.config.backoff_base,
            self.config.backoff_max,
            self.config.backoff_jitter,
            &mut self.rng,
        );
        let retry_at = now + delay;
        entry.not_before = Some(retry_at);
        if !self.draining {
            self.wheel.schedule(retry_at, TimerKind::DialRetry { peer });
        }
    }

    /// One exchange: build the BarterCast message once, then deliver it
    /// to each sampled neighbor — over a live session when one exists,
    /// otherwise by dialing (subject to backoff).
    fn exchange_tick(&mut self, now: Instant) {
        self.pss.tick();
        let msg = {
            let st = self.state.lock().expect("state lock");
            BarterCastMessage::from_history(&st.history, self.config.bartercast)
        };
        if msg.is_empty() {
            return; // nothing to gossip yet
        }
        let targets = self.pss.sample_many(&mut self.rng, self.config.fanout);
        for target in targets {
            if target == self.id {
                continue;
            }
            if let Some(&token) = self.by_peer.get(&target) {
                if let Some(session) = self.sessions.get_mut(&token) {
                    session.enqueue(msg.clone(), self.config.outbound_queue, &self.counters);
                    self.ready.insert(token);
                    continue;
                }
            }
            self.dial(target, now, Some(msg.clone()));
        }
    }

    fn apply_events(&mut self, events: Vec<SessionEvent>, now: Instant) {
        for event in events {
            match event {
                SessionEvent::Established { token, remote, .. } => {
                    self.by_peer.entry(remote).or_insert(token);
                    self.backoff.remove(&remote);
                    if !self.ever_connected.insert(remote) {
                        NodeCounters::inc(&self.counters.reconnects);
                    }
                    self.pss.bootstrap([remote]);
                    // notify the workload only for the session that
                    // became the peer's primary (duplicate dials race;
                    // the loser idles out without a notification)
                    if self.by_peer.get(&remote) == Some(&token) {
                        self.with_workload(now, |w, secs, state, io| {
                            w.on_established(remote, secs, state, io)
                        });
                    }
                }
                SessionEvent::Records { from, msg, .. } => {
                    let mut st = self.state.lock().expect("state lock");
                    let changed = st.engine.absorb_message(&msg);
                    if changed == 0 {
                        NodeCounters::add(&self.counters.records_duplicate, msg.len() as u64);
                    }
                    let _ = from; // history stays private: only direct transfers enter it
                }
                SessionEvent::Frame { token, from, frame } => {
                    if self.by_peer.get(&from) == Some(&token) {
                        self.with_workload(now, |w, secs, state, io| {
                            w.on_frame(from, frame, secs, state, io)
                        });
                    }
                }
                SessionEvent::Closed { token, clean } => {
                    let remote = self.sessions.get(&token).and_then(|s| s.remote());
                    if let (false, Some(peer)) = (clean, remote) {
                        if !self.draining {
                            self.arm_backoff(peer, now);
                        }
                    }
                    if let Some(peer) = remote {
                        if self.by_peer.get(&peer) == Some(&token) {
                            self.with_workload(now, |w, secs, state, io| {
                                w.on_closed(peer, secs, state, io)
                            });
                        }
                    }
                    // reaping happens at the end of poll_once
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;
    use crate::mem::{MemConfig, MemTransport};
    use bartercast_util::units::Seconds;

    fn fast_config(seed: u64) -> NodeConfig {
        NodeConfig {
            exchange_interval: Duration::from_millis(20),
            backoff_base: Duration::from_millis(10),
            backoff_max: Duration::from_millis(200),
            seed,
            ..NodeConfig::default()
        }
    }

    fn history_with_upload(owner: u32, peer: u32, mb: u64) -> PrivateHistory {
        let mut h = PrivateHistory::new(PeerId(owner));
        h.record_upload(PeerId(peer), Bytes::from_mb(mb), Seconds(1));
        h
    }

    #[test]
    fn backoff_delay_caps_at_max_with_bounded_jitter() {
        let base = Duration::from_millis(100);
        let max = Duration::from_secs(30);
        let mut rng = StdRng::seed_from_u64(1);
        for failures in [20u32, 40, u32::MAX] {
            let d = backoff_delay(failures, base, max, 0.5, &mut rng);
            assert!(d >= max, "capped delay must be at least max, got {d:?}");
            assert!(
                d <= max.mul_f64(1.5),
                "jitter must stay within +50%, got {d:?}"
            );
        }
    }

    #[test]
    fn backoff_delay_grows_exponentially_before_the_cap() {
        let base = Duration::from_millis(100);
        let max = Duration::from_secs(30);
        // jitter 0 isolates the deterministic part
        let mut rng = StdRng::seed_from_u64(1);
        let d1 = backoff_delay(1, base, max, 0.0, &mut rng);
        let d2 = backoff_delay(2, base, max, 0.0, &mut rng);
        let d3 = backoff_delay(3, base, max, 0.0, &mut rng);
        assert_eq!(d1, Duration::from_millis(100));
        assert_eq!(d2, Duration::from_millis(200));
        assert_eq!(d3, Duration::from_millis(400));
    }

    /// Two reactors pumped in lockstep on virtual time converge to each
    /// other's records without any thread ever sleeping.
    #[test]
    fn two_reactors_converge_on_virtual_time() {
        let clock = Arc::new(VirtualClock::new());
        let transport = Arc::new(MemTransport::with_clock(
            MemConfig::default(),
            Arc::clone(&clock) as Arc<dyn Clock>,
        ));
        let mut a = Reactor::new(
            PeerId(0),
            Arc::clone(&transport) as Arc<dyn Transport>,
            vec![PeerId(1)],
            history_with_upload(0, 1, 64),
            fast_config(1),
            Arc::clone(&clock) as Arc<dyn Clock>,
        )
        .unwrap();
        let mut b = Reactor::new(
            PeerId(1),
            Arc::clone(&transport) as Arc<dyn Transport>,
            vec![PeerId(0)],
            history_with_upload(1, 2, 32),
            fast_config(2),
            Arc::clone(&clock) as Arc<dyn Clock>,
        )
        .unwrap();

        let want = 2; // 0→1 (a's upload) and 1→2 (b's upload)
        for _step in 0..10_000 {
            // settle every event available at this virtual instant
            let mut spins = 0;
            while (a.poll_once() | b.poll_once()) && spins < 1000 {
                spins += 1;
            }
            let ea = a.state.lock().unwrap().subjective_edges();
            let eb = b.state.lock().unwrap().subjective_edges();
            if ea.len() >= want && ea == eb {
                return; // converged
            }
            // advance to the earliest scheduled wake, strictly forward
            let next = [a.next_wake(), b.next_wake()]
                .into_iter()
                .flatten()
                .min()
                .expect("idle reactors must still hold their exchange timer");
            let now = clock.now();
            clock.advance_to(next.max(now + Duration::from_micros(1)));
        }
        panic!(
            "no convergence: a={:?} b={:?}",
            a.counters.snapshot(),
            b.counters.snapshot()
        );
    }

    /// Inbound connections beyond `max_sessions` are shed at accept and
    /// counted, while existing sessions keep working.
    #[test]
    fn sessions_beyond_the_cap_are_shed_at_accept() {
        let transport = Arc::new(MemTransport::new(MemConfig::default()));
        let clock: Arc<dyn Clock> = Arc::new(crate::clock::SystemClock);
        let mut r = Reactor::new(
            PeerId(1),
            Arc::clone(&transport) as Arc<dyn Transport>,
            vec![],
            PrivateHistory::new(PeerId(1)),
            NodeConfig {
                max_sessions: 2,
                ..fast_config(9)
            },
            clock,
        )
        .unwrap();
        let mut dialers: Vec<Box<dyn Conn>> = (0..5)
            .map(|i| transport.connect(PeerId(10 + i), PeerId(1)).unwrap())
            .collect();
        r.poll_once();
        assert_eq!(r.session_count(), 2, "cap must hold");
        assert_eq!(r.counters.snapshot().shed_accept, 3);
        assert_eq!(r.counters.snapshot().sessions_peak, 2);
        // shed dialers observe EOF; adopted ones do not
        let mut eofs = 0;
        let deadline = Instant::now() + Duration::from_secs(2);
        while eofs < 3 && Instant::now() < deadline {
            eofs = 0;
            for d in dialers.iter_mut() {
                let mut buf = [0u8; 64];
                loop {
                    match d.try_recv(&mut buf) {
                        Ok(Some(0)) | Err(_) => {
                            eofs += 1;
                            break;
                        }
                        Ok(Some(_)) => continue,
                        Ok(None) => break,
                    }
                }
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(eofs, 3, "exactly the shed dialers see EOF");
    }
}

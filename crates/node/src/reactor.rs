//! The readiness-polled reactor: one thread, every session.
//!
//! The old runtime spent a thread per connection; the [`Reactor`]
//! replaces all of them with a single poll loop over non-blocking
//! connections:
//!
//! ```text
//!                ┌──────────────────────────────────────────┐
//!                │                 Reactor                  │
//!                │                                          │
//!   WakeQueue ──▶│ drain wakes ─▶ fire timers ─▶ accept ─▶  │
//!   (or poll(2)) │                                          │
//!                │  pump ready sessions ─▶ apply events ─▶  │
//!                │                                          │
//!                │  reap closed ─▶ sleep until next wake    │
//!                └──────────────────────────────────────────┘
//!                      ▲               │
//!            TimerWheel┘               ▼
//!          Exchange / SessionCheck   Session state machines
//!          / DialRetry               (crate::session)
//! ```
//!
//! Readiness arrives one of two ways, chosen by the transport's
//! [`ReadySource`]:
//!
//! * **Waker mode** ([`MemTransport`](crate::mem::MemTransport)) —
//!   each connection is registered with the reactor's [`WakeQueue`]
//!   under its session token; a peer's send notifies the token and the
//!   reactor pumps exactly the woken sessions, in sorted-token order.
//!   Together with the transport's split send/receive RNG streams this
//!   makes the frame schedule a pure function of the seeds.
//! * **Fd mode** ([`TcpTransport`](crate::transport::TcpTransport)) —
//!   the reactor collects raw fds and blocks in `poll(2)` via
//!   [`wait_readiness`](crate::transport::wait_readiness), then pumps
//!   every session (readiness fan-in without per-fd dispatch keeps the
//!   loop simple; sessions that have nothing report no progress
//!   cheaply).
//!
//! All time-driven behaviour — the periodic exchange, handshake/idle
//! deadlines, dial-backoff retries — lives on the [`TimerWheel`]; the
//! reactor never sleeps except in its single wait point, and never
//! blocks on I/O at all. Overload is shed at two distinct points:
//! inbound connections beyond `max_sessions` are accepted and
//! immediately dropped (`shed_accept` — the peer sees a reset rather
//! than a SYN backlog), and exchange messages to a slow peer are
//! dropped at its bounded queue (`shed_session`).

use crate::clock::Clock;
use crate::session::{Direction, Session, SessionConfig, SessionEvent};
use crate::stats::NodeCounters;
use crate::timer::{TimerKind, TimerWheel};
use crate::transport::{
    wait_readiness, Conn, FdInterest, Listener, ReadySource, Transport, WakeQueue, LISTENER_TOKEN,
};
use crate::wire;
use crate::workload::{Workload, WorkloadIo};
use bartercast_core::codec::BufPool;
use bartercast_core::frontier::{self, SliceRecord};
use bartercast_core::message::BarterCastConfig;
use bartercast_core::repcache::ReputationEngine;
use bartercast_core::{BarterCastMessage, DeltaMsg, Frontier, PrivateHistory, SyncPlan};
use bartercast_gossip::{PssConfig, PssNode};
use bartercast_util::units::{Bytes, PeerId, Seconds};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Tunables for one node. The defaults are production-flavored
/// (seconds-scale exchanges); tests and the cluster harness shrink the
/// intervals to milliseconds.
#[derive(Debug, Clone, Copy)]
pub struct NodeConfig {
    /// How often the node pushes its history to sampled neighbors.
    pub exchange_interval: Duration,
    /// Neighbors addressed per exchange tick.
    pub fanout: usize,
    /// First reconnect delay after a failure; doubles per consecutive
    /// failure.
    pub backoff_base: Duration,
    /// Ceiling on the exponential backoff.
    pub backoff_max: Duration,
    /// Random extra fraction (`0.0..=1.0`) added to each backoff delay
    /// so a rebooted cluster doesn't thunder back in lockstep.
    pub backoff_jitter: f64,
    /// Capacity of each session's outbound message queue; overflow is
    /// shed and counted in `shed_session`.
    pub outbound_queue: usize,
    /// Hard cap on concurrent sessions; inbound connections beyond it
    /// are accepted-then-dropped and counted in `shed_accept`.
    pub max_sessions: usize,
    /// Inbound connections adopted per poll cycle; bounds how long one
    /// accept storm can starve established sessions.
    pub accept_burst: usize,
    /// Timer-wheel granularity (deadline resolution).
    pub tick_granularity: Duration,
    /// How long a graceful shutdown waits for sessions to drain and
    /// `Bye` before force-closing the stragglers.
    pub drain_timeout: Duration,
    /// Every Nth exchange tick pushes the full advertised slice instead
    /// of sending digests — the fallback that bounds any staleness the
    /// watermark delta cannot see (slice-membership swaps stamped in
    /// the past, lost `Digest`/`Delta` frames). `0` disables the
    /// fallback entirely (digests only).
    pub full_sync_every: u64,
    /// Per-session protocol timeouts.
    pub session: SessionConfig,
    /// Top-`Nh`/`Nr` selection for outgoing BarterCast messages.
    pub bartercast: BarterCastConfig,
    /// Peer-sampling view parameters.
    pub pss: PssConfig,
    /// Seed for the node's own RNG (sampling + jitter). Combined with
    /// the node id, so a cluster built from one seed still gives every
    /// node a distinct stream.
    pub seed: u64,
}

impl Default for NodeConfig {
    fn default() -> Self {
        NodeConfig {
            exchange_interval: Duration::from_secs(10),
            fanout: 3,
            backoff_base: Duration::from_millis(100),
            backoff_max: Duration::from_secs(30),
            backoff_jitter: 0.5,
            outbound_queue: 16,
            max_sessions: 4096,
            accept_burst: 128,
            tick_granularity: Duration::from_millis(1),
            drain_timeout: Duration::from_secs(1),
            full_sync_every: 16,
            session: SessionConfig::default(),
            bartercast: BarterCastConfig::default(),
            pss: PssConfig::default(),
            seed: 0xBC,
        }
    }
}

/// The exponential-backoff delay before retry number
/// `consecutive_failures`: `base · 2^f / 2`, capped at `max`, with a
/// multiplicative jitter in `[1, 1 + jitter]` drawn from `rng`. Public
/// so the lifecycle tests can pin the cap and the jitter bounds.
pub fn backoff_delay(
    consecutive_failures: u32,
    base: Duration,
    max: Duration,
    jitter: f64,
    rng: &mut StdRng,
) -> Duration {
    let exp = consecutive_failures.min(16);
    let raw = base.as_secs_f64() * f64::from(1u32 << exp) / 2.0;
    let capped = raw.min(max.as_secs_f64());
    let jittered = capped * (1.0 + rng.gen::<f64>() * jitter);
    Duration::from_secs_f64(jittered)
}

/// Per-peer reconnect state.
#[derive(Debug, Clone, Copy, Default)]
struct Backoff {
    consecutive_failures: u32,
    not_before: Option<Instant>,
}

/// Node state the reactor owns exclusively (behind a mutex only so
/// snapshots can be taken from the outside).
pub struct NodeState {
    pub(crate) history: PrivateHistory,
    pub(crate) engine: ReputationEngine,
    /// Freshest frontier stamp each peer has reported for *its own*
    /// advertised slice (carried on its `Delta` replies) — the claim
    /// our next digest to that peer sends back.
    pub(crate) frontiers: HashMap<PeerId, Frontier>,
    /// Advertised-slice memo keyed on the history write version, so
    /// digest-heavy steady state never recomputes the §3.4 selection.
    slice_memo: Option<SliceMemo>,
}

/// The advertised slice and its frontier, valid for one history
/// version. Invalidation rides the history's existing write path: any
/// mutation bumps [`PrivateHistory::version`].
struct SliceMemo {
    version: u64,
    slice: Vec<SliceRecord>,
    frontier: Frontier,
}

impl NodeState {
    /// Build a state directly from its parts — for driving a
    /// [`Workload`] without a reactor (unit tests, tools).
    pub fn new(history: PrivateHistory, engine: ReputationEngine) -> NodeState {
        NodeState {
            history,
            engine,
            frontiers: HashMap::new(),
            slice_memo: None,
        }
    }

    /// Rebuild the advertised-slice memo if the history has been
    /// written since it was last built.
    fn refresh_slice(&mut self, config: BarterCastConfig) {
        let version = self.history.version();
        if self.slice_memo.as_ref().map(|m| m.version) == Some(version) {
            return;
        }
        let slice = frontier::advertised_slice(&self.history, config);
        let frontier = frontier::frontier_of(&slice);
        self.slice_memo = Some(SliceMemo {
            version,
            slice,
            frontier,
        });
    }

    /// The full exchange message for the current advertised slice.
    pub(crate) fn full_message(&mut self, config: BarterCastConfig) -> BarterCastMessage {
        self.refresh_slice(config);
        let memo = self.slice_memo.as_ref().expect("memo refreshed");
        frontier::message_from_slice(self.history.owner(), &memo.slice)
    }

    /// The full slice as a stamped `Delta` push — what v3 peers get on
    /// establishment and fallback ticks instead of a bare `Records`
    /// frame, so they can seed their frontier cache from the stamp.
    pub(crate) fn full_delta(&mut self, config: BarterCastConfig) -> DeltaMsg {
        self.refresh_slice(config);
        let memo = self.slice_memo.as_ref().expect("memo refreshed");
        DeltaMsg {
            sender: self.history.owner(),
            full: true,
            stamp: memo.frontier,
            records: frontier::message_from_slice(self.history.owner(), &memo.slice).records,
        }
    }

    /// Answer a digest claiming `claim`: returns our fresh frontier
    /// stamp, the sync plan, and the slice length (the baseline the
    /// suppression accounting subtracts the plan's records from).
    pub(crate) fn sync_plan(
        &mut self,
        config: BarterCastConfig,
        claim: Frontier,
    ) -> (Frontier, SyncPlan, usize) {
        self.refresh_slice(config);
        let memo = self.slice_memo.as_ref().expect("memo refreshed");
        (
            memo.frontier,
            frontier::plan_sync(&memo.slice, memo.frontier, claim),
            memo.slice.len(),
        )
    }

    /// The subjective contribution graph as a sorted edge list
    /// `(from, to, bytes)` — the convergence check compares these
    /// across nodes.
    pub fn subjective_edges(&self) -> Vec<(PeerId, PeerId, Bytes)> {
        let mut edges: Vec<_> = self.engine.graph().edges().collect();
        edges.sort_unstable();
        edges
    }

    /// Subjective reputation of `peer` as seen from `me` (Equation 1
    /// over the merged graph).
    pub fn reputation(&mut self, me: PeerId, peer: PeerId) -> f64 {
        self.engine.reputation(me, peer)
    }

    /// Read access to the node's private transfer history.
    pub fn history(&self) -> &PrivateHistory {
        &self.history
    }

    /// Read access to the reputation engine (graph queries; use
    /// [`NodeState::reputation`] for Equation-1 evaluations).
    pub fn engine(&self) -> &ReputationEngine {
        &self.engine
    }

    /// Account one completed piece *upload* of `amount` bytes to
    /// `peer`: the private history gains the bytes (with piece
    /// provenance), and the subjective graph's `me → peer` edge is
    /// max-merged to the new private total so the next choke round
    /// sees it immediately.
    pub fn record_piece_upload(&mut self, peer: PeerId, amount: Bytes, now: Seconds) {
        self.history.record_piece_upload(peer, amount, now);
        let me = self.history.owner();
        if let Some(totals) = self.history.get(peer) {
            self.engine.graph_mut().merge_record(me, peer, totals.up);
        }
    }

    /// Account one completed piece *download* of `amount` bytes from
    /// `peer` — the mirror of [`NodeState::record_piece_upload`].
    pub fn record_piece_download(&mut self, peer: PeerId, amount: Bytes, now: Seconds) {
        self.history.record_piece_download(peer, amount, now);
        let me = self.history.owner();
        if let Some(totals) = self.history.get(peer) {
            self.engine.graph_mut().merge_record(peer, me, totals.down);
        }
    }
}

/// One node's entire runtime, as pollable state. [`Node`](crate::Node)
/// runs it on a dedicated thread; the deterministic cluster driver
/// pumps several of them in lockstep on one thread.
pub struct Reactor {
    id: PeerId,
    transport: Arc<dyn Transport>,
    listener: Box<dyn Listener>,
    clock: Arc<dyn Clock>,
    wake: Arc<WakeQueue>,
    /// Sorted so waker-mode pump order is deterministic.
    sessions: BTreeMap<u64, Session>,
    next_token: u64,
    /// Established sessions by remote peer — the exchange tick's
    /// "reuse a live session" lookup.
    by_peer: HashMap<PeerId, u64>,
    wheel: TimerWheel,
    /// Tokens whose connection holds a frame that becomes readable at a
    /// future instant (mem-transport delay injection): the reactor must
    /// wake itself then, because no external notify will.
    delayed: BTreeMap<u64, Instant>,
    /// Tokens to pump on the next cycle.
    ready: BTreeSet<u64>,
    pss: PssNode,
    rng: StdRng,
    backoff: HashMap<PeerId, Backoff>,
    ever_connected: HashSet<PeerId>,
    state: Arc<Mutex<NodeState>>,
    counters: Arc<NodeCounters>,
    config: NodeConfig,
    /// Waker mode: pump exactly the woken tokens. Fd mode: pump all.
    targeted: bool,
    draining: bool,
    drain_deadline: Option<Instant>,
    /// The attached transfer workload, if any (see [`Workload`]).
    workload: Option<Box<dyn Workload>>,
    /// Choke-round period for the attached workload.
    choke_interval: Duration,
    /// Clock instant at construction; workload callbacks see time as
    /// whole seconds since this.
    boot: Instant,
    /// Reusable frame-encoding buffers: steady-state exchange traffic
    /// allocates nothing fresh.
    pool: BufPool,
    /// Monotone exchange-tick counter driving the full-sync fallback
    /// cadence and the per-peer digest backoff.
    tick_no: u64,
    /// Encode-once memo of the full-slice frames, keyed on the history
    /// version; `None` bytes mean the slice is empty.
    full_cache: Option<FullCache>,
    /// Last tick a digest went to each peer.
    digest_tick: HashMap<PeerId, u64>,
    /// Consecutive digests to a peer without a `Delta` reply — the
    /// in-sync streak capping the digest cadence at every other tick.
    sync_streak: HashMap<PeerId, u32>,
    /// History version last pushed in full to each peer. Survives the
    /// session (it is knowledge about the *peer*, not the connection):
    /// a reconnect whose slice has not changed opens with a digest
    /// instead of re-pushing records the peer already holds.
    pushed: HashMap<PeerId, u64>,
}

/// The full slice of one history version, encoded once per wire shape
/// and fanned out as shared bytes to every session that needs it:
/// a bare `Records` frame for v2 peers, and a stamped full `Delta` for
/// v3 peers (the stamp seeds the receiver's frontier cache, so the
/// digest round that follows concludes in-sync).
struct FullCache {
    version: u64,
    bytes: Option<(Arc<[u8]>, u32)>,
    delta_bytes: Option<(Arc<[u8]>, u32)>,
}

impl Reactor {
    /// Bind the listener and assemble a reactor. Nothing runs until
    /// [`Reactor::poll_once`] (or [`Reactor::run`]) is called; the
    /// first exchange tick is scheduled for "now", matching the old
    /// runtime's fire-immediately behaviour.
    pub fn new(
        id: PeerId,
        transport: Arc<dyn Transport>,
        bootstrap: Vec<PeerId>,
        history: PrivateHistory,
        config: NodeConfig,
        clock: Arc<dyn Clock>,
    ) -> io::Result<Reactor> {
        let mut listener = transport.listen(id)?;
        let wake = Arc::new(WakeQueue::new());
        let targeted = matches!(listener.ready_source(), ReadySource::Waker);
        if targeted {
            listener.register_waker(&wake, LISTENER_TOKEN);
        }
        let now = clock.now();
        let mut wheel = TimerWheel::new(now, config.tick_granularity, 512);
        wheel.schedule(now, TimerKind::Exchange);
        let engine = ReputationEngine::from_private(&history);
        let mut pss = PssNode::new(id, config.pss);
        pss.bootstrap(bootstrap);
        Ok(Reactor {
            id,
            transport,
            listener,
            clock,
            wake,
            sessions: BTreeMap::new(),
            next_token: 0,
            by_peer: HashMap::new(),
            wheel,
            delayed: BTreeMap::new(),
            ready: BTreeSet::new(),
            pss,
            rng: StdRng::seed_from_u64(config.seed ^ (((id.0 as u64) << 32) | 0xA5A5)),
            backoff: HashMap::new(),
            ever_connected: HashSet::new(),
            state: Arc::new(Mutex::new(NodeState::new(history, engine))),
            counters: Arc::new(NodeCounters::default()),
            config,
            targeted,
            draining: false,
            drain_deadline: None,
            workload: None,
            choke_interval: Duration::from_secs(10),
            boot: now,
            pool: BufPool::new(),
            tick_no: 0,
            full_cache: None,
            digest_tick: HashMap::new(),
            sync_streak: HashMap::new(),
            pushed: HashMap::new(),
        })
    }

    /// Attach a transfer workload: its choke round fires every
    /// `choke_interval` starting one interval from now, and its
    /// `on_start` hook runs immediately (dialing initial targets).
    /// Call before the first [`Reactor::poll_once`].
    pub fn attach_workload(&mut self, workload: Box<dyn Workload>, choke_interval: Duration) {
        assert!(choke_interval > Duration::ZERO);
        self.workload = Some(workload);
        self.choke_interval = choke_interval;
        let now = self.clock.now();
        self.wheel
            .schedule(now + choke_interval, TimerKind::ChokeRound);
        self.with_workload(now, |w, secs, state, io| w.on_start(secs, state, io));
    }

    /// Run `f` against the attached workload (if any) with the node
    /// state locked, then apply the batched [`WorkloadIo`].
    fn with_workload<F>(&mut self, now: Instant, f: F)
    where
        F: FnOnce(&mut dyn Workload, Seconds, &mut NodeState, &mut WorkloadIo),
    {
        let Some(mut workload) = self.workload.take() else {
            return;
        };
        let mut io = WorkloadIo::default();
        let secs = Seconds(now.saturating_duration_since(self.boot).as_secs());
        {
            let mut state = self.state.lock().expect("state lock");
            f(workload.as_mut(), secs, &mut state, &mut io);
        }
        self.workload = Some(workload);
        self.deliver_io(io, now);
    }

    /// Apply a workload's batched output: frames onto live sessions
    /// (dropped, not queued, for peers without one), dials for missing
    /// peers through the normal backoff machinery.
    fn deliver_io(&mut self, io: WorkloadIo, now: Instant) {
        for (peer, frame) in io.frames {
            if let Some(&token) = self.by_peer.get(&peer) {
                if let Some(session) = self.sessions.get_mut(&token) {
                    session.enqueue_frame(
                        frame,
                        &mut self.pool,
                        self.config.outbound_queue,
                        &self.counters,
                    );
                    self.ready.insert(token);
                }
            }
        }
        for peer in io.dials {
            if peer != self.id && !self.by_peer.contains_key(&peer) && !self.draining {
                self.dial(peer, now);
            }
        }
    }

    /// This reactor's peer id.
    pub fn id(&self) -> PeerId {
        self.id
    }

    /// Shared handle to the operational counters.
    pub fn counters(&self) -> Arc<NodeCounters> {
        Arc::clone(&self.counters)
    }

    /// Shared handle to the node state (history + reputation engine).
    pub fn state(&self) -> Arc<Mutex<NodeState>> {
        Arc::clone(&self.state)
    }

    /// The wake queue — external threads kick it to interrupt
    /// [`Reactor::wait`] (e.g. for shutdown).
    pub fn wake_handle(&self) -> Arc<WakeQueue> {
        Arc::clone(&self.wake)
    }

    /// Live session count (pending + established).
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// Whether a graceful drain has been requested and every session
    /// has finished.
    pub fn drained(&self) -> bool {
        self.draining && self.sessions.is_empty()
    }

    /// One full cycle: wakes → timers → delayed frames → accepts →
    /// pumps → events → reaping. Returns whether any progress was made,
    /// so callers know when to park in [`Reactor::wait`]. Time is read
    /// from the clock exactly once, at entry — under a virtual clock
    /// the whole cycle is a pure function of (state, seeds, now).
    pub fn poll_once(&mut self) -> bool {
        let now = self.clock.now();
        let mut events: Vec<SessionEvent> = Vec::new();
        let mut progress = false;

        // 1. external readiness
        for token in self.wake.drain() {
            self.ready.insert(token);
        }

        // 2. due timers
        for kind in self.wheel.pop_due(now) {
            match kind {
                TimerKind::Exchange => {
                    if !self.draining {
                        self.wheel
                            .schedule(now + self.config.exchange_interval, TimerKind::Exchange);
                        self.exchange_tick(now);
                        progress = true;
                    }
                }
                TimerKind::SessionCheck { token } => {
                    if let Some(session) = self.sessions.get_mut(&token) {
                        match session.check_deadlines(
                            now,
                            &self.config.session,
                            &self.counters,
                            &mut events,
                        ) {
                            Some(next) => {
                                self.wheel.schedule(next, TimerKind::SessionCheck { token })
                            }
                            None => progress = true, // expired
                        }
                    }
                }
                TimerKind::DialRetry { peer } => {
                    if !self.draining && !self.by_peer.contains_key(&peer) {
                        self.dial(peer, now);
                        progress = true;
                    }
                }
                TimerKind::ChokeRound => {
                    if !self.draining && self.workload.is_some() {
                        self.wheel
                            .schedule(now + self.choke_interval, TimerKind::ChokeRound);
                        self.with_workload(now, |w, secs, state, io| {
                            w.on_choke_round(secs, state, io)
                        });
                        progress = true;
                    }
                }
            }
        }

        // 3. in-flight frames that became readable
        let due: Vec<u64> = self
            .delayed
            .iter()
            .filter(|(_, at)| **at <= now)
            .map(|(t, _)| *t)
            .collect();
        for token in due {
            self.delayed.remove(&token);
            self.ready.insert(token);
        }

        // 4. inbound connections, up to the accept burst
        let mut accepted = 0;
        while accepted < self.config.accept_burst {
            match self.listener.try_accept() {
                Ok(Some(conn)) => {
                    accepted += 1;
                    if self.draining || self.sessions.len() >= self.config.max_sessions {
                        // accepted-then-dropped: the peer sees an
                        // immediate close, not a hanging backlog
                        NodeCounters::inc(&self.counters.shed_accept);
                        drop(conn);
                    } else {
                        self.adopt(conn, Direction::Responder, now);
                    }
                    progress = true;
                }
                Ok(None) => break,
                Err(_) => break, // listener died; keep serving sessions
            }
        }
        if accepted == self.config.accept_burst {
            // burst limit hit with possibly more queued: make sure the
            // next cycle services the listener even without a new wake
            self.ready.insert(LISTENER_TOKEN);
        } else {
            self.ready.remove(&LISTENER_TOKEN);
        }

        // 5. pump sessions
        let tokens: Vec<u64> = if self.targeted {
            self.ready
                .iter()
                .copied()
                .filter(|t| *t != LISTENER_TOKEN)
                .collect()
        } else {
            self.sessions.keys().copied().collect()
        };
        self.ready.retain(|t| *t == LISTENER_TOKEN);
        for token in tokens {
            if let Some(session) = self.sessions.get_mut(&token) {
                if session.pump(self.id, now, &mut self.pool, &self.counters, &mut events) {
                    progress = true;
                }
                // a frame still in simulated flight needs a self-wake
                match session.conn_mut().next_ready_at() {
                    Some(at) if at > now => {
                        self.delayed.insert(token, at);
                    }
                    _ => {
                        self.delayed.remove(&token);
                    }
                }
            }
        }

        // 6. apply events, then reap the dead
        if !events.is_empty() {
            progress = true;
            self.apply_events(events, now);
        }
        let closed: Vec<u64> = self
            .sessions
            .iter()
            .filter(|(_, s)| s.is_closed())
            .map(|(t, _)| *t)
            .collect();
        for token in closed {
            self.reap(token);
        }

        progress
    }

    /// The earliest instant at which the reactor has scheduled work:
    /// the nearest timer or the nearest delayed in-flight frame.
    pub fn next_wake(&self) -> Option<Instant> {
        let timer = self.wheel.next_deadline();
        let frame = self.delayed.values().min().copied();
        match (timer, frame) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, None) => a,
            (None, b) => b,
        }
    }

    /// Park until something happens: a wake notification (waker mode),
    /// fd readiness (fd mode), or the next scheduled deadline.
    pub fn wait(&mut self) {
        let now = self.clock.now();
        let until = self
            .next_wake()
            .map(|t| t.saturating_duration_since(now))
            .unwrap_or(Duration::from_millis(50))
            .min(Duration::from_millis(50));
        if self.targeted {
            for token in self.wake.wait(until) {
                self.ready.insert(token);
            }
        } else {
            let mut set = Vec::with_capacity(self.sessions.len() + 1);
            if let ReadySource::Fd(fd) = self.listener.ready_source() {
                set.push(FdInterest { fd, write: false });
            }
            for session in self.sessions.values_mut() {
                let write = session.wants_write();
                if let ReadySource::Fd(fd) = session.conn_mut().ready_source() {
                    set.push(FdInterest { fd, write });
                }
            }
            wait_readiness(&set, until.min(Duration::from_millis(10)));
        }
    }

    /// Drive the reactor until `shutdown` is flagged, then drain
    /// gracefully: every session gets a `Bye` and up to
    /// `config.drain_timeout` to flush before being force-closed.
    pub fn run(&mut self, shutdown: &AtomicBool) {
        loop {
            if shutdown.load(Ordering::Relaxed) && !self.draining {
                self.begin_shutdown();
            }
            let progress = self.poll_once();
            if self.draining {
                if self.sessions.is_empty() {
                    return;
                }
                if let Some(deadline) = self.drain_deadline {
                    if self.clock.now() >= deadline {
                        self.force_close_all();
                        return;
                    }
                }
            }
            if !progress {
                self.wait();
            }
        }
    }

    /// Flip into draining mode: ask every session for a graceful
    /// teardown and arm the force-close deadline.
    pub fn begin_shutdown(&mut self) {
        self.draining = true;
        self.drain_deadline = Some(self.clock.now() + self.config.drain_timeout);
        let tokens: Vec<u64> = self.sessions.keys().copied().collect();
        for token in tokens {
            if let Some(session) = self.sessions.get_mut(&token) {
                session.begin_drain();
            }
            self.ready.insert(token);
        }
    }

    fn force_close_all(&mut self) {
        let mut events = Vec::new();
        let tokens: Vec<u64> = self.sessions.keys().copied().collect();
        for token in tokens {
            if let Some(session) = self.sessions.get_mut(&token) {
                session.force_close(&self.counters, &mut events);
            }
            self.reap(token);
        }
        // events are only Closed notifications for sessions already
        // reaped; nothing else to apply
    }

    /// Take ownership of a connection as a new session: assign a token,
    /// register its waker, count it live, and schedule its handshake
    /// deadline.
    fn adopt(&mut self, mut conn: Box<dyn Conn>, direction: Direction, now: Instant) {
        let token = self.next_token;
        self.next_token += 1;
        if self.targeted {
            conn.register_waker(&self.wake, token);
        }
        let mut session = Session::new(token, conn, direction, now);
        if self.draining {
            session.begin_drain();
        }
        self.sessions.insert(token, session);
        self.counters.session_adopted();
        self.wheel.schedule(
            now + self.config.session.handshake_timeout,
            TimerKind::SessionCheck { token },
        );
        self.ready.insert(token);
    }

    fn reap(&mut self, token: u64) {
        if self.sessions.remove(&token).is_some() {
            self.counters.session_reaped();
        }
        self.delayed.remove(&token);
        self.ready.remove(&token);
        if let Some(peer) = self
            .by_peer
            .iter()
            .find(|(_, t)| **t == token)
            .map(|(p, _)| *p)
        {
            self.by_peer.remove(&peer);
            self.digest_tick.remove(&peer);
            self.sync_streak.remove(&peer);
        }
    }

    /// Dial `target` (respecting backoff); the handshake's
    /// `Established` event opens the first anti-entropy round.
    fn dial(&mut self, target: PeerId, now: Instant) {
        let entry = self.backoff.entry(target).or_default();
        if let Some(not_before) = entry.not_before {
            if now < not_before {
                return;
            }
        }
        if self.ever_connected.contains(&target) {
            NodeCounters::inc(&self.counters.reconnects);
        }
        match self.transport.connect(self.id, target) {
            Ok(conn) => {
                // success of the *dial*; the handshake may still fail,
                // in which case Closed{clean: false} re-arms backoff
                self.backoff.entry(target).or_default().not_before = None;
                self.adopt(conn, Direction::Initiator, now);
            }
            Err(_) => {
                NodeCounters::inc(&self.counters.sessions_failed);
                self.arm_backoff(target, now);
            }
        }
    }

    /// Bump the failure count, compute the next delay, and schedule the
    /// retry timer.
    fn arm_backoff(&mut self, peer: PeerId, now: Instant) {
        let entry = self.backoff.entry(peer).or_default();
        entry.consecutive_failures = entry.consecutive_failures.saturating_add(1);
        let delay = backoff_delay(
            entry.consecutive_failures,
            self.config.backoff_base,
            self.config.backoff_max,
            self.config.backoff_jitter,
            &mut self.rng,
        );
        let retry_at = now + delay;
        entry.not_before = Some(retry_at);
        if !self.draining {
            self.wheel.schedule(retry_at, TimerKind::DialRetry { peer });
        }
    }

    /// One exchange tick: sample `fanout` neighbors and run one
    /// anti-entropy round with each — a digest to v3 peers (unless the
    /// backoff says they answered nothing lately), the encode-once full
    /// slice on fallback ticks and to v2 peers, a dial when no session
    /// exists yet.
    fn exchange_tick(&mut self, now: Instant) {
        self.pss.tick();
        self.tick_no += 1;
        if self.full_message_bytes().is_none() {
            return; // nothing to gossip yet
        }
        let full_tick = self.config.full_sync_every > 0
            && self.tick_no.is_multiple_of(self.config.full_sync_every);
        let targets = self.pss.sample_many(&mut self.rng, self.config.fanout);
        for target in targets {
            if target == self.id {
                continue;
            }
            match self.by_peer.get(&target).copied() {
                Some(token) => self.sync_with(token, target, full_tick),
                None => self.dial(target, now),
            }
        }
    }

    /// Run one sync round over an established session: a full shared-
    /// bytes push for v2 peers and fallback ticks (stamped `Delta` for
    /// v3 peers, bare `Records` for v2), a digest otherwise.
    fn sync_with(&mut self, token: u64, target: PeerId, full_tick: bool) {
        let Some(session) = self.sessions.get(&token) else {
            return;
        };
        if !session.is_established() {
            return;
        }
        let v3 = session.peer_version() >= wire::NODE_PROTOCOL_VERSION;
        if full_tick || !v3 {
            let shared = if v3 {
                self.full_delta_bytes()
            } else {
                self.full_message_bytes()
            };
            if let Some((bytes, records)) = shared {
                let cap = self.config.outbound_queue;
                let session = self.sessions.get_mut(&token).expect("session exists");
                let queued = if v3 {
                    session.enqueue_shared_delta(bytes, records, cap, &self.counters)
                } else {
                    session.enqueue_shared_records(bytes, records, cap, &self.counters)
                };
                if queued {
                    NodeCounters::inc(&self.counters.full_syncs);
                    if let Some(cache) = &self.full_cache {
                        self.pushed.insert(target, cache.version);
                    }
                    self.ready.insert(token);
                }
            }
            return;
        }
        if !self.should_digest(target) {
            return;
        }
        let claim = {
            let st = self.state.lock().expect("state lock");
            st.frontiers.get(&target).copied().unwrap_or_default()
        };
        let cap = self.config.outbound_queue;
        let session = self.sessions.get_mut(&token).expect("session exists");
        if session.enqueue_digest(self.id, claim, &mut self.pool, cap, &self.counters) {
            self.digest_tick.insert(target, self.tick_no);
            let streak = self.sync_streak.entry(target).or_insert(0);
            *streak = streak.saturating_add(1);
            self.ready.insert(token);
        }
    }

    /// Digest backoff: at most one digest per peer per tick, and a peer
    /// that answered nothing twice in a row (already in sync) is probed
    /// every other tick instead of every tick. Any `Delta` reply resets
    /// the streak so a peer with news is probed eagerly again. The
    /// cadence is kept this tight on purpose: a digest costs ~30 bytes,
    /// and probing lazily would delay reputation propagation — the
    /// savings live in the suppressed record payloads, not here.
    fn should_digest(&self, peer: PeerId) -> bool {
        let last = match self.digest_tick.get(&peer) {
            Some(&t) => t,
            None => return true,
        };
        if last == self.tick_no {
            return false;
        }
        let streak = self.sync_streak.get(&peer).copied().unwrap_or(0);
        streak < 2 || self.tick_no - last >= 2
    }

    /// Rebuild the encode-once full-slice frames if the history has
    /// been written since they were last encoded.
    fn refresh_full_cache(&mut self) {
        let mut st = self.state.lock().expect("state lock");
        let version = st.history.version();
        if self.full_cache.as_ref().map(|c| c.version) == Some(version) {
            return;
        }
        let delta = st.full_delta(self.config.bartercast);
        let (bytes, delta_bytes) = if delta.records.is_empty() {
            (None, None)
        } else {
            let records = delta.records.len() as u32;
            let msg = st.full_message(self.config.bartercast);
            let records_frame = wire::encode_envelope(&wire::Envelope::Records(msg));
            let delta_frame = wire::encode_envelope(&wire::Envelope::Delta(delta));
            (
                Some((Arc::from(&records_frame[..]), records)),
                Some((Arc::from(&delta_frame[..]), records)),
            )
        };
        self.full_cache = Some(FullCache {
            version,
            bytes,
            delta_bytes,
        });
    }

    /// The full `Records` frame for the current history, encoded once
    /// per history version and shared (`Arc`) across every v2 session
    /// it fans out to. `None` while the history is empty.
    fn full_message_bytes(&mut self) -> Option<(Arc<[u8]>, u32)> {
        self.refresh_full_cache();
        self.full_cache
            .as_ref()
            .and_then(|c| c.bytes.as_ref().map(|(b, n)| (Arc::clone(b), *n)))
    }

    /// The stamped full `Delta` frame for the current history — the v3
    /// sibling of [`Reactor::full_message_bytes`].
    fn full_delta_bytes(&mut self) -> Option<(Arc<[u8]>, u32)> {
        self.refresh_full_cache();
        self.full_cache
            .as_ref()
            .and_then(|c| c.delta_bytes.as_ref().map(|(b, n)| (Arc::clone(b), *n)))
    }

    fn apply_events(&mut self, events: Vec<SessionEvent>, now: Instant) {
        for event in events {
            match event {
                SessionEvent::Established { token, remote, .. } => {
                    self.by_peer.entry(remote).or_insert(token);
                    self.backoff.remove(&remote);
                    self.digest_tick.remove(&remote);
                    self.sync_streak.remove(&remote);
                    if !self.ever_connected.insert(remote) {
                        NodeCounters::inc(&self.counters.reconnects);
                    }
                    self.pss.bootstrap([remote]);
                    // notify the workload only for the session that
                    // became the peer's primary (duplicate dials race;
                    // the loser idles out without a notification)
                    if self.by_peer.get(&remote) == Some(&token) {
                        // both sides open anti-entropy as soon as the
                        // handshake lands — this replaces the old
                        // dial-time message preload. First contact is a
                        // full push from each direction (the peer holds
                        // nothing of ours to dedup against, and the
                        // stamp seeds the frontier the digest rounds
                        // then confirm); a reconnect whose slice was
                        // already pushed at this version opens with a
                        // digest instead, pulling any news without
                        // re-sending records the peer has.
                        if !self.draining {
                            let version = {
                                let st = self.state.lock().expect("state lock");
                                st.history.version()
                            };
                            let fresh = self.pushed.get(&remote) != Some(&version);
                            self.sync_with(token, remote, fresh);
                        }
                        self.with_workload(now, |w, secs, state, io| {
                            w.on_established(remote, secs, state, io)
                        });
                    }
                }
                SessionEvent::Records { from, msg, .. } => {
                    let mut st = self.state.lock().expect("state lock");
                    let changed = st.engine.absorb_message(&msg);
                    if changed == 0 {
                        NodeCounters::add(&self.counters.records_duplicate, msg.len() as u64);
                    }
                    let _ = from; // history stays private: only direct transfers enter it
                }
                SessionEvent::Digest { token, from, claim } => {
                    let (ours, plan, slice_len, version) = {
                        let mut st = self.state.lock().expect("state lock");
                        let (ours, plan, slice_len) = st.sync_plan(self.config.bartercast, claim);
                        (ours, plan, slice_len, st.history.version())
                    };
                    // in sync, or about to be sent the rest: either
                    // way the peer holds our slice at this version, so
                    // a later reconnect opens with a digest instead of
                    // a redundant full push. Optimistic under loss —
                    // the digest round repairs a dropped reply.
                    self.pushed.insert(from, version);
                    match plan {
                        SyncPlan::InSync => {
                            // the whole slice stayed off the wire
                            NodeCounters::add(&self.counters.records_suppressed, slice_len as u64);
                        }
                        SyncPlan::Send { full, records } => {
                            let suppressed = slice_len.saturating_sub(records.len());
                            NodeCounters::add(&self.counters.records_suppressed, suppressed as u64);
                            if full {
                                NodeCounters::inc(&self.counters.full_syncs);
                            }
                            let msg = DeltaMsg {
                                sender: self.id,
                                full,
                                stamp: ours,
                                records,
                            };
                            let cap = self.config.outbound_queue;
                            if let Some(session) = self.sessions.get_mut(&token) {
                                if session.enqueue_delta(&msg, &mut self.pool, cap, &self.counters)
                                {
                                    self.ready.insert(token);
                                }
                            }
                        }
                    }
                }
                SessionEvent::Delta { from, msg, .. } => {
                    let n = msg.records.len() as u64;
                    {
                        let mut st = self.state.lock().expect("state lock");
                        if n > 0 {
                            let exchange = BarterCastMessage {
                                sender: msg.sender,
                                records: msg.records,
                            };
                            let changed = st.engine.absorb_message(&exchange);
                            if changed == 0 {
                                NodeCounters::add(&self.counters.records_duplicate, n);
                            }
                        }
                        // the peer's fresh stamp is our next claim
                        st.frontiers.insert(from, msg.stamp);
                    }
                    // news arrived: probe this peer eagerly again
                    self.sync_streak.remove(&from);
                }
                SessionEvent::Frame { token, from, frame } => {
                    if self.by_peer.get(&from) == Some(&token) {
                        self.with_workload(now, |w, secs, state, io| {
                            w.on_frame(from, frame, secs, state, io)
                        });
                    }
                }
                SessionEvent::Closed { token, clean } => {
                    let remote = self.sessions.get(&token).and_then(|s| s.remote());
                    if let (false, Some(peer)) = (clean, remote) {
                        if !self.draining {
                            self.arm_backoff(peer, now);
                        }
                    }
                    if let Some(peer) = remote {
                        if self.by_peer.get(&peer) == Some(&token) {
                            self.with_workload(now, |w, secs, state, io| {
                                w.on_closed(peer, secs, state, io)
                            });
                        }
                    }
                    // reaping happens at the end of poll_once
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;
    use crate::mem::{MemConfig, MemTransport};
    use bartercast_util::units::Seconds;

    fn fast_config(seed: u64) -> NodeConfig {
        NodeConfig {
            exchange_interval: Duration::from_millis(20),
            backoff_base: Duration::from_millis(10),
            backoff_max: Duration::from_millis(200),
            seed,
            ..NodeConfig::default()
        }
    }

    fn history_with_upload(owner: u32, peer: u32, mb: u64) -> PrivateHistory {
        let mut h = PrivateHistory::new(PeerId(owner));
        h.record_upload(PeerId(peer), Bytes::from_mb(mb), Seconds(1));
        h
    }

    #[test]
    fn backoff_delay_caps_at_max_with_bounded_jitter() {
        let base = Duration::from_millis(100);
        let max = Duration::from_secs(30);
        let mut rng = StdRng::seed_from_u64(1);
        for failures in [20u32, 40, u32::MAX] {
            let d = backoff_delay(failures, base, max, 0.5, &mut rng);
            assert!(d >= max, "capped delay must be at least max, got {d:?}");
            assert!(
                d <= max.mul_f64(1.5),
                "jitter must stay within +50%, got {d:?}"
            );
        }
    }

    #[test]
    fn backoff_delay_grows_exponentially_before_the_cap() {
        let base = Duration::from_millis(100);
        let max = Duration::from_secs(30);
        // jitter 0 isolates the deterministic part
        let mut rng = StdRng::seed_from_u64(1);
        let d1 = backoff_delay(1, base, max, 0.0, &mut rng);
        let d2 = backoff_delay(2, base, max, 0.0, &mut rng);
        let d3 = backoff_delay(3, base, max, 0.0, &mut rng);
        assert_eq!(d1, Duration::from_millis(100));
        assert_eq!(d2, Duration::from_millis(200));
        assert_eq!(d3, Duration::from_millis(400));
    }

    /// Two reactors pumped in lockstep on virtual time converge to each
    /// other's records without any thread ever sleeping.
    #[test]
    fn two_reactors_converge_on_virtual_time() {
        let clock = Arc::new(VirtualClock::new());
        let transport = Arc::new(MemTransport::with_clock(
            MemConfig::default(),
            Arc::clone(&clock) as Arc<dyn Clock>,
        ));
        let mut a = Reactor::new(
            PeerId(0),
            Arc::clone(&transport) as Arc<dyn Transport>,
            vec![PeerId(1)],
            history_with_upload(0, 1, 64),
            fast_config(1),
            Arc::clone(&clock) as Arc<dyn Clock>,
        )
        .unwrap();
        let mut b = Reactor::new(
            PeerId(1),
            Arc::clone(&transport) as Arc<dyn Transport>,
            vec![PeerId(0)],
            history_with_upload(1, 2, 32),
            fast_config(2),
            Arc::clone(&clock) as Arc<dyn Clock>,
        )
        .unwrap();

        let want = 2; // 0→1 (a's upload) and 1→2 (b's upload)
        for _step in 0..10_000 {
            // settle every event available at this virtual instant
            let mut spins = 0;
            while (a.poll_once() | b.poll_once()) && spins < 1000 {
                spins += 1;
            }
            let ea = a.state.lock().unwrap().subjective_edges();
            let eb = b.state.lock().unwrap().subjective_edges();
            if ea.len() >= want && ea == eb {
                return; // converged
            }
            // advance to the earliest scheduled wake, strictly forward
            let next = [a.next_wake(), b.next_wake()]
                .into_iter()
                .flatten()
                .min()
                .expect("idle reactors must still hold their exchange timer");
            let now = clock.now();
            clock.advance_to(next.max(now + Duration::from_micros(1)));
        }
        panic!(
            "no convergence: a={:?} b={:?}",
            a.counters.snapshot(),
            b.counters.snapshot()
        );
    }

    /// Inbound connections beyond `max_sessions` are shed at accept and
    /// counted, while existing sessions keep working.
    #[test]
    fn sessions_beyond_the_cap_are_shed_at_accept() {
        let transport = Arc::new(MemTransport::new(MemConfig::default()));
        let clock: Arc<dyn Clock> = Arc::new(crate::clock::SystemClock);
        let mut r = Reactor::new(
            PeerId(1),
            Arc::clone(&transport) as Arc<dyn Transport>,
            vec![],
            PrivateHistory::new(PeerId(1)),
            NodeConfig {
                max_sessions: 2,
                ..fast_config(9)
            },
            clock,
        )
        .unwrap();
        let mut dialers: Vec<Box<dyn Conn>> = (0..5)
            .map(|i| transport.connect(PeerId(10 + i), PeerId(1)).unwrap())
            .collect();
        r.poll_once();
        assert_eq!(r.session_count(), 2, "cap must hold");
        assert_eq!(r.counters.snapshot().shed_accept, 3);
        assert_eq!(r.counters.snapshot().sessions_peak, 2);
        // shed dialers observe EOF; adopted ones do not
        let mut eofs = 0;
        let deadline = Instant::now() + Duration::from_secs(2);
        while eofs < 3 && Instant::now() < deadline {
            eofs = 0;
            for d in dialers.iter_mut() {
                let mut buf = [0u8; 64];
                loop {
                    match d.try_recv(&mut buf) {
                        Ok(Some(0)) | Err(_) => {
                            eofs += 1;
                            break;
                        }
                        Ok(Some(_)) => continue,
                        Ok(None) => break,
                    }
                }
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(eofs, 3, "exactly the shed dialers see EOF");
    }
}
